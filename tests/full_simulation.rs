//! Cross-crate integration: full mini-simulations exercising the whole
//! stack (SCF init → AMR grid over localities → ghost exchange → FMM
//! gravity → RK3 hydro) and the conservation properties the paper builds
//! Octo-Tiger around.

use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::state::field;
use octo_repro::octotiger::{ConservationLedger, Scenario, ScenarioKind, SimOptions, Simulation};

#[test]
fn rotating_star_with_gravity_stays_finite_and_bound() {
    let cluster = SimCluster::new(2, 2);
    let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 4);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    let mut sim = Simulation::new(scenario.grid, opts);
    let (before, after, stats) = sim.run(&cluster, 3);
    assert_eq!(stats.len(), 3);
    // Everything finite.
    for leaf in sim.grid.leaves() {
        let g = sim.grid.grid(leaf);
        let gg = g.read();
        for f in 0..octo_repro::octotiger::NF {
            assert!(
                gg.field(f).iter().all(|v| v.is_finite()),
                "non-finite value in field {f}"
            );
        }
    }
    // The star must not explode: gas energy may change but stays within
    // an order of magnitude over 3 steps.
    assert!(after.gas_energy < 10.0 * before.gas_energy);
    assert!(after.gas_energy > 0.0);
    cluster.shutdown();
}

#[test]
fn mass_ledger_closes_with_outflow_tracking() {
    let cluster = SimCluster::new(2, 2);
    let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 4);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = false;
    let mut sim = Simulation::new(scenario.grid, opts);
    let (before, after, _) = sim.run(&cluster, 3);
    let closure = (after.mass + sim.mass_outflow - before.mass).abs() / before.mass;
    assert!(
        closure < 1e-12,
        "mass + outflow must close to machine precision: {closure}"
    );
    cluster.shutdown();
}

#[test]
fn component_tracers_track_total_mass() {
    // frac1 + frac2 advect with rho: their sum should track the star mass.
    let cluster = SimCluster::new(1, 2);
    let scenario = Scenario::build(ScenarioKind::Dwd, &cluster, 2, 0, 4);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = false;
    let mut sim = Simulation::new(scenario.grid, opts);
    let before = ConservationLedger::measure(&sim.grid);
    sim.step(&cluster);
    let after = ConservationLedger::measure(&sim.grid);
    let before_frac = before.component_mass[0] + before.component_mass[1];
    let after_frac = after.component_mass[0] + after.component_mass[1];
    // Tracers are conserved like mass (up to the same outflow).
    assert!(
        ((after_frac - before_frac) / before_frac).abs() < 1e-6,
        "tracer mass moved: {before_frac} -> {after_frac}"
    );
    cluster.shutdown();
}

#[test]
fn angular_momentum_drift_is_bounded_with_octupole_fmm() {
    let cluster = SimCluster::new(1, 2);
    let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 4);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    opts.gravity_opts.use_octupole = true;
    let mut sim = Simulation::new(scenario.grid, opts);
    let before = ConservationLedger::measure(&sim.grid);
    sim.step(&cluster);
    sim.step(&cluster);
    let after = ConservationLedger::measure(&sim.grid);
    // Angular momentum scale: M * omega * R^2 ~ 1 * 0.79 * 0.04.
    let scale = 0.03;
    let drift = after.angular_momentum_drift(&before, scale);
    assert!(drift < 0.2, "L_z drift too large: {drift}");
    cluster.shutdown();
}

#[test]
fn density_floor_is_respected_everywhere() {
    let cluster = SimCluster::new(1, 2);
    let scenario = Scenario::build(ScenarioKind::V1309, &cluster, 2, 0, 4);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    let mut sim = Simulation::new(scenario.grid, opts);
    sim.step(&cluster);
    for leaf in sim.grid.leaves() {
        let g = sim.grid.grid(leaf);
        let gg = g.read();
        let n = gg.n();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let rho = gg.get_interior(field::RHO, i, j, k);
                    assert!(rho.is_finite());
                }
            }
        }
    }
    cluster.shutdown();
}
