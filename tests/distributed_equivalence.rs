//! The distribution axis must be invisible to the physics: sharding the
//! octree over N simulated localities — with every cross-locality
//! multipole, local-expansion, and point-mass interaction moving as a
//! typed parcel — produces **bit-identical** states and conservation
//! ledgers to the single-locality reference, for any locality count, on
//! uniform and refined trees, in both stepper modes.
//!
//! The counters close the loop in the other direction: a distributed run
//! must actually communicate (`/octotiger/parcels/*` gravity classes
//! nonzero for N > 1) and the reference must not (zero for N = 1), so the
//! equivalence cannot pass vacuously by never taking the distributed path.

use octo_repro::hpx::{parcel_counters, SimCluster};
use octo_repro::octotiger::{Scenario, ScenarioKind, SimOptions, Simulation, NF};

/// Global parcel counters are process-wide; serialize the tests in this
/// binary so each one's snapshot delta is its own traffic.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Debug builds (plain `cargo test`) run a reduced copy of the sweep —
/// fewer steps on a coarser tree — purely for wall-clock: unoptimized
/// kernels are ~an order of magnitude slower and the property under test
/// (bit-identity across locality counts) is size-independent.  The release
/// `distributed-equivalence` CI job runs the full configuration.
const STEPS: usize = if cfg!(debug_assertions) { 3 } else { 10 };
const LEVEL: u8 = if cfg!(debug_assertions) { 1 } else { 2 };

/// Outcome of one run: per-leaf final state (SFC order) and the ledger
/// fields that must match bit-for-bit.
struct RunResult {
    state: Vec<Vec<f64>>,
    ledger_bits: Vec<u64>,
    dt_bits: Vec<u64>,
    gravity_parcels: u64,
    total_parcels: u64,
}

/// Run `STEPS` steps of the rotating star sharded over `localities`
/// gravity localities (on a cluster with that many simulated localities),
/// and capture state, ledger, and this run's parcel-counter delta.
fn run(localities: usize, amr_extra: u8, pipeline: bool) -> RunResult {
    let cluster = SimCluster::new(localities.max(1), 2);
    let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, LEVEL, amr_extra, 4);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    opts.pipeline = pipeline;
    opts.localities = localities;
    let mut sim = Simulation::new(scenario.grid, opts);
    let before = parcel_counters().snapshot();
    let (_, after_ledger, stats) = sim.run(&cluster, STEPS);
    let delta = parcel_counters().snapshot().since(&before);
    let mut state = Vec::new();
    for leaf in sim.grid.leaves() {
        let g = sim.grid.grid(leaf);
        let gg = g.read();
        let mut block = Vec::new();
        for f in 0..NF {
            block.extend_from_slice(gg.field(f));
        }
        state.push(block);
    }
    cluster.shutdown();
    RunResult {
        state,
        ledger_bits: vec![
            after_ledger.mass.to_bits(),
            after_ledger.gas_energy.to_bits(),
            after_ledger.momentum[0].to_bits(),
            after_ledger.momentum[1].to_bits(),
            after_ledger.momentum[2].to_bits(),
            after_ledger.angular_momentum_z.to_bits(),
        ],
        dt_bits: stats.iter().map(|s| s.dt.to_bits()).collect(),
        gravity_parcels: delta.gravity_count(),
        total_parcels: delta.total_count(),
    }
}

fn assert_bit_identical(reference: &RunResult, other: &RunResult, what: &str) {
    assert_eq!(
        reference.ledger_bits, other.ledger_bits,
        "{what}: conservation ledger diverged"
    );
    assert_eq!(
        reference.dt_bits, other.dt_bits,
        "{what}: Δt sequence diverged"
    );
    assert_eq!(
        reference.state.len(),
        other.state.len(),
        "{what}: leaf count differs"
    );
    for (li, (a, b)) in reference.state.iter().zip(&other.state).enumerate() {
        assert_eq!(a.len(), b.len());
        for (c, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: leaf {li} word {c}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn uniform_tree_any_locality_count_is_bit_identical_barrier() {
    let _serial = SERIAL.lock().unwrap();
    let reference = run(1, 0, false);
    assert_eq!(
        reference.gravity_parcels, 0,
        "single locality must not send gravity parcels"
    );
    assert_eq!(
        reference.total_parcels, 0,
        "single locality must not send parcels at all"
    );
    // 2 and 4 divide the uniform curve (a power-of-8 leaf count) evenly;
    // 7 exercises the remainder path (non-power-of-two shard sizes).
    for nloc in [2usize, 4, 7] {
        let dist = run(nloc, 0, false);
        assert!(
            dist.gravity_parcels > 0,
            "{nloc} localities must communicate"
        );
        assert_bit_identical(&reference, &dist, &format!("barrier, {nloc} localities"));
    }
}

#[test]
fn uniform_tree_any_locality_count_is_bit_identical_pipelined() {
    let _serial = SERIAL.lock().unwrap();
    // The pipelined reference must also match the barrier reference, so
    // the two stepper modes share one equivalence class.
    let barrier_reference = run(1, 0, false);
    let reference = run(1, 0, true);
    assert_bit_identical(
        &barrier_reference,
        &reference,
        "pipelined vs barrier, 1 locality",
    );
    assert_eq!(reference.gravity_parcels, 0);
    for nloc in [2usize, 4, 7] {
        let dist = run(nloc, 0, true);
        assert!(dist.gravity_parcels > 0);
        assert_bit_identical(&reference, &dist, &format!("pipelined, {nloc} localities"));
    }
}

#[test]
fn refined_tree_distribution_is_bit_identical_both_modes() {
    let _serial = SERIAL.lock().unwrap();
    // One extra AMR level where the star sits: mixed-level leaves, so the
    // shard boundaries cut through refinement transitions.
    for pipeline in [false, true] {
        let reference = run(1, 1, pipeline);
        assert_eq!(reference.gravity_parcels, 0);
        let dist = run(4, 1, pipeline);
        assert!(dist.gravity_parcels > 0);
        let mode = if pipeline { "pipelined" } else { "barrier" };
        assert_bit_identical(&reference, &dist, &format!("refined tree, {mode}"));
    }
}

#[test]
fn locality_option_clamps_to_the_cluster() {
    let _serial = SERIAL.lock().unwrap();
    // Asking for more gravity localities than the cluster has falls back
    // to what exists (here: 1), rather than indexing out of bounds.
    let cluster = SimCluster::new(1, 2);
    let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, 1, 0, 4);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.localities = 64;
    let mut sim = Simulation::new(scenario.grid, opts);
    let before = parcel_counters().snapshot();
    sim.run(&cluster, 2);
    let delta = parcel_counters().snapshot().since(&before);
    assert_eq!(delta.gravity_count(), 0, "clamped run is the local solve");
    cluster.shutdown();
}
