//! The online granularity tuner must be a pure performance feature.
//!
//! The tuner (PR-10) re-splits gravity kernel launches, re-groups hydro
//! leaf tasks, and flips the stepper between barrier and pipelined mode —
//! all of which are bitwise-neutral launch knobs by construction
//! (plan-frozen CSR summation order, disjoint `&mut` chunks, per-leaf
//! independent RHS work).  This test closes the loop on that argument:
//! a 10-step run with `autotune` on is **bit-identical** in per-leaf
//! state, conservation ledger, and Δt sequence to the same run with the
//! tuner off, across locality counts × vector widths, and across a
//! mid-run regrid.
//!
//! The regrid run also checks the freeze/unfreeze contract: converged
//! families re-probe exactly once per topology change (the snapshot's
//! `topology_reprobes` counter equals the number of steps whose regrid
//! actually changed the tree).

use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::{
    ConservationLedger, Scenario, ScenarioKind, SimOptions, Simulation, NF,
};
use octo_repro::simd::VectorMode;

/// Debug builds (plain `cargo test`) run a reduced copy — fewer steps on
/// a coarser tree — purely for wall-clock; the property under test
/// (bit-identity tuner-on vs tuner-off) is size-independent.  The release
/// CI job runs the full configuration.
const STEPS: usize = if cfg!(debug_assertions) { 4 } else { 10 };
const LEVEL: u8 = if cfg!(debug_assertions) { 1 } else { 2 };

/// Global tuner counters are process-wide; serialize the tests in this
/// binary so each run's snapshot is its own story.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Outcome of one run: per-leaf final state (sorted leaf order), the
/// ledger fields that must match bit-for-bit, the Δt bit sequence, and
/// the tuner's activity record.
struct RunResult {
    state: Vec<Vec<u64>>,
    ledger_bits: Vec<u64>,
    dt_bits: Vec<u64>,
    /// `topology_reprobes` from the final step's tuner snapshot (0 when
    /// the tuner is off).
    topology_reprobes: u64,
    /// Probes issued by this run's tuner (0 when off).
    probes: u64,
    /// Steps whose regrid actually changed the tree.
    regrid_steps: u64,
}

fn run(localities: usize, mode: VectorMode, autotune: bool, regrid: bool) -> RunResult {
    let cluster = SimCluster::new(localities.max(1), 2);
    let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, LEVEL, 0, 4);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    opts.localities = localities;
    opts.vector_mode = mode;
    opts.autotune = autotune;
    if regrid {
        opts.regrid_cadence = Some(3);
        opts.regrid_max_level = LEVEL + 1;
        opts.regrid_refine_threshold = 1.0;
        opts.regrid_coarsen_threshold = 1e-8;
    }
    let mut sim = Simulation::new(scenario.grid, opts);
    let mut dt_bits = Vec::new();
    let mut regrid_steps = 0u64;
    let mut topology_reprobes = 0u64;
    let mut probes = 0u64;
    let mut ledger_bits = Vec::new();
    for _ in 0..STEPS {
        let stats = sim.step(&cluster);
        dt_bits.push(stats.dt.to_bits());
        if stats.regrid_refined + stats.regrid_derefined > 0 {
            regrid_steps += 1;
        }
        assert_eq!(
            stats.tuner.is_some(),
            autotune,
            "StepStats carries a tuner snapshot exactly when autotune is on"
        );
        if let Some(snap) = stats.tuner {
            topology_reprobes = snap.topology_reprobes;
            probes = snap.probes;
        }
        let ledger = ConservationLedger::measure(&sim.grid);
        ledger_bits.extend([
            ledger.mass.to_bits(),
            ledger.gas_energy.to_bits(),
            ledger.momentum[0].to_bits(),
            ledger.momentum[1].to_bits(),
            ledger.momentum[2].to_bits(),
            ledger.angular_momentum_z.to_bits(),
        ]);
    }
    let mut leaves = sim.grid.leaves();
    leaves.sort();
    let state = leaves
        .iter()
        .map(|&leaf| {
            let handle = sim.grid.grid(leaf);
            let g = handle.read();
            let mut bits = Vec::new();
            for f in 0..NF {
                bits.extend(g.field(f).iter().map(|v| v.to_bits()));
            }
            bits
        })
        .collect();
    cluster.shutdown();
    RunResult {
        state,
        ledger_bits,
        dt_bits,
        topology_reprobes,
        probes,
        regrid_steps,
    }
}

fn assert_bit_identical(reference: &RunResult, other: &RunResult, what: &str) {
    assert_eq!(
        reference.dt_bits, other.dt_bits,
        "{what}: Δt sequence diverged"
    );
    assert_eq!(
        reference.ledger_bits, other.ledger_bits,
        "{what}: conservation ledger diverged"
    );
    assert_eq!(
        reference.state.len(),
        other.state.len(),
        "{what}: leaf count differs"
    );
    for (li, (a, b)) in reference.state.iter().zip(&other.state).enumerate() {
        assert_eq!(a, b, "{what}: leaf {li} state diverged");
    }
}

#[test]
fn autotune_is_bit_identical_across_localities_and_widths() {
    let _serial = SERIAL.lock().unwrap();
    for localities in [1usize, 4] {
        for mode in [VectorMode::Scalar, VectorMode::Sve512] {
            let off = run(localities, mode, false, false);
            let on = run(localities, mode, true, false);
            assert!(
                on.probes > 0,
                "{localities} localities, {mode:?}: the tuner never probed — \
                 the equivalence would be vacuous"
            );
            assert_bit_identical(
                &off,
                &on,
                &format!("{localities} localities, {mode:?}, autotune on vs off"),
            );
        }
    }
}

#[test]
fn autotune_survives_a_mid_run_regrid_and_reprobes_once_per_topology_change() {
    let _serial = SERIAL.lock().unwrap();
    let off = run(4, VectorMode::Sve512, false, true);
    let on = run(4, VectorMode::Sve512, true, true);
    assert!(
        off.regrid_steps >= 1,
        "the regrid run must actually change the tree"
    );
    assert_eq!(
        off.regrid_steps, on.regrid_steps,
        "tuner must not change which steps regrid"
    );
    assert_bit_identical(&off, &on, "regrid run, autotune on vs off");
    // Freeze/unfreeze contract: exactly one re-probe cycle per topology
    // change, no matter how many families were frozen at the time.
    assert_eq!(
        on.topology_reprobes, on.regrid_steps,
        "tuner must re-probe exactly once per topology change"
    );
    assert_eq!(
        off.topology_reprobes, 0,
        "tuner-off run must report no tuner activity"
    );
}
