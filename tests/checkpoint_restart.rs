//! Checkpoint/restart integration: a run interrupted by a silo-lite
//! checkpoint and restored on a *different* cluster layout must continue
//! exactly like the uninterrupted run.

use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::{io, Scenario, ScenarioKind, SimOptions, Simulation, NF};

fn snapshot(sim: &Simulation) -> Vec<Vec<f64>> {
    sim.grid
        .leaves()
        .into_iter()
        .map(|leaf| {
            let g = sim.grid.grid(leaf);
            let gg = g.read();
            let mut block = Vec::new();
            for f in 0..NF {
                block.extend_from_slice(gg.field(f));
            }
            block
        })
        .collect()
}

#[test]
fn restart_continues_identically() {
    let tmp = std::env::temp_dir().join(format!("octo_repro_restart_{}.slt", std::process::id()));

    // Uninterrupted reference run: 2 steps.
    let cluster_a = SimCluster::new(1, 2);
    let scenario_a = Scenario::build(ScenarioKind::RotatingStar, &cluster_a, 2, 0, 4);
    let omega = scenario_a.omega;
    let mut opts = SimOptions::default();
    opts.omega = omega;
    opts.gravity = true;
    let mut reference = Simulation::new(scenario_a.grid, opts);
    reference.step(&cluster_a);
    // Checkpoint after step 1.
    io::save(&tmp, &reference.grid, reference.time, reference.step_count)
        .expect("checkpoint written");
    reference.step(&cluster_a);
    let expected = snapshot(&reference);
    cluster_a.shutdown();

    // Restore on a different cluster layout and run the second step.
    let cluster_b = SimCluster::new(2, 1);
    let ckpt = io::read_checkpoint(&tmp).expect("checkpoint read");
    let grid = ckpt.restore(&cluster_b);
    let mut resumed = Simulation::new(grid, opts);
    resumed.time = ckpt.time;
    resumed.step_count = ckpt.step;
    resumed.step(&cluster_b);
    let actual = snapshot(&resumed);
    cluster_b.shutdown();
    std::fs::remove_file(&tmp).ok();

    assert_eq!(expected.len(), actual.len());
    for (e, a) in expected.iter().zip(&actual) {
        for (x, y) in e.iter().zip(a) {
            assert!(
                (x - y).abs() <= 1e-11 * (1.0 + x.abs()),
                "restart diverged: {x} vs {y}"
            );
        }
    }
}

#[test]
fn checkpoint_preserves_adaptive_topology() {
    let cluster = SimCluster::new(1, 1);
    let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, 1, 2, 4);
    let leaves_before = scenario.grid.leaves();
    assert!(
        leaves_before.iter().any(|l| l.level() > 1),
        "scenario should have refined leaves"
    );
    let ckpt = io::Checkpoint::capture(&scenario.grid, 0.0, 0);
    let restored = ckpt.restore(&cluster);
    assert_eq!(restored.leaves(), leaves_before);
    restored.with_tree(|t| t.check_invariants().expect("invariants"));
    cluster.shutdown();
}
