//! End-to-end gravity accuracy: the FMM solving a *scenario* grid (not a
//! synthetic cloud) must match direct summation, and the paper's octupole
//! (angular-momentum) extension must measurably improve it.

use kokkos_rs::ExecSpace;
use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::gravity::direct::{direct_field, PointMasses};
use octo_repro::octotiger::gravity::{GravityOptions, GravitySolver, LeafSources};
use octo_repro::octotiger::state::field;
use octo_repro::octotiger::{Scenario, ScenarioKind};
use octo_repro::simd::VectorMode;
use std::collections::HashMap;

/// Extract per-leaf point masses from a scenario grid.
fn sources_of(scenario: &Scenario) -> HashMap<octree::NodeId, LeafSources> {
    let n = scenario.grid.n();
    let mut out = HashMap::new();
    for leaf in scenario.grid.leaves() {
        let (corner, size) = leaf.cube();
        let h = size / n as f64;
        let h_phys = h * 2.0; // BOX_SIZE
        let vol = h_phys.powi(3);
        let handle = scenario.grid.grid(leaf);
        let g = handle.read();
        let mut points = PointMasses::default();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = (corner[0] + (i as f64 + 0.5) * h - 0.5) * 2.0;
                    let y = (corner[1] + (j as f64 + 0.5) * h - 0.5) * 2.0;
                    let z = (corner[2] + (k as f64 + 0.5) * h - 0.5) * 2.0;
                    points.push([x, y, z], g.get_interior(field::RHO, i, j, k) * vol);
                }
            }
        }
        out.insert(leaf, LeafSources { points });
    }
    out
}

#[test]
fn fmm_matches_direct_sum_on_the_dwd_scenario() {
    let cluster = SimCluster::new(1, 2);
    let scenario = Scenario::build(ScenarioKind::Dwd, &cluster, 2, 0, 4);
    let sources = sources_of(&scenario);
    let (fields, stats) = scenario
        .grid
        .with_tree(|t| GravitySolver::default().solve(t, &sources, &ExecSpace::Serial));
    assert!(stats.m2l_interactions > 0);

    // Reference: direct O(N²) sum over all cells.
    let mut all = PointMasses::default();
    for leaf in scenario.grid.leaves() {
        let p = &sources[&leaf].points;
        for c in 0..p.len() {
            all.push([p.xs[c], p.ys[c], p.zs[c]], p.ms[c]);
        }
    }
    let (_, g_ref) = direct_field(&all, &all, VectorMode::Sve512);

    let mut idx = 0;
    let mut num = 0.0;
    let mut den = 0.0;
    for leaf in scenario.grid.leaves() {
        let f = &fields[&leaf];
        for c in 0..f.gx.len() {
            let gr = g_ref[idx];
            num +=
                (f.gx[c] - gr[0]).powi(2) + (f.gy[c] - gr[1]).powi(2) + (f.gz[c] - gr[2]).powi(2);
            den += gr[0].powi(2) + gr[1].powi(2) + gr[2].powi(2);
            idx += 1;
        }
    }
    let err = (num / den).sqrt();
    assert!(err < 5e-3, "FMM error on DWD scenario: {err}");
    cluster.shutdown();
}

#[test]
fn binary_feels_mutual_attraction() {
    // Sanity of the coupled system: the secondary's cells must be pulled
    // toward the primary.
    let cluster = SimCluster::new(1, 2);
    let scenario = Scenario::build(ScenarioKind::Dwd, &cluster, 2, 0, 4);
    let sources = sources_of(&scenario);
    let (fields, _) = scenario.grid.with_tree(|t| {
        GravitySolver::new(GravityOptions::default()).solve(t, &sources, &ExecSpace::Serial)
    });
    // Mass-weighted acceleration of component-2 cells (x2 > 0 half).
    let mut ax = 0.0;
    let mut m_tot = 0.0;
    for leaf in scenario.grid.leaves() {
        let handle = scenario.grid.grid(leaf);
        let g = handle.read();
        let f = &fields[&leaf];
        let pts = &sources[&leaf].points;
        let n = scenario.grid.n();
        let mut c = 0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let frac2 = g.get_interior(field::FRAC2, i, j, k);
                    if frac2 > 0.0 {
                        ax += pts.ms[c] * f.gx[c];
                        m_tot += pts.ms[c];
                    }
                    c += 1;
                }
            }
        }
    }
    assert!(m_tot > 0.0);
    assert!(
        ax / m_tot < 0.0,
        "secondary (at +x) must accelerate toward -x: {}",
        ax / m_tot
    );
    cluster.shutdown();
}
