//! Hydro validation: the Sod shock tube against the exact Riemann
//! solution (computed here for the code's γ = 5/3).  This is the
//! canonical correctness test of Octo-Tiger's finite-volume scheme:
//! the reproduction's minmod + HLL + SSP-RK3 pipeline must place the
//! rarefaction, contact and shock where the exact solution puts them.

use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::state::{field, from_primitive, Primitive};
use octo_repro::octotiger::units::{BOX_SIZE, GAMMA};
use octo_repro::octotiger::{SimOptions, Simulation, NF};
use octree::{DistGrid, Tree};

/// Exact solution of the Riemann problem (ρ, v, p) at ξ = x/t, for ideal
/// gas with the code's γ.  Classic two-shock/rarefaction construction
/// (Toro ch. 4) specialized to the Sod initial data below.
struct ExactRiemann {
    p_star: f64,
    v_star: f64,
}

const RHO_L: f64 = 1.0;
const P_L: f64 = 1.0;
const RHO_R: f64 = 0.125;
const P_R: f64 = 0.1;

impl ExactRiemann {
    fn solve() -> ExactRiemann {
        let g = GAMMA;
        let cl = (g * P_L / RHO_L).sqrt();
        let cr = (g * P_R / RHO_R).sqrt();
        // f(p) for left rarefaction / right shock ansatz, Newton iteration.
        let f = |p: f64| {
            // Left wave (rarefaction if p < P_L):
            let fl = if p <= P_L {
                2.0 * cl / (g - 1.0) * ((p / P_L).powf((g - 1.0) / (2.0 * g)) - 1.0)
            } else {
                let a = 2.0 / ((g + 1.0) * RHO_L);
                let b = (g - 1.0) / (g + 1.0) * P_L;
                (p - P_L) * (a / (p + b)).sqrt()
            };
            // Right wave (shock if p > P_R):
            let fr = if p <= P_R {
                2.0 * cr / (g - 1.0) * ((p / P_R).powf((g - 1.0) / (2.0 * g)) - 1.0)
            } else {
                let a = 2.0 / ((g + 1.0) * RHO_R);
                let b = (g - 1.0) / (g + 1.0) * P_R;
                (p - P_R) * (a / (p + b)).sqrt()
            };
            fl + fr // (+ velocity difference, zero for Sod)
        };
        // Bisection on [P_R, P_L].
        let (mut lo, mut hi) = (1e-6, P_L);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let p_star = 0.5 * (lo + hi);
        // v* from the left rarefaction relation.
        let v_star = 2.0 * cl / (g - 1.0) * (1.0 - (p_star / P_L).powf((g - 1.0) / (2.0 * g)));
        ExactRiemann { p_star, v_star }
    }

    /// (ρ, v, p) at similarity coordinate ξ = x/t.
    fn sample(&self, xi: f64) -> (f64, f64, f64) {
        let g = GAMMA;
        let cl = (g * P_L / RHO_L).sqrt();
        let p_star = self.p_star;
        let v_star = self.v_star;
        // Left rarefaction spans [head, tail].
        let rho_star_l = RHO_L * (p_star / P_L).powf(1.0 / g);
        let cl_star = (g * p_star / rho_star_l).sqrt();
        let head = -cl;
        let tail = v_star - cl_star;
        // Right shock speed from Rankine-Hugoniot.
        let rho_star_r = RHO_R * ((p_star / P_R) + (g - 1.0) / (g + 1.0))
            / ((g - 1.0) / (g + 1.0) * (p_star / P_R) + 1.0);
        let shock = v_star * rho_star_r / (rho_star_r - RHO_R);
        if xi < head {
            (RHO_L, 0.0, P_L)
        } else if xi < tail {
            // Inside the rarefaction fan.
            let v = 2.0 / (g + 1.0) * (cl + xi);
            let c = cl - 0.5 * (g - 1.0) * v;
            let rho = RHO_L * (c / cl).powf(2.0 / (g - 1.0));
            let p = P_L * (c / cl).powf(2.0 * g / (g - 1.0));
            (rho, v, p)
        } else if xi < v_star {
            (rho_star_l, v_star, p_star)
        } else if xi < shock {
            (rho_star_r, v_star, p_star)
        } else {
            (RHO_R, 0.0, P_R)
        }
    }
}

fn fill_sod(grid: &DistGrid) {
    let n = grid.n();
    for leaf in grid.leaves() {
        let (corner, size) = leaf.cube();
        let h = size / n as f64;
        let handle = grid.grid(leaf);
        let mut g = handle.write();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = (corner[0] + (i as f64 + 0.5) * h - 0.5) * BOX_SIZE;
                    let (rho, p) = if x < 0.0 { (RHO_L, P_L) } else { (RHO_R, P_R) };
                    let (u, tau) = from_primitive(&Primitive {
                        rho,
                        vx: 0.0,
                        vy: 0.0,
                        vz: 0.0,
                        p,
                    });
                    g.set_interior(field::RHO, i, j, k, u.rho);
                    g.set_interior(field::SX, i, j, k, u.sx);
                    g.set_interior(field::SY, i, j, k, u.sy);
                    g.set_interior(field::SZ, i, j, k, u.sz);
                    g.set_interior(field::EGAS, i, j, k, u.egas);
                    g.set_interior(field::TAU, i, j, k, tau);
                    // Tag left-state material to track the contact.
                    g.set_interior(field::FRAC1, i, j, k, if x < 0.0 { rho } else { 0.0 });
                }
            }
        }
    }
}

#[test]
fn sod_profile_matches_exact_riemann_solution() {
    let cluster = SimCluster::new(2, 2);
    // 32 cells across x (level 2, N = 8).
    let grid = DistGrid::new(Tree::new_uniform(2), 8, 2, NF, &cluster);
    fill_sod(&grid);
    let mut opts = SimOptions::default();
    opts.gravity = false;
    opts.omega = 0.0;
    let mut sim = Simulation::new(grid, opts);
    let t_end = 0.35;
    let mut guard = 0;
    while sim.time < t_end {
        sim.step(&cluster);
        guard += 1;
        assert!(guard < 500, "too many steps to reach t_end");
    }

    // x-profile of density, averaged over y and z.
    let n = sim.grid.n();
    let cells_x = 4 * n; // 2^2 leaves per dim * N
    let mut rho_profile = vec![0.0f64; cells_x];
    let mut counts = vec![0usize; cells_x];
    for leaf in sim.grid.leaves() {
        let (corner, size) = leaf.cube();
        let h = size / n as f64;
        let handle = sim.grid.grid(leaf);
        let g = handle.read();
        for i in 0..n {
            let gx = ((corner[0] + (i as f64 + 0.5) * h) * cells_x as f64) as usize;
            for j in 0..n {
                for k in 0..n {
                    rho_profile[gx] += g.get_interior(field::RHO, i, j, k);
                    counts[gx] += 1;
                }
            }
        }
    }
    for (r, c) in rho_profile.iter_mut().zip(&counts) {
        *r /= *c as f64;
    }

    // Compare with the exact solution at the final time.
    let exact = ExactRiemann::solve();
    assert!(exact.p_star > P_R && exact.p_star < P_L);
    let t = sim.time;
    let mut l1 = 0.0;
    for (gx, rho) in rho_profile.iter().enumerate() {
        let x = ((gx as f64 + 0.5) / cells_x as f64 - 0.5) * BOX_SIZE;
        let (rho_exact, _, _) = exact.sample(x / t);
        l1 += (rho - rho_exact).abs();
    }
    l1 /= cells_x as f64;
    assert!(
        l1 < 0.06,
        "Sod L1 density error too large at 32 cells: {l1}"
    );

    // Qualitative wave structure: left state intact, right state intact,
    // and a genuine shock jump in between.
    assert!(
        (rho_profile[1] - RHO_L).abs() < 0.02,
        "left state disturbed"
    );
    assert!(
        (rho_profile[cells_x - 2] - RHO_R).abs() < 0.02,
        "right state disturbed"
    );
    let max_jump = rho_profile
        .windows(2)
        .map(|w| w[0] - w[1])
        .fold(0.0f64, f64::max);
    assert!(max_jump > 0.05, "no shock jump found: {max_jump}");
    cluster.shutdown();
}
