//! StepStats ghost-link telemetry contract (satellite of the `hpx-check`
//! PR): the pipelined stepper's counters must account for exactly the
//! link set the tree implies — `26 links × leaves × 3 RK stages` — and
//! every link must be drained (`resolved == total`), on uniform *and*
//! refined trees.  These counters are what the analyzers and the
//! pre-flight lint reason about, so they must not drift.

use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::{Scenario, ScenarioKind, SimOptions, Simulation, StepStats};

fn pipelined_sim(cluster: &SimCluster, level: u8) -> Simulation {
    let scenario = Scenario::build(ScenarioKind::RotatingStar, cluster, level, 0, 4);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = false;
    opts.pipeline = true;
    Simulation::new(scenario.grid, opts)
}

fn assert_link_accounting(stats: &StepStats, leaves: usize) {
    assert_eq!(
        stats.ghost_links_total,
        26 * leaves as u64 * 3,
        "total must be 26 links × {leaves} leaves × 3 stages"
    );
    assert_eq!(
        stats.ghost_links_resolved, stats.ghost_links_total,
        "a drained pipelined step must resolve every link"
    );
}

#[test]
fn uniform_tree_accounts_for_every_ghost_link() {
    let cluster = SimCluster::new(2, 2);
    let mut sim = pipelined_sim(&cluster, 2);
    let leaves = sim.grid.leaves().len();
    assert_eq!(leaves, 64);
    let stats = sim.step(&cluster);
    assert_link_accounting(&stats, leaves);
    cluster.shutdown();
}

#[test]
fn refined_tree_accounts_for_every_ghost_link() {
    let cluster = SimCluster::new(2, 2);
    let mut sim = pipelined_sim(&cluster, 2);
    // Refine where the star actually is so the tree becomes mixed-level.
    let outcome = sim.regrid(3, 1.0);
    assert!(outcome.refined > 0, "the star must trigger refinement");
    let leaves = sim.grid.leaves().len();
    assert!(leaves > 64, "refinement must add leaves");
    let stats = sim.step(&cluster);
    assert_link_accounting(&stats, leaves);

    // The counters agree with the link classification the analyzers use.
    assert_eq!(sim.grid.link_specs().len(), 26 * leaves);
    cluster.shutdown();
}

#[test]
fn barrier_and_pipelined_steppers_count_the_same_links() {
    let cluster_a = SimCluster::new(1, 2);
    let cluster_b = SimCluster::new(1, 2);
    let mut barrier = pipelined_sim(&cluster_a, 1);
    barrier.opts.pipeline = false;
    let mut pipelined = pipelined_sim(&cluster_b, 1);
    let sa = barrier.step(&cluster_a);
    let sb = pipelined.step(&cluster_b);
    assert_eq!(sa.ghost_links_total, sb.ghost_links_total);
    assert_link_accounting(&sb, pipelined.grid.leaves().len());
    cluster_a.shutdown();
    cluster_b.shutdown();
}
