//! The headline integration test: every reproduced table and figure must
//! exhibit the paper's qualitative claims (orderings, crossovers,
//! saturation points).  This is the machine-checked version of
//! EXPERIMENTS.md.

#[test]
fn every_figure_reproduces_its_papers_claims() {
    let reports = bench::all_reports();
    assert_eq!(
        reports.len(),
        11,
        "9 tables/figures + fault companion + scratch pressure"
    );
    let mut failures = Vec::new();
    for r in &reports {
        for c in &r.checks {
            if !c.pass {
                failures.push(format!("{}: {}", r.id, c.claim));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "paper claims not reproduced:\n{}",
        failures.join("\n")
    );
}

#[test]
fn figure_reports_have_data_and_distinct_series() {
    for r in bench::all_reports() {
        assert!(!r.points.is_empty(), "{} has no data", r.id);
        assert!(!r.checks.is_empty(), "{} has no checks", r.id);
        let labels = r.series_labels();
        assert!(!labels.is_empty());
        // Markdown renders without panicking and mentions the figure id.
        assert!(r.to_markdown().contains(&r.id));
        // JSON round-trips.
        assert!(r.to_json().contains(&r.id));
    }
}

#[test]
fn figure6_series_cover_the_papers_node_ranges() {
    let r = bench::figure6();
    let level5_max = r
        .points
        .iter()
        .filter(|p| p.series == "level 5")
        .map(|p| p.x as usize)
        .max()
        .unwrap();
    let level7_max = r
        .points
        .iter()
        .filter(|p| p.series == "level 7")
        .map(|p| p.x as usize)
        .max()
        .unwrap();
    assert_eq!(level5_max, 256, "paper runs level 5 to 256 nodes");
    assert_eq!(level7_max, 1024, "paper runs level 7 to 1024 nodes");
}

#[test]
fn table2_covers_the_papers_grid() {
    let r = bench::table2();
    // The paper's Table II has entries for levels 5, 6 and 7.
    for series in ["level 5", "level 6", "level 7"] {
        assert!(
            r.points.iter().any(|p| p.series == series),
            "missing {series}"
        );
    }
    // 1024-node entries exist (the paper's largest runs).
    assert!(r.points.iter().any(|p| p.x as usize == 1024));
}
