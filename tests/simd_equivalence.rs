//! The width-equivalence harness for the Figure 7 SIMD port: every kernel
//! ported onto `Simd<f64, W>` must produce **bit-identical** results at
//! `W = 1` (scalar) and `W = 8` (one 512-bit SVE register of f64).
//!
//! The kernels earn this by folding their lanes into scalar accumulators
//! in lane order and by masking remainder lanes out of every fold (see
//! DESIGN.md), so the property holds for *any* input — which is what the
//! randomized suites below check — and composes all the way up to full
//! multi-step simulations, checked ledger-against-ledger at the end.

use octo_repro::amr::{NodeId, SubGrid, Tree};
use octo_repro::hpx::SimCluster;
use octo_repro::kokkos::ExecSpace;
use octo_repro::octotiger::gravity::direct::{p2p_at_w, PointMasses};
use octo_repro::octotiger::gravity::m2l_simd::m2l_accumulate_w;
use octo_repro::octotiger::gravity::{
    GravityOptions, GravitySolver, LeafSources, Multipole, MultipoleSoA,
};
use octo_repro::octotiger::hydro::{self, kernels::KernelScratch, HydroOptions, SourceInput};
use octo_repro::octotiger::state::{field, from_primitive, Primitive};
use octo_repro::octotiger::{Scenario, ScenarioKind, SimOptions, Simulation, NF};
use octo_repro::simd::VectorMode;
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Kernel-level properties: randomized inputs, bit-equality across widths.
// ---------------------------------------------------------------------

proptest! {
    /// P2P: random clouds, deliberately spanning every remainder length
    /// (1..40 covers all `len % 8` classes several times over).
    #[test]
    fn p2p_bit_identical_across_widths(
        pts in prop::collection::vec(((-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0), 0.01f64..5.0), 1..40),
        at in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
    ) {
        let mut cloud = PointMasses::default();
        for ((x, y, z), m) in &pts {
            cloud.push([*x, *y, *z], *m);
        }
        let (p1, g1) = p2p_at_w::<1>(&cloud, at.0, at.1, at.2);
        let (p8, g8) = p2p_at_w::<8>(&cloud, at.0, at.1, at.2);
        prop_assert_eq!(p1.to_bits(), p8.to_bits(), "phi differs: {} vs {}", p1, p8);
        for ax in 0..3 {
            prop_assert_eq!(g1[ax].to_bits(), g8[ax].to_bits(),
                            "g[{}] differs: {} vs {}", ax, g1[ax], g8[ax]);
        }
    }

    /// M2L: random multipole source lists (with massless slots the kernel
    /// must skip) against the full lane-width sweep.
    #[test]
    fn m2l_bit_identical_across_widths(
        clouds in prop::collection::vec(
            prop::collection::vec(((-0.4f64..0.4, -0.4f64..0.4, -0.4f64..0.4), 0.0f64..3.0), 1..4),
            1..30),
        use_oct in any::<bool>(),
    ) {
        let mps: Vec<Multipole> = clouds
            .iter()
            .map(|pts| {
                let points: Vec<([f64; 3], f64)> =
                    pts.iter().map(|((x, y, z), m)| ([*x, *y, *z], *m)).collect();
                Multipole::from_points(&points)
            })
            .collect();
        let mut soa = MultipoleSoA::default();
        soa.fill(&mps);
        let sources: Vec<usize> = (0..mps.len()).collect();
        let center = [3.0, -2.0, 1.5];
        let mut l1 = octo_repro::octotiger::gravity::LocalExpansion::zero();
        let mut l8 = octo_repro::octotiger::gravity::LocalExpansion::zero();
        m2l_accumulate_w::<1>(&soa, &sources, center, use_oct, &mut l1);
        m2l_accumulate_w::<8>(&soa, &sources, center, use_oct, &mut l8);
        prop_assert_eq!(l1.l0.to_bits(), l8.l0.to_bits());
        for a in 0..3 {
            prop_assert_eq!(l1.l1[a].to_bits(), l8.l1[a].to_bits());
            for b in 0..3 {
                prop_assert_eq!(l1.l2[a][b].to_bits(), l8.l2[a][b].to_bits());
                for c in 0..3 {
                    prop_assert_eq!(l1.l3[a][b][c].to_bits(), l8.l3[a][b][c].to_bits());
                }
            }
        }
    }

    /// Hydro RHS: randomized smooth states on grids whose ghosted extent is
    /// *not* a multiple of 8 (n ∈ 3..6, ghost 2 → ext ∈ 7..10), so every
    /// row exercises the masked tail path.
    #[test]
    fn hydro_rhs_bit_identical_across_widths(
        n in 3usize..6,
        seed in any::<u64>(),
        omega in 0.0f64..0.5,
    ) {
        let u = random_hydro_state(n, seed);
        let src = SourceInput {
            gravity: None,
            omega,
            origin: [-0.2, 0.1, -0.3],
            h: 0.1,
            boundary_faces: [true, false, false, true, false, false],
        };
        let mut scratch = KernelScratch::ephemeral(n, 2);
        let mut rhs_scalar = hydro::rhs_like(&u);
        let mut rhs_sve = hydro::rhs_like(&u);
        let info1 = hydro::compute_rhs(&u, &mut rhs_scalar, &src,
            &HydroOptions { vector_mode: VectorMode::Scalar, cfl: 0.4 }, &mut scratch);
        let info8 = hydro::compute_rhs(&u, &mut rhs_sve, &src,
            &HydroOptions { vector_mode: VectorMode::Sve512, cfl: 0.4 }, &mut scratch);
        prop_assert_eq!(info1.max_signal_speed.to_bits(), info8.max_signal_speed.to_bits(),
                        "CFL speed differs across widths");
        prop_assert_eq!(info1.boundary_mass_outflow_rate.to_bits(),
                        info8.boundary_mass_outflow_rate.to_bits(),
                        "outflow rate differs across widths");
        for f in 0..NF {
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let a = rhs_scalar.get_interior(f, i, j, k);
                        let b = rhs_sve.get_interior(f, i, j, k);
                        prop_assert_eq!(a.to_bits(), b.to_bits(),
                            "rhs f{} ({},{},{}): {} vs {}", f, i, j, k, a, b);
                    }
                }
            }
        }
    }
}

/// A positive, smooth-but-random hydro state: random Fourier-ish bumps on
/// top of a uniform background, derived deterministically from `seed`.
fn random_hydro_state(n: usize, seed: u64) -> SubGrid {
    let mut s = seed | 1;
    let mut next = move || {
        // SplitMix64, mapped to [0, 1).
        s = s.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut g = SubGrid::new(n, 2, NF);
    let ext = g.ext();
    for i in 0..ext {
        for j in 0..ext {
            for k in 0..ext {
                let p = Primitive {
                    rho: 0.5 + 1.5 * next(),
                    vx: 0.4 * (next() - 0.5),
                    vy: 0.4 * (next() - 0.5),
                    vz: 0.4 * (next() - 0.5),
                    p: 0.2 + 0.8 * next(),
                };
                let (u, tau) = from_primitive(&p);
                g.set(field::RHO, i, j, k, u.rho);
                g.set(field::SX, i, j, k, u.sx);
                g.set(field::SY, i, j, k, u.sy);
                g.set(field::SZ, i, j, k, u.sz);
                g.set(field::EGAS, i, j, k, u.egas);
                g.set(field::TAU, i, j, k, tau);
                g.set(field::FRAC1, i, j, k, 0.7 * u.rho);
                g.set(field::FRAC2, i, j, k, 0.3 * u.rho);
            }
        }
    }
    g
}

// ---------------------------------------------------------------------
// Solver-level: whole FMM solves on refined trees, bit-equal per cell.
// ---------------------------------------------------------------------

/// Deterministic per-leaf point sources (pseudo-random masses, cell-center
/// positions) for a given tree.
fn tree_sources(tree: &Tree, n: usize) -> HashMap<NodeId, LeafSources> {
    let mut out = HashMap::new();
    for (li, leaf) in tree.leaves().iter().enumerate() {
        let (corner, size) = leaf.cube();
        let h = size / n as f64;
        let mut points = PointMasses::default();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = corner[0] + (i as f64 + 0.5) * h - 0.5;
                    let y = corner[1] + (j as f64 + 0.5) * h - 0.5;
                    let z = corner[2] + (k as f64 + 0.5) * h - 0.5;
                    // A cheap, deterministic, strictly positive mass
                    // pattern with an occasional exact zero (massless
                    // cells must not perturb the masked M2L kernel).
                    let t = li * n * n * n + (i * n + j) * n + k;
                    let m = if t % 11 == 7 {
                        0.0
                    } else {
                        0.1 + 0.05 * ((t * 2654435761) % 97) as f64
                    };
                    points.push([x, y, z], m);
                }
            }
        }
        out.insert(*leaf, LeafSources { points });
    }
    out
}

#[test]
fn gravity_solve_bit_identical_on_refined_trees() {
    // Both a uniform tree and an adaptively refined one (whose ragged
    // interaction lists produce every chunk-remainder length).
    let mut adaptive = Tree::new_uniform(2);
    let target = adaptive.leaves()[5];
    adaptive.refine_balanced(target);
    for tree in [Tree::new_uniform(2), adaptive] {
        let sources = tree_sources(&tree, 3);
        let solve = |mode: VectorMode| {
            let solver = GravitySolver::new(GravityOptions {
                vector_mode: mode,
                ..GravityOptions::default()
            });
            solver.solve(&tree, &sources, &ExecSpace::Serial)
        };
        let (fa, sa) = solve(VectorMode::Scalar);
        let (fb, sb) = solve(VectorMode::Sve512);
        assert_eq!(sa.m2l_interactions, sb.m2l_interactions);
        assert_eq!(sa.p2p_pairs, sb.p2p_pairs);
        assert!(sa.m2l_interactions > 0, "tree too shallow to exercise M2L");
        for leaf in tree.leaves() {
            let (a, b) = (&fa[&leaf], &fb[&leaf]);
            for c in 0..a.phi.len() {
                assert_eq!(
                    a.phi[c].to_bits(),
                    b.phi[c].to_bits(),
                    "phi differs at {leaf}"
                );
                assert_eq!(a.gx[c].to_bits(), b.gx[c].to_bits(), "gx differs at {leaf}");
                assert_eq!(a.gy[c].to_bits(), b.gy[c].to_bits(), "gy differs at {leaf}");
                assert_eq!(a.gz[c].to_bits(), b.gz[c].to_bits(), "gz differs at {leaf}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Simulation-level: ten full steps, ledgers bit-identical across widths,
// in both stepper modes.
// ---------------------------------------------------------------------

fn ten_step_run(mode: VectorMode, pipeline: bool) -> (Vec<u64>, Vec<Vec<f64>>) {
    let cluster = SimCluster::new(1, 2);
    let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 4);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    opts.vector_mode = mode;
    opts.pipeline = pipeline;
    let mut sim = Simulation::new(scenario.grid, opts);
    let (before, after, stats) = sim.run(&cluster, 10);
    // Everything the run "reports": the two ledgers, every step's Δt and
    // the tracked outflow — bit-packed so comparison is exact.
    let mut ledger = vec![
        before.mass.to_bits(),
        before.gas_energy.to_bits(),
        before.angular_momentum_z.to_bits(),
        after.mass.to_bits(),
        after.gas_energy.to_bits(),
        after.angular_momentum_z.to_bits(),
        sim.mass_outflow.to_bits(),
    ];
    for ax in 0..3 {
        ledger.push(before.momentum[ax].to_bits());
        ledger.push(after.momentum[ax].to_bits());
    }
    for s in &stats {
        ledger.push(s.dt.to_bits());
    }
    let mut state = Vec::new();
    for leaf in sim.grid.leaves() {
        let g = sim.grid.grid(leaf);
        let gg = g.read();
        let mut block = Vec::new();
        for f in 0..NF {
            block.extend_from_slice(gg.field(f));
        }
        state.push(block);
    }
    cluster.shutdown();
    (ledger, state)
}

fn assert_states_bit_equal(a: &[Vec<f64>], b: &[Vec<f64>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: leaf count differs");
    for (la, lb) in a.iter().zip(b) {
        for (x, y) in la.iter().zip(lb) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: state diverged: {x} vs {y}"
            );
        }
    }
}

#[test]
fn ten_step_ledgers_bit_identical_barrier() {
    let (la, sa) = ten_step_run(VectorMode::Scalar, false);
    let (lb, sb) = ten_step_run(VectorMode::Sve512, false);
    assert_eq!(la, lb, "barrier: ledgers/Δt diverged between widths");
    assert_states_bit_equal(&sa, &sb, "barrier scalar vs SVE");
}

#[test]
fn ten_step_ledgers_bit_identical_pipelined() {
    let (la, sa) = ten_step_run(VectorMode::Scalar, true);
    let (lb, sb) = ten_step_run(VectorMode::Sve512, true);
    assert_eq!(la, lb, "pipelined: ledgers/Δt diverged between widths");
    assert_states_bit_equal(&sa, &sb, "pipelined scalar vs SVE");
}
