//! Cross-crate property-based tests (proptest): randomized exercises of
//! the core invariants — SIMD ≡ scalar semantics, octree balance under
//! random refinement, Morton round-trips, EOS inversions, FMM shift
//! identities, PJM parsing totality and DES sanity.

use octo_repro::simd::{Simd, VectorMode};
use proptest::prelude::*;

proptest! {
    #[test]
    fn simd_ops_match_scalar_loops(values in prop::collection::vec(-1.0e3f64..1.0e3, 8),
                                   scale in -10.0f64..10.0) {
        let mut arr = [0.0; 8];
        arr.copy_from_slice(&values);
        let v = Simd::<f64, 8>::from_array(arr);
        let scaled = v * scale;
        let summed = v + Simd::splat(scale);
        for l in 0..8 {
            prop_assert_eq!(scaled[l], arr[l] * scale);
            prop_assert_eq!(summed[l], arr[l] + scale);
        }
        prop_assert!((v.reduce_sum() - arr.iter().sum::<f64>()).abs() < 1e-9);
        let mn = v.reduce_min();
        prop_assert!(arr.iter().all(|&x| mn <= x));
    }

    #[test]
    fn simd_select_is_lanewise_branch(a in prop::collection::vec(-5.0f64..5.0, 4),
                                      b in prop::collection::vec(-5.0f64..5.0, 4)) {
        let mut aa = [0.0; 4];
        aa.copy_from_slice(&a);
        let mut bb = [0.0; 4];
        bb.copy_from_slice(&b);
        let va = Simd::<f64, 4>::from_array(aa);
        let vb = Simd::<f64, 4>::from_array(bb);
        let picked = Simd::select(va.simd_lt(vb), va, vb);
        for l in 0..4 {
            prop_assert_eq!(picked[l], if aa[l] < bb[l] { aa[l] } else { bb[l] });
        }
    }

    #[test]
    fn morton_coords_roundtrip(level in 0u8..8, seed in 0u32..1_000_000) {
        let extent = 1u32 << level;
        let x = seed % extent;
        let y = (seed / 7) % extent;
        let z = (seed / 49) % extent;
        let id = octree::NodeId::from_coords(level, [x, y, z]);
        prop_assert_eq!(id.coords(), [x, y, z]);
        prop_assert_eq!(id.level(), level);
    }

    #[test]
    fn random_refinement_keeps_tree_invariants(choices in prop::collection::vec(0usize..64, 1..12)) {
        let mut tree = octree::Tree::new_uniform(1);
        for c in choices {
            let leaves = tree.leaves();
            let target = leaves[c % leaves.len()];
            if target.level() < 5 {
                tree.refine_balanced(target);
            }
        }
        prop_assert!(tree.check_invariants().is_ok());
        // Leaves partition the domain: sum of leaf volumes is 1.
        let vol: f64 = tree
            .leaves()
            .iter()
            .map(|l| {
                let (_, size) = l.cube();
                size * size * size
            })
            .sum();
        prop_assert!((vol - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eos_enthalpy_inversion(rho in 1e-6f64..1e3, k in 0.01f64..10.0) {
        use octo_repro::octotiger::eos::{Eos, Polytrope};
        let eos = Polytrope::new(k, 1.5);
        let h = eos.enthalpy(rho);
        let back = eos.rho_from_enthalpy(h);
        prop_assert!((back - rho).abs() / rho < 1e-9);
    }

    #[test]
    fn local_expansion_shift_composes(d1 in -0.05f64..0.05, d2 in -0.05f64..0.05) {
        use octo_repro::octotiger::gravity::Multipole;
        let cloud = [([0.0, 0.0, 0.0], 1.0), ([0.2, -0.1, 0.15], 0.5)];
        let mp = Multipole::from_points(&cloud);
        let local = mp.m2l([3.0, 1.5, -2.0], true);
        // Shifting by d1 then d2 equals shifting by d1+d2 (exact for
        // polynomials).
        let a = local.shifted([d1, 0.0, d2]).shifted([d2, d1, 0.0]);
        let b = local.shifted([d1 + d2, d1, d2]);
        let (pa, ga) = a.evaluate([0.01, 0.02, 0.03]);
        let (pb, gb) = b.evaluate([0.01, 0.02, 0.03]);
        prop_assert!((pa - pb).abs() < 1e-10);
        for ax in 0..3 {
            prop_assert!((ga[ax] - gb[ax]).abs() < 1e-10);
        }
    }

    #[test]
    fn pjm_parser_never_panics(s in "\\PC{0,200}") {
        // Totality: arbitrary input produces Ok or Err, never a panic.
        let _ = octo_repro::hpx::JobSpec::parse(&s);
    }

    #[test]
    fn pjm_roundtrip(nodes in 1usize..10_000, procs in 1usize..40_000,
                     boost in any::<bool>(), elapse in 0u64..360_000) {
        let spec = octo_repro::hpx::JobSpec {
            nodes,
            procs,
            resource_group: "small".to_owned(),
            elapse_limit_s: elapse,
            boost_mode: boost,
        };
        let back = octo_repro::hpx::JobSpec::parse(&spec.to_script()).unwrap();
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn des_step_time_is_positive_and_monotone_in_work(nodes in 1usize..64) {
        use octo_repro::cluster::*;
        let m = Machine::get(MachineId::Fugaku);
        let costs = KernelCosts::default();
        let opts = RunOptions::default();
        let small = simulate_step(&m, nodes, &Workload::rotating_star(5), &opts, &costs);
        let big = simulate_step(&m, nodes, &Workload::rotating_star(6), &opts, &costs);
        prop_assert!(small.step_time_s > 0.0);
        prop_assert!(big.step_time_s > small.step_time_s);
    }

    #[test]
    fn p2p_widths_agree_on_random_clouds(
        pts in prop::collection::vec(((-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0), 0.01f64..5.0), 1..40)
    ) {
        use octo_repro::octotiger::gravity::direct::{p2p_at, PointMasses};
        let mut cloud = PointMasses::default();
        for ((x, y, z), m) in &pts {
            cloud.push([*x, *y, *z], *m);
        }
        let at = [3.0, 3.0, 3.0];
        let (p1, g1) = p2p_at(&cloud, at, VectorMode::Scalar);
        let (p8, g8) = p2p_at(&cloud, at, VectorMode::Sve512);
        // Bit-equal, not close: both widths accumulate into the same
        // fixed stripe partition (element i → stripe i % 8) and fold the
        // stripes in one fixed order, so the width is invisible.
        prop_assert_eq!(p1.to_bits(), p8.to_bits());
        for ax in 0..3 {
            prop_assert_eq!(g1[ax].to_bits(), g8[ax].to_bits());
        }
    }

    // ---- Future-combinator laws (the pipelined stepper's substrate). ----

    #[test]
    fn future_then_applies_continuations_in_chain_order(
        start in 0i64..1000,
        ops in prop::collection::vec(-50i64..50, 1..20),
    ) {
        // x ↦ 3x + d is non-commutative across steps, so any reordering of
        // the chain would change the result.
        let rt = octo_repro::hpx::Runtime::new(2);
        let mut f = octo_repro::hpx::make_ready_future(start);
        let mut expect = start;
        for &d in &ops {
            f = f.then(&rt, move |x: i64| x.wrapping_mul(3).wrapping_add(d));
            expect = expect.wrapping_mul(3).wrapping_add(d);
        }
        prop_assert_eq!(f.get(), expect);
        rt.shutdown();
    }

    #[test]
    fn when_all_is_complete_and_ordered(values in prop::collection::vec(0u64..1000, 1..24)) {
        let rt = octo_repro::hpx::Runtime::new(3);
        let futures: Vec<_> = values
            .iter()
            .map(|&v| rt.async_call(move || v * 2))
            .collect();
        let all = octo_repro::hpx::when_all(&rt, futures).get();
        prop_assert_eq!(all.len(), values.len());
        for (i, v) in all.iter().enumerate() {
            prop_assert_eq!(*v, values[i] * 2);
        }
        rt.shutdown();
    }

    #[test]
    fn when_any_yields_the_first_completed_future(n in 1usize..16, pick in 0usize..16) {
        // Only `winner` is fulfilled before the wait; when_any must report
        // exactly it, no matter how many pending competitors surround it.
        let winner = pick % n;
        let mut promises = Vec::new();
        let mut futures = Vec::new();
        for _ in 0..n {
            let (p, f) = octo_repro::hpx::Promise::<usize>::new_pair();
            promises.push(Some(p));
            futures.push(f);
        }
        let any = octo_repro::hpx::when_any(futures);
        promises[winner].take().unwrap().set(winner);
        let (idx, val) = any.get();
        prop_assert_eq!(idx, winner);
        prop_assert_eq!(val, winner);
        for p in promises.into_iter().flatten() {
            p.set(usize::MAX); // losers complete harmlessly
        }
    }

    #[test]
    fn random_future_dags_never_deadlock_on_one_worker(
        edges in prop::collection::vec((0usize..64, 0usize..64), 1..40),
    ) {
        // Random DAGs of when_all_of gates + continuations on a 1-worker
        // runtime: completion relies entirely on the helping wait.  A cycle
        // or a lost wakeup would trip the debug-build deadlock watchdog.
        let rt = octo_repro::hpx::Runtime::new(1);
        let mut nodes: Vec<octo_repro::hpx::Future<u64>> =
            vec![octo_repro::hpx::make_ready_future(1)];
        for (k, &(a, b)) in edges.iter().enumerate() {
            // Depend only on earlier nodes: a DAG by construction.
            let i = a % nodes.len();
            let j = b % nodes.len();
            let parts = [nodes[i].ticket(), nodes[j].ticket()];
            let gate = octo_repro::hpx::when_all_of(&rt, &parts);
            let (fi, fj) = (nodes[i].clone(), nodes[j].clone());
            let f = gate.then(&rt, move |()| {
                fi.get().wrapping_add(fj.get()).wrapping_add(k as u64)
            });
            nodes.push(f);
        }
        // Force every node; a deadlock would hang (release) or panic the
        // watchdog (debug) rather than fail an assertion.
        for f in &nodes {
            f.get();
        }
        prop_assert_eq!(nodes.len(), edges.len() + 1);
        rt.shutdown();
    }
}
