//! Cross-crate property-based tests (proptest): randomized exercises of
//! the core invariants — SIMD ≡ scalar semantics, octree balance under
//! random refinement, Morton round-trips, EOS inversions, FMM shift
//! identities, PJM parsing totality and DES sanity.

use octo_repro::simd::{Simd, VectorMode};
use proptest::prelude::*;

proptest! {
    #[test]
    fn simd_ops_match_scalar_loops(values in prop::collection::vec(-1.0e3f64..1.0e3, 8),
                                   scale in -10.0f64..10.0) {
        let mut arr = [0.0; 8];
        arr.copy_from_slice(&values);
        let v = Simd::<f64, 8>::from_array(arr);
        let scaled = v * scale;
        let summed = v + Simd::splat(scale);
        for l in 0..8 {
            prop_assert_eq!(scaled[l], arr[l] * scale);
            prop_assert_eq!(summed[l], arr[l] + scale);
        }
        prop_assert!((v.reduce_sum() - arr.iter().sum::<f64>()).abs() < 1e-9);
        let mn = v.reduce_min();
        prop_assert!(arr.iter().all(|&x| mn <= x));
    }

    #[test]
    fn simd_select_is_lanewise_branch(a in prop::collection::vec(-5.0f64..5.0, 4),
                                      b in prop::collection::vec(-5.0f64..5.0, 4)) {
        let mut aa = [0.0; 4];
        aa.copy_from_slice(&a);
        let mut bb = [0.0; 4];
        bb.copy_from_slice(&b);
        let va = Simd::<f64, 4>::from_array(aa);
        let vb = Simd::<f64, 4>::from_array(bb);
        let picked = Simd::select(va.simd_lt(vb), va, vb);
        for l in 0..4 {
            prop_assert_eq!(picked[l], if aa[l] < bb[l] { aa[l] } else { bb[l] });
        }
    }

    #[test]
    fn morton_coords_roundtrip(level in 0u8..8, seed in 0u32..1_000_000) {
        let extent = 1u32 << level;
        let x = seed % extent;
        let y = (seed / 7) % extent;
        let z = (seed / 49) % extent;
        let id = octree::NodeId::from_coords(level, [x, y, z]);
        prop_assert_eq!(id.coords(), [x, y, z]);
        prop_assert_eq!(id.level(), level);
    }

    #[test]
    fn random_refinement_keeps_tree_invariants(choices in prop::collection::vec(0usize..64, 1..12)) {
        let mut tree = octree::Tree::new_uniform(1);
        for c in choices {
            let leaves = tree.leaves();
            let target = leaves[c % leaves.len()];
            if target.level() < 5 {
                tree.refine_balanced(target);
            }
        }
        prop_assert!(tree.check_invariants().is_ok());
        // Leaves partition the domain: sum of leaf volumes is 1.
        let vol: f64 = tree
            .leaves()
            .iter()
            .map(|l| {
                let (_, size) = l.cube();
                size * size * size
            })
            .sum();
        prop_assert!((vol - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eos_enthalpy_inversion(rho in 1e-6f64..1e3, k in 0.01f64..10.0) {
        use octo_repro::octotiger::eos::{Eos, Polytrope};
        let eos = Polytrope::new(k, 1.5);
        let h = eos.enthalpy(rho);
        let back = eos.rho_from_enthalpy(h);
        prop_assert!((back - rho).abs() / rho < 1e-9);
    }

    #[test]
    fn local_expansion_shift_composes(d1 in -0.05f64..0.05, d2 in -0.05f64..0.05) {
        use octo_repro::octotiger::gravity::Multipole;
        let cloud = [([0.0, 0.0, 0.0], 1.0), ([0.2, -0.1, 0.15], 0.5)];
        let mp = Multipole::from_points(&cloud);
        let local = mp.m2l([3.0, 1.5, -2.0], true);
        // Shifting by d1 then d2 equals shifting by d1+d2 (exact for
        // polynomials).
        let a = local.shifted([d1, 0.0, d2]).shifted([d2, d1, 0.0]);
        let b = local.shifted([d1 + d2, d1, d2]);
        let (pa, ga) = a.evaluate([0.01, 0.02, 0.03]);
        let (pb, gb) = b.evaluate([0.01, 0.02, 0.03]);
        prop_assert!((pa - pb).abs() < 1e-10);
        for ax in 0..3 {
            prop_assert!((ga[ax] - gb[ax]).abs() < 1e-10);
        }
    }

    #[test]
    fn pjm_parser_never_panics(s in "\\PC{0,200}") {
        // Totality: arbitrary input produces Ok or Err, never a panic.
        let _ = octo_repro::hpx::JobSpec::parse(&s);
    }

    #[test]
    fn pjm_roundtrip(nodes in 1usize..10_000, procs in 1usize..40_000,
                     boost in any::<bool>(), elapse in 0u64..360_000) {
        let spec = octo_repro::hpx::JobSpec {
            nodes,
            procs,
            resource_group: "small".to_owned(),
            elapse_limit_s: elapse,
            boost_mode: boost,
        };
        let back = octo_repro::hpx::JobSpec::parse(&spec.to_script()).unwrap();
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn des_step_time_is_positive_and_monotone_in_work(nodes in 1usize..64) {
        use octo_repro::cluster::*;
        let m = Machine::get(MachineId::Fugaku);
        let costs = KernelCosts::default();
        let opts = RunOptions::default();
        let small = simulate_step(&m, nodes, &Workload::rotating_star(5), &opts, &costs);
        let big = simulate_step(&m, nodes, &Workload::rotating_star(6), &opts, &costs);
        prop_assert!(small.step_time_s > 0.0);
        prop_assert!(big.step_time_s > small.step_time_s);
    }

    #[test]
    fn p2p_widths_agree_on_random_clouds(
        pts in prop::collection::vec(((-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0), 0.01f64..5.0), 1..40)
    ) {
        use octo_repro::octotiger::gravity::direct::{p2p_at, PointMasses};
        let mut cloud = PointMasses::default();
        for ((x, y, z), m) in &pts {
            cloud.push([*x, *y, *z], *m);
        }
        let at = [3.0, 3.0, 3.0];
        let (p1, g1) = p2p_at(&cloud, at, VectorMode::Scalar);
        let (p8, g8) = p2p_at(&cloud, at, VectorMode::Sve512);
        prop_assert!((p1 - p8).abs() <= 1e-11 * (1.0 + p1.abs()));
        for ax in 0..3 {
            prop_assert!((g1[ax] - g8[ax]).abs() <= 1e-11 * (1.0 + g1[ax].abs()));
        }
    }
}
