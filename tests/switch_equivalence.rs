//! The paper's performance switches must be physics-neutral: SVE vs
//! scalar (Figure 7), communication optimization on/off (Figure 8),
//! multipole task splitting 1 vs 16 (Figure 9), and the distribution over
//! localities itself all change *timings*, never *results*.

use octo_repro::amr::GhostConfig;
use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::{Scenario, ScenarioKind, SimOptions, Simulation, NF};
use octo_repro::simd::VectorMode;

/// Run `steps` steps of the rotating star with the given configuration and
/// return the final state of every leaf, in SFC order.
fn run(
    localities: usize,
    workers: usize,
    steps: usize,
    configure: impl Fn(&mut SimOptions),
) -> Vec<Vec<f64>> {
    let cluster = SimCluster::new(localities, workers);
    let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 4);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    configure(&mut opts);
    let mut sim = Simulation::new(scenario.grid, opts);
    for _ in 0..steps {
        sim.step(&cluster);
    }
    let mut out = Vec::new();
    for leaf in sim.grid.leaves() {
        let g = sim.grid.grid(leaf);
        let gg = g.read();
        let mut block = Vec::new();
        for f in 0..NF {
            block.extend_from_slice(gg.field(f));
        }
        out.push(block);
    }
    cluster.shutdown();
    out
}

fn assert_states_close(a: &[Vec<f64>], b: &[Vec<f64>], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: leaf count differs");
    for (la, lb) in a.iter().zip(b) {
        for (x, y) in la.iter().zip(lb) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs()),
                "{what}: state diverged: {x} vs {y}"
            );
        }
    }
}

#[test]
fn sve_and_scalar_give_identical_physics() {
    // Bit-identical, not merely close: every ported kernel reduces through
    // the same stripe-blocked partial sums at every width (see DESIGN.md),
    // so the width is invisible.
    let sve = run(1, 2, 2, |o| o.vector_mode = VectorMode::Sve512);
    let scalar = run(1, 2, 2, |o| o.vector_mode = VectorMode::Scalar);
    assert_states_close(&sve, &scalar, 0.0, "SVE vs scalar");
}

#[test]
fn comm_optimization_is_physics_neutral() {
    let on = run(2, 1, 2, |o| {
        o.ghost = GhostConfig {
            direct_local_access: true,
            notify_with_channels: false,
        }
    });
    let off = run(2, 1, 2, |o| {
        o.ghost = GhostConfig {
            direct_local_access: false,
            notify_with_channels: false,
        }
    });
    assert_states_close(&on, &off, 0.0, "comm opt on vs off");
}

#[test]
fn channel_notification_variant_is_physics_neutral() {
    let plain = run(2, 1, 1, |_| {});
    let channels = run(2, 1, 1, |o| {
        o.ghost = GhostConfig {
            direct_local_access: true,
            notify_with_channels: true,
        }
    });
    assert_states_close(&plain, &channels, 0.0, "channel notify");
}

#[test]
fn multipole_task_splitting_is_physics_neutral() {
    let one = run(1, 4, 2, |o| o.gravity_opts.tasks_per_multipole_kernel = 1);
    let sixteen = run(1, 4, 2, |o| o.gravity_opts.tasks_per_multipole_kernel = 16);
    assert_states_close(&one, &sixteen, 1e-11, "1 vs 16 multipole tasks");
}

#[test]
fn pipeline_matches_barrier() {
    // The futurized per-leaf dependency pipeline re-orders *when* every
    // pack/unpack/kernel runs, but the dependency gates must make the
    // result bit-compatible with the barrier stepper: same fields after N
    // steps, same conservation totals.

    let steps = 3;
    let run_with = |pipeline: bool| {
        let cluster = SimCluster::new(2, 2);
        let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 4);
        let mut opts = SimOptions::default();
        opts.omega = scenario.omega;
        opts.gravity = true;
        opts.pipeline = pipeline;
        let mut sim = Simulation::new(scenario.grid, opts);
        let (before, after, stats) = sim.run(&cluster, steps);
        let mut state = Vec::new();
        for leaf in sim.grid.leaves() {
            let g = sim.grid.grid(leaf);
            let gg = g.read();
            let mut block = Vec::new();
            for f in 0..NF {
                block.extend_from_slice(gg.field(f));
            }
            state.push(block);
        }
        cluster.shutdown();
        (before, after, stats, state)
    };

    let (barrier_before, barrier_after, barrier_stats, barrier_state) = run_with(false);
    let (pipe_before, pipe_after, pipe_stats, pipe_state) = run_with(true);

    assert_states_close(&barrier_state, &pipe_state, 1e-12, "barrier vs pipeline");

    // Identical conservation ledgers: totals are measured from the grid, so
    // agreement here is agreement of the full state, not just a summary.
    let ledgers = [(barrier_before, pipe_before), (barrier_after, pipe_after)];
    for (a, b) in ledgers {
        assert_eq!(a.mass.to_bits(), b.mass.to_bits(), "ledger mass differs");
        assert_eq!(
            a.gas_energy.to_bits(),
            b.gas_energy.to_bits(),
            "ledger gas energy differs"
        );
        assert_eq!(a.momentum, b.momentum, "ledger momentum differs");
        assert_eq!(
            a.angular_momentum_z.to_bits(),
            b.angular_momentum_z.to_bits(),
            "ledger Lz differs"
        );
    }

    // Per-step telemetry contract.
    for (sa, sb) in barrier_stats.iter().zip(&pipe_stats) {
        assert_eq!(sa.dt.to_bits(), sb.dt.to_bits(), "Δt diverged");
        assert_eq!(sa.overlapped_tasks, 0, "barrier path must never overlap");
        assert_eq!(
            sb.ghost_links_resolved, sb.ghost_links_total,
            "pipelined step left undrained links"
        );
        assert_eq!(sa.ghost_links_total, sb.ghost_links_total);
    }
}

#[test]
fn locality_count_is_physics_neutral() {
    // Distributing the octree over more localities changes communication
    // paths, never results.
    let one = run(1, 2, 2, |_| {});
    let four = run(4, 1, 2, |_| {});
    assert_states_close(&one, &four, 1e-11, "1 vs 4 localities");
}
