//! The futurized stepper, side by side with the barrier stepper: same
//! rotating-star problem, same physics (the ledgers must agree), different
//! schedule.  Prints the overlap telemetry that only the pipelined path
//! can generate.
//!
//! ```sh
//! cargo run --release --example pipelined_step
//! ```

use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::{ConservationLedger, Scenario, ScenarioKind, SimOptions, Simulation};

fn run(pipeline: bool, steps: usize) -> (ConservationLedger, f64) {
    let cluster = SimCluster::new(2, 2);
    let (level, amr, n) = if cfg!(debug_assertions) {
        (2, 0, 4)
    } else {
        (2, 1, 8)
    };
    let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, level, amr, n);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    opts.pipeline = pipeline;
    let cells = scenario.total_cells();
    let mut sim = Simulation::new(scenario.grid, opts);

    let label = if pipeline { "pipelined" } else { "barrier" };
    println!(
        "[{label}] leaves: {} | cells: {cells}",
        sim.grid.leaves().len()
    );
    let mut cells_per_s = 0.0;
    for step in 0..steps {
        let stats = sim.step(&cluster);
        cells_per_s = stats.cells_per_second;
        println!(
            "[{label}] step {step}: dt = {:.6e}  cells/s = {:.3e}  ghost links = {}/{}  overlapped kernels = {}",
            stats.dt,
            stats.cells_per_second,
            stats.ghost_links_resolved,
            stats.ghost_links_total,
            stats.overlapped_tasks,
        );
    }
    let ledger = ConservationLedger::measure(&sim.grid);
    cluster.shutdown();
    (ledger, cells_per_s)
}

fn main() {
    let steps = 3;
    let (barrier, barrier_rate) = run(false, steps);
    let (pipelined, pipelined_rate) = run(true, steps);

    println!("\nbarrier ledger:   {barrier}");
    println!("pipelined ledger: {pipelined}");
    println!(
        "mass bits identical: {} | last-step speedup: {:.3}x",
        barrier.mass.to_bits() == pipelined.mass.to_bits(),
        pipelined_rate / barrier_rate
    );
}
