//! The double-white-dwarf scenario (paper Section III-B): a q = 0.7 DWD
//! binary — the R Coronae Borealis formation channel.  Demonstrates the
//! density-driven AMR (Octo-Tiger refines on the density and component
//! tracer fields) and the component-tracer bookkeeping used to follow the
//! mass transfer.
//!
//! ```sh
//! cargo run --release --example dwd_merger
//! ```

use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::{ConservationLedger, Scenario, ScenarioKind, SimOptions, Simulation};

fn main() {
    let cluster = SimCluster::new(2, 2);
    // Base level 2 with up to two extra AMR levels around the stars.
    let scenario = {
        // Debug builds are ~30x slower; shrink so `cargo run` stays snappy.
        let (level, amr, n) = if cfg!(debug_assertions) {
            (2, 0, 4)
        } else {
            (2, 2, 8)
        };
        Scenario::build(ScenarioKind::Dwd, &cluster, level, amr, n)
    };
    let model = &scenario.model;
    println!(
        "DWD q = {:.2} model: a = {:.2}, omega = {:.4}, kind = {:?}",
        model.params.m2 / model.params.m1,
        model.params.a,
        model.omega,
        model.kind()
    );

    // Show the AMR structure the density criterion produced.
    let levels: Vec<u8> = scenario.grid.leaves().iter().map(|l| l.level()).collect();
    let max_level = levels.iter().copied().max().unwrap_or(0);
    for lvl in 0..=max_level {
        let count = levels.iter().filter(|&&l| l == lvl).count();
        if count > 0 {
            println!("  AMR level {lvl}: {count} leaves");
        }
    }
    scenario
        .grid
        .with_tree(|t| t.check_invariants().expect("octree invariants hold"));

    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    // The paper's angular-momentum-conserving FMM: octupole on.
    opts.gravity_opts.use_octupole = true;
    let mut sim = Simulation::new(scenario.grid, opts);

    let before = ConservationLedger::measure(&sim.grid);
    println!(
        "initial: M = {:.4}, M1 = {:.4}, M2 = {:.4}, L_z = {:.4e}",
        before.mass, before.component_mass[0], before.component_mass[1], before.angular_momentum_z
    );

    for step in 0..2 {
        let stats = sim.step(&cluster);
        let ledger = ConservationLedger::measure(&sim.grid);
        println!(
            "step {step}: dt = {:.3e}  cells/s = {:.3e}  M1 = {:.4}  M2 = {:.4}",
            stats.dt, stats.cells_per_second, ledger.component_mass[0], ledger.component_mass[1]
        );
    }

    let after = ConservationLedger::measure(&sim.grid);
    println!(
        "mass drift (with outflow tracking): {:.3e}",
        ((after.mass + sim.mass_outflow - before.mass) / before.mass).abs()
    );
    cluster.shutdown();
}
