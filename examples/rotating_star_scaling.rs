//! The paper's experiments in miniature, on the host: run the rotating
//! star with each of the paper's switches and print real measured
//! cells-per-second — SIMD on/off (Figure 7), communication optimization
//! on/off (Figure 8), multipole task splitting (Figure 9), and 1 vs 4
//! localities.
//!
//! ```sh
//! cargo run --release --example rotating_star_scaling
//! ```

use octo_repro::amr::GhostConfig;
use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::{Scenario, ScenarioKind, SimOptions, Simulation};
use octo_repro::simd::VectorMode;

fn run_config(label: &str, localities: usize, workers: usize, configure: impl Fn(&mut SimOptions)) {
    let cluster = SimCluster::new(localities, workers);
    let scenario = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 8);
    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    configure(&mut opts);
    let mut sim = Simulation::new(scenario.grid, opts);
    // Warm-up step, then measure.
    sim.step(&cluster);
    let stats = sim.step(&cluster);
    println!(
        "{label:44} cells/s = {:.3e}  (dt = {:.2e}, direct links = {})",
        stats.cells_per_second, stats.dt, stats.direct_ghost_links
    );
    cluster.shutdown();
}

fn main() {
    println!("rotating star, level 2, N=8, real execution on this host\n");

    run_config("baseline (SVE, comm opt, 1 task/kernel)", 1, 4, |_| {});
    run_config("SIMD OFF (scalar kernels)            ", 1, 4, |o| {
        o.vector_mode = VectorMode::Scalar;
    });
    run_config("communication optimization OFF       ", 2, 2, |o| {
        o.ghost = GhostConfig {
            direct_local_access: false,
            notify_with_channels: false,
        };
    });
    run_config("communication optimization ON        ", 2, 2, |_| {});
    run_config("multipole kernel split into 16 tasks ", 1, 4, |o| {
        o.gravity_opts.tasks_per_multipole_kernel = 16;
    });
    run_config("4 localities x 1 worker              ", 4, 1, |_| {});

    println!("\n(The cluster-scale versions of these sweeps are the fig07/fig08/fig09 binaries.)");
}
