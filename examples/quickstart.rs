//! Quickstart: build the paper's rotating-star problem, evolve it a few
//! steps with hydro + FMM gravity in the rotating frame, and print the
//! paper's metric (processed cells per second) plus the conservation
//! ledger.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::{ConservationLedger, Scenario, ScenarioKind, SimOptions, Simulation};

fn main() {
    // Two logical HPX localities with two worker threads each — a
    // miniature of one Fugaku rack.
    let cluster = SimCluster::new(2, 2);

    // Rotating star at octree level 2 with one AMR level on top, N = 8
    // sub-grids like the paper.
    let scenario = {
        // Debug builds are ~30x slower; shrink so `cargo run` stays snappy.
        let (level, amr, n) = if cfg!(debug_assertions) {
            (2, 0, 4)
        } else {
            (2, 1, 8)
        };
        Scenario::build(ScenarioKind::RotatingStar, &cluster, level, amr, n)
    };
    println!(
        "scenario: {} | leaves: {} | cells: {} | omega: {:.4}",
        scenario.kind.name(),
        scenario.grid.leaves().len(),
        scenario.total_cells(),
        scenario.omega
    );

    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    let mut sim = Simulation::new(scenario.grid, opts);

    let before = ConservationLedger::measure(&sim.grid);
    println!("initial ledger: {before}");

    for step in 0..3 {
        let stats = sim.step(&cluster);
        println!(
            "step {step}: dt = {:.3e}  cells/s = {:.3e}  kernels = {}  direct ghost links = {}  m2l = {}",
            stats.dt,
            stats.cells_per_second,
            stats.kernel_launches,
            stats.direct_ghost_links,
            stats
                .gravity_stats
                .map(|g| g.m2l_interactions)
                .unwrap_or(0),
        );
    }

    let after = ConservationLedger::measure(&sim.grid);
    println!("final ledger:   {after}");
    println!(
        "mass ledger closure (drift + tracked outflow): {:.3e}",
        (after.mass + sim.mass_outflow - before.mass).abs() / before.mass
    );
    cluster.shutdown();
}
