//! The V1309 Scorpii scenario (paper Section III-A): a contact binary of
//! two main-sequence stars in the co-rotating frame, the progenitor of the
//! 2008 luminous red nova.  Builds the SCF contact model, verifies it is
//! classified as a contact system, evolves it, and writes a silo-lite
//! checkpoint like Octo-Tiger's production runs do.
//!
//! ```sh
//! cargo run --release --example v1309_merger
//! ```

use octo_repro::hpx::SimCluster;
use octo_repro::octotiger::scf::BinaryKind;
use octo_repro::octotiger::{
    io, ConservationLedger, Scenario, ScenarioKind, SimOptions, Simulation,
};

fn main() {
    let cluster = SimCluster::new(2, 2);
    let scenario = {
        // Debug builds are ~30x slower; shrink so `cargo run` stays snappy.
        let (level, amr, n) = if cfg!(debug_assertions) {
            (2, 0, 4)
        } else {
            (2, 1, 8)
        };
        Scenario::build(ScenarioKind::V1309, &cluster, level, amr, n)
    };
    let model = &scenario.model;
    println!(
        "V1309 SCF model: M1 = {:.3} M2 = {:.3} (targets {:.2}/{:.2}), a = {:.2}, omega = {:.4}",
        model.achieved_m1,
        model.achieved_m2,
        model.params.m1,
        model.params.m2,
        model.params.a,
        model.omega
    );
    println!(
        "configuration: {:?} (the paper's progenitor is a contact binary)",
        model.kind()
    );
    assert_eq!(model.kind(), BinaryKind::Contact);

    let mut opts = SimOptions::default();
    opts.omega = scenario.omega;
    opts.gravity = true;
    let mut sim = Simulation::new(scenario.grid, opts);

    let before = ConservationLedger::measure(&sim.grid);
    println!(
        "component masses on the grid: M1 = {:.3}, M2 = {:.3} (q = {:.2})",
        before.component_mass[0],
        before.component_mass[1],
        before.component_mass[1] / before.component_mass[0]
    );

    for step in 0..2 {
        let stats = sim.step(&cluster);
        println!(
            "step {step}: t = {:.4e}  dt = {:.3e}  cells/s = {:.3e}",
            stats.time, stats.dt, stats.cells_per_second
        );
    }

    let after = ConservationLedger::measure(&sim.grid);
    println!(
        "angular momentum L_z: {:.6e} -> {:.6e}",
        before.angular_momentum_z, after.angular_momentum_z
    );

    // Production runs checkpoint through Silo/HDF5; we write silo-lite.
    let path = std::env::temp_dir().join("v1309_checkpoint.slt");
    io::save(&path, &sim.grid, sim.time, sim.step_count).expect("checkpoint written");
    let ckpt = io::read_checkpoint(&path).expect("checkpoint readable");
    println!(
        "checkpoint: {} leaves, t = {:.4e}, written to {}",
        ckpt.leaves.len(),
        ckpt.time,
        path.display()
    );
    std::fs::remove_file(&path).ok();
    cluster.shutdown();
}
