//! A Fugaku campaign end to end: parse a PJM job script (the scheduler
//! interface the paper added to HPX), pick the machine and options from
//! it, and run the discrete-event cluster simulation — including the
//! fault model for the Fujitsu-MPI hangs the paper hit at scale.
//!
//! ```sh
//! cargo run --release --example fugaku_campaign
//! ```

use octo_repro::cluster::{
    simulate_step, FaultModel, FaultOutcome, KernelCosts, Machine, MachineId, PowerModel,
    RunOptions, Workload,
};
use octo_repro::hpx::JobSpec;

fn main() {
    let script = "\
#!/bin/bash
#PJM -L node=512
#PJM -L rscgrp=large
#PJM -L elapse=01:00:00
#PJM -L freq=1800
#PJM --mpi proc=512
";
    let spec = JobSpec::parse(script).expect("valid PJM script");
    println!(
        "PJM job: {} nodes, rscgrp={}, elapse={}s, boost={}",
        spec.nodes, spec.resource_group, spec.elapse_limit_s, spec.boost_mode
    );

    let machine = Machine::get(MachineId::Fugaku);
    let costs = KernelCosts::default();
    let power = PowerModel::default();
    let opts = RunOptions {
        sve: true,
        boost: spec.boost_mode,
        comm_opt: true,
        multipole_tasks: 1,
        hydro_leaves_per_task: 1,
    };
    let faults = FaultModel::default();

    println!("\nlevel 6 rotating star (14.2M cells) on {}:", machine.name);
    println!("nodes | cells/s     | step time  | efficiency | power (kW) | outcome");
    for nodes in [128usize, 256, 512, 1024] {
        let w = Workload::rotating_star(6);
        let r = simulate_step(&machine, nodes, &w, &opts, &costs);
        let watts = power.total_watts(&machine, nodes, r.parallel_efficiency, opts.sve);
        let outcome = match faults.sample(&machine, nodes, 42) {
            FaultOutcome::Completes => "completes",
            FaultOutcome::Hangs => "HANGS (Fujitsu MPI, as in the paper)",
            FaultOutcome::Deadlocks => "deadlocks",
        };
        println!(
            "{nodes:5} | {:.4e} | {:.4e}s | {:9.2}% | {:10.1} | {outcome}",
            r.cells_per_second,
            r.step_time_s,
            100.0 * r.parallel_efficiency,
            watts / 1000.0,
        );
    }

    println!("\nsame sweep in boost mode (only allowed at small node counts):");
    for nodes in [1usize, 4] {
        let w = Workload::rotating_star(5);
        let normal = simulate_step(&machine, nodes, &w, &opts, &costs);
        let mut boost_opts = opts;
        boost_opts.boost = true;
        let boost = simulate_step(&machine, nodes, &w, &boost_opts, &costs);
        println!(
            "{nodes:5} nodes: default {:.4e} cells/s, boost {:.4e} cells/s (+{:.1}%)",
            normal.cells_per_second,
            boost.cells_per_second,
            100.0 * (boost.cells_per_second / normal.cells_per_second - 1.0)
        );
    }
}
