//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::deque` is provided, with the API subset `hpx-rt` uses.
//! The lock-free Chase-Lev deque is replaced by a mutex-protected
//! `VecDeque` — same semantics (FIFO worker queue, stealable from other
//! threads), lower peak throughput.  Fine for a vendored build whose goal is
//! correctness and offline reproducibility; the scheduler benchmarks measure
//! relative (pipelined vs. barrier) numbers on the same queue either way.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Outcome of a steal attempt, mirroring `crossbeam::deque::Steal`.
    pub enum Steal<T> {
        Success(T),
        Empty,
        Retry,
    }

    /// A worker-owned FIFO queue that other threads can steal from.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, value: T) {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle for stealing from a [`Worker`]'s queue.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }
    }

    /// A global FIFO injector queue, mirroring `crossbeam::deque::Injector`.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_fifo_order_and_steal() {
            let w = Worker::new_fifo();
            w.push(1);
            w.push(2);
            w.push(3);
            let s = w.stealer();
            assert!(matches!(s.steal(), Steal::Success(1)));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), Some(3));
            assert!(matches!(s.steal(), Steal::Empty));
        }

        #[test]
        fn injector_fifo() {
            let inj = Injector::new();
            assert!(inj.is_empty());
            inj.push("a");
            inj.push("b");
            assert!(matches!(inj.steal(), Steal::Success("a")));
            assert!(matches!(inj.steal(), Steal::Success("b")));
            assert!(matches!(inj.steal(), Steal::Empty));
        }
    }
}
