//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy architecture, this shim uses a
//! self-describing [`Content`] tree: `Serialize` lowers a value into
//! `Content`, `Deserialize` rebuilds a value from it, and `serde_json`
//! renders/parses `Content` as JSON text.  That is exactly the surface the
//! workspace uses (derive on plain structs and unit enums + JSON round
//! trips), with none of the trait machinery the real crate needs for
//! format-generic streaming.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value — the common currency between the
/// derive macros and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Field order is preserved (struct declaration order).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Numeric view of any numeric variant, for tolerant deserialization
    /// (JSON does not distinguish `1`, `1.0` and `1e0`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Map-entry lookup (`None` for non-maps and missing keys).
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Sequence view.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }
}

// `Content` is its own serialization: this lets schema-agnostic consumers
// (e.g. the benchmark-report merger) parse arbitrary JSON via
// `serde_json::from_str::<Content>` — the stand-in for `serde_json::Value`.
impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize_content(content: &Content) -> Result<Self, String> {
        Ok(content.clone())
    }
}

/// A value that can lower itself into [`Content`].
pub trait Serialize {
    fn serialize_content(&self) -> Content;
}

/// A value that can rebuild itself from [`Content`].
pub trait Deserialize: Sized {
    fn deserialize_content(content: &Content) -> Result<Self, String>;
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {other:?}")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, String> {
                let v = content
                    .as_f64()
                    .ok_or_else(|| format!("expected number, found {content:?}"))?;
                if v < 0.0 || v.fract() != 0.0 {
                    return Err(format!("expected unsigned integer, found {v}"));
                }
                Ok(v as $t)
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, String> {
                let v = content
                    .as_f64()
                    .ok_or_else(|| format!("expected number, found {content:?}"))?;
                if v.fract() != 0.0 {
                    return Err(format!("expected integer, found {v}"));
                }
                Ok(v as $t)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, String> {
                content
                    .as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| format!("expected number, found {content:?}"))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl Serialize for &str {
    fn serialize_content(&self) -> Content {
        Content::Str((*self).to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string.  The workspace only deserializes
    /// `&'static str` fields holding a handful of short machine names, so
    /// the leak is bounded and intentional.
    fn deserialize_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(format!("expected sequence, found {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (*self).serialize_content()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion_round_trips() {
        assert_eq!(u32::deserialize_content(&Content::F64(7.0)).unwrap(), 7);
        assert_eq!(i64::deserialize_content(&Content::U64(9)).unwrap(), 9);
        assert!(u8::deserialize_content(&Content::F64(1.5)).is_err());
        assert!(usize::deserialize_content(&Content::F64(-1.0)).is_err());
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<f64> = None;
        assert_eq!(none.serialize_content(), Content::Null);
        assert_eq!(
            Option::<f64>::deserialize_content(&Content::Null).unwrap(),
            None
        );
        assert_eq!(
            Option::<f64>::deserialize_content(&Content::F64(2.5)).unwrap(),
            Some(2.5)
        );
    }
}
