//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API surface this workspace's property tests use — the
//! `proptest!` macro, range/tuple/vec/string strategies, `any::<T>()` and the
//! `prop_assert*` macros — with a deterministic SplitMix64 generator seeded
//! from the test name.  No shrinking: a failing case panics with the case
//! index, and because generation is deterministic the same case regenerates
//! on every run, which is enough to debug.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors `proptest::prelude::prop`, the path the tests spell
    /// `prop::collection::vec(...)` through.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs [`test_runner::cases`] generated cases; `prop_assert*`
/// failures report the case index, and regeneration is deterministic.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
                for case in 0..$crate::test_runner::cases() {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), runner.rng());
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {case}: {e} \
                             (cases regenerate deterministically)",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}
