//! Strategies: how test inputs are generated.

use crate::test_runner::Rng;
use std::ops::Range;

/// A generator of test values.  Unlike real proptest there is no value tree
/// or shrinking — `generate` draws a value directly.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut Rng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut Rng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Always yields a clone of the given value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Regex-flavoured string strategy (proptest treats `&str` as a regex).
///
/// Supported surface: an optional char-class prefix (anything up to a
/// trailing `{lo,hi}` repetition) generates printable ASCII; the repetition
/// bounds the length.  That covers patterns like `"\\PC{0,200}"` used for
/// parser-totality tests, where the property only needs "arbitrary text".
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 16));
        let span = (hi - lo + 1) as u64;
        let len = lo + (rng.next_u64() % span) as usize;
        (0..len)
            .map(|_| {
                // Mostly printable ASCII with occasional non-ASCII scalars,
                // enough hostility for never-panics properties.
                match rng.next_u64() % 16 {
                    0 => 'π',
                    1 => '\u{1F300}',
                    _ => (0x20 + (rng.next_u64() % 0x5f) as u8) as char,
                }
            })
            .collect()
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    if close != pattern.len() - 1 || open + 1 >= close {
        return None;
    }
    let inner = &pattern[open + 1..close];
    let (lo, hi) = inner.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Types with a canonical default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut Rng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut Rng) -> Self {
        // Finite, spread over a wide exponent range.
        let mag = rng.next_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

/// The strategy returned by [`any`].
pub struct ArbitraryStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy {
        _marker: std::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRunner;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut runner = TestRunner::new("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let u = (3usize..17).generate(runner.rng());
            assert!((3..17).contains(&u));
            let i = (-5i64..5).generate(runner.rng());
            assert!((-5..5).contains(&i));
            let f = (-2.0f64..3.0).generate(runner.rng());
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_respects_length_bounds() {
        let mut runner = TestRunner::new("string_pattern");
        for _ in 0..200 {
            let s = "\\PC{0,20}".generate(runner.rng());
            assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRunner::new("same-name");
        let mut b = TestRunner::new("same-name");
        for _ in 0..100 {
            assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        }
    }
}
