//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::Rng;
use std::ops::Range;

/// Inclusive-min / exclusive-max length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// A strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`: vectors of strategy-drawn
/// elements.  `size` is an exact length (`64`) or a range (`0..10`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRunner;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut runner = TestRunner::new("vec_lengths");
        for _ in 0..100 {
            assert_eq!(vec(0u32..5, 7).generate(runner.rng()).len(), 7);
            let l = vec(0u32..5, 1..4).generate(runner.rng()).len();
            assert!((1..4).contains(&l));
        }
    }
}
