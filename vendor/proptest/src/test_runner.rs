//! Deterministic case runner: SplitMix64 RNG seeded from the test name.

use std::fmt;

/// Number of cases each `proptest!` test runs.  Overridable with the
/// `PROPTEST_CASES` environment variable (same knob as real proptest).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A failed property-test case (carried out of the case closure by
/// `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// SplitMix64: tiny, fast, and plenty random for test-input generation.
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drives the cases of one `proptest!` test.
pub struct TestRunner {
    rng: Rng,
}

impl TestRunner {
    pub fn new(test_name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: Rng::new(seed),
        }
    }

    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }
}
