//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde::Content` model as JSON text.
//!
//! Floats are printed with Rust's shortest-round-trip `Display`, so
//! serialize → parse → deserialize returns bit-identical `f64`s — the
//! property the campaign round-trip tests rely on.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content(), None, 0);
    Ok(out)
}

/// Serialize `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize_content(&content).map_err(Error::new)
}

fn write_content(out: &mut String, content: &Content, indent: Option<usize>, level: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                // JSON has no Infinity/NaN; match serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("non-utf8 number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar.
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("non-utf8 string content"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<f64>("1.25e-3").unwrap(), 1.25e-3);
        assert_eq!(from_str::<u32>("17").unwrap(), 17);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for v in [0.1f64, 1.0 / 3.0, 6.02214076e23, -2.5e-300] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline\"2\"\\t\tπ".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn vec_round_trip() {
        let v = vec![1.5f64, -2.0, 0.0];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }
}
