//! Offline stand-in for `serde_derive`.
//!
//! Without network access there is no `syn`/`quote`, so the derive input is
//! parsed directly from the `proc_macro` token stream.  The grammar is
//! deliberately restricted to what this workspace derives on:
//!
//! * structs with named fields and no generics, and
//! * enums whose variants are all unit variants,
//!
//! with no `#[serde(...)]` attributes.  Anything else panics at compile time
//! with a message naming the restriction, which is the honest failure mode
//! for a vendored shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Derive `serde::Serialize` (Content-model variant; see vendor/serde).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::serialize_content(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated code parses")
}

/// Derive `serde::Deserialize` (Content-model variant; see vendor/serde).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: {{\n\
                             let entry = map.iter().find(|(k, _)| k == \"{f}\")\n\
                                 .ok_or_else(|| format!(\"missing field `{f}` in {name}\"))?;\n\
                             ::serde::Deserialize::deserialize_content(&entry.1)?\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_content(content: &::serde::Content) -> Result<Self, String> {{\n\
                         let map = match content {{\n\
                             ::serde::Content::Map(m) => m,\n\
                             other => return Err(format!(\"expected map for {name}, found {{other:?}}\")),\n\
                         }};\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_content(content: &::serde::Content) -> Result<Self, String> {{\n\
                         let s = match content {{\n\
                             ::serde::Content::Str(s) => s.as_str(),\n\
                             other => return Err(format!(\"expected string for {name}, found {{other:?}}\")),\n\
                         }};\n\
                         match s {{\n\
                             {arms}\n\
                             other => Err(format!(\"unknown {name} variant `{{other}}`\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated code parses")
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Outer attribute (doc comments included): skip the [...]
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Skip an optional restriction like pub(crate).
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(tokens.next(), "struct name");
                let body = expect_brace_group(&mut tokens, &name);
                return Shape::Struct {
                    fields: parse_named_fields(body, &name),
                    name,
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(tokens.next(), "enum name");
                let body = expect_brace_group(&mut tokens, &name);
                return Shape::Enum {
                    variants: parse_unit_variants(body, &name),
                    name,
                };
            }
            Some(other) => panic!("serde_derive shim: unexpected token `{other}` before item"),
            None => panic!("serde_derive shim: no struct or enum found in derive input"),
        }
    }
}

fn expect_ident(token: Option<TokenTree>, what: &str) -> String {
    match token {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected {what}, found {other:?}"),
    }
}

fn expect_brace_group(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    name: &str,
) -> TokenStream {
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim: `{name}` is generic; only non-generic types are supported")
        }
        other => panic!(
            "serde_derive shim: expected {{...}} body for `{name}`, found {other:?} \
             (tuple structs and unit structs are not supported)"
        ),
    }
}

fn parse_named_fields(body: TokenStream, name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
                continue;
            }
            _ => {}
        }
        let field = expect_ident(tokens.next(), "field name");
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde_derive shim: expected `:` after field `{field}` in {name}, found {other:?}"
            ),
        }
        // Skip the type: consume until a `,` at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
        fields.push(field);
    }
    fields
}

fn parse_unit_variants(body: TokenStream, name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
                continue;
            }
            _ => {}
        }
        let variant = expect_ident(tokens.next(), "variant name");
        match tokens.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(other) => panic!(
                "serde_derive shim: enum `{name}` variant `{variant}` is not a unit variant \
                 (found `{other}`); only unit enums are supported"
            ),
        }
    }
    variants
}
