//! Offline stand-in for the `criterion` crate.
//!
//! Provides the group/bench-function/iter API the workspace's benches use,
//! backed by a simple adaptive timer: each benchmark is warmed up, then run
//! in batches until a time budget is spent, and the mean ns/iter (plus
//! iterations/second) is printed.  No statistics, plots or baselines — the
//! goal is comparable same-process numbers (e.g. pipelined vs. barrier
//! stepper), not criterion's confidence intervals.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-benchmark time budget after warm-up.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), f);
    }
}

/// A named set of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive timer ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement window per benchmark (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), f);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times to fill the budget.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: also discovers roughly how long one iteration takes.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    let warmup_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warmup_start.elapsed() < WARMUP_BUDGET {
        f(&mut bencher);
        per_iter = (bencher.elapsed / bencher.iterations as u32).max(Duration::from_nanos(1));
        if bencher.elapsed < Duration::from_millis(1) {
            bencher.iterations = bencher.iterations.saturating_mul(2);
        }
    }
    // Measurement: batches sized so each lasts ~1/10 of the budget.
    let batch = ((MEASURE_BUDGET.as_nanos() / 10) / per_iter.as_nanos().max(1))
        .clamp(1, u64::MAX as u128) as u64;
    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    while total_time < MEASURE_BUDGET {
        bencher.iterations = batch;
        f(&mut bencher);
        total_iters += batch;
        total_time += bencher.elapsed;
    }
    let ns_per_iter = total_time.as_nanos() as f64 / total_iters as f64;
    println!(
        "bench {label:<50} {:>12.1} ns/iter ({:.3e} iter/s)",
        ns_per_iter,
        1e9 / ns_per_iter
    );
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("tasks", 8).to_string(), "tasks/8");
    }
}
