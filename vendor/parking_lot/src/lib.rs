//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses, implemented on `std::sync`.  The
//! semantic difference that matters — and that this shim preserves — is that
//! `parking_lot` locks do not poison: a panic while holding a guard leaves the
//! lock usable, which the runtime relies on when worker tasks panic.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Non-poisoning mutex with `parking_lot`'s infallible `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, r) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }
}

/// Swap the std guard out of our wrapper, run a wait on it, and put the
/// returned guard back.  Safe because the closure must hand back a guard for
/// the same mutex (std's condvar API guarantees this).
fn replace_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // std::sync::MutexGuard has no "dummy" value, so move it out through a
    // pointer dance: read the guard, feed it to `f`, and write the result
    // back without running the destructor of the stale copy.
    unsafe {
        let inner = std::ptr::read(&guard.inner);
        let new_inner = f(inner);
        std::ptr::write(&mut guard.inner, new_inner);
    }
}

/// Non-poisoning reader-writer lock.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still works.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
