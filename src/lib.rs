//! # octo-repro — root facade crate
//!
//! Rust reproduction of *"Simulating Stellar Merger using HPX/Kokkos on
//! A64FX on Supercomputer Fugaku"* (IPPS 2023).  This crate re-exports the
//! workspace members so examples and integration tests can use one
//! dependency:
//!
//! * [`hpx`] — HPX-style asynchronous many-task runtime.
//! * [`kokkos`] — Kokkos-style execution spaces, views and policies.
//! * [`simd`] — `std::experimental::simd`-style SVE vector types.
//! * [`amr`] — AMR octree with sub-grids and ghost-layer exchange.
//! * [`octotiger`] — the application: hydro + FMM gravity + SCF.
//! * [`cluster`] — machine models and the discrete-event scaling simulator.
//! * [`check`] — concurrency analyses: schedule-exploring model checker,
//!   static future-DAG linter, view race detector, kernel-body wait lint.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every reproduced table and figure.

pub use cluster;
pub use hpx_check as check;
pub use hpx_rt as hpx;
pub use kokkos_rs as kokkos;
pub use octotiger;
pub use octree as amr;
pub use sve_simd as simd;
