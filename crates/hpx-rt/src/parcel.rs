//! Typed parcel transport between simulated localities.
//!
//! The distributed stepper moves four kinds of FMM halo traffic plus the
//! ghost-zone payloads between localities (see
//! [`crate::counters::ParcelClass`]).  This module is the common carrier:
//! a full mesh of HPX-style [`crate::channel`] lanes, one per ordered
//! `(from, to)` locality pair, moving [`TypedParcel`]s whose payload type
//! is chosen by the caller (the solver ships pooled `Recycled<f64>`
//! buffers so parcel serialization recycles like every other scratch
//! buffer).
//!
//! Every send is metered into the process-global
//! `/octotiger/parcels/{class}/{count,bytes}` counters
//! ([`crate::counters::parcel_counters`]) — the distributed-equivalence
//! suite asserts they stay at zero on the single-locality reference path,
//! proving the local fast path never pays transport costs.
//!
//! Local sends (`from == to`) are a protocol violation and panic: callers
//! must keep the direct-access fast path for local traffic, exactly like
//! the Section VII-B communication optimization for ghost zones.

use crate::channel::{channel, Receiver, Sender};
use crate::counters::{parcel_counters, ParcelClass};
use crate::future::Future;

/// One class-tagged payload in flight between two localities.
///
/// `Clone` exists for test convenience (`Future::get`); transport
/// consumers use `Future::with_value`/`try_receive` to avoid copying
/// pooled payloads.
#[derive(Debug, Clone)]
pub struct TypedParcel<T> {
    /// What kind of halo traffic this is.
    pub class: ParcelClass,
    /// Sending locality index.
    pub from: usize,
    /// Destination locality index.
    pub to: usize,
    /// Serialized payload size (what the wire would carry).
    pub bytes: usize,
    /// The payload itself.
    pub payload: T,
}

/// A full mesh of typed parcel lanes over `n` localities.
///
/// Lanes are independent FIFO channels: parcels between one ordered pair
/// arrive in send order, parcels on different lanes are unordered — the
/// same guarantees a real parcelport gives, which is why every consumer
/// folds received values in a plan-frozen order rather than arrival
/// order.
pub struct ParcelTransport<T> {
    lanes: Vec<Vec<Lane<T>>>,
}

/// One ordered `(from, to)` FIFO lane of the mesh.
type Lane<T> = (Sender<TypedParcel<T>>, Receiver<TypedParcel<T>>);

impl<T: Send + 'static> ParcelTransport<T> {
    /// A fresh mesh over `n` localities.
    pub fn new(n: usize) -> Self {
        let lanes = (0..n)
            .map(|_| (0..n).map(|_| channel()).collect())
            .collect();
        ParcelTransport { lanes }
    }

    /// Number of localities in the mesh.
    pub fn num_localities(&self) -> usize {
        self.lanes.len()
    }

    /// Send one `class` parcel of `bytes` payload bytes from locality
    /// `from` to locality `to`, bumping the global parcel counters.
    ///
    /// # Panics
    ///
    /// Panics on a local send (`from == to`): local traffic must use the
    /// direct fast path and never be metered as a parcel.
    pub fn send(&self, from: usize, to: usize, class: ParcelClass, bytes: usize, payload: T) {
        assert_ne!(
            from, to,
            "local parcel send ({from} -> {to}): use the direct fast path"
        );
        parcel_counters().note_send(class, bytes as u64);
        self.lanes[from][to].0.send(TypedParcel {
            class,
            from,
            to,
            bytes,
            payload,
        });
    }

    /// A future for the next parcel on the `(from, to)` lane.
    pub fn receive(&self, from: usize, to: usize) -> Future<TypedParcel<T>> {
        self.lanes[from][to].1.receive()
    }

    /// Non-blocking poll of the `(from, to)` lane.
    pub fn try_receive(&self, from: usize, to: usize) -> Option<TypedParcel<T>> {
        self.lanes[from][to].1.try_receive()
    }

    /// Parcels queued on the `(from, to)` lane.
    pub fn queued(&self, from: usize, to: usize) -> usize {
        self.lanes[from][to].1.queued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_independent_fifos() {
        let t = ParcelTransport::<Vec<f64>>::new(3);
        t.send(0, 1, ParcelClass::M2l, 16, vec![1.0]);
        t.send(0, 1, ParcelClass::M2l, 16, vec![2.0]);
        t.send(2, 1, ParcelClass::P2p, 8, vec![3.0]);
        assert_eq!(t.queued(0, 1), 2);
        assert_eq!(t.queued(2, 1), 1);
        assert_eq!(t.queued(1, 0), 0);
        assert_eq!(t.receive(0, 1).get().payload, vec![1.0]);
        assert_eq!(t.receive(0, 1).get().payload, vec![2.0]);
        let p = t.try_receive(2, 1).expect("queued");
        assert_eq!(
            (p.class, p.from, p.to, p.bytes),
            (ParcelClass::P2p, 2, 1, 8)
        );
    }

    #[test]
    fn sends_are_metered_per_class() {
        let before = parcel_counters().snapshot();
        let t = ParcelTransport::<Vec<f64>>::new(2);
        t.send(0, 1, ParcelClass::MultipoleUp, 320, vec![0.0; 40]);
        t.send(1, 0, ParcelClass::MultipoleDown, 320, vec![0.0; 40]);
        t.send(0, 1, ParcelClass::Ghost, 64, vec![0.0; 8]);
        let delta = parcel_counters().snapshot().since(&before);
        assert!(delta.multipole_up_count >= 1 && delta.multipole_up_bytes >= 320);
        assert!(delta.multipole_down_count >= 1 && delta.multipole_down_bytes >= 320);
        assert!(delta.ghost_count >= 1 && delta.ghost_bytes >= 64);
    }

    #[test]
    #[should_panic(expected = "use the direct fast path")]
    fn local_sends_are_rejected() {
        let t = ParcelTransport::<Vec<f64>>::new(2);
        t.send(1, 1, ParcelClass::Ghost, 8, vec![0.0]);
    }
}
