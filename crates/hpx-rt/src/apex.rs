//! APEX-style autonomic performance instrumentation.
//!
//! The paper's conclusion: *"To further analyze the code performance, more
//! runs using HPX's performance counters or Autonomous Performance
//! Environment for Exascale (APEX) are needed"* (reference [38]; the same
//! group's follow-up uses APEX for combined CPU/GPU profiling of HPX).
//! This module is that layer for the Rust runtime: named timers with
//! hierarchical task categories, aggregated statistics (count / total /
//! mean / max), and a chrome-tracing-compatible JSON export for offline
//! inspection.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Aggregated statistics of one named timer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimerStats {
    /// Number of completed measurements.
    pub count: u64,
    /// Total accumulated seconds.
    pub total_s: f64,
    /// Longest single measurement.
    pub max_s: f64,
    /// Measurements since the last [`Apex::reset_window`].
    pub window_count: u64,
    /// Seconds accumulated since the last [`Apex::reset_window`].
    pub window_total_s: f64,
}

impl TimerStats {
    /// Mean seconds per measurement (0 when never fired).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }

    /// Mean seconds per measurement inside the current window (0 when the
    /// window is empty).  The lifetime [`mean_s`](Self::mean_s) dilutes
    /// recent samples into the whole history, so a consumer changing a
    /// launch configuration could never see the change take effect; the
    /// window mean is the feedback signal an online tuner reads, with
    /// [`Apex::reset_window`] closing one observation window per decision.
    pub fn window_mean_s(&self) -> f64 {
        if self.window_count == 0 {
            0.0
        } else {
            self.window_total_s / self.window_count as f64
        }
    }
}

#[derive(Debug, Clone)]
struct TraceEvent {
    name: &'static str,
    start_us: u64,
    duration_us: u64,
    thread: String,
}

struct ApexInner {
    stats: Mutex<HashMap<&'static str, TimerStats>>,
    trace: Mutex<Vec<TraceEvent>>,
    epoch: Instant,
    tracing: bool,
}

/// An APEX-style profiler instance.
///
/// Cheap to clone (shared).  Timers are scoped guards: drop = stop.
#[derive(Clone)]
pub struct Apex {
    inner: Arc<ApexInner>,
}

impl Default for Apex {
    fn default() -> Self {
        Self::new(false)
    }
}

impl Apex {
    /// New profiler.  `tracing` additionally records every measurement as
    /// a trace event (higher overhead, exportable).
    pub fn new(tracing: bool) -> Apex {
        Apex {
            inner: Arc::new(ApexInner {
                stats: Mutex::new(HashMap::new()),
                trace: Mutex::new(Vec::new()),
                epoch: Instant::now(),
                tracing,
            }),
        }
    }

    /// Start a scoped timer for `name`; stops when the guard drops.
    pub fn timer(&self, name: &'static str) -> TimerGuard {
        TimerGuard {
            apex: self.clone(),
            name,
            start: Instant::now(),
        }
    }

    /// Record one externally-measured duration.
    pub fn record(&self, name: &'static str, seconds: f64) {
        let mut stats = self.inner.stats.lock();
        let entry = stats.entry(name).or_default();
        entry.count += 1;
        entry.total_s += seconds;
        if seconds > entry.max_s {
            entry.max_s = seconds;
        }
        entry.window_count += 1;
        entry.window_total_s += seconds;
    }

    /// Close the current observation window of one timer: zero its window
    /// fields while leaving the lifetime aggregate untouched.  No-op for a
    /// timer that never fired.
    pub fn reset_window(&self, name: &str) {
        if let Some(entry) = self.inner.stats.lock().get_mut(name) {
            entry.window_count = 0;
            entry.window_total_s = 0.0;
        }
    }

    /// Close the observation window of every timer at once (an
    /// end-of-step barrier for windowed consumers).
    pub fn reset_windows(&self) {
        for entry in self.inner.stats.lock().values_mut() {
            entry.window_count = 0;
            entry.window_total_s = 0.0;
        }
    }

    fn record_trace(&self, name: &'static str, start: Instant, seconds: f64) {
        if !self.inner.tracing {
            return;
        }
        let start_us = start
            .duration_since(self.inner.epoch)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        self.inner.trace.lock().push(TraceEvent {
            name,
            start_us,
            duration_us: (seconds * 1e6) as u64,
            thread: format!("{:?}", std::thread::current().id()),
        });
    }

    /// Snapshot of one timer's statistics.
    pub fn stats(&self, name: &str) -> TimerStats {
        self.inner
            .stats
            .lock()
            .get(name)
            .copied()
            .unwrap_or_default()
    }

    /// All timers, sorted by total time descending (an APEX "task summary").
    pub fn summary(&self) -> Vec<(&'static str, TimerStats)> {
        let mut out: Vec<(&'static str, TimerStats)> = self
            .inner
            .stats
            .lock()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        out.sort_by(|a, b| b.1.total_s.partial_cmp(&a.1.total_s).expect("finite"));
        out
    }

    /// Render the summary as an APEX-like text table.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from(
            "timer                                    count      total(s)     mean(s)      max(s)\n",
        );
        for (name, st) in self.summary() {
            writeln!(
                s,
                "{name:40} {:>6} {:>12.6} {:>11.3e} {:>11.3e}",
                st.count,
                st.total_s,
                st.mean_s(),
                st.max_s
            )
            .expect("write to string");
        }
        s
    }

    /// Export recorded trace events in the chrome://tracing JSON array
    /// format (APEX's OTF2 stand-in).
    pub fn chrome_trace_json(&self) -> String {
        let trace = self.inner.trace.lock();
        let mut parts = Vec::with_capacity(trace.len());
        for e in trace.iter() {
            parts.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":\"{}\"}}",
                e.name, e.start_us, e.duration_us, e.thread
            ));
        }
        format!("[{}]", parts.join(","))
    }

    /// Drop all recorded data.
    pub fn reset(&self) {
        self.inner.stats.lock().clear();
        self.inner.trace.lock().clear();
    }
}

/// Scoped timer guard: measures from creation to drop.
pub struct TimerGuard {
    apex: Apex,
    name: &'static str,
    start: Instant,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        let seconds = self.start.elapsed().as_secs_f64();
        self.apex.record(self.name, seconds);
        self.apex.record_trace(self.name, self.start, seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_on_drop() {
        let apex = Apex::new(false);
        {
            let _t = apex.timer("kernel:hydro");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let st = apex.stats("kernel:hydro");
        assert_eq!(st.count, 1);
        assert!(st.total_s >= 0.002);
        assert!(st.max_s >= 0.002);
    }

    #[test]
    fn record_aggregates() {
        let apex = Apex::new(false);
        apex.record("x", 1.0);
        apex.record("x", 3.0);
        let st = apex.stats("x");
        assert_eq!(st.count, 2);
        assert_eq!(st.total_s, 4.0);
        assert_eq!(st.mean_s(), 2.0);
        assert_eq!(st.max_s, 3.0);
    }

    #[test]
    fn summary_sorted_by_total() {
        let apex = Apex::new(false);
        apex.record("small", 0.1);
        apex.record("big", 5.0);
        let summary = apex.summary();
        assert_eq!(summary[0].0, "big");
        let table = apex.summary_table();
        assert!(table.contains("big"));
        assert!(table.contains("count"));
    }

    #[test]
    fn chrome_trace_export() {
        let apex = Apex::new(true);
        {
            let _t = apex.timer("traced");
        }
        let json = apex.chrome_trace_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"traced\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Valid JSON.
        let _parsed: serde_json_check::Value = serde_json_check::from_str(&json);
    }

    // Minimal local JSON validity check without adding a dependency to the
    // crate: reuse the fact that chrome traces are a flat array of objects
    // with quoted keys — parse with a tiny recursive-descent checker.
    mod serde_json_check {
        pub struct Value;
        pub fn from_str(s: &str) -> Value {
            let bytes = s.as_bytes();
            let mut pos = 0usize;
            skip_value(bytes, &mut pos);
            skip_ws(bytes, &mut pos);
            assert_eq!(pos, bytes.len(), "trailing garbage in JSON");
            Value
        }
        fn skip_ws(b: &[u8], p: &mut usize) {
            while *p < b.len() && (b[*p] as char).is_whitespace() {
                *p += 1;
            }
        }
        fn skip_value(b: &[u8], p: &mut usize) {
            skip_ws(b, p);
            match b[*p] {
                b'[' => {
                    *p += 1;
                    skip_ws(b, p);
                    if b[*p] == b']' {
                        *p += 1;
                        return;
                    }
                    loop {
                        skip_value(b, p);
                        skip_ws(b, p);
                        match b[*p] {
                            b',' => *p += 1,
                            b']' => {
                                *p += 1;
                                return;
                            }
                            c => panic!("bad array sep {}", c as char),
                        }
                    }
                }
                b'{' => {
                    *p += 1;
                    skip_ws(b, p);
                    if b[*p] == b'}' {
                        *p += 1;
                        return;
                    }
                    loop {
                        skip_ws(b, p);
                        skip_string(b, p);
                        skip_ws(b, p);
                        assert_eq!(b[*p], b':');
                        *p += 1;
                        skip_value(b, p);
                        skip_ws(b, p);
                        match b[*p] {
                            b',' => *p += 1,
                            b'}' => {
                                *p += 1;
                                return;
                            }
                            c => panic!("bad object sep {}", c as char),
                        }
                    }
                }
                b'"' => skip_string(b, p),
                _ => {
                    while *p < b.len() && !b",]}".contains(&b[*p]) {
                        *p += 1;
                    }
                }
            }
        }
        fn skip_string(b: &[u8], p: &mut usize) {
            assert_eq!(b[*p], b'"');
            *p += 1;
            while b[*p] != b'"' {
                if b[*p] == b'\\' {
                    *p += 1;
                }
                *p += 1;
            }
            *p += 1;
        }
    }

    #[test]
    fn window_mean_observes_recent_changes_the_lifetime_mean_hides() {
        let apex = Apex::new(false);
        // A long "slow config" history...
        for _ in 0..100 {
            apex.record("k", 1.0);
        }
        apex.reset_window("k");
        // ...then a config change makes the kernel 10x faster.
        for _ in 0..3 {
            apex.record("k", 0.1);
        }
        let st = apex.stats("k");
        // The lifetime mean barely moves — it can never tell the tuner
        // that the change helped.
        assert!(st.mean_s() > 0.9, "lifetime mean = {}", st.mean_s());
        // The window mean is exactly the post-change behaviour.
        assert_eq!(st.window_count, 3);
        assert!((st.window_mean_s() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reset_window_keeps_lifetime_aggregate() {
        let apex = Apex::new(false);
        apex.record("x", 1.0);
        apex.record("x", 3.0);
        apex.reset_window("x");
        let st = apex.stats("x");
        assert_eq!(st.count, 2);
        assert_eq!(st.total_s, 4.0);
        assert_eq!(st.window_count, 0);
        assert_eq!(st.window_mean_s(), 0.0);
        // Unknown names are a no-op, not an insertion.
        apex.reset_window("never-fired");
        assert_eq!(apex.stats("never-fired"), TimerStats::default());
    }

    #[test]
    fn reset_windows_closes_every_timer() {
        let apex = Apex::new(false);
        apex.record("a", 1.0);
        apex.record("b", 2.0);
        apex.reset_windows();
        assert_eq!(apex.stats("a").window_count, 0);
        assert_eq!(apex.stats("b").window_count, 0);
        assert_eq!(apex.stats("a").count, 1);
        assert_eq!(apex.stats("b").count, 1);
    }

    #[test]
    fn reset_clears() {
        let apex = Apex::new(true);
        apex.record("x", 1.0);
        apex.reset();
        assert_eq!(apex.stats("x"), TimerStats::default());
        assert_eq!(apex.chrome_trace_json(), "[]");
    }

    #[test]
    fn shared_across_threads() {
        let apex = Apex::new(false);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = apex.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    a.record("mt", 0.001);
                }
            }));
        }
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(apex.stats("mt").count, 400);
    }
}
