//! Localities, actions, and parcels — HPX's distributed layer, simulated
//! in-process.
//!
//! A real Octo-Tiger run places one HPX *locality* (process) per compute
//! node; octree sub-grids are distributed over localities, and neighbour
//! ghost-layer exchanges and FMM traversals happen via *actions* (remote
//! procedure calls) carried by *parcels*.  We have no Fugaku, so localities
//! here are N logical processes inside one OS process, each with its own
//! task pool, connected by an in-process transport that **meters every
//! parcel** (count + bytes) — the measurements behind the Section VII-B
//! communication-optimization experiment (Figure 8).
//!
//! Per DESIGN.md, this substitution preserves what the paper measures: the
//! *structure* of communication (which exchanges cross locality boundaries,
//! how many messages, how many bytes) is identical; only the wire is
//! simulated.  The `cluster` crate maps metered traffic onto interconnect
//! models (Tofu-D vs. InfiniBand) to recover time.

use crate::counters::Counters;
use crate::future::{Future, Promise};
use crate::runtime::Runtime;
use parking_lot::RwLock;
use std::any::Any;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;

/// Identifier of a logical locality (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalityId(pub usize);

impl std::fmt::Display for LocalityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "locality#{}", self.0)
    }
}

/// Untyped action payload.  In-process we pass `Box<dyn Any>` instead of
/// serialized bytes; the declared `size_bytes` stands in for the wire size
/// (used by counters and by the cluster-level interconnect models).
pub type Payload = Box<dyn Any + Send>;

/// An action handler: runs on the destination locality's task pool.
pub type Handler = Arc<dyn Fn(Payload, &Locality) -> Payload + Send + Sync>;

/// Registry of named actions, shared by all localities of a cluster
/// (HPX registers actions globally at static-init time; we register at
/// cluster construction).
#[derive(Default)]
pub struct ActionRegistry {
    handlers: RwLock<HashMap<&'static str, Handler>>,
}

impl ActionRegistry {
    /// Register `name`; replaces any previous handler with that name.
    pub fn register(
        &self,
        name: &'static str,
        handler: impl Fn(Payload, &Locality) -> Payload + Send + Sync + 'static,
    ) {
        self.handlers.write().insert(name, Arc::new(handler));
    }

    fn lookup(&self, name: &str) -> Option<Handler> {
        self.handlers.read().get(name).cloned()
    }
}

/// A parcel: an action invocation in flight to another locality.
pub struct Parcel {
    /// Action to invoke at the destination.
    pub action: &'static str,
    /// Argument payload.
    pub arg: Payload,
    /// Declared wire size of `arg` in bytes.
    pub size_bytes: usize,
    /// Completion promise fulfilled with the handler's result.
    reply: Promise<ArcPayload>,
    /// Originating locality (for diagnostics).
    pub source: LocalityId,
}

/// Results are shared (futures are cloneable), so the payload crosses the
/// reply path behind an `Arc`.
pub type ArcPayload = Arc<dyn Any + Send + Sync>;

struct Inbox {
    tx: mpsc::Sender<Parcel>,
}

/// One logical HPX locality: a task pool plus a parcel port.
pub struct Locality {
    id: LocalityId,
    runtime: Runtime,
    registry: Arc<ActionRegistry>,
    peers: RwLock<Vec<Inbox>>,
    counters: Counters,
}

impl Locality {
    /// This locality's id.
    pub fn id(&self) -> LocalityId {
        self.id
    }

    /// The task pool of this locality.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Parcel/task counters of this locality.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Invoke `action` on locality `dest` with `arg` (declared wire size
    /// `size_bytes`); returns a future for the handler's boxed result.
    ///
    /// A same-locality destination still takes the full parcel path — the
    /// *communication optimization* of the paper's Section VII-B is
    /// implemented above this layer (in `octree::ghost`) precisely because
    /// short-circuiting is an application-level decision there.
    pub fn apply_async(
        &self,
        dest: LocalityId,
        action: &'static str,
        arg: Payload,
        size_bytes: usize,
    ) -> Future<ArcPayload> {
        let (reply, future) = Promise::new_pair();
        Counters::bump(&self.counters.parcels_sent);
        Counters::add(&self.counters.parcel_bytes, size_bytes as u64);
        Counters::bump(&self.counters.futures_created);
        let parcel = Parcel {
            action,
            arg,
            size_bytes,
            reply,
            source: self.id,
        };
        let peers = self.peers.read();
        let inbox = peers
            .get(dest.0)
            .unwrap_or_else(|| panic!("unknown destination {dest}"));
        inbox
            .tx
            .send(parcel)
            .expect("destination locality has shut down");
        future
    }

    /// Record a remote-access that was satisfied by direct memory access on
    /// this locality (the Section VII-B optimization's fast path).
    pub fn note_local_direct_access(&self) {
        Counters::bump(&self.counters.local_direct_accesses);
    }
}

/// A simulated cluster: `n` localities, each with `workers` worker threads,
/// plus one parcel-pump thread per locality.
pub struct SimCluster {
    localities: Vec<Arc<Locality>>,
    registry: Arc<ActionRegistry>,
    pumps: Vec<std::thread::JoinHandle<()>>,
}

impl SimCluster {
    /// Build a cluster of `n` localities with `workers` task workers each.
    pub fn new(n: usize, workers: usize) -> Self {
        assert!(n > 0, "a cluster needs at least one locality");
        let registry = Arc::new(ActionRegistry::default());
        let mut rxs = Vec::with_capacity(n);
        let mut inboxes = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel::<Parcel>();
            inboxes.push(tx);
            rxs.push(rx);
        }
        let localities: Vec<Arc<Locality>> = (0..n)
            .map(|i| {
                Arc::new(Locality {
                    id: LocalityId(i),
                    runtime: Runtime::new(workers),
                    registry: registry.clone(),
                    peers: RwLock::new(inboxes.iter().map(|tx| Inbox { tx: tx.clone() }).collect()),
                    counters: Counters::new(),
                })
            })
            .collect();
        drop(inboxes); // pump threads hold the only receivers; senders live in peers

        let mut pumps = Vec::with_capacity(n);
        for (i, rx) in rxs.into_iter().enumerate() {
            let loc = localities[i].clone();
            pumps.push(
                std::thread::Builder::new()
                    .name(format!("hpx-parcelport-{i}"))
                    .spawn(move || parcel_pump(loc, rx))
                    .expect("failed to spawn parcel pump"),
            );
        }
        SimCluster {
            localities,
            registry,
            pumps,
        }
    }

    /// Number of localities.
    pub fn num_localities(&self) -> usize {
        self.localities.len()
    }

    /// Locality `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn locality(&self, i: usize) -> &Arc<Locality> {
        &self.localities[i]
    }

    /// All localities.
    pub fn localities(&self) -> &[Arc<Locality>] {
        &self.localities
    }

    /// Register an action on every locality of this cluster.
    pub fn register_action(
        &self,
        name: &'static str,
        handler: impl Fn(Payload, &Locality) -> Payload + Send + Sync + 'static,
    ) {
        self.registry.register(name, handler);
    }

    /// Aggregate counter snapshot over all localities.
    pub fn total_counters(&self) -> crate::counters::CountersSnapshot {
        let mut total = crate::counters::CountersSnapshot::default();
        for loc in &self.localities {
            let s = loc.counters().snapshot();
            total.parcels_sent += s.parcels_sent;
            total.parcel_bytes += s.parcel_bytes;
            total.local_direct_accesses += s.local_direct_accesses;
            total.futures_created += s.futures_created;
            let r = loc.runtime().counters().snapshot();
            total.tasks_spawned += r.tasks_spawned;
            total.tasks_executed += r.tasks_executed;
            total.tasks_stolen += r.tasks_stolen;
            total.worker_parks += r.worker_parks;
            total.continuations_attached += r.continuations_attached;
        }
        total
    }

    /// Stop parcel pumps and all locality runtimes.
    pub fn shutdown(mut self) {
        // Closing the senders ends each pump's recv loop.
        for loc in &self.localities {
            loc.peers.write().clear();
        }
        for pump in self.pumps.drain(..) {
            let _ = pump.join();
        }
        for loc in &self.localities {
            loc.runtime().shutdown();
        }
    }
}

fn parcel_pump(loc: Arc<Locality>, rx: mpsc::Receiver<Parcel>) {
    while let Ok(parcel) = rx.recv() {
        let handler = loc
            .registry
            .lookup(parcel.action)
            .unwrap_or_else(|| panic!("unregistered action '{}'", parcel.action));
        let loc2 = loc.clone();
        loc.runtime().spawn(move || {
            let result = handler(parcel.arg, &loc2);
            // Box<dyn Any + Send> -> Arc<dyn Any + Send + Sync>: handlers
            // return plain data; require Sync via a wrapper box.
            let arc: ArcPayload = Arc::new(SendBox(result));
            parcel.reply.set(arc);
        });
    }
}

/// Wrapper making a `Box<dyn Any + Send>` payload shareable behind an `Arc`.
/// Downcast with [`downcast_payload`].
pub struct SendBox(pub Payload);

// SAFETY: the inner payload is only ever accessed by value-consuming
// `downcast` or by shared reference; `SendBox` exposes no interior
// mutability, so `Sync` requires only `Send` of the payload (guaranteed).
unsafe impl Sync for SendBox {}

/// Downcast an action-reply payload to its concrete type.
///
/// Returns `None` if the type does not match.
pub fn downcast_payload<T: 'static>(payload: &ArcPayload) -> Option<&T> {
    payload
        .downcast_ref::<SendBox>()
        .and_then(|sb| sb.0.downcast_ref::<T>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_roundtrip_with_typed_payload() {
        let cluster = SimCluster::new(3, 1);
        cluster.register_action("double", |arg, _loc| {
            let x = *arg.downcast::<u64>().expect("want u64");
            Box::new(x * 2)
        });
        let f = cluster
            .locality(0)
            .apply_async(LocalityId(2), "double", Box::new(21u64), 8);
        let reply = f.get();
        assert_eq!(*downcast_payload::<u64>(&reply).unwrap(), 42);
        cluster.shutdown();
    }

    #[test]
    fn parcels_are_metered() {
        let cluster = SimCluster::new(2, 1);
        cluster.register_action("noop", |_arg, _loc| Box::new(()));
        for _ in 0..5 {
            cluster
                .locality(0)
                .apply_async(LocalityId(1), "noop", Box::new(()), 100)
                .wait();
        }
        let s = cluster.locality(0).counters().snapshot();
        assert_eq!(s.parcels_sent, 5);
        assert_eq!(s.parcel_bytes, 500);
        cluster.shutdown();
    }

    #[test]
    fn handler_runs_on_destination_locality() {
        let cluster = SimCluster::new(2, 1);
        cluster.register_action("whoami", |_arg, loc| Box::new(loc.id().0));
        let f = cluster
            .locality(0)
            .apply_async(LocalityId(1), "whoami", Box::new(()), 0);
        let reply = f.get();
        assert_eq!(*downcast_payload::<usize>(&reply).unwrap(), 1);
        cluster.shutdown();
    }

    #[test]
    fn self_send_works() {
        let cluster = SimCluster::new(1, 1);
        cluster.register_action("inc", |arg, _| {
            Box::new(*arg.downcast::<i32>().unwrap() + 1)
        });
        let f = cluster
            .locality(0)
            .apply_async(LocalityId(0), "inc", Box::new(1i32), 4);
        assert_eq!(*downcast_payload::<i32>(&f.get()).unwrap(), 2);
        cluster.shutdown();
    }

    #[test]
    fn many_concurrent_actions() {
        let cluster = SimCluster::new(4, 2);
        cluster.register_action("sq", |arg, _| {
            let x = *arg.downcast::<u64>().unwrap();
            Box::new(x * x)
        });
        let futures: Vec<_> = (0..64u64)
            .map(|i| {
                cluster.locality((i % 4) as usize).apply_async(
                    LocalityId(((i + 1) % 4) as usize),
                    "sq",
                    Box::new(i),
                    8,
                )
            })
            .collect();
        for (i, f) in futures.iter().enumerate() {
            let reply = f.get();
            assert_eq!(*downcast_payload::<u64>(&reply).unwrap(), (i * i) as u64);
        }
        cluster.shutdown();
    }

    #[test]
    fn local_direct_access_counter() {
        let cluster = SimCluster::new(1, 1);
        cluster.locality(0).note_local_direct_access();
        cluster.locality(0).note_local_direct_access();
        assert_eq!(
            cluster
                .locality(0)
                .counters()
                .snapshot()
                .local_direct_accesses,
            2
        );
        cluster.shutdown();
    }
}
