//! HPX-style performance counters.
//!
//! HPX exposes a hierarchical performance-counter interface
//! (`/threads{locality#0/total}/count/cumulative`, …) that the paper's
//! conclusion names as the tool for future performance analysis (together
//! with APEX).  This module provides the equivalent observability for the
//! Rust runtime: cheap relaxed atomic counters, snapshot/reset semantics,
//! and stable names.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative counters for one runtime or one locality.
///
/// All increments use `Ordering::Relaxed`: the counters are monotonic
/// statistics, not synchronization devices.
#[derive(Debug, Default)]
pub struct Counters {
    /// Tasks handed to the scheduler (`hpx::async`, continuations, parcels).
    pub tasks_spawned: AtomicU64,
    /// Tasks that finished executing.
    pub tasks_executed: AtomicU64,
    /// Tasks obtained by stealing from another worker's deque.
    pub tasks_stolen: AtomicU64,
    /// Times a worker went to sleep for lack of work (starvation signal —
    /// the quantity the paper's Section VII-C multipole splitting attacks).
    pub worker_parks: AtomicU64,
    /// Futures created.
    pub futures_created: AtomicU64,
    /// Continuations attached via `Future::then`.
    pub continuations_attached: AtomicU64,
    /// Parcels sent to a *different* locality.
    pub parcels_sent: AtomicU64,
    /// Payload bytes in those parcels.
    pub parcel_bytes: AtomicU64,
    /// Remote-action invocations that were short-circuited locally
    /// (the Section VII-B direct-memory-access communication optimization).
    pub local_direct_accesses: AtomicU64,
    /// Blocked-worker watchdog fires: a worker sat on an unresolved future
    /// past `HPX_WATCHDOG_MS`/`set_blocked_wait_timeout` with nothing to help
    /// with.  Bumped just before the watchdog panic unwinds, so post-mortem
    /// counter dumps show how often the deadlock detector tripped.
    pub watchdog_fires: AtomicU64,
}

impl Counters {
    /// New zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            tasks_spawned: self.tasks_spawned.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            worker_parks: self.worker_parks.load(Ordering::Relaxed),
            futures_created: self.futures_created.load(Ordering::Relaxed),
            continuations_attached: self.continuations_attached.load(Ordering::Relaxed),
            parcels_sent: self.parcels_sent.load(Ordering::Relaxed),
            parcel_bytes: self.parcel_bytes.load(Ordering::Relaxed),
            local_direct_accesses: self.local_direct_accesses.load(Ordering::Relaxed),
            watchdog_fires: self.watchdog_fires.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero (HPX's `reset_active_counters`).
    pub fn reset(&self) {
        self.tasks_spawned.store(0, Ordering::Relaxed);
        self.tasks_executed.store(0, Ordering::Relaxed);
        self.tasks_stolen.store(0, Ordering::Relaxed);
        self.worker_parks.store(0, Ordering::Relaxed);
        self.futures_created.store(0, Ordering::Relaxed);
        self.continuations_attached.store(0, Ordering::Relaxed);
        self.parcels_sent.store(0, Ordering::Relaxed);
        self.parcel_bytes.store(0, Ordering::Relaxed);
        self.local_direct_accesses.store(0, Ordering::Relaxed);
        self.watchdog_fires.store(0, Ordering::Relaxed);
    }
}

/// Plain-data snapshot of [`Counters`], suitable for diffing across a
/// measured region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    pub tasks_spawned: u64,
    pub tasks_executed: u64,
    pub tasks_stolen: u64,
    pub worker_parks: u64,
    pub futures_created: u64,
    pub continuations_attached: u64,
    pub parcels_sent: u64,
    pub parcel_bytes: u64,
    pub local_direct_accesses: u64,
    pub watchdog_fires: u64,
}

impl CountersSnapshot {
    /// Counter deltas `self - earlier` (saturating, counters are monotonic).
    pub fn since(&self, earlier: &CountersSnapshot) -> CountersSnapshot {
        CountersSnapshot {
            tasks_spawned: self.tasks_spawned.saturating_sub(earlier.tasks_spawned),
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            tasks_stolen: self.tasks_stolen.saturating_sub(earlier.tasks_stolen),
            worker_parks: self.worker_parks.saturating_sub(earlier.worker_parks),
            futures_created: self.futures_created.saturating_sub(earlier.futures_created),
            continuations_attached: self
                .continuations_attached
                .saturating_sub(earlier.continuations_attached),
            parcels_sent: self.parcels_sent.saturating_sub(earlier.parcels_sent),
            parcel_bytes: self.parcel_bytes.saturating_sub(earlier.parcel_bytes),
            local_direct_accesses: self
                .local_direct_accesses
                .saturating_sub(earlier.local_direct_accesses),
            watchdog_fires: self.watchdog_fires.saturating_sub(earlier.watchdog_fires),
        }
    }
}

impl std::fmt::Display for CountersSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "/threads/count/cumulative        {}",
            self.tasks_executed
        )?;
        writeln!(f, "/threads/count/spawned           {}", self.tasks_spawned)?;
        writeln!(f, "/threads/count/stolen            {}", self.tasks_stolen)?;
        writeln!(f, "/threads/count/parked            {}", self.worker_parks)?;
        writeln!(
            f,
            "/lcos/count/futures              {}",
            self.futures_created
        )?;
        writeln!(
            f,
            "/lcos/count/continuations        {}",
            self.continuations_attached
        )?;
        writeln!(f, "/parcels/count/sent              {}", self.parcels_sent)?;
        writeln!(f, "/parcels/bytes/sent              {}", self.parcel_bytes)?;
        writeln!(
            f,
            "/parcels/count/local-direct      {}",
            self.local_direct_accesses
        )?;
        write!(
            f,
            "/threads/count/watchdog-fires    {}",
            self.watchdog_fires
        )
    }
}

// ---------------------------------------------------------------------
// Scratch-buffer recycling counters
// ---------------------------------------------------------------------

/// Process-wide counters of the CPPuddle-style scratch-buffer recycling
/// subsystem (`kokkos-rs`'s `BufferPool`), exported in HPX counter style as
/// `/octotiger/scratch/{hits,misses,bytes-in-use,high-water}`.
///
/// Unlike [`Counters`], these are global rather than per-locality: buffer
/// pools are shared across the simulated localities of one process exactly
/// as CPPuddle's allocator is shared across an HPX node.  Pools keep their
/// own per-pool statistics too; this block is the aggregated observability
/// surface the counter dumps print.
#[derive(Debug, Default)]
pub struct ScratchCounters {
    /// Checkouts served from a free list (no heap allocation).
    pub hits: AtomicU64,
    /// Checkouts that had to allocate (pool warm-up, or a new size bucket).
    pub misses: AtomicU64,
    /// Bytes currently checked out of pools (gauge, not monotonic).
    pub bytes_in_use: AtomicU64,
    /// Maximum `bytes_in_use` ever observed.
    pub high_water: AtomicU64,
}

impl ScratchCounters {
    /// Record a free-list hit.
    pub fn note_hit(&self) {
        Counters::bump(&self.hits);
    }

    /// Record an allocating miss.
    pub fn note_miss(&self) {
        Counters::bump(&self.misses);
    }

    /// Record `bytes` leaving the free lists (checked out), updating the
    /// high-water mark.
    pub fn add_in_use(&self, bytes: u64) {
        let now = self.bytes_in_use.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Record `bytes` returning to the free lists (checked back in).
    pub fn sub_in_use(&self, bytes: u64) {
        self.bytes_in_use.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot.
    pub fn snapshot(&self) -> ScratchSnapshot {
        ScratchSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_in_use: self.bytes_in_use.load(Ordering::Relaxed),
            high_water: self.high_water.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter (HPX's `reset_active_counters`).
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bytes_in_use.store(0, Ordering::Relaxed);
        self.high_water.store(0, Ordering::Relaxed);
    }
}

/// The process-global [`ScratchCounters`] block every buffer pool reports
/// into.
pub fn scratch_counters() -> &'static ScratchCounters {
    static GLOBAL: ScratchCounters = ScratchCounters {
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        bytes_in_use: AtomicU64::new(0),
        high_water: AtomicU64::new(0),
    };
    &GLOBAL
}

/// Plain-data snapshot of [`ScratchCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub bytes_in_use: u64,
    pub high_water: u64,
}

impl ScratchSnapshot {
    /// Monotonic-counter deltas `self - earlier` (hits/misses saturate;
    /// the gauges are carried over as-is).
    pub fn since(&self, earlier: &ScratchSnapshot) -> ScratchSnapshot {
        ScratchSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bytes_in_use: self.bytes_in_use,
            high_water: self.high_water,
        }
    }
}

impl std::fmt::Display for ScratchSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "/octotiger/scratch/hits          {}", self.hits)?;
        writeln!(f, "/octotiger/scratch/misses        {}", self.misses)?;
        writeln!(f, "/octotiger/scratch/bytes-in-use  {}", self.bytes_in_use)?;
        write!(f, "/octotiger/scratch/high-water    {}", self.high_water)
    }
}

// ---------------------------------------------------------------------
// Gravity interaction-plan counters
// ---------------------------------------------------------------------

/// Process-wide counters of the FMM interaction-plan cache: how often a
/// gravity solve reused a cached dual-tree traversal (`hit`) versus having
/// to re-traverse because the tree topology or solver options changed
/// (`rebuild`).  Exported in HPX counter style as
/// `/octotiger/gravity/plan-{hits,rebuilds}`.
///
/// Like [`ScratchCounters`] these are global: plan caches live on solver
/// clones that share one cache per simulation, and the counter dump
/// aggregates across all of them.  Per-solver exact counts are available
/// from the solver itself.
#[derive(Debug, Default)]
pub struct GravityPlanCounters {
    /// Solves that reused a cached plan (zero traversal work).
    pub hits: AtomicU64,
    /// Solves that rebuilt the plan with a fresh dual-tree traversal.
    pub rebuilds: AtomicU64,
}

impl GravityPlanCounters {
    /// Record a plan-cache hit.
    pub fn note_hit(&self) {
        Counters::bump(&self.hits);
    }

    /// Record a plan rebuild (fresh traversal).
    pub fn note_rebuild(&self) {
        Counters::bump(&self.rebuilds);
    }

    /// Consistent-enough snapshot.
    pub fn snapshot(&self) -> GravityPlanSnapshot {
        GravityPlanSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
        }
    }

    /// Reset both counters (HPX's `reset_active_counters`).
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.rebuilds.store(0, Ordering::Relaxed);
    }
}

/// The process-global [`GravityPlanCounters`] block every plan cache
/// reports into.
pub fn gravity_plan_counters() -> &'static GravityPlanCounters {
    static GLOBAL: GravityPlanCounters = GravityPlanCounters {
        hits: AtomicU64::new(0),
        rebuilds: AtomicU64::new(0),
    };
    &GLOBAL
}

/// Plain-data snapshot of [`GravityPlanCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GravityPlanSnapshot {
    pub hits: u64,
    pub rebuilds: u64,
}

impl GravityPlanSnapshot {
    /// Counter deltas `self - earlier` (saturating, counters are monotonic).
    pub fn since(&self, earlier: &GravityPlanSnapshot) -> GravityPlanSnapshot {
        GravityPlanSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            rebuilds: self.rebuilds.saturating_sub(earlier.rebuilds),
        }
    }
}

impl std::fmt::Display for GravityPlanSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "/octotiger/gravity/plan-hits     {}", self.hits)?;
        write!(f, "/octotiger/gravity/plan-rebuilds {}", self.rebuilds)
    }
}

// ---------------------------------------------------------------------
// Mid-run regrid counters
// ---------------------------------------------------------------------

/// Process-wide counters of mid-run adaptive regridding, exported in HPX
/// counter style as `/octotiger/regrid/{refined,derefined,plan-patched,
/// plan-rebuilt}`.  The driver bumps `refined`/`derefined` once per leaf
/// changed by a criterion pass; the plan caches bump `plan-patched` every
/// time a regrid was absorbed by a subtree-local patch (interaction *or*
/// halo plan) and `plan-rebuilt` every time a topology change forced a
/// wholesale rebuild instead — the ratio is the observable payoff of
/// incremental invalidation.
#[derive(Debug, Default)]
pub struct RegridCounters {
    /// Leaves refined by criterion regrids.
    pub refined: AtomicU64,
    /// Interior nodes collapsed back into leaves by criterion regrids.
    pub derefined: AtomicU64,
    /// Cached plans patched subtree-locally across a regrid.
    pub plan_patched: AtomicU64,
    /// Cached plans rebuilt wholesale after a topology change.
    pub plan_rebuilt: AtomicU64,
}

impl RegridCounters {
    /// Record `n` leaves refined in one criterion pass.
    pub fn note_refined(&self, n: u64) {
        self.refined.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` interiors derefined in one criterion pass.
    pub fn note_derefined(&self, n: u64) {
        self.derefined.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a plan answered by a subtree-local patch.
    pub fn note_plan_patched(&self) {
        Counters::bump(&self.plan_patched);
    }

    /// Record a plan rebuilt wholesale after a topology change.
    pub fn note_plan_rebuilt(&self) {
        Counters::bump(&self.plan_rebuilt);
    }

    /// Consistent-enough snapshot.
    pub fn snapshot(&self) -> RegridSnapshot {
        RegridSnapshot {
            refined: self.refined.load(Ordering::Relaxed),
            derefined: self.derefined.load(Ordering::Relaxed),
            plan_patched: self.plan_patched.load(Ordering::Relaxed),
            plan_rebuilt: self.plan_rebuilt.load(Ordering::Relaxed),
        }
    }

    /// Reset all four counters (HPX's `reset_active_counters`).
    pub fn reset(&self) {
        self.refined.store(0, Ordering::Relaxed);
        self.derefined.store(0, Ordering::Relaxed);
        self.plan_patched.store(0, Ordering::Relaxed);
        self.plan_rebuilt.store(0, Ordering::Relaxed);
    }
}

/// The process-global [`RegridCounters`] block the driver and the plan
/// caches report into.
pub fn regrid_counters() -> &'static RegridCounters {
    static GLOBAL: RegridCounters = RegridCounters {
        refined: AtomicU64::new(0),
        derefined: AtomicU64::new(0),
        plan_patched: AtomicU64::new(0),
        plan_rebuilt: AtomicU64::new(0),
    };
    &GLOBAL
}

/// Plain-data snapshot of [`RegridCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegridSnapshot {
    pub refined: u64,
    pub derefined: u64,
    pub plan_patched: u64,
    pub plan_rebuilt: u64,
}

impl RegridSnapshot {
    /// Counter deltas `self - earlier` (saturating, counters are monotonic).
    pub fn since(&self, earlier: &RegridSnapshot) -> RegridSnapshot {
        RegridSnapshot {
            refined: self.refined.saturating_sub(earlier.refined),
            derefined: self.derefined.saturating_sub(earlier.derefined),
            plan_patched: self.plan_patched.saturating_sub(earlier.plan_patched),
            plan_rebuilt: self.plan_rebuilt.saturating_sub(earlier.plan_rebuilt),
        }
    }
}

impl std::fmt::Display for RegridSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "/octotiger/regrid/refined        {}", self.refined)?;
        writeln!(f, "/octotiger/regrid/derefined      {}", self.derefined)?;
        writeln!(f, "/octotiger/regrid/plan-patched   {}", self.plan_patched)?;
        write!(f, "/octotiger/regrid/plan-rebuilt   {}", self.plan_rebuilt)
    }
}

// ---------------------------------------------------------------------
// Online granularity-tuner counters
// ---------------------------------------------------------------------

/// Process-wide counters of the online granularity tuner, exported in HPX
/// counter style as `/octotiger/tuner/{probes,moves,frozen,
/// regressions-rejected}`.  `probes` counts observation windows spent at a
/// candidate configuration, `moves` counts accepted configuration changes
/// (the candidate beat the incumbent beyond the hysteresis band), `frozen`
/// counts kernel families that finished their hill-climb, and
/// `regressions-rejected` counts candidates reverted because they did not
/// clear the band — the tuner's evidence that hysteresis is doing work.
#[derive(Debug, Default)]
pub struct TunerCounters {
    /// Observation windows spent at a probe configuration.
    pub probes: AtomicU64,
    /// Accepted configuration moves.
    pub moves: AtomicU64,
    /// Kernel families frozen after a converged hill-climb.
    pub frozen: AtomicU64,
    /// Probe configurations reverted for not clearing the hysteresis band.
    pub regressions_rejected: AtomicU64,
}

impl TunerCounters {
    /// Record one probe window.
    pub fn note_probe(&self) {
        Counters::bump(&self.probes);
    }

    /// Record one accepted configuration move.
    pub fn note_move(&self) {
        Counters::bump(&self.moves);
    }

    /// Record one family freezing.
    pub fn note_frozen(&self) {
        Counters::bump(&self.frozen);
    }

    /// Record one rejected (reverted) probe.
    pub fn note_regression_rejected(&self) {
        Counters::bump(&self.regressions_rejected);
    }

    /// Consistent-enough snapshot.
    pub fn snapshot(&self) -> TunerCountersSnapshot {
        TunerCountersSnapshot {
            probes: self.probes.load(Ordering::Relaxed),
            moves: self.moves.load(Ordering::Relaxed),
            frozen: self.frozen.load(Ordering::Relaxed),
            regressions_rejected: self.regressions_rejected.load(Ordering::Relaxed),
        }
    }

    /// Reset all four counters (HPX's `reset_active_counters`).
    pub fn reset(&self) {
        self.probes.store(0, Ordering::Relaxed);
        self.moves.store(0, Ordering::Relaxed);
        self.frozen.store(0, Ordering::Relaxed);
        self.regressions_rejected.store(0, Ordering::Relaxed);
    }
}

/// The process-global [`TunerCounters`] block every [`crate::tuner::Tuner`]
/// instance reports into.
pub fn tuner_counters() -> &'static TunerCounters {
    static GLOBAL: TunerCounters = TunerCounters {
        probes: AtomicU64::new(0),
        moves: AtomicU64::new(0),
        frozen: AtomicU64::new(0),
        regressions_rejected: AtomicU64::new(0),
    };
    &GLOBAL
}

/// Plain-data snapshot of [`TunerCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunerCountersSnapshot {
    pub probes: u64,
    pub moves: u64,
    pub frozen: u64,
    pub regressions_rejected: u64,
}

impl TunerCountersSnapshot {
    /// Counter deltas `self - earlier` (saturating, counters are monotonic).
    pub fn since(&self, earlier: &TunerCountersSnapshot) -> TunerCountersSnapshot {
        TunerCountersSnapshot {
            probes: self.probes.saturating_sub(earlier.probes),
            moves: self.moves.saturating_sub(earlier.moves),
            frozen: self.frozen.saturating_sub(earlier.frozen),
            regressions_rejected: self
                .regressions_rejected
                .saturating_sub(earlier.regressions_rejected),
        }
    }
}

impl std::fmt::Display for TunerCountersSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "/octotiger/tuner/probes               {}", self.probes)?;
        writeln!(f, "/octotiger/tuner/moves                {}", self.moves)?;
        writeln!(f, "/octotiger/tuner/frozen               {}", self.frozen)?;
        write!(
            f,
            "/octotiger/tuner/regressions-rejected {}",
            self.regressions_rejected
        )
    }
}

// ---------------------------------------------------------------------
// Distributed parcel-traffic counters
// ---------------------------------------------------------------------

/// The kind of cross-locality traffic a parcel carries.
///
/// Every class maps to one leg of the distributed stepper: ghost-zone
/// pack/unpack payloads, the FMM halo traffic of the gravity solve
/// (multipole up-pass, M2L flat-source gathers, local-expansion down-pass,
/// P2P point-mass contributions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParcelClass {
    /// Ghost-zone payloads (`ghost_pack` actions).
    Ghost,
    /// Multipole moments sent child-owner → parent-owner in the up-pass.
    MultipoleUp,
    /// Multipole moments gathered for remote M2L source slots.
    M2l,
    /// Local expansions sent parent-owner → child-owner in the down-pass.
    MultipoleDown,
    /// Point masses for remote P2P source leaves.
    P2p,
}

impl ParcelClass {
    /// Stable counter-path segment for this class.
    pub fn name(self) -> &'static str {
        match self {
            ParcelClass::Ghost => "ghost",
            ParcelClass::MultipoleUp => "multipole-up",
            ParcelClass::M2l => "m2l",
            ParcelClass::MultipoleDown => "multipole-down",
            ParcelClass::P2p => "p2p",
        }
    }
}

/// Process-wide counters of the distributed stepper's typed parcel
/// traffic, exported in HPX counter style as
/// `/octotiger/parcels/{class}/{count,bytes}` per [`ParcelClass`].
///
/// Like [`ScratchCounters`] these are global: every parcel transport in
/// the process reports into one block, so "the N=1 reference path sends
/// zero parcels" is a single-snapshot assertion.  Per-locality raw parcel
/// counts remain on each locality's [`Counters`].
#[derive(Debug, Default)]
pub struct ParcelCounters {
    /// Ghost-zone parcels / payload bytes.
    pub ghost_count: AtomicU64,
    pub ghost_bytes: AtomicU64,
    /// Up-pass multipole parcels / bytes.
    pub multipole_up_count: AtomicU64,
    pub multipole_up_bytes: AtomicU64,
    /// M2L halo-gather parcels / bytes.
    pub m2l_count: AtomicU64,
    pub m2l_bytes: AtomicU64,
    /// Down-pass local-expansion parcels / bytes.
    pub multipole_down_count: AtomicU64,
    pub multipole_down_bytes: AtomicU64,
    /// P2P point-mass parcels / bytes.
    pub p2p_count: AtomicU64,
    pub p2p_bytes: AtomicU64,
}

impl ParcelCounters {
    /// Record one parcel of `class` carrying `bytes` payload bytes.
    pub fn note_send(&self, class: ParcelClass, bytes: u64) {
        let (count, total) = match class {
            ParcelClass::Ghost => (&self.ghost_count, &self.ghost_bytes),
            ParcelClass::MultipoleUp => (&self.multipole_up_count, &self.multipole_up_bytes),
            ParcelClass::M2l => (&self.m2l_count, &self.m2l_bytes),
            ParcelClass::MultipoleDown => (&self.multipole_down_count, &self.multipole_down_bytes),
            ParcelClass::P2p => (&self.p2p_count, &self.p2p_bytes),
        };
        Counters::bump(count);
        Counters::add(total, bytes);
    }

    /// Consistent-enough snapshot.
    pub fn snapshot(&self) -> ParcelSnapshot {
        ParcelSnapshot {
            ghost_count: self.ghost_count.load(Ordering::Relaxed),
            ghost_bytes: self.ghost_bytes.load(Ordering::Relaxed),
            multipole_up_count: self.multipole_up_count.load(Ordering::Relaxed),
            multipole_up_bytes: self.multipole_up_bytes.load(Ordering::Relaxed),
            m2l_count: self.m2l_count.load(Ordering::Relaxed),
            m2l_bytes: self.m2l_bytes.load(Ordering::Relaxed),
            multipole_down_count: self.multipole_down_count.load(Ordering::Relaxed),
            multipole_down_bytes: self.multipole_down_bytes.load(Ordering::Relaxed),
            p2p_count: self.p2p_count.load(Ordering::Relaxed),
            p2p_bytes: self.p2p_bytes.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter (HPX's `reset_active_counters`).
    pub fn reset(&self) {
        self.ghost_count.store(0, Ordering::Relaxed);
        self.ghost_bytes.store(0, Ordering::Relaxed);
        self.multipole_up_count.store(0, Ordering::Relaxed);
        self.multipole_up_bytes.store(0, Ordering::Relaxed);
        self.m2l_count.store(0, Ordering::Relaxed);
        self.m2l_bytes.store(0, Ordering::Relaxed);
        self.multipole_down_count.store(0, Ordering::Relaxed);
        self.multipole_down_bytes.store(0, Ordering::Relaxed);
        self.p2p_count.store(0, Ordering::Relaxed);
        self.p2p_bytes.store(0, Ordering::Relaxed);
    }
}

/// The process-global [`ParcelCounters`] block every parcel transport
/// reports into.
pub fn parcel_counters() -> &'static ParcelCounters {
    static GLOBAL: ParcelCounters = ParcelCounters {
        ghost_count: AtomicU64::new(0),
        ghost_bytes: AtomicU64::new(0),
        multipole_up_count: AtomicU64::new(0),
        multipole_up_bytes: AtomicU64::new(0),
        m2l_count: AtomicU64::new(0),
        m2l_bytes: AtomicU64::new(0),
        multipole_down_count: AtomicU64::new(0),
        multipole_down_bytes: AtomicU64::new(0),
        p2p_count: AtomicU64::new(0),
        p2p_bytes: AtomicU64::new(0),
    };
    &GLOBAL
}

/// Plain-data snapshot of [`ParcelCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParcelSnapshot {
    pub ghost_count: u64,
    pub ghost_bytes: u64,
    pub multipole_up_count: u64,
    pub multipole_up_bytes: u64,
    pub m2l_count: u64,
    pub m2l_bytes: u64,
    pub multipole_down_count: u64,
    pub multipole_down_bytes: u64,
    pub p2p_count: u64,
    pub p2p_bytes: u64,
}

impl ParcelSnapshot {
    /// Counter deltas `self - earlier` (saturating, counters are monotonic).
    pub fn since(&self, earlier: &ParcelSnapshot) -> ParcelSnapshot {
        ParcelSnapshot {
            ghost_count: self.ghost_count.saturating_sub(earlier.ghost_count),
            ghost_bytes: self.ghost_bytes.saturating_sub(earlier.ghost_bytes),
            multipole_up_count: self
                .multipole_up_count
                .saturating_sub(earlier.multipole_up_count),
            multipole_up_bytes: self
                .multipole_up_bytes
                .saturating_sub(earlier.multipole_up_bytes),
            m2l_count: self.m2l_count.saturating_sub(earlier.m2l_count),
            m2l_bytes: self.m2l_bytes.saturating_sub(earlier.m2l_bytes),
            multipole_down_count: self
                .multipole_down_count
                .saturating_sub(earlier.multipole_down_count),
            multipole_down_bytes: self
                .multipole_down_bytes
                .saturating_sub(earlier.multipole_down_bytes),
            p2p_count: self.p2p_count.saturating_sub(earlier.p2p_count),
            p2p_bytes: self.p2p_bytes.saturating_sub(earlier.p2p_bytes),
        }
    }

    /// Total parcels across every class.
    pub fn total_count(&self) -> u64 {
        self.ghost_count
            + self.multipole_up_count
            + self.m2l_count
            + self.multipole_down_count
            + self.p2p_count
    }

    /// Total payload bytes across every class.
    pub fn total_bytes(&self) -> u64 {
        self.ghost_bytes
            + self.multipole_up_bytes
            + self.m2l_bytes
            + self.multipole_down_bytes
            + self.p2p_bytes
    }

    /// Parcels of the gravity halo classes only (everything but ghosts).
    pub fn gravity_count(&self) -> u64 {
        self.multipole_up_count + self.m2l_count + self.multipole_down_count + self.p2p_count
    }
}

impl std::fmt::Display for ParcelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "/octotiger/parcels/ghost/count           {}",
            self.ghost_count
        )?;
        writeln!(
            f,
            "/octotiger/parcels/ghost/bytes           {}",
            self.ghost_bytes
        )?;
        writeln!(
            f,
            "/octotiger/parcels/multipole-up/count    {}",
            self.multipole_up_count
        )?;
        writeln!(
            f,
            "/octotiger/parcels/multipole-up/bytes    {}",
            self.multipole_up_bytes
        )?;
        writeln!(
            f,
            "/octotiger/parcels/m2l/count             {}",
            self.m2l_count
        )?;
        writeln!(
            f,
            "/octotiger/parcels/m2l/bytes             {}",
            self.m2l_bytes
        )?;
        writeln!(
            f,
            "/octotiger/parcels/multipole-down/count  {}",
            self.multipole_down_count
        )?;
        writeln!(
            f,
            "/octotiger/parcels/multipole-down/bytes  {}",
            self.multipole_down_bytes
        )?;
        writeln!(
            f,
            "/octotiger/parcels/p2p/count             {}",
            self.p2p_count
        )?;
        write!(
            f,
            "/octotiger/parcels/p2p/bytes             {}",
            self.p2p_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_add_snapshot() {
        let c = Counters::new();
        Counters::bump(&c.tasks_spawned);
        Counters::bump(&c.tasks_spawned);
        Counters::add(&c.parcel_bytes, 1024);
        let s = c.snapshot();
        assert_eq!(s.tasks_spawned, 2);
        assert_eq!(s.parcel_bytes, 1024);
        assert_eq!(s.tasks_executed, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = Counters::new();
        Counters::add(&c.parcels_sent, 5);
        c.reset();
        assert_eq!(c.snapshot(), CountersSnapshot::default());
    }

    #[test]
    fn since_computes_deltas() {
        let a = CountersSnapshot {
            tasks_spawned: 10,
            ..Default::default()
        };
        let b = CountersSnapshot {
            tasks_spawned: 25,
            ..Default::default()
        };
        assert_eq!(b.since(&a).tasks_spawned, 15);
        // Saturates instead of panicking if snapshots are swapped.
        assert_eq!(a.since(&b).tasks_spawned, 0);
    }

    #[test]
    fn display_contains_hpx_style_paths() {
        let c = Counters::new();
        let text = format!("{}", c.snapshot());
        assert!(text.contains("/threads/count/cumulative"));
        assert!(text.contains("/parcels/bytes/sent"));
    }

    #[test]
    fn gravity_plan_counters_count_and_display() {
        let c = GravityPlanCounters::default();
        c.note_rebuild();
        c.note_hit();
        c.note_hit();
        let s = c.snapshot();
        assert_eq!(s.hits, 2);
        assert_eq!(s.rebuilds, 1);
        let text = format!("{s}");
        assert!(text.contains("/octotiger/gravity/plan-hits"));
        assert!(text.contains("/octotiger/gravity/plan-rebuilds"));
        c.reset();
        assert_eq!(c.snapshot(), GravityPlanSnapshot::default());
    }

    #[test]
    fn gravity_plan_snapshot_deltas_saturate() {
        let a = GravityPlanSnapshot {
            hits: 3,
            rebuilds: 1,
        };
        let b = GravityPlanSnapshot {
            hits: 9,
            rebuilds: 2,
        };
        assert_eq!(
            b.since(&a),
            GravityPlanSnapshot {
                hits: 6,
                rebuilds: 1
            }
        );
        assert_eq!(a.since(&b), GravityPlanSnapshot::default());
    }

    #[test]
    fn regrid_counters_count_and_display() {
        let c = RegridCounters::default();
        c.note_refined(5);
        c.note_derefined(2);
        c.note_plan_patched();
        c.note_plan_patched();
        c.note_plan_rebuilt();
        let s = c.snapshot();
        assert_eq!(s.refined, 5);
        assert_eq!(s.derefined, 2);
        assert_eq!(s.plan_patched, 2);
        assert_eq!(s.plan_rebuilt, 1);
        let text = format!("{s}");
        assert!(text.contains("/octotiger/regrid/refined"));
        assert!(text.contains("/octotiger/regrid/derefined"));
        assert!(text.contains("/octotiger/regrid/plan-patched"));
        assert!(text.contains("/octotiger/regrid/plan-rebuilt"));
        c.reset();
        assert_eq!(c.snapshot(), RegridSnapshot::default());
    }

    #[test]
    fn regrid_snapshot_deltas_saturate() {
        let a = RegridSnapshot {
            refined: 3,
            plan_patched: 1,
            ..Default::default()
        };
        let b = RegridSnapshot {
            refined: 8,
            derefined: 2,
            plan_patched: 4,
            plan_rebuilt: 1,
        };
        let d = b.since(&a);
        assert_eq!((d.refined, d.derefined), (5, 2));
        assert_eq!((d.plan_patched, d.plan_rebuilt), (3, 1));
        assert_eq!(a.since(&b), RegridSnapshot::default());
    }

    #[test]
    fn tuner_counters_count_and_display() {
        let c = TunerCounters::default();
        c.note_probe();
        c.note_probe();
        c.note_probe();
        c.note_move();
        c.note_frozen();
        c.note_regression_rejected();
        c.note_regression_rejected();
        let s = c.snapshot();
        assert_eq!(s.probes, 3);
        assert_eq!(s.moves, 1);
        assert_eq!(s.frozen, 1);
        assert_eq!(s.regressions_rejected, 2);
        let text = format!("{s}");
        assert!(text.contains("/octotiger/tuner/probes"));
        assert!(text.contains("/octotiger/tuner/moves"));
        assert!(text.contains("/octotiger/tuner/frozen"));
        assert!(text.contains("/octotiger/tuner/regressions-rejected"));
        c.reset();
        assert_eq!(c.snapshot(), TunerCountersSnapshot::default());
    }

    #[test]
    fn tuner_snapshot_deltas_saturate() {
        let a = TunerCountersSnapshot {
            probes: 4,
            moves: 1,
            ..Default::default()
        };
        let b = TunerCountersSnapshot {
            probes: 9,
            moves: 3,
            frozen: 2,
            regressions_rejected: 1,
        };
        let d = b.since(&a);
        assert_eq!((d.probes, d.moves), (5, 2));
        assert_eq!((d.frozen, d.regressions_rejected), (2, 1));
        assert_eq!(a.since(&b), TunerCountersSnapshot::default());
    }

    #[test]
    fn parcel_counters_count_per_class_and_display() {
        let c = ParcelCounters::default();
        c.note_send(ParcelClass::Ghost, 128);
        c.note_send(ParcelClass::Ghost, 64);
        c.note_send(ParcelClass::M2l, 320);
        c.note_send(ParcelClass::MultipoleUp, 320);
        c.note_send(ParcelClass::MultipoleDown, 320);
        c.note_send(ParcelClass::P2p, 96);
        let s = c.snapshot();
        assert_eq!((s.ghost_count, s.ghost_bytes), (2, 192));
        assert_eq!((s.m2l_count, s.m2l_bytes), (1, 320));
        assert_eq!((s.multipole_up_count, s.multipole_up_bytes), (1, 320));
        assert_eq!((s.multipole_down_count, s.multipole_down_bytes), (1, 320));
        assert_eq!((s.p2p_count, s.p2p_bytes), (1, 96));
        assert_eq!(s.total_count(), 6);
        assert_eq!(s.total_bytes(), 192 + 320 * 3 + 96);
        assert_eq!(s.gravity_count(), 4);
        let text = format!("{s}");
        for class in [
            ParcelClass::Ghost,
            ParcelClass::MultipoleUp,
            ParcelClass::M2l,
            ParcelClass::MultipoleDown,
            ParcelClass::P2p,
        ] {
            assert!(text.contains(&format!("/octotiger/parcels/{}/count", class.name())));
            assert!(text.contains(&format!("/octotiger/parcels/{}/bytes", class.name())));
        }
        c.reset();
        assert_eq!(c.snapshot(), ParcelSnapshot::default());
    }

    #[test]
    fn parcel_snapshot_deltas_saturate() {
        let a = ParcelSnapshot {
            ghost_count: 4,
            ghost_bytes: 100,
            ..Default::default()
        };
        let b = ParcelSnapshot {
            ghost_count: 9,
            ghost_bytes: 260,
            m2l_count: 1,
            m2l_bytes: 40,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!((d.ghost_count, d.ghost_bytes), (5, 160));
        assert_eq!((d.m2l_count, d.m2l_bytes), (1, 40));
        assert_eq!(a.since(&b), ParcelSnapshot::default());
    }

    #[test]
    fn global_parcel_counters_are_monotonic() {
        let g = parcel_counters();
        let before = g.snapshot();
        g.note_send(ParcelClass::Ghost, 8);
        g.note_send(ParcelClass::P2p, 24);
        let delta = g.snapshot().since(&before);
        assert!(delta.ghost_count >= 1);
        assert!(delta.ghost_bytes >= 8);
        assert!(delta.p2p_count >= 1);
    }

    #[test]
    fn global_gravity_plan_counters_are_monotonic() {
        let g = gravity_plan_counters();
        let before = g.snapshot();
        g.note_hit();
        g.note_rebuild();
        let delta = g.snapshot().since(&before);
        assert!(delta.hits >= 1);
        assert!(delta.rebuilds >= 1);
    }
}
