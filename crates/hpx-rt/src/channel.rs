//! HPX-style channels built from promise/future pairs.
//!
//! Section VII-B of the paper: *"we use simple local HPX promise/future
//! pairs to notify neighbors when the local values are up-to-date and can be
//! safely accessed."*  This module provides that exact primitive: an
//! unbounded typed channel where `receive()` returns a [`Future`] that is
//! fulfilled by a matching `send()` — in either arrival order.  It mirrors
//! `hpx::lcos::local::channel`.

use crate::future::{Future, Promise};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

struct ChannelState<T> {
    /// Values sent before anyone asked for them.
    ready_values: VecDeque<T>,
    /// Promises handed out before a value arrived.
    waiting_receivers: VecDeque<Promise<T>>,
    senders_closed: bool,
}

struct Shared<T> {
    state: Mutex<ChannelState<T>>,
}

/// Sending half of an HPX-style channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of an HPX-style channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

/// Create a connected channel pair.
pub fn channel<T: Send + 'static>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(ChannelState {
            ready_values: VecDeque::new(),
            waiting_receivers: VecDeque::new(),
            senders_closed: false,
        }),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T: Send + 'static> Sender<T> {
    /// Deliver one value.  If a receiver is already waiting, its future is
    /// fulfilled immediately; otherwise the value is queued.
    pub fn send(&self, value: T) {
        let waiter = {
            let mut st = self.shared.state.lock();
            match st.waiting_receivers.pop_front() {
                Some(p) => Some((p, value)),
                None => {
                    st.ready_values.push_back(value);
                    None
                }
            }
        };
        if let Some((promise, value)) = waiter {
            promise.set(value);
        }
    }

    /// Close the channel: pending and future receives on an empty channel
    /// observe abandonment (their futures panic on wait) rather than
    /// blocking forever.
    pub fn close(&self) {
        let waiters: Vec<Promise<T>> = {
            let mut st = self.shared.state.lock();
            st.senders_closed = true;
            st.waiting_receivers.drain(..).collect()
        };
        for p in waiters {
            p.abandon("channel closed".to_owned());
        }
    }
}

impl<T: Send + 'static> Receiver<T> {
    /// Obtain a future for the next value (FIFO among receive calls).
    pub fn receive(&self) -> Future<T> {
        let mut st = self.shared.state.lock();
        if let Some(v) = st.ready_values.pop_front() {
            drop(st);
            return crate::future::make_ready_future(v);
        }
        if st.senders_closed {
            drop(st);
            let (p, f) = Promise::new_pair();
            p.abandon("channel closed".to_owned());
            return f;
        }
        let (p, f) = Promise::new_pair();
        st.waiting_receivers.push_back(p);
        f
    }

    /// Non-blocking poll for a queued value.
    pub fn try_receive(&self) -> Option<T> {
        self.shared.state.lock().ready_values.pop_front()
    }

    /// Number of values queued and not yet claimed.
    pub fn queued(&self) -> usize {
        self.shared.state.lock().ready_values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_receive() {
        let (tx, rx) = channel();
        tx.send(7);
        assert_eq!(rx.receive().get(), 7);
    }

    #[test]
    fn receive_then_send() {
        let (tx, rx) = channel();
        let f = rx.receive();
        assert!(!f.is_ready());
        tx.send(11);
        assert_eq!(f.get(), 11);
    }

    #[test]
    fn fifo_ordering_both_sides() {
        let (tx, rx) = channel();
        tx.send(1);
        tx.send(2);
        let f1 = rx.receive();
        let f2 = rx.receive();
        let f3 = rx.receive();
        tx.send(3);
        assert_eq!(f1.get(), 1);
        assert_eq!(f2.get(), 2);
        assert_eq!(f3.get(), 3);
    }

    #[test]
    fn try_receive_and_queued() {
        let (tx, rx) = channel();
        assert_eq!(rx.try_receive(), None);
        tx.send(5);
        tx.send(6);
        assert_eq!(rx.queued(), 2);
        assert_eq!(rx.try_receive(), Some(5));
        assert_eq!(rx.queued(), 1);
    }

    #[test]
    #[should_panic(expected = "channel closed")]
    fn close_abandons_waiters() {
        let (tx, rx) = channel::<i32>();
        let f = rx.receive();
        tx.close();
        f.wait();
    }

    #[test]
    fn cross_thread_notification() {
        let (tx, rx) = channel();
        let f = rx.receive();
        let t = std::thread::spawn(move || tx.send(String::from("ghost-ready")));
        assert_eq!(f.get(), "ghost-ready");
        t.join().unwrap();
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        tx.send(1);
        tx2.send(2);
        assert_eq!(rx.receive().get() + rx.receive().get(), 3);
    }
}
