//! HPX-style channels built from promise/future pairs.
//!
//! Section VII-B of the paper: *"we use simple local HPX promise/future
//! pairs to notify neighbors when the local values are up-to-date and can be
//! safely accessed."*  This module provides that exact primitive: an
//! unbounded typed channel where `receive()` returns a [`Future`] that is
//! fulfilled by a matching `send()` — in either arrival order.  It mirrors
//! `hpx::lcos::local::channel`.
//!
//! # Multi-receiver semantics (work queue, not broadcast)
//!
//! Both halves are `Clone`.  Cloned receivers — e.g. the same parcel link
//! drained from several simulated localities — share one FIFO and one
//! wakeup queue: **each sent value is delivered to exactly one `receive()`
//! future**, matched in the order the receives were issued, never
//! duplicated and never dropped.  Two localities draining one link
//! therefore observe *disjoint* parcels whose union is everything sent
//! (see `cloned_receivers_drain_disjoint_values`).  For broadcast
//! semantics, use one channel per consumer.
//!
//! Ordering is only defined per channel: values are received in send
//! order, and waiting receive futures are fulfilled in receive-call order,
//! regardless of which clone issued them.
//!
//! # Close semantics
//!
//! `close()` is a final marker: every *waiting* receive future and every
//! receive issued after the close observes abandonment ("channel closed")
//! once the queue is empty — values sent before the close remain
//! receivable (drain-then-fail).  Sending after `close()` is a caller bug
//! and panics immediately rather than silently queueing a value that the
//! closed channel may never hand out.

use crate::future::{Future, Promise};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

struct ChannelState<T> {
    /// Values sent before anyone asked for them.
    ready_values: VecDeque<T>,
    /// Promises handed out before a value arrived.
    waiting_receivers: VecDeque<Promise<T>>,
    senders_closed: bool,
}

struct Shared<T> {
    state: Mutex<ChannelState<T>>,
}

/// Sending half of an HPX-style channel.
///
/// Clones share the channel: any clone may send, any clone may close.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of an HPX-style channel.
///
/// Clones are co-consumers of one work queue: each value goes to exactly
/// one `receive()` future across all clones (see the module docs).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

/// Create a connected channel pair.
pub fn channel<T: Send + 'static>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(ChannelState {
            ready_values: VecDeque::new(),
            waiting_receivers: VecDeque::new(),
            senders_closed: false,
        }),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T: Send + 'static> Sender<T> {
    /// Deliver one value to exactly one receiver.  If a receive future is
    /// already waiting (from any receiver clone), the oldest is fulfilled
    /// immediately; otherwise the value is queued.
    ///
    /// # Panics
    ///
    /// Panics if the channel has been closed: a post-close send is a
    /// protocol violation (the value could be stranded forever), so it
    /// fails loudly at the send site instead.
    pub fn send(&self, value: T) {
        let waiter = {
            let mut st = self.shared.state.lock();
            assert!(!st.senders_closed, "send on closed channel");
            match st.waiting_receivers.pop_front() {
                Some(p) => Some((p, value)),
                None => {
                    st.ready_values.push_back(value);
                    None
                }
            }
        };
        if let Some((promise, value)) = waiter {
            promise.set(value);
        }
    }

    /// Close the channel: pending and future receives on an empty channel
    /// observe abandonment (their futures panic on wait) rather than
    /// blocking forever.
    pub fn close(&self) {
        let waiters: Vec<Promise<T>> = {
            let mut st = self.shared.state.lock();
            st.senders_closed = true;
            st.waiting_receivers.drain(..).collect()
        };
        for p in waiters {
            p.abandon("channel closed".to_owned());
        }
    }
}

impl<T: Send + 'static> Receiver<T> {
    /// Obtain a future for the next value (FIFO among receive calls,
    /// across *all* receiver clones — each value is claimed by exactly one
    /// such future).  After a close, queued values still drain in order;
    /// once the queue is empty the future observes abandonment.
    pub fn receive(&self) -> Future<T> {
        let mut st = self.shared.state.lock();
        if let Some(v) = st.ready_values.pop_front() {
            drop(st);
            return crate::future::make_ready_future(v);
        }
        if st.senders_closed {
            drop(st);
            let (p, f) = Promise::new_pair();
            p.abandon("channel closed".to_owned());
            return f;
        }
        let (p, f) = Promise::new_pair();
        st.waiting_receivers.push_back(p);
        f
    }

    /// Non-blocking poll for a queued value.
    pub fn try_receive(&self) -> Option<T> {
        self.shared.state.lock().ready_values.pop_front()
    }

    /// Number of values queued and not yet claimed.
    pub fn queued(&self) -> usize {
        self.shared.state.lock().ready_values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_receive() {
        let (tx, rx) = channel();
        tx.send(7);
        assert_eq!(rx.receive().get(), 7);
    }

    #[test]
    fn receive_then_send() {
        let (tx, rx) = channel();
        let f = rx.receive();
        assert!(!f.is_ready());
        tx.send(11);
        assert_eq!(f.get(), 11);
    }

    #[test]
    fn fifo_ordering_both_sides() {
        let (tx, rx) = channel();
        tx.send(1);
        tx.send(2);
        let f1 = rx.receive();
        let f2 = rx.receive();
        let f3 = rx.receive();
        tx.send(3);
        assert_eq!(f1.get(), 1);
        assert_eq!(f2.get(), 2);
        assert_eq!(f3.get(), 3);
    }

    #[test]
    fn try_receive_and_queued() {
        let (tx, rx) = channel();
        assert_eq!(rx.try_receive(), None);
        tx.send(5);
        tx.send(6);
        assert_eq!(rx.queued(), 2);
        assert_eq!(rx.try_receive(), Some(5));
        assert_eq!(rx.queued(), 1);
    }

    #[test]
    #[should_panic(expected = "channel closed")]
    fn close_abandons_waiters() {
        let (tx, rx) = channel::<i32>();
        let f = rx.receive();
        tx.close();
        f.wait();
    }

    #[test]
    fn cross_thread_notification() {
        let (tx, rx) = channel();
        let f = rx.receive();
        let t = std::thread::spawn(move || tx.send(String::from("ghost-ready")));
        assert_eq!(f.get(), "ghost-ready");
        t.join().unwrap();
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        tx.send(1);
        tx2.send(2);
        assert_eq!(rx.receive().get() + rx.receive().get(), 3);
    }

    /// Distribution regression: one ghost link drained from two
    /// localities.  The receiver clones are co-consumers of one FIFO —
    /// each parcel is delivered to exactly one of them, none are
    /// duplicated or lost, and together they observe everything sent.
    #[test]
    fn cloned_receivers_drain_disjoint_values() {
        let (tx, rx_a) = channel::<u32>();
        let rx_b = rx_a.clone();

        // Each simulated locality posts its receive before the parcels
        // arrive, interleaved so both clones hold waiting futures.
        let futs_a: Vec<_> = (0..4).map(|_| rx_a.receive()).collect();
        let futs_b: Vec<_> = (0..4).map(|_| rx_b.receive()).collect();
        let sender = std::thread::spawn(move || {
            for v in 0..8 {
                tx.send(v);
            }
        });
        sender.join().unwrap();

        let mut seen: Vec<u32> = futs_a.into_iter().chain(futs_b).map(|f| f.get()).collect();
        seen.sort_unstable();
        // Disjoint delivery: the union is exactly the 8 parcels, each once.
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    /// The FIFO also stays disjoint when clones poll queued values instead
    /// of pre-posting futures (the lockstep halo-exchange pattern).
    #[test]
    fn cloned_receivers_split_a_queued_backlog() {
        let (tx, rx_a) = channel::<u32>();
        let rx_b = rx_a.clone();
        for v in 0..6 {
            tx.send(v);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..6 {
            if i % 2 == 0 {
                a.push(rx_a.receive().get());
            } else {
                b.push(rx_b.receive().get());
            }
        }
        assert_eq!(a, vec![0, 2, 4]);
        assert_eq!(b, vec![1, 3, 5]);
        assert_eq!(rx_a.queued(), 0);
    }

    #[test]
    #[should_panic(expected = "send on closed channel")]
    fn send_after_close_panics() {
        let (tx, _rx) = channel::<i32>();
        tx.close();
        tx.send(1);
    }

    /// Close is drain-then-fail: values sent before the close remain
    /// receivable, in order; only then do receives observe abandonment.
    #[test]
    fn close_drains_queued_values_first() {
        let (tx, rx) = channel::<i32>();
        tx.send(41);
        tx.send(42);
        tx.close();
        assert_eq!(rx.receive().get(), 41);
        assert_eq!(rx.receive().get(), 42);
        let f = rx.receive();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.get()))
            .expect_err("post-drain receive must observe the close");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(msg.contains("channel closed"), "{msg}");
    }
}
