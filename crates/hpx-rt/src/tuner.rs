//! Online auto-tuning of task granularity (the paper's Figure 9 closed
//! into a loop).
//!
//! The paper's central performance knob is how many HPX tasks each
//! Kokkos-style kernel launch is split into: Figure 9 shows the multipole
//! kernel's runtime swinging several-fold with the split count, and the
//! conclusion calls for APEX-driven analysis to pick it automatically.
//! This module is that loop: a [`Tuner`] holds one [`TuningState`] per
//! *kernel family* (multipole M2L, P2P evaluation, slot-table passes,
//! hydro RHS, the pipelined-vs-barrier stepper switch), each searching a
//! bounded ladder of candidate configurations with a hysteresis-banded
//! hill-climb.
//!
//! The feedback signal is the apex timer stream: the driver closes one
//! observation window per step ([`crate::apex::TimerStats::window_mean_s`]
//! and [`crate::apex::Apex::reset_window`]) and feeds the window mean
//! into [`Tuner::observe`].  The tuner answers with the configuration to
//! run the *next* window at.  Decisions are:
//!
//! - **hysteresis-banded**: a candidate must beat the incumbent by a
//!   relative margin (default 5%) to be accepted, so measurement noise
//!   cannot make the tuner oscillate between two near-equal settings;
//! - **converging**: once both ladder directions have been rejected the
//!   family *freezes* and stops paying probe cost;
//! - **epsilon-greedy**: a frozen family re-probes one neighbour every
//!   `reprobe_every` windows (deterministically alternating direction),
//!   so a drifting workload is eventually re-detected without randomness;
//! - **topology-aware**: [`Tuner::note_topology`] unfreezes every family
//!   when a regrid changes the octree's `topology_version`, because the
//!   optimum granularity depends on the work volume the regrid just
//!   changed.  Unchanged versions are free.
//!
//! Safety: the tuner only ever picks values that flow into the existing
//! chunk-count-independent launch paths (plan-frozen summation order,
//! stripe-blocked accumulation, lane-aligned `split`), so any choice is
//! bitwise neutral to the physics — see DESIGN.md §8 and the
//! `autotune_equivalence` suite.  Only *decision points* are exposed, so
//! the tuner itself is deterministic given the observed means; the global
//! [`crate::counters::tuner_counters`] block plus the per-tuner counts in
//! [`TunerSnapshot`] make its activity observable either way.

use crate::counters::tuner_counters;

/// Upper bound on families a [`TunerSnapshot`] can carry.  Snapshots ride
/// inside per-step stats structs that are `Copy`, so the family table is a
/// fixed-size array rather than a heap vector.
pub const MAX_FAMILIES: usize = 8;

/// Default relative improvement a candidate must show to be accepted.
pub const DEFAULT_HYSTERESIS: f64 = 0.05;

/// Default frozen windows between epsilon-greedy re-probes.
pub const DEFAULT_REPROBE_EVERY: u64 = 8;

/// Where one kernel family currently is in its search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyPhase {
    /// Waiting for the first window at the incumbent configuration.
    Baseline,
    /// Running a window at a candidate neighbour configuration.
    Probing,
    /// Converged; holding the incumbent (until a re-probe or regrid).
    Frozen,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Baseline,
    Probing {
        /// Ladder index to fall back to if the probe is rejected.
        from: usize,
        /// Climb direction (`-1` or `+1`).
        dir: i8,
        /// An epsilon-greedy re-probe out of `Frozen`: a rejection goes
        /// straight back to `Frozen` instead of trying the other side.
        reprobe: bool,
    },
    Frozen,
}

/// The per-kernel-family search state: a bounded ladder of candidate
/// configurations and a hysteresis-banded hill-climb position on it.
#[derive(Debug, Clone)]
pub struct TuningState {
    name: &'static str,
    ladder: Vec<usize>,
    idx: usize,
    /// Window mean of the incumbent (EWMA-tracked while frozen so a
    /// drifting workload does not wedge the acceptance baseline).
    best_mean_s: f64,
    phase: Phase,
    /// Which climb directions (`[down, up]`) were rejected since the last
    /// accepted move.
    tried: [bool; 2],
    /// Alternates epsilon re-probe direction deterministically.
    reprobe_flip: bool,
    /// Windows observed while frozen (drives the re-probe cadence).
    frozen_windows: u64,
}

impl TuningState {
    fn new(name: &'static str, ladder: Vec<usize>, start: usize) -> TuningState {
        assert!(!ladder.is_empty(), "tuning ladder must not be empty");
        assert!(
            ladder.windows(2).all(|w| w[0] < w[1]),
            "tuning ladder must be strictly increasing"
        );
        // Start at the ladder point closest to the configured default so
        // switching the tuner on never jumps away from a hand-tuned value.
        let idx = ladder
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| v.abs_diff(start))
            .map(|(i, _)| i)
            .expect("non-empty ladder");
        TuningState {
            name,
            ladder,
            idx,
            best_mean_s: f64::INFINITY,
            phase: Phase::Baseline,
            tried: [false; 2],
            reprobe_flip: false,
            frozen_windows: 0,
        }
    }

    fn value(&self) -> usize {
        self.ladder[self.idx]
    }

    fn phase(&self) -> FamilyPhase {
        match self.phase {
            Phase::Baseline => FamilyPhase::Baseline,
            Phase::Probing { .. } => FamilyPhase::Probing,
            Phase::Frozen => FamilyPhase::Frozen,
        }
    }

    fn neighbour(&self, dir: i8) -> Option<usize> {
        if dir < 0 {
            self.idx.checked_sub(1)
        } else if self.idx + 1 < self.ladder.len() {
            Some(self.idx + 1)
        } else {
            None
        }
    }

    fn dir_slot(dir: i8) -> usize {
        usize::from(dir > 0)
    }
}

/// One entry of a [`TunerSnapshot`]: the configuration a kernel family is
/// currently running at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilySnapshot {
    /// Family name (empty in unused slots).
    pub family: &'static str,
    /// The chosen configuration value.
    pub value: usize,
    /// Search phase at snapshot time.
    pub phase: FamilyPhase,
}

impl Default for FamilySnapshot {
    fn default() -> Self {
        FamilySnapshot {
            family: "",
            value: 0,
            phase: FamilyPhase::Baseline,
        }
    }
}

/// Plain-`Copy` snapshot of a [`Tuner`]: the per-family chosen configs
/// plus the tuner's own activity counts (mirrors of what it reported into
/// the global `/octotiger/tuner/*` block, but per-instance and therefore
/// deterministic under test parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TunerSnapshot {
    /// Per-family entries; only the first [`Self::len`] are meaningful.
    pub families: [FamilySnapshot; MAX_FAMILIES],
    /// Number of registered families.
    pub len: usize,
    /// Observation windows spent at probe configurations.
    pub probes: u64,
    /// Accepted configuration moves.
    pub moves: u64,
    /// Families frozen after a converged climb (cumulative freeze events).
    pub frozen: u64,
    /// Probes reverted for not clearing the hysteresis band.
    pub regressions_rejected: u64,
    /// Full re-probes triggered by a changed `topology_version`.
    pub topology_reprobes: u64,
}

impl TunerSnapshot {
    /// Iterate over the registered family entries.
    pub fn iter(&self) -> impl Iterator<Item = &FamilySnapshot> {
        self.families[..self.len].iter()
    }

    /// Chosen configuration of `family`, if registered.
    pub fn value_of(&self, family: &str) -> Option<usize> {
        self.iter().find(|f| f.family == family).map(|f| f.value)
    }
}

/// The online granularity tuner: one hysteresis-banded hill-climb per
/// registered kernel family, fed by apex window means.
#[derive(Debug, Clone)]
pub struct Tuner {
    families: Vec<TuningState>,
    hysteresis: f64,
    reprobe_every: u64,
    topology_version: Option<u64>,
    /// Round-robin cursor for [`Self::observe_shared`] groups.
    shared_cursor: usize,
    probes: u64,
    moves: u64,
    frozen: u64,
    regressions_rejected: u64,
    topology_reprobes: u64,
}

impl Default for Tuner {
    fn default() -> Self {
        Self::new()
    }
}

impl Tuner {
    /// Tuner with the default hysteresis band and re-probe cadence.
    pub fn new() -> Tuner {
        Self::with_params(DEFAULT_HYSTERESIS, DEFAULT_REPROBE_EVERY)
    }

    /// Tuner with an explicit hysteresis band (relative improvement a
    /// candidate must clear) and frozen re-probe cadence (in windows).
    pub fn with_params(hysteresis: f64, reprobe_every: u64) -> Tuner {
        assert!(
            (0.0..1.0).contains(&hysteresis),
            "hysteresis must be a relative margin in [0, 1)"
        );
        Tuner {
            families: Vec::new(),
            hysteresis,
            reprobe_every: reprobe_every.max(1),
            topology_version: None,
            shared_cursor: 0,
            probes: 0,
            moves: 0,
            frozen: 0,
            regressions_rejected: 0,
            topology_reprobes: 0,
        }
    }

    /// Register a kernel family searching `ladder` (strictly increasing),
    /// starting at the ladder point nearest `start`.
    pub fn register(&mut self, family: &'static str, ladder: Vec<usize>, start: usize) {
        assert!(
            self.families.len() < MAX_FAMILIES,
            "at most {MAX_FAMILIES} kernel families per tuner"
        );
        assert!(
            self.state(family).is_none(),
            "kernel family {family:?} registered twice"
        );
        self.families.push(TuningState::new(family, ladder, start));
    }

    fn state(&self, family: &str) -> Option<&TuningState> {
        self.families.iter().find(|s| s.name == family)
    }

    fn state_mut(&mut self, family: &str) -> &mut TuningState {
        self.families
            .iter_mut()
            .find(|s| s.name == family)
            .unwrap_or_else(|| panic!("unregistered kernel family {family:?}"))
    }

    /// The configuration `family` should run the next window at.
    pub fn current(&self, family: &str) -> usize {
        self.state(family)
            .unwrap_or_else(|| panic!("unregistered kernel family {family:?}"))
            .value()
    }

    /// Whether `family` has converged (and is not currently re-probing).
    pub fn is_frozen(&self, family: &str) -> bool {
        self.state(family)
            .unwrap_or_else(|| panic!("unregistered kernel family {family:?}"))
            .phase
            == Phase::Frozen
    }

    /// Feed one closed observation window (mean seconds) measured while
    /// `family` ran at its current configuration.  Returns the
    /// configuration for the next window.
    pub fn observe(&mut self, family: &str, window_mean_s: f64) -> usize {
        let hysteresis = self.hysteresis;
        let reprobe_every = self.reprobe_every;
        let mut delta = CounterDelta::default();
        let s = self.state_mut(family);
        step_state(s, window_mean_s, hysteresis, reprobe_every, &mut delta);
        let next = s.value();
        self.apply(delta);
        next
    }

    /// Feed one window of a timer signal *shared* by several families
    /// (e.g. the three gravity knobs all move `gravity:kernels`).  Only
    /// one family may interpret a shared window, otherwise a probe by one
    /// family would be mis-attributed to the others; the family currently
    /// mid-probe owns the signal, and when none is probing the turn
    /// advances round-robin so every family still gets baseline windows
    /// and re-probe chances.  Returns the family that observed.
    pub fn observe_shared(&mut self, group: &[&str], window_mean_s: f64) -> &'static str {
        assert!(!group.is_empty(), "shared signal group must not be empty");
        let owner = group
            .iter()
            .find(|f| {
                matches!(
                    self.state(f).map(|s| s.phase),
                    Some(Phase::Probing { .. }) | Some(Phase::Baseline)
                )
            })
            .copied()
            .unwrap_or_else(|| {
                let pick = group[self.shared_cursor % group.len()];
                self.shared_cursor = self.shared_cursor.wrapping_add(1);
                pick
            });
        self.observe(owner, window_mean_s);
        self.state(owner).expect("observed family exists").name
    }

    /// Note the octree topology version the coming step runs under.  A
    /// change (a regrid that actually refined/derefined) resets every
    /// family to `Baseline` so the whole ladder is re-searched against the
    /// new work volume; an unchanged version is free.  Returns whether a
    /// re-probe was triggered.
    pub fn note_topology(&mut self, version: u64) -> bool {
        match self.topology_version {
            Some(v) if v == version => false,
            None => {
                // First sighting: the baseline search is already pending;
                // don't count construction as a regrid.
                self.topology_version = Some(version);
                false
            }
            Some(_) => {
                self.topology_version = Some(version);
                self.topology_reprobes += 1;
                for s in &mut self.families {
                    s.phase = Phase::Baseline;
                    s.best_mean_s = f64::INFINITY;
                    s.tried = [false; 2];
                    s.frozen_windows = 0;
                }
                true
            }
        }
    }

    /// `Copy` snapshot of chosen configs + activity counts.
    pub fn snapshot(&self) -> TunerSnapshot {
        let mut snap = TunerSnapshot {
            len: self.families.len(),
            probes: self.probes,
            moves: self.moves,
            frozen: self.frozen,
            regressions_rejected: self.regressions_rejected,
            topology_reprobes: self.topology_reprobes,
            ..Default::default()
        };
        for (slot, s) in snap.families.iter_mut().zip(&self.families) {
            *slot = FamilySnapshot {
                family: s.name,
                value: s.value(),
                phase: s.phase(),
            };
        }
        snap
    }

    fn apply(&mut self, d: CounterDelta) {
        let global = tuner_counters();
        for _ in 0..d.probes {
            global.note_probe();
        }
        for _ in 0..d.moves {
            global.note_move();
        }
        for _ in 0..d.frozen {
            global.note_frozen();
        }
        for _ in 0..d.regressions_rejected {
            global.note_regression_rejected();
        }
        self.probes += d.probes;
        self.moves += d.moves;
        self.frozen += d.frozen;
        self.regressions_rejected += d.regressions_rejected;
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct CounterDelta {
    probes: u64,
    moves: u64,
    frozen: u64,
    regressions_rejected: u64,
}

/// Start probing from the current incumbent: prefer an untried direction
/// with a neighbour; freeze if none is left.
fn start_probe(s: &mut TuningState, reprobe: bool, delta: &mut CounterDelta) {
    for dir in [1i8, -1] {
        if s.tried[TuningState::dir_slot(dir)] {
            continue;
        }
        if let Some(next) = s.neighbour(dir) {
            s.phase = Phase::Probing {
                from: s.idx,
                dir,
                reprobe,
            };
            s.idx = next;
            delta.probes += 1;
            return;
        }
        // No neighbour on that side: the ladder edge counts as tried.
        s.tried[TuningState::dir_slot(dir)] = true;
    }
    freeze(s, delta);
}

fn freeze(s: &mut TuningState, delta: &mut CounterDelta) {
    if s.phase != Phase::Frozen {
        delta.frozen += 1;
    }
    s.phase = Phase::Frozen;
    s.frozen_windows = 0;
}

fn step_state(
    s: &mut TuningState,
    mean_s: f64,
    hysteresis: f64,
    reprobe_every: u64,
    delta: &mut CounterDelta,
) {
    match s.phase {
        Phase::Baseline => {
            s.best_mean_s = mean_s;
            s.tried = [false; 2];
            start_probe(s, false, delta);
        }
        Phase::Probing { from, dir, reprobe } => {
            if mean_s < s.best_mean_s * (1.0 - hysteresis) {
                // Accept: the candidate beat the incumbent beyond the
                // band.  Keep climbing the same direction; we just came
                // from the other side, so it is known-worse.
                s.best_mean_s = mean_s;
                delta.moves += 1;
                s.tried = [false; 2];
                s.tried[TuningState::dir_slot(-dir)] = true;
                if let Some(next) = s.neighbour(dir) {
                    s.phase = Phase::Probing {
                        from: s.idx,
                        dir,
                        reprobe: false,
                    };
                    s.idx = next;
                    delta.probes += 1;
                } else {
                    s.tried[TuningState::dir_slot(dir)] = true;
                    start_probe(s, false, delta);
                }
            } else {
                // Reject: revert to the incumbent.
                delta.regressions_rejected += 1;
                s.idx = from;
                s.tried[TuningState::dir_slot(dir)] = true;
                if reprobe {
                    // Epsilon re-probe failed: straight back to sleep.
                    freeze(s, delta);
                } else {
                    start_probe(s, false, delta);
                }
            }
        }
        Phase::Frozen => {
            // Track the incumbent with a decayed mean so slow workload
            // drift moves the acceptance baseline instead of wedging it.
            s.best_mean_s = if s.best_mean_s.is_finite() {
                0.8 * s.best_mean_s + 0.2 * mean_s
            } else {
                mean_s
            };
            s.frozen_windows += 1;
            if s.frozen_windows.is_multiple_of(reprobe_every) {
                // Deterministic epsilon-greedy re-probe, alternating
                // direction each time.
                let dir = if s.reprobe_flip { -1 } else { 1 };
                s.reprobe_flip = !s.reprobe_flip;
                for d in [dir, -dir] {
                    if let Some(next) = s.neighbour(d) {
                        s.phase = Phase::Probing {
                            from: s.idx,
                            dir: d,
                            reprobe: true,
                        };
                        s.idx = next;
                        delta.probes += 1;
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic cost curve: unimodal in the ladder value, minimum at
    /// `opt`.  Models Figure 9's split-count sweep.
    fn cost(value: usize, opt: f64) -> f64 {
        let v = value as f64;
        // Oversplit overhead grows linearly, undersplit starves linearly
        // in the log of the ratio — smooth, unimodal, > 0.
        let r = (v / opt).ln().abs();
        1.0 + r
    }

    fn drive_to_frozen(t: &mut Tuner, family: &'static str, opt: f64, max_windows: usize) {
        for _ in 0..max_windows {
            let v = t.current(family);
            t.observe(family, cost(v, opt));
            if t.is_frozen(family) {
                return;
            }
        }
        panic!("{family} did not converge in {max_windows} windows");
    }

    #[test]
    fn hill_climb_finds_the_unimodal_optimum() {
        let mut t = Tuner::new();
        t.register("m2l", vec![1, 2, 4, 8, 16, 32], 1);
        drive_to_frozen(&mut t, "m2l", 8.0, 32);
        assert_eq!(t.current("m2l"), 8);
        assert!(t.is_frozen("m2l"));
        let snap = t.snapshot();
        assert!(snap.moves >= 3, "1→2→4→8 needs 3 accepts, got {snap:?}");
        assert!(snap.regressions_rejected >= 1, "16 must be rejected");
        assert_eq!(snap.frozen, 1);
        assert_eq!(snap.value_of("m2l"), Some(8));
    }

    #[test]
    fn climbs_down_when_the_start_oversplits() {
        let mut t = Tuner::new();
        t.register("hydro", vec![1, 2, 4, 8, 16], 16);
        drive_to_frozen(&mut t, "hydro", 2.0, 32);
        assert_eq!(t.current("hydro"), 2);
    }

    #[test]
    fn hysteresis_rejects_noise_level_improvements() {
        let mut t = Tuner::with_params(0.05, 8);
        t.register("k", vec![1, 2, 4], 2);
        // Baseline at 2.
        t.observe("k", 1.0);
        // Every candidate is 2% "better" — inside the band, so each probe
        // must be rejected and the incumbent kept.
        while !t.is_frozen("k") {
            t.observe("k", 0.98);
        }
        assert_eq!(t.current("k"), 2);
        let snap = t.snapshot();
        assert_eq!(snap.moves, 0);
        assert_eq!(snap.regressions_rejected, 2);
    }

    #[test]
    fn frozen_families_reprobe_on_cadence_and_adopt_a_shifted_optimum() {
        let mut t = Tuner::with_params(0.05, 4);
        t.register("k", vec![1, 2, 4, 8], 1);
        drive_to_frozen(&mut t, "k", 2.0, 32);
        assert_eq!(t.current("k"), 2);
        let probes_frozen = t.snapshot().probes;
        // The workload drifts: 8 is now optimal.  The frozen family must
        // wake on its epsilon cadence and walk there.
        for _ in 0..64 {
            let v = t.current("k");
            t.observe("k", cost(v, 8.0));
        }
        assert_eq!(t.current("k"), 8);
        assert!(t.snapshot().probes > probes_frozen, "re-probes must fire");
    }

    #[test]
    fn frozen_family_pays_no_probe_cost_between_reprobes() {
        let mut t = Tuner::with_params(0.05, 8);
        t.register("k", vec![1, 2], 1);
        drive_to_frozen(&mut t, "k", 1.0, 16);
        let v = t.current("k");
        let probes = t.snapshot().probes;
        // Seven windows inside the cadence: config must not move.
        for _ in 0..7 {
            assert_eq!(t.observe("k", cost(v, 1.0)), v);
        }
        assert_eq!(t.snapshot().probes, probes);
    }

    #[test]
    fn topology_change_unfreezes_exactly_once_per_version() {
        let mut t = Tuner::new();
        t.register("k", vec![1, 2, 4], 1);
        assert!(!t.note_topology(7), "first sighting is not a regrid");
        drive_to_frozen(&mut t, "k", 2.0, 32);
        assert!(!t.note_topology(7), "unchanged version is free");
        assert!(t.is_frozen("k"));
        assert!(t.note_topology(8), "changed version must re-probe");
        assert!(!t.is_frozen("k"));
        assert_eq!(t.snapshot().topology_reprobes, 1);
        // Same version again: no second re-probe.
        assert!(!t.note_topology(8));
        assert_eq!(t.snapshot().topology_reprobes, 1);
    }

    #[test]
    fn shared_signal_lets_only_the_probing_family_interpret_windows() {
        let mut t = Tuner::new();
        t.register("a", vec![1, 2, 4], 1);
        t.register("b", vec![1, 2, 4], 1);
        // While `a` is baselining/probing it must own every window.
        let first = t.observe_shared(&["a", "b"], 1.0);
        assert_eq!(first, "a");
        while !t.is_frozen("a") {
            let owner = t.observe_shared(&["a", "b"], cost(t.current("a"), 2.0));
            assert_eq!(owner, "a", "mid-probe family must keep the signal");
        }
        // Once `a` froze, `b` gets its turn.
        let owner = t.observe_shared(&["a", "b"], cost(t.current("b"), 2.0));
        assert_eq!(owner, "b");
    }

    #[test]
    fn snapshot_is_copy_and_indexes_families() {
        let mut t = Tuner::new();
        t.register("x", vec![1, 2], 2);
        t.register("y", vec![4, 8], 4);
        let snap = t.snapshot();
        let copy = snap; // Copy
        assert_eq!(copy.len, 2);
        assert_eq!(copy.value_of("x"), Some(2));
        assert_eq!(copy.value_of("y"), Some(4));
        assert_eq!(copy.value_of("z"), None);
        assert_eq!(snap.iter().count(), 2);
    }

    #[test]
    fn start_snaps_to_nearest_ladder_point() {
        let mut t = Tuner::new();
        t.register("k", vec![1, 2, 4, 8], 5);
        assert_eq!(t.current("k"), 4);
    }

    #[test]
    fn single_point_ladder_freezes_immediately() {
        let mut t = Tuner::new();
        t.register("k", vec![3], 3);
        t.observe("k", 1.0);
        assert!(t.is_frozen("k"));
        assert_eq!(t.current("k"), 3);
    }
}
