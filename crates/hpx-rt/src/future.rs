//! Shared futures with continuations — HPX's `lcos` layer.
//!
//! The paper's central programming-model claim is that Kokkos kernel
//! launches can be woven into HPX's asynchronous execution graph: *"any HPX
//! task may asynchronously launch Kokkos kernels and define what should be
//! done with the results by adding HPX continuations"* (Section IV-B).  The
//! types here provide exactly that: a write-once [`Promise`], a cloneable
//! [`Future`] with [`Future::then`] continuations, and [`when_all`] joins.
//!
//! Blocking [`Future::get`]/[`Future::wait`] calls *help*: when invoked on a
//! worker thread they execute other queued tasks while waiting, so a tree
//! traversal that blocks on child results keeps the CPU busy — the behaviour
//! that lets Octo-Tiger hide communication latencies behind fine-grained
//! kernels.

use crate::counters::Counters;
use crate::runtime::{try_help_current_thread, Runtime};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Blocked-worker watchdog timeout in milliseconds; `0` disables it.
///
/// When a *worker* thread waits on a future and makes no progress — the
/// future stays pending and there are no queued tasks to help with — for
/// longer than this, the wait panics instead of hanging: in a correctly
/// wired dependency graph a starved worker always either finds work or sees
/// its future resolve.  Debug builds arm the watchdog by default (30 s);
/// release builds leave it off (a loaded machine can stall legitimately) but
/// can opt in via the `HPX_WATCHDOG_MS` environment variable,
/// [`set_blocked_wait_timeout`], or `SimOptions::watchdog_ms` in the driver.
/// Every fire is exported as the `/threads/count/watchdog-fires` performance
/// counter of the blocked pool before the panic unwinds.
static BLOCKED_WAIT_TIMEOUT_MS: AtomicU64 =
    AtomicU64::new(if cfg!(debug_assertions) { 30_000 } else { 0 });

/// Set the blocked-worker watchdog timeout (see `Future::wait`);
/// `Duration::ZERO` disables it.  Works in release builds too — this is the
/// programmatic form of the `HPX_WATCHDOG_MS` opt-in.  Returns the previous
/// value.
pub fn set_blocked_wait_timeout(timeout: Duration) -> Duration {
    let prev = BLOCKED_WAIT_TIMEOUT_MS.swap(timeout.as_millis() as u64, Ordering::Relaxed);
    Duration::from_millis(prev)
}

/// Effective watchdog timeout: the `HPX_WATCHDOG_MS` environment variable is
/// folded into the configured value once, on the first blocking wait, so the
/// opt-in needs no code change.  `0` = disabled.
fn watchdog_timeout_ms() -> u64 {
    static ENV_APPLIED: OnceLock<()> = OnceLock::new();
    ENV_APPLIED.get_or_init(|| {
        if let Some(ms) = std::env::var("HPX_WATCHDOG_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            BLOCKED_WAIT_TIMEOUT_MS.store(ms, Ordering::Relaxed);
        }
    });
    BLOCKED_WAIT_TIMEOUT_MS.load(Ordering::Relaxed)
}

/// A settled future's outcome, as seen by [`Future::on_settled`] hooks: the
/// value, or the abandonment reason.  Continuation-based combinators use
/// this to *propagate* abandonment promptly (with a reason naming the failed
/// input) instead of leaving their output forever pending.
pub enum Settled<'a, T> {
    /// The producing side fulfilled the promise.
    Ready(&'a T),
    /// The producing side panicked or dropped its promise.
    Abandoned(&'a str),
}

type Continuation<T> = Box<dyn FnOnce(Settled<'_, T>) + Send>;

enum State<T> {
    Pending(Vec<Continuation<T>>),
    Ready(T),
    /// The producing task panicked or dropped its promise; waiting on this
    /// future panics with the stored message instead of hanging forever.
    Abandoned(String),
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Shared<T> {
    /// Transition Pending → Abandoned, waking waiters and delivering
    /// `Settled::Abandoned` to every attached continuation so combinators can
    /// propagate the failure instead of leaving their outputs pending.
    /// No-op if the future already settled.
    fn settle_abandoned(&self, reason: String) {
        let continuations = {
            let mut guard = self.state.lock();
            match std::mem::replace(&mut *guard, State::Abandoned(reason)) {
                State::Pending(conts) => conts,
                prev => {
                    *guard = prev;
                    return;
                }
            }
        };
        self.ready.notify_all();
        if !continuations.is_empty() {
            let guard = self.state.lock();
            if let State::Abandoned(ref reason) = *guard {
                // Like `Promise::set`, continuations run under the lock only
                // to borrow the stored reason.
                for c in continuations {
                    c(Settled::Abandoned(reason));
                }
            }
        }
    }
}

/// The write-once producing end of a future (HPX `hpx::promise`).
pub struct Promise<T> {
    shared: Arc<Shared<T>>,
    fulfilled: bool,
}

/// A shared, cloneable handle to an eventually-available value
/// (HPX `hpx::shared_future`).
pub struct Future<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Future<T> {
    fn clone(&self) -> Self {
        Future {
            shared: self.shared.clone(),
        }
    }
}

impl<T: Send + 'static> Promise<T> {
    /// Create a connected promise/future pair.
    pub fn new_pair() -> (Promise<T>, Future<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State::Pending(Vec::new())),
            ready: Condvar::new(),
        });
        (
            Promise {
                shared: shared.clone(),
                fulfilled: false,
            },
            Future { shared },
        )
    }

    /// Fulfil the promise.  Runs all attached continuations inline (they
    /// are expected to be cheap trampolines that re-spawn onto a runtime).
    ///
    /// # Panics
    /// Panics if the promise was already fulfilled.
    pub fn set(mut self, value: T) {
        self.fulfilled = true;
        let continuations = {
            let mut guard = self.shared.state.lock();
            match std::mem::replace(&mut *guard, State::Ready(value)) {
                State::Pending(conts) => conts,
                State::Ready(_) | State::Abandoned(_) => {
                    panic!("hpx-rt: promise fulfilled twice")
                }
            }
        };
        self.shared.ready.notify_all();
        if !continuations.is_empty() {
            let guard = self.shared.state.lock();
            if let State::Ready(ref v) = *guard {
                // Continuations run under the lock only to borrow `v`; each
                // is a trampoline that spawns the real work, so this section
                // is short.
                for c in continuations {
                    c(Settled::Ready(v));
                }
            }
        }
    }

    /// Mark the promise as abandoned: waiters will panic with `reason`
    /// instead of deadlocking, and attached continuations observe
    /// `Settled::Abandoned` so downstream futures abandon too.  Used when a
    /// producing task panics.
    pub fn abandon(mut self, reason: String) {
        self.fulfilled = true;
        self.shared.settle_abandoned(reason);
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.shared
                .settle_abandoned("promise dropped without being fulfilled".to_owned());
        }
    }
}

impl<T: Send + 'static> Future<T> {
    /// `true` once the value is available.
    pub fn is_ready(&self) -> bool {
        !matches!(*self.shared.state.lock(), State::Pending(_))
    }

    /// Block until the value is available, executing other tasks while
    /// waiting when called from a worker thread.
    ///
    /// # Panics
    /// Panics if the producing side abandoned the promise.
    pub fn wait(&self) {
        // Fast path.
        if self.is_ready() {
            self.check_abandoned();
            return;
        }
        let mut last_progress = std::time::Instant::now();
        loop {
            if self.is_ready() {
                break;
            }
            // Help: run one task of the pool this thread belongs to.
            if try_help_current_thread() {
                last_progress = std::time::Instant::now();
                continue;
            }
            // On a deterministic (virtual) pool there is exactly one thread:
            // an empty task queue while this future is still pending cannot
            // resolve itself — report the deadlock immediately with the
            // schedule seed instead of spinning.
            if let Some(report) = crate::runtime::current_virtual_stall() {
                panic!("hpx-rt: {report}");
            }
            // Nothing to help with — block with a timeout so that wakeups
            // via task execution on other threads are still picked up.
            let mut guard = self.shared.state.lock();
            if matches!(*guard, State::Pending(_)) {
                self.shared
                    .ready
                    .wait_for(&mut guard, Duration::from_micros(200));
            }
            drop(guard);
            let watchdog_ms = watchdog_timeout_ms();
            if watchdog_ms != 0 && crate::runtime::on_any_worker_thread() {
                let limit = Duration::from_millis(watchdog_ms);
                if last_progress.elapsed() > limit {
                    crate::runtime::note_watchdog_fire();
                    panic!(
                        "hpx-rt: suspected deadlock: a worker thread has been blocked on an \
                         unresolved future for {limit:?} with no queued tasks to help with \
                         (a dependency cycle, or a promise that is never fulfilled)"
                    );
                }
            }
        }
        self.check_abandoned();
    }

    fn check_abandoned(&self) {
        let guard = self.shared.state.lock();
        if let State::Abandoned(ref reason) = *guard {
            panic!("hpx-rt: waiting on abandoned future: {reason}");
        }
    }

    /// Wait and return a clone of the value (shared-future semantics).
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.wait();
        let guard = self.shared.state.lock();
        match *guard {
            State::Ready(ref v) => v.clone(),
            _ => unreachable!("wait() returned without a ready value"),
        }
    }

    /// Attach a continuation: when this future becomes ready, spawn
    /// `f(value)` on `rt` and complete the returned future with its result.
    ///
    /// This is `hpx::future::then`, the mechanism by which Octo-Tiger turns
    /// kernel completions into follow-up tasks instead of fork/join joins.
    pub fn then<U, F>(&self, rt: &Runtime, f: F) -> Future<U>
    where
        U: Send + 'static,
        T: Clone,
        F: FnOnce(T) -> U + Send + 'static,
    {
        Counters::bump(&rt.counters().continuations_attached);
        let (promise, out) = Promise::new_pair();
        let rt2 = rt.clone();
        self.on_settled(move |s: Settled<'_, T>| match s {
            Settled::Ready(v) => {
                let v = v.clone();
                rt2.spawn(move || {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(v))) {
                        Ok(u) => promise.set(u),
                        Err(p) => promise.abandon(crate::runtime::panic_message(&*p)),
                    }
                });
            }
            Settled::Abandoned(reason) => {
                promise.abandon(format!("hpx-rt: `then` input abandoned: {reason}"));
            }
        });
        out
    }

    /// Low-level continuation hook: run `f` with a reference to the value as
    /// soon as it is available (inline if already ready).  If the producing
    /// side abandons the promise after attachment, `f` is silently dropped —
    /// combinators that must *react* to abandonment use [`Future::on_settled`].
    ///
    /// # Panics
    /// Panics if the future is already abandoned when `f` is attached.
    pub fn on_ready(&self, f: impl FnOnce(&T) + Send + 'static) {
        let mut guard = self.shared.state.lock();
        match *guard {
            State::Pending(ref mut conts) => conts.push(Box::new(move |s: Settled<'_, T>| {
                if let Settled::Ready(v) = s {
                    f(v);
                }
            })),
            State::Ready(ref v) => f(v),
            State::Abandoned(ref reason) => {
                panic!("hpx-rt: continuation on abandoned future: {reason}")
            }
        }
    }

    /// Continuation hook that observes *either* outcome: the ready value or
    /// the abandonment reason.  Never panics at attach time — this is what
    /// [`when_all`]/[`when_all_of`]/[`Future::then`] build on so a single
    /// dropped promise surfaces as a diagnosable abandoned output instead of
    /// a poisoned worker or a silent hang.
    pub fn on_settled(&self, f: impl FnOnce(Settled<'_, T>) + Send + 'static) {
        let mut guard = self.shared.state.lock();
        match *guard {
            State::Pending(ref mut conts) => conts.push(Box::new(f)),
            State::Ready(ref v) => f(Settled::Ready(v)),
            State::Abandoned(ref reason) => f(Settled::Abandoned(reason)),
        }
    }

    /// Borrow the ready value without cloning it.
    ///
    /// # Panics
    /// Panics if the future is not ready or was abandoned.  `f` runs under
    /// the future's state lock, so it must not wait on or attach
    /// continuations to *this* future.
    pub fn with_value<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let guard = self.shared.state.lock();
        match *guard {
            State::Ready(ref v) => f(v),
            State::Pending(_) => panic!("hpx-rt: with_value on a pending future"),
            State::Abandoned(ref reason) => {
                panic!("hpx-rt: with_value on abandoned future: {reason}")
            }
        }
    }

    /// A `Future<()>` that completes when `self` completes, without cloning
    /// or otherwise touching the payload.  This is how heterogeneous futures
    /// are folded into a [`when_all_of`] dependency gate.
    pub fn ticket(&self) -> Future<()> {
        let (p, out) = Promise::new_pair();
        self.on_settled(move |s: Settled<'_, T>| match s {
            Settled::Ready(_) => p.set(()),
            Settled::Abandoned(reason) => {
                p.abandon(format!("hpx-rt: ticket input abandoned: {reason}"));
            }
        });
        out
    }

    /// Like [`Future::then`], but the continuation borrows the value instead
    /// of cloning it.  This is the zero-copy consumption path for bulk
    /// payloads (e.g. packed ghost-zone buffers): the payload stays in the
    /// shared state and `f` reads it in place.
    ///
    /// `f` runs under the source future's state lock; it must not wait on or
    /// attach continuations to the source future itself.
    pub fn then_ref<U, F>(&self, rt: &Runtime, f: F) -> Future<U>
    where
        U: Send + 'static,
        T: Sync,
        F: FnOnce(&T) -> U + Send + 'static,
    {
        Counters::bump(&rt.counters().continuations_attached);
        let (promise, out) = Promise::new_pair();
        let rt2 = rt.clone();
        let source = self.clone();
        self.on_settled(move |s: Settled<'_, T>| match s {
            Settled::Ready(_) => {
                let source = source.clone();
                rt2.spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        source.with_value(|v| f(v))
                    }));
                    match result {
                        Ok(u) => promise.set(u),
                        Err(p) => promise.abandon(crate::runtime::panic_message(&*p)),
                    }
                });
            }
            Settled::Abandoned(reason) => {
                promise.abandon(format!("hpx-rt: `then_ref` input abandoned: {reason}"));
            }
        });
        out
    }
}

/// An already-fulfilled future (HPX `make_ready_future`).
pub fn make_ready_future<T: Send + 'static>(value: T) -> Future<T> {
    let (p, f) = Promise::new_pair();
    p.set(value);
    f
}

/// Complete when the *first* of `futures` completes, with its index and
/// value (HPX `when_any`).
///
/// # Panics
/// Panics (when waited on) if `futures` is empty.
pub fn when_any<T: Clone + Send + 'static>(futures: Vec<Future<T>>) -> Future<(usize, T)> {
    let (promise, out) = Promise::new_pair();
    if futures.is_empty() {
        promise.abandon("when_any of an empty set".to_owned());
        return out;
    }
    let n = futures.len();
    let promise = Arc::new(Mutex::new(Some(promise)));
    let abandoned = Arc::new(AtomicUsize::new(0));
    for (i, fut) in futures.into_iter().enumerate() {
        let promise = promise.clone();
        let abandoned = abandoned.clone();
        fut.on_settled(move |s: Settled<'_, T>| match s {
            Settled::Ready(v) => {
                if let Some(p) = promise.lock().take() {
                    p.set((i, v.clone()));
                }
            }
            Settled::Abandoned(reason) => {
                // Individual losses are survivable; only when *every* input
                // is gone can no winner ever emerge.
                if abandoned.fetch_add(1, Ordering::AcqRel) + 1 == n {
                    if let Some(p) = promise.lock().take() {
                        p.abandon(format!(
                            "hpx-rt: when_any: all {n} inputs abandoned (last: {reason})"
                        ));
                    }
                }
            }
        });
    }
    out
}

/// HPX `dataflow`: run `f` on `rt` once both inputs are ready, producing a
/// future of its result.  The two-argument form covers the solver's common
/// "combine my ghost future with my kernel future" pattern; wider joins go
/// through [`when_all`].
pub fn dataflow2<A, B, U, F>(rt: &Runtime, a: &Future<A>, b: &Future<B>, f: F) -> Future<U>
where
    A: Clone + Send + Sync + 'static,
    B: Clone + Send + 'static,
    U: Send + 'static,
    F: FnOnce(A, B) -> U + Send + 'static,
{
    let rt2 = rt.clone();
    let b = b.clone();
    a.then(rt, move |av: A| {
        // The continuation itself waits on b (helping if on a worker).
        let bv = b.get();
        (av, bv)
    })
    .then(&rt2, move |(av, bv)| f(av, bv))
}

/// Join a set of futures into one future of all their values, in order
/// (HPX `when_all` + unwrap).
pub fn when_all<T: Clone + Send + 'static>(
    rt: &Runtime,
    futures: Vec<Future<T>>,
) -> Future<Vec<T>> {
    let n = futures.len();
    let (promise, out) = Promise::new_pair();
    if n == 0 {
        promise.set(Vec::new());
        return out;
    }
    let slots: Arc<Mutex<Vec<Option<T>>>> = Arc::new(Mutex::new(vec![None; n]));
    let remaining = Arc::new(AtomicUsize::new(n));
    let promise = Arc::new(Mutex::new(Some(promise)));
    for (i, fut) in futures.into_iter().enumerate() {
        let slots = slots.clone();
        let remaining = remaining.clone();
        let promise = promise.clone();
        let rt = rt.clone();
        fut.on_settled(move |s: Settled<'_, T>| match s {
            Settled::Ready(v) => {
                slots.lock()[i] = Some(v.clone());
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // The promise is gone only if an abandoned input already
                    // failed the join; the late completion is then harmless.
                    let Some(p) = promise.lock().take() else {
                        return;
                    };
                    let values: Option<Vec<T>> =
                        slots.lock().iter_mut().map(|s| s.take()).collect();
                    match values {
                        // Complete on a task so long continuation chains do
                        // not recurse on the completing thread's stack.
                        Some(values) => rt.spawn(move || p.set(values)),
                        None => p.abandon(
                            "hpx-rt: when_all: remaining-count hit zero with an unfilled \
                             slot (an input completed twice?)"
                                .to_owned(),
                        ),
                    }
                }
            }
            Settled::Abandoned(reason) => {
                if let Some(p) = promise.lock().take() {
                    p.abandon(format!("hpx-rt: when_all: input #{i} abandoned: {reason}"));
                }
            }
        });
    }
    out
}

/// Join futures into a single `Future<()>` that completes once *all* of them
/// are ready, without cloning any payload (HPX `when_all` on shared futures,
/// used purely as a dependency gate).
///
/// This is the backbone of the pipelined stepper: a leaf's stage-N update
/// gates on the per-neighbor ghost futures it actually reads, and the gate
/// must not copy the (potentially large) packed buffers those futures carry.
/// Completion is delivered through `rt.spawn` so long dependency chains do
/// not recurse on the completing thread's stack.
pub fn when_all_of<T: Send + 'static>(rt: &Runtime, futures: &[Future<T>]) -> Future<()> {
    let n = futures.len();
    let (promise, out) = Promise::new_pair();
    if n == 0 {
        promise.set(());
        return out;
    }
    let remaining = Arc::new(AtomicUsize::new(n));
    let promise = Arc::new(Mutex::new(Some(promise)));
    for (i, fut) in futures.iter().enumerate() {
        let remaining = remaining.clone();
        let promise = promise.clone();
        let rt = rt.clone();
        fut.on_settled(move |s: Settled<'_, T>| match s {
            Settled::Ready(_) => {
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    if let Some(p) = promise.lock().take() {
                        rt.spawn(move || p.set(()));
                    }
                }
            }
            Settled::Abandoned(reason) => {
                if let Some(p) = promise.lock().take() {
                    p.abandon(format!(
                        "hpx-rt: when_all_of: input #{i} abandoned: {reason}"
                    ));
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_future_is_immediately_ready() {
        let f = make_ready_future(5);
        assert!(f.is_ready());
        assert_eq!(f.get(), 5);
    }

    #[test]
    fn promise_set_wakes_waiter() {
        let (p, f) = Promise::new_pair();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            p.set(99);
        });
        assert_eq!(f.get(), 99);
        t.join().unwrap();
    }

    #[test]
    fn clone_shares_the_value() {
        let (p, f) = Promise::new_pair();
        let g = f.clone();
        p.set("hi".to_owned());
        assert_eq!(f.get(), "hi");
        assert_eq!(g.get(), "hi");
    }

    #[test]
    #[should_panic(expected = "abandoned")]
    fn dropped_promise_panics_waiters_instead_of_hanging() {
        let (p, f) = Promise::<i32>::new_pair();
        drop(p);
        f.wait();
    }

    #[test]
    #[should_panic(expected = "fulfilled twice")]
    fn double_set_panics() {
        let (p, f) = Promise::new_pair();
        let g = f.clone();
        p.set(1);
        let (p2, _f2) = Promise::new_pair();
        // Simulate a second set on the same shared state via on_ready misuse:
        // easiest honest check is a fresh promise pair pointing to the same
        // shared state, which the public API forbids; so instead fulfil and
        // then assert the guard in `set` by constructing the race manually.
        drop(g);
        // Re-fulfilling through a cloned Promise is impossible by
        // construction (Promise is not Clone); emulate by calling set on a
        // promise whose shared state is already Ready.
        let shared_hack = Promise {
            shared: p2.shared.clone(),
            fulfilled: false,
        };
        p2.set(2);
        shared_hack.set(3);
    }

    #[test]
    fn then_chains_across_runtime() {
        let rt = Runtime::new(2);
        let f = rt.async_call(|| 10);
        let g = f.then(&rt, |x| x + 1).then(&rt, |x| x * 2);
        assert_eq!(g.get(), 22);
        rt.shutdown();
    }

    #[test]
    fn then_on_already_ready_future() {
        let rt = Runtime::new(1);
        let f = make_ready_future(3);
        let g = f.then(&rt, |x| x * 3);
        assert_eq!(g.get(), 9);
        rt.shutdown();
    }

    #[test]
    fn when_all_collects_in_order() {
        let rt = Runtime::new(4);
        let futures: Vec<Future<usize>> = (0..16).map(|i| rt.async_call(move || i * i)).collect();
        let all = when_all(&rt, futures);
        let values = all.get();
        assert_eq!(values.len(), 16);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
        rt.shutdown();
    }

    #[test]
    fn when_all_of_nothing_is_ready() {
        let rt = Runtime::new(1);
        let all = when_all::<i32>(&rt, Vec::new());
        assert_eq!(all.get(), Vec::<i32>::new());
        rt.shutdown();
    }

    #[test]
    fn when_any_yields_first_completion() {
        let rt = Runtime::new(2);
        let (slow_p, slow_f) = Promise::new_pair();
        let fast = make_ready_future(7);
        let any = when_any(vec![slow_f, fast]);
        let (idx, v) = any.get();
        assert_eq!((idx, v), (1, 7));
        slow_p.set(9); // the loser still completes harmlessly
        rt.shutdown();
    }

    #[test]
    fn when_any_is_first_wins_under_racing() {
        let rt = Runtime::new(4);
        let futures: Vec<Future<usize>> = (0..8).map(|i| rt.async_call(move || i)).collect();
        let (idx, v) = when_any(futures).get();
        assert_eq!(idx, v);
        assert!(idx < 8);
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn when_any_of_nothing_abandons() {
        let f = when_any::<i32>(Vec::new());
        f.wait();
    }

    #[test]
    fn dataflow2_combines_two_inputs() {
        let rt = Runtime::new(2);
        let a = rt.async_call(|| 6);
        let b = rt.async_call(|| 7);
        let c = dataflow2(&rt, &a, &b, |x, y| x * y);
        assert_eq!(c.get(), 42);
        rt.shutdown();
    }

    #[test]
    fn dataflow2_with_one_pending_input() {
        let rt = Runtime::new(2);
        let a = make_ready_future(10);
        let (p, b) = Promise::new_pair();
        let c = dataflow2(&rt, &a, &b, |x, y: i32| x + y);
        assert!(!c.is_ready());
        p.set(5);
        assert_eq!(c.get(), 15);
        rt.shutdown();
    }

    #[test]
    fn ticket_and_then_ref_work_on_non_clone_payloads() {
        // The payload type is deliberately not Clone: this compiles only
        // because ticket/then_ref consume the value by reference.
        struct Big(Vec<f64>);
        let rt = Runtime::new(2);
        let f: Future<Big> = rt.async_call(|| Big(vec![0.5; 64]));
        let ticket = f.ticket();
        let sum = f.then_ref(&rt, |b: &Big| b.0.iter().sum::<f64>());
        ticket.wait();
        assert_eq!(sum.get(), 32.0);
        rt.shutdown();
    }

    #[test]
    fn when_all_of_gates_on_every_input() {
        let rt = Runtime::new(2);
        let (p, pending) = Promise::new_pair();
        let gate = when_all_of(&rt, &[make_ready_future(1), pending]);
        assert!(!gate.is_ready());
        p.set(2);
        gate.wait();
        rt.shutdown();
    }

    #[test]
    fn when_all_of_empty_set_is_ready() {
        let rt = Runtime::new(1);
        assert!(when_all_of::<i32>(&rt, &[]).is_ready());
        rt.shutdown();
    }

    #[test]
    fn watchdog_flags_worker_blocked_on_unresolvable_future() {
        // Runs in release builds too now that the watchdog is an opt-in
        // release feature (set_blocked_wait_timeout / HPX_WATCHDOG_MS).
        let prev = set_blocked_wait_timeout(Duration::from_millis(250));
        let rt = Runtime::new(1);
        let fires_before = rt.counters().snapshot().watchdog_fires;
        // A promise that is neither fulfilled nor abandoned: forget it so its
        // Drop cannot rescue the waiter.  The single worker blocks with no
        // queued work, which the watchdog must flag as a deadlock.
        let task = rt.async_call(|| {
            let (p, f) = Promise::<i32>::new_pair();
            std::mem::forget(p);
            f.wait();
        });
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.get()));
        let fires_after = rt.counters().snapshot().watchdog_fires;
        set_blocked_wait_timeout(prev);
        rt.shutdown();
        assert!(outcome.is_err(), "watchdog should have fired");
        assert!(
            fires_after > fires_before,
            "watchdog fire should be exported as a performance counter"
        );
    }

    #[test]
    fn then_propagates_abandonment_with_reason() {
        let rt = Runtime::new(1);
        let (p, f) = Promise::<i32>::new_pair();
        let g = f.then(&rt, |x| x + 1).then(&rt, |x| x * 2);
        drop(p);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.get()));
        let msg = crate::runtime::panic_message(&*outcome.unwrap_err());
        assert!(msg.contains("abandoned"), "got: {msg}");
        assert!(msg.contains("promise dropped"), "got: {msg}");
        rt.shutdown();
    }

    #[test]
    fn ticket_propagates_abandonment() {
        let (p, f) = Promise::<i32>::new_pair();
        let t = f.ticket();
        drop(p);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.wait()));
        let msg = crate::runtime::panic_message(&*outcome.unwrap_err());
        assert!(msg.contains("ticket input abandoned"), "got: {msg}");
    }

    #[test]
    fn when_all_abandons_with_input_index() {
        let rt = Runtime::new(2);
        let (p0, f0) = Promise::<i32>::new_pair();
        let (p1, f1) = Promise::<i32>::new_pair();
        let all = when_all(&rt, vec![f0, f1]);
        p0.set(1);
        drop(p1); // input #1 is lost
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| all.get()));
        let msg = crate::runtime::panic_message(&*outcome.unwrap_err());
        assert!(msg.contains("when_all: input #1 abandoned"), "got: {msg}");
        rt.shutdown();
    }

    #[test]
    fn when_all_of_abandons_instead_of_hanging() {
        let rt = Runtime::new(2);
        let (p0, f0) = Promise::<()>::new_pair();
        let (p1, f1) = Promise::<()>::new_pair();
        let gate = when_all_of(&rt, &[f0, f1]);
        drop(p0);
        p1.set(());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| gate.wait()));
        let msg = crate::runtime::panic_message(&*outcome.unwrap_err());
        assert!(
            msg.contains("when_all_of: input #0 abandoned"),
            "got: {msg}"
        );
        rt.shutdown();
    }

    #[test]
    fn when_any_survives_partial_abandonment() {
        let (p0, f0) = Promise::<i32>::new_pair();
        let (p1, f1) = Promise::<i32>::new_pair();
        let any = when_any(vec![f0, f1]);
        drop(p0);
        p1.set(11);
        assert_eq!(any.get(), (1, 11));
    }

    #[test]
    fn when_any_abandons_only_when_every_input_is_lost() {
        let (p0, f0) = Promise::<i32>::new_pair();
        let (p1, f1) = Promise::<i32>::new_pair();
        let any = when_any(vec![f0, f1]);
        drop(p0);
        drop(p1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| any.get()));
        let msg = crate::runtime::panic_message(&*outcome.unwrap_err());
        assert!(msg.contains("all 2 inputs abandoned"), "got: {msg}");
    }

    #[test]
    fn on_settled_sees_already_abandoned_future_without_panicking() {
        let (p, f) = Promise::<i32>::new_pair();
        drop(p);
        let saw = Arc::new(Mutex::new(None));
        let saw2 = saw.clone();
        f.on_settled(move |s| {
            *saw2.lock() = Some(match s {
                Settled::Ready(_) => "ready".to_owned(),
                Settled::Abandoned(r) => r.to_owned(),
            });
        });
        assert_eq!(
            saw.lock().as_deref(),
            Some("promise dropped without being fulfilled")
        );
    }

    #[test]
    fn deep_dependency_chain_on_small_pool() {
        // A chain of 100 continuations on a single worker must complete —
        // this exercises the helping wait.
        let rt = Runtime::new(1);
        let mut f = rt.async_call(|| 0u64);
        for _ in 0..100 {
            f = f.then(&rt, |x| x + 1);
        }
        assert_eq!(f.get(), 100);
        rt.shutdown();
    }
}
