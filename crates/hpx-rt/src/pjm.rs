//! Fugaku's Parallel Job Manager (PJM) resource specifications.
//!
//! Section V of the paper: *"Fugaku uses the Parallel Job Manager (PJM) for
//! scheduling. HPX was extended to support PJM"* (HPX PR #5870).  That HPX
//! change teaches the runtime to read its node/process layout from PJM's
//! environment instead of mpirun-style variables.  This module models the
//! same contract: parse a PJM `#PJM -L`/`--mpi` style specification into a
//! [`JobSpec`] the simulated cluster can be built from.

/// A parsed PJM job specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// `#PJM -L node=N` — number of compute nodes.
    pub nodes: usize,
    /// `#PJM --mpi proc=P` — total ranks (localities); defaults to `nodes`.
    pub procs: usize,
    /// `#PJM -L rscgrp=...` — resource group name.
    pub resource_group: String,
    /// `#PJM -L elapse=HH:MM:SS` — wall-clock limit in seconds.
    pub elapse_limit_s: u64,
    /// `#PJM -L freq=2200` style boost request: `true` selects the 2.2 GHz
    /// boost mode, `false` the 1.8 GHz default (Section VI-A).
    pub boost_mode: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            nodes: 1,
            procs: 1,
            resource_group: "small".to_owned(),
            elapse_limit_s: 3600,
            boost_mode: false,
        }
    }
}

/// Errors from [`JobSpec::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PjmError {
    /// A directive had an unparseable value.
    BadValue { key: String, value: String },
    /// A `-L`/`--mpi` assignment was malformed.
    Malformed(String),
}

impl std::fmt::Display for PjmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PjmError::BadValue { key, value } => {
                write!(f, "bad value '{value}' for PJM key '{key}'")
            }
            PjmError::Malformed(s) => write!(f, "malformed PJM assignment '{s}'"),
        }
    }
}

impl std::error::Error for PjmError {}

impl JobSpec {
    /// Parse a PJM batch-script fragment.
    ///
    /// Recognised directives (one per line, other lines are ignored):
    ///
    /// ```text
    /// #PJM -L node=1024
    /// #PJM -L rscgrp=large
    /// #PJM -L elapse=01:30:00
    /// #PJM -L freq=2200        # 2200 => boost, 1800 => default
    /// #PJM --mpi proc=4096
    /// ```
    pub fn parse(script: &str) -> Result<JobSpec, PjmError> {
        let mut spec = JobSpec::default();
        let mut procs_explicit = false;
        for line in script.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("#PJM") else {
                continue;
            };
            let rest = rest.trim();
            let assigns: &str = if let Some(r) = rest.strip_prefix("-L") {
                r.trim()
            } else if let Some(r) = rest.strip_prefix("--mpi") {
                r.trim()
            } else {
                continue;
            };
            // Strip trailing comments.
            let assigns = assigns.split('#').next().unwrap_or("").trim();
            for assign in assigns.split(',') {
                let assign = assign.trim();
                if assign.is_empty() {
                    continue;
                }
                let Some((key, value)) = assign.split_once('=') else {
                    return Err(PjmError::Malformed(assign.to_owned()));
                };
                let (key, value) = (key.trim(), value.trim());
                match key {
                    "node" => {
                        spec.nodes = parse_num(key, value)?;
                    }
                    "proc" => {
                        spec.procs = parse_num(key, value)?;
                        procs_explicit = true;
                    }
                    "rscgrp" => {
                        spec.resource_group = value.to_owned();
                    }
                    "elapse" => {
                        spec.elapse_limit_s =
                            parse_elapse(value).ok_or_else(|| PjmError::BadValue {
                                key: key.to_owned(),
                                value: value.to_owned(),
                            })?;
                    }
                    "freq" => {
                        let mhz: u64 = parse_num(key, value)?;
                        spec.boost_mode = mhz >= 2200;
                    }
                    _ => {} // unknown keys are PJM's problem, not ours
                }
            }
        }
        if !procs_explicit {
            spec.procs = spec.nodes;
        }
        Ok(spec)
    }

    /// Render back to a canonical PJM fragment (round-trips through
    /// [`JobSpec::parse`]).
    pub fn to_script(&self) -> String {
        let h = self.elapse_limit_s / 3600;
        let m = (self.elapse_limit_s % 3600) / 60;
        let s = self.elapse_limit_s % 60;
        format!(
            "#PJM -L node={}\n#PJM -L rscgrp={}\n#PJM -L elapse={:02}:{:02}:{:02}\n#PJM -L freq={}\n#PJM --mpi proc={}\n",
            self.nodes,
            self.resource_group,
            h,
            m,
            s,
            if self.boost_mode { 2200 } else { 1800 },
            self.procs,
        )
    }

    /// Localities per node implied by this spec (`procs / nodes`, >= 1).
    pub fn procs_per_node(&self) -> usize {
        (self.procs / self.nodes.max(1)).max(1)
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, PjmError> {
    value.parse().map_err(|_| PjmError::BadValue {
        key: key.to_owned(),
        value: value.to_owned(),
    })
}

fn parse_elapse(value: &str) -> Option<u64> {
    let parts: Vec<&str> = value.split(':').collect();
    match parts.as_slice() {
        [h, m, s] => Some(
            h.parse::<u64>().ok()? * 3600 + m.parse::<u64>().ok()? * 60 + s.parse::<u64>().ok()?,
        ),
        [m, s] => Some(m.parse::<u64>().ok()? * 60 + s.parse::<u64>().ok()?),
        [s] => s.parse().ok(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_fugaku_script() {
        let script = "\
#!/bin/bash
#PJM -L node=1024
#PJM -L rscgrp=large
#PJM -L elapse=01:30:00
#PJM -L freq=2200
#PJM --mpi proc=1024
mpiexec ./octotiger
";
        let spec = JobSpec::parse(script).unwrap();
        assert_eq!(spec.nodes, 1024);
        assert_eq!(spec.procs, 1024);
        assert_eq!(spec.resource_group, "large");
        assert_eq!(spec.elapse_limit_s, 5400);
        assert!(spec.boost_mode);
    }

    #[test]
    fn procs_default_to_nodes() {
        let spec = JobSpec::parse("#PJM -L node=16\n").unwrap();
        assert_eq!(spec.procs, 16);
        assert_eq!(spec.procs_per_node(), 1);
    }

    #[test]
    fn comma_separated_assignments() {
        let spec = JobSpec::parse("#PJM -L node=8,rscgrp=small,elapse=00:10:00\n").unwrap();
        assert_eq!(spec.nodes, 8);
        assert_eq!(spec.resource_group, "small");
        assert_eq!(spec.elapse_limit_s, 600);
    }

    #[test]
    fn default_frequency_is_not_boost() {
        let spec = JobSpec::parse("#PJM -L node=4,freq=1800\n").unwrap();
        assert!(!spec.boost_mode);
    }

    #[test]
    fn bad_node_count_is_an_error() {
        let err = JobSpec::parse("#PJM -L node=abc\n").unwrap_err();
        assert!(matches!(err, PjmError::BadValue { .. }));
    }

    #[test]
    fn malformed_assignment_is_an_error() {
        let err = JobSpec::parse("#PJM -L node\n").unwrap_err();
        assert!(matches!(err, PjmError::Malformed(_)));
    }

    #[test]
    fn script_roundtrip() {
        let spec = JobSpec {
            nodes: 128,
            procs: 512,
            resource_group: "large".to_owned(),
            elapse_limit_s: 7230,
            boost_mode: true,
        };
        let reparsed = JobSpec::parse(&spec.to_script()).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn ignores_unrelated_lines_and_comments() {
        let spec = JobSpec::parse("# comment\nexport X=1\n#PJM -L node=2 # two nodes\n").unwrap();
        assert_eq!(spec.nodes, 2);
    }
}
