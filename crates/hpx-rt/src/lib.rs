//! # hpx-rt — an HPX-style asynchronous many-task runtime
//!
//! The paper's application, Octo-Tiger, is built on HPX: a C++ runtime with
//! lightweight user-level tasks scheduled over a fixed pool of worker
//! threads, futures with attachable continuations (so tree traversals become
//! dataflow graphs rather than fork/join phases), and *localities* — the
//! distributed processes between which work and data move as *parcels*
//! carrying *actions* (remote procedure invocations).
//!
//! This crate is the Rust substrate standing in for HPX:
//!
//! * [`Runtime`] — a work-stealing task pool (crossbeam deques, one worker
//!   per configured "core").  Tasks spawned from inside a worker go to that
//!   worker's local deque, exactly like HPX's thread-local scheduling;
//!   blocked waits *help* by stealing work, so nested task graphs (the FMM
//!   tree traversals of the paper) cannot deadlock the pool.
//! * [`future::Promise`] / [`future::Future`] — shared futures with
//!   `then`-continuations and `when_all`, the paper's mechanism for chaining
//!   Kokkos kernel launches into HPX's asynchronous execution graph.
//! * [`locality`] — N logical localities in one process, with an action
//!   registry and an in-process parcel transport whose traffic is metered by
//!   [`counters::Counters`].  This stands in for HPX's distributed AGAS +
//!   parcelport layer (see DESIGN.md substitution table).
//! * [`channel`] — HPX-style `promise`/`future` channels, used by the
//!   Section VII-B communication optimization ("simple local HPX
//!   promise/future pairs to notify neighbors when the local values are
//!   up-to-date").
//! * [`pjm`] — a model of the Fugaku Parallel Job Manager resource
//!   specification the paper added HPX support for (HPX PR #5870).
//! * [`apex`] — APEX-style autonomic performance instrumentation, the
//!   analysis layer the paper's conclusion points to for future work.
//! * [`tuner`] — the closed loop over that layer: online auto-tuning of
//!   task granularity per kernel family (the paper's Figure 9 knob),
//!   driven by apex window means.

pub mod apex;
pub mod channel;
pub mod counters;
pub mod future;
pub mod locality;
pub mod parcel;
pub mod pjm;
pub mod runtime;
pub mod tuner;

pub use apex::{Apex, TimerStats};
pub use channel::{channel, Receiver, Sender};
pub use counters::{
    gravity_plan_counters, parcel_counters, regrid_counters, tuner_counters, Counters,
    CountersSnapshot, GravityPlanCounters, GravityPlanSnapshot, ParcelClass, ParcelCounters,
    ParcelSnapshot, RegridCounters, RegridSnapshot, TunerCounters, TunerCountersSnapshot,
};
pub use future::{
    dataflow2, make_ready_future, set_blocked_wait_timeout, when_all, when_all_of, when_any,
    Future, Promise, Settled,
};
pub use locality::{ActionRegistry, Locality, LocalityId, Parcel, SimCluster};
pub use parcel::{ParcelTransport, TypedParcel};
pub use pjm::JobSpec;
pub use runtime::{Runtime, Scope};
pub use tuner::{FamilyPhase, FamilySnapshot, Tuner, TunerSnapshot, TuningState};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn end_to_end_task_future_chain() {
        let rt = Runtime::new(4);
        let f = rt.async_call(|| 21);
        let g = f.then(&rt, |x| x * 2);
        assert_eq!(g.get(), 42);
        rt.shutdown();
    }

    #[test]
    fn cluster_smoke() {
        let cluster = SimCluster::new(2, 2);
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = hits.clone();
        cluster.register_action("ping", move |_arg, _loc| {
            hits2.fetch_add(1, Ordering::SeqCst);
            Box::new(7usize)
        });
        let f = cluster
            .locality(0)
            .apply_async(LocalityId(1), "ping", Box::new(()), 8);
        let out = f.get();
        assert_eq!(*locality::downcast_payload::<usize>(&out).unwrap(), 7);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        cluster.shutdown();
    }
}
