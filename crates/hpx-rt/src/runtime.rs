//! The work-stealing task pool: HPX's thread scheduler, in miniature.
//!
//! HPX schedules millions of lightweight tasks over one OS thread per core.
//! The properties Octo-Tiger depends on — and which the paper's experiments
//! probe — are reproduced here:
//!
//! * **Local-first scheduling.** A task spawned from a worker goes to that
//!   worker's own deque (hot cache; the reason one task per Kokkos kernel
//!   launch is the paper's default, Section VII-C).
//! * **Work stealing.** Idle workers steal from the global injector and from
//!   other workers, so splitting a kernel into more tasks spreads it across
//!   starved cores (the Section VII-C multipole-splitting optimization).
//! * **Cooperative blocking.** Any wait (`Future::get`, `Runtime::scope`)
//!   executes other tasks while waiting instead of blocking the worker, so
//!   deeply nested task graphs (FMM tree traversals) cannot deadlock the
//!   pool.

use crate::counters::Counters;
use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct SleepState {
    shutdown: bool,
}

/// State of a [`Runtime::deterministic`] pool: a virtual single-threaded
/// scheduler standing in for the work-stealing workers.  Every runnable task
/// sits in one queue; each scheduling point removes a *seeded-pseudo-random*
/// element, so one `u64` seed fully determines the interleaving and a failing
/// schedule can be replayed from its seed alone.  This is the loom-style
/// substrate the `hpx-check` model checker samples schedules with.
struct VirtualState {
    queue: Vec<Job>,
    rng: u64,
    seed: u64,
    steps: u64,
    max_steps: u64,
    /// Panics contained by `PoolInner::execute` (a detached task dying is a
    /// bug signal under model checking, not console noise).
    contained_panics: Vec<String>,
}

impl VirtualState {
    fn new(seed: u64) -> VirtualState {
        VirtualState {
            queue: Vec::new(),
            rng: splitmix64(seed).max(1),
            seed,
            steps: 0,
            max_steps: 1_000_000,
            contained_panics: Vec::new(),
        }
    }

    fn next_choice(&mut self) -> u64 {
        // xorshift64: tiny, deterministic, and good enough to decorrelate
        // neighbouring seeds after the splitmix64 scramble.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn stall_report(&self) -> String {
        format!(
            "deterministic schedule stalled (seed {seed}, after {steps} tasks): blocked on a \
             pending future with no runnable task — a deadlock, lost wakeup, or dropped \
             promise; replay with Runtime::deterministic({seed})",
            seed = self.seed,
            steps = self.steps,
        )
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct PoolInner {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    sleep: Mutex<SleepState>,
    wake: Condvar,
    counters: Counters,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    num_workers: usize,
    shutdown_flag: AtomicBool,
    /// `Some` for deterministic pools; replaces the deques entirely.
    virtual_sched: Option<Mutex<VirtualState>>,
}

#[derive(Clone, Copy)]
struct WorkerCtx {
    pool: *const PoolInner,
    /// `None` when the thread entered the pool without a local deque (a
    /// deterministic-mode driver thread, see [`Runtime::enter`]).
    local: Option<*const Deque<Job>>,
}

thread_local! {
    static CTX: Cell<Option<WorkerCtx>> = const { Cell::new(None) };
}

/// A handle to a work-stealing task pool.
///
/// Cheaply cloneable; all clones refer to the same pool.  Worker threads
/// keep the pool alive until [`Runtime::shutdown`] is called, so dropping
/// the last handle without shutting down leaks the workers until process
/// exit (the same contract as `hpx::start` without `hpx::finalize`).
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<PoolInner>,
}

impl Runtime {
    /// Start a pool with `num_workers` worker threads (>= 1).
    pub fn new(num_workers: usize) -> Self {
        let num_workers = num_workers.max(1);
        let deques: Vec<Deque<Job>> = (0..num_workers).map(|_| Deque::new_fifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let inner = Arc::new(PoolInner {
            injector: Injector::new(),
            stealers,
            sleep: Mutex::new(SleepState { shutdown: false }),
            wake: Condvar::new(),
            counters: Counters::new(),
            threads: Mutex::new(Vec::new()),
            num_workers,
            shutdown_flag: AtomicBool::new(false),
            virtual_sched: None,
        });
        let mut handles = Vec::with_capacity(num_workers);
        for (i, deque) in deques.into_iter().enumerate() {
            let pool = inner.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hpx-worker-{i}"))
                    .spawn(move || worker_loop(pool, deque))
                    .expect("failed to spawn hpx-rt worker thread"),
            );
        }
        *inner.threads.lock() = handles;
        Runtime { inner }
    }

    /// A **deterministic** pool: no worker threads, one virtual task queue,
    /// and a seeded scheduler that picks the next task pseudo-randomly at
    /// every scheduling point (spawn/resolve/steal/park all funnel through
    /// the same queue).  The same seed always yields the same interleaving.
    ///
    /// Tasks only execute while the driving thread is inside
    /// [`Runtime::enter`] (or a blocking wait reached from it) — the pool is
    /// single-threaded by construction, which is what turns "blocked with an
    /// empty queue" into a *definite* deadlock rather than a heuristic: waits
    /// panic immediately with a seed-stamped report instead of hanging.
    ///
    /// This is the loom-lite substrate of the `hpx-check` model checker.
    pub fn deterministic(seed: u64) -> Self {
        let inner = Arc::new(PoolInner {
            injector: Injector::new(),
            stealers: Vec::new(),
            sleep: Mutex::new(SleepState { shutdown: false }),
            wake: Condvar::new(),
            counters: Counters::new(),
            threads: Mutex::new(Vec::new()),
            num_workers: 1,
            shutdown_flag: AtomicBool::new(false),
            virtual_sched: Some(Mutex::new(VirtualState::new(seed))),
        });
        Runtime { inner }
    }

    /// `true` for pools created by [`Runtime::deterministic`].
    pub fn is_deterministic(&self) -> bool {
        self.inner.virtual_sched.is_some()
    }

    /// The schedule seed of a deterministic pool, `None` otherwise.
    pub fn schedule_seed(&self) -> Option<u64> {
        self.inner.virtual_sched.as_ref().map(|vs| vs.lock().seed)
    }

    /// Cap the number of tasks a deterministic schedule may execute before
    /// being declared a livelock (default 1 000 000).  No-op on threaded
    /// pools.
    pub fn set_schedule_step_budget(&self, max_steps: u64) {
        if let Some(vs) = &self.inner.virtual_sched {
            vs.lock().max_steps = max_steps;
        }
    }

    /// Tasks executed so far by a deterministic schedule (0 for threaded
    /// pools).
    pub fn schedule_steps(&self) -> u64 {
        self.inner
            .virtual_sched
            .as_ref()
            .map_or(0, |vs| vs.lock().steps)
    }

    /// Run `f` with the calling thread registered as the (sole) worker of
    /// this deterministic pool, so blocking waits inside `f` execute queued
    /// tasks in seeded order instead of hanging.
    ///
    /// # Panics
    /// Panics if called on a threaded pool.
    pub fn enter<R>(&self, f: impl FnOnce() -> R) -> R {
        assert!(
            self.is_deterministic(),
            "Runtime::enter is only for deterministic pools; threaded pools schedule on \
             their own workers"
        );
        struct Restore(Option<WorkerCtx>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0;
                CTX.with(|c| c.set(prev));
            }
        }
        let prev = CTX.with(|c| {
            c.replace(Some(WorkerCtx {
                pool: Arc::as_ptr(&self.inner),
                local: None,
            }))
        });
        let _restore = Restore(prev);
        f()
    }

    /// Drain a deterministic pool: execute queued tasks (in seeded order,
    /// including any they spawn) until the queue is empty.
    pub fn run_until_idle(&self) {
        self.enter(|| {
            while let Some(job) = self.inner.find_task(None) {
                self.inner.execute(job);
            }
        });
    }

    /// Take the messages of panics contained inside detached tasks of a
    /// deterministic schedule (double-resolves, abandoned-future waits, …).
    /// Threaded pools report contained panics to stderr instead and return
    /// an empty vector here.
    pub fn take_contained_panics(&self) -> Vec<String> {
        self.inner
            .virtual_sched
            .as_ref()
            .map(|vs| std::mem::take(&mut vs.lock().contained_panics))
            .unwrap_or_default()
    }

    /// The process-wide default pool, sized to the host's parallelism.
    ///
    /// Mirrors HPX's implicit runtime; it is never shut down.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            Runtime::new(n)
        })
    }

    /// Number of worker threads ("cores") in this pool.
    pub fn num_workers(&self) -> usize {
        self.inner.num_workers
    }

    /// The pool's performance counters.
    pub fn counters(&self) -> &Counters {
        &self.inner.counters
    }

    /// `true` if the calling thread is one of this pool's workers.
    pub fn on_worker_thread(&self) -> bool {
        CTX.with(|c| {
            c.get()
                .is_some_and(|ctx| std::ptr::eq(ctx.pool, Arc::as_ptr(&self.inner)))
        })
    }

    /// Fire-and-forget spawn (HPX `apply`).
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.spawn_boxed(Box::new(f));
    }

    fn spawn_boxed(&self, job: Job) {
        Counters::bump(&self.inner.counters.tasks_spawned);
        if let Some(vs) = &self.inner.virtual_sched {
            // Deterministic mode: every task goes into the one virtual
            // queue; the seeded scheduler picks the execution order.
            vs.lock().queue.push(job);
            return;
        }
        let leftover = CTX.with(|c| {
            if let Some(ctx) = c.get() {
                if std::ptr::eq(ctx.pool, Arc::as_ptr(&self.inner)) {
                    if let Some(local) = ctx.local {
                        // SAFETY: `local` points to the deque owned by this
                        // very thread's worker loop, which is alive for as
                        // long as the thread runs inside `worker_loop`.
                        // Pushing from the owning thread is the intended use
                        // of `crossbeam::deque::Worker`.
                        unsafe { (*local).push(job) };
                        return None;
                    }
                }
            }
            Some(job)
        });
        if let Some(job) = leftover {
            self.inner.injector.push(job);
        }
        self.inner.wake.notify_one();
    }

    /// Spawn `f` and get a [`Future`](crate::future::Future) for its result
    /// (HPX `async`).
    pub fn async_call<T, F>(&self, f: F) -> crate::future::Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (promise, future) = crate::future::Promise::new_pair();
        Counters::bump(&self.inner.counters.futures_created);
        self.spawn(move || match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => promise.set(v),
            Err(payload) => promise.abandon(panic_message(&*payload)),
        });
        future
    }

    /// Run `f` with a [`Scope`] that can spawn tasks borrowing from the
    /// caller's stack; returns only after every scoped task finished.
    ///
    /// The waiting thread executes other tasks meanwhile, so `scope` may be
    /// nested arbitrarily (kernels inside kernels), as the Kokkos HPX
    /// execution space requires.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env, '_>) -> R) -> R {
        let pending = AtomicUsize::new(0);
        let panicked = AtomicBool::new(false);
        let scope = Scope {
            rt: self,
            pending: &pending,
            panicked: &panicked,
            _env: PhantomData,
        };
        let out = f(&scope);
        self.help_while(|| pending.load(Ordering::Acquire) > 0);
        if panicked.load(Ordering::Acquire) {
            panic!("a task spawned in hpx_rt::Runtime::scope panicked");
        }
        out
    }

    /// Execute other tasks while `cond` holds.  Usable from worker threads
    /// *and* external threads (external threads steal from the injector and
    /// the workers but have no local deque).
    pub fn help_while(&self, mut cond: impl FnMut() -> bool) {
        let mut idle_spins = 0u32;
        while cond() {
            if let Some(job) = self.inner.find_task(current_local(&self.inner)) {
                self.inner.execute(job);
                idle_spins = 0;
            } else if let Some(vs) = &self.inner.virtual_sched {
                // Single-threaded by construction: an empty queue while the
                // condition still holds can never make progress.
                if cond() {
                    let report = vs.lock().stall_report();
                    panic!("hpx-rt: {report}");
                }
            } else {
                idle_spins += 1;
                if idle_spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::sleep(Duration::from_micros(20));
                }
            }
        }
    }

    /// Block until the pool is momentarily drained: no queued tasks anywhere.
    ///
    /// Only a quiescence heuristic for tests/benchmarks — running tasks may
    /// spawn more work afterwards.
    pub fn wait_quiescent(&self) {
        loop {
            let empty =
                self.inner.injector.is_empty() && self.inner.stealers.iter().all(|s| s.is_empty());
            if empty {
                let spawned = self.inner.counters.tasks_spawned.load(Ordering::Relaxed);
                let executed = self.inner.counters.tasks_executed.load(Ordering::Relaxed);
                if spawned == executed {
                    return;
                }
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Stop all workers and join them.  Queued tasks that have not started
    /// are dropped.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut guard = self.inner.sleep.lock();
            guard.shutdown = true;
            self.inner.shutdown_flag.store(true, Ordering::SeqCst);
            self.inner.wake.notify_all();
        }
        let handles = std::mem::take(&mut *self.inner.threads.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

fn current_local(pool: &PoolInner) -> Option<*const Deque<Job>> {
    CTX.with(|c| {
        c.get().and_then(|ctx| {
            if std::ptr::eq(ctx.pool, pool as *const _) {
                ctx.local
            } else {
                None
            }
        })
    })
}

impl PoolInner {
    fn find_task(&self, local: Option<*const Deque<Job>>) -> Option<Job> {
        // 0. Deterministic mode: the virtual queue is the only source, and
        //    the seeded RNG picks which runnable task goes next.
        if let Some(vs) = &self.virtual_sched {
            let mut g = vs.lock();
            if g.queue.is_empty() {
                return None;
            }
            g.steps += 1;
            assert!(
                g.steps <= g.max_steps,
                "hpx-rt: deterministic schedule (seed {}) exceeded its step budget of {} \
                 tasks: livelock or unbounded task graph",
                g.seed,
                g.max_steps
            );
            let idx = (g.next_choice() as usize) % g.queue.len();
            return Some(g.queue.remove(idx));
        }
        // 1. Own deque (hot cache).
        if let Some(local) = local {
            // SAFETY: `local` is this thread's own deque (see `current_local`).
            if let Some(job) = unsafe { (*local).pop() } {
                return Some(job);
            }
        }
        // 2. Global injector.
        loop {
            match self.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        // 3. Steal from peers.
        for stealer in &self.stealers {
            loop {
                match stealer.steal() {
                    Steal::Success(job) => {
                        Counters::bump(&self.counters.tasks_stolen);
                        return Some(job);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    fn execute(&self, job: Job) {
        // Panics in detached tasks are contained so one bad kernel cannot
        // take down a worker (HPX converts them into error futures; promise
        // abandonment plays that role here — see `Runtime::async_call`).
        let result = catch_unwind(AssertUnwindSafe(job));
        Counters::bump(&self.counters.tasks_executed);
        if let Err(payload) = result {
            let msg = panic_message(&*payload);
            if let Some(vs) = &self.virtual_sched {
                // Under model checking a contained panic is a finding, not
                // noise: record it for `Runtime::take_contained_panics`.
                vs.lock().contained_panics.push(msg);
            } else {
                eprintln!("hpx-rt: task panicked (contained): {msg}");
            }
        }
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// `true` when the calling thread is a worker of *any* pool.  The future
/// watchdog only arms on worker threads: an external thread blocking for a
/// long time is ordinary, a starved worker with nothing to help with is a
/// dependency-graph bug.
pub(crate) fn on_any_worker_thread() -> bool {
    CTX.with(|c| c.get().is_some())
}

/// If the calling thread belongs to *some* pool, try to execute one task of
/// that pool.  Returns `true` if a task ran.  Used by futures to help while
/// blocked.
pub(crate) fn try_help_current_thread() -> bool {
    let ctx = CTX.with(|c| c.get());
    let Some(ctx) = ctx else { return false };
    // SAFETY: the pool outlives the worker thread (workers hold an Arc), and
    // we are on a worker thread of exactly this pool.
    let pool = unsafe { &*ctx.pool };
    if let Some(job) = pool.find_task(ctx.local) {
        pool.execute(job);
        true
    } else {
        false
    }
}

/// If the calling thread drives a *deterministic* pool whose queue is empty,
/// return the seed-stamped deadlock report — blocking now could never be
/// woken (single-threaded by construction).  `None` on threaded pools or
/// while runnable tasks remain.
pub(crate) fn current_virtual_stall() -> Option<String> {
    let ctx = CTX.with(|c| c.get())?;
    // SAFETY: as in `try_help_current_thread` — the pool outlives every
    // thread registered with it.
    let pool = unsafe { &*ctx.pool };
    let vs = pool.virtual_sched.as_ref()?;
    let g = vs.lock();
    if g.queue.is_empty() {
        Some(g.stall_report())
    } else {
        None
    }
}

/// Count a blocked-worker watchdog fire on the calling thread's pool (the
/// `/threads/count/watchdog-fires` performance counter), just before the
/// wait panics.
pub(crate) fn note_watchdog_fire() {
    if let Some(ctx) = CTX.with(|c| c.get()) {
        // SAFETY: as in `try_help_current_thread`.
        let pool = unsafe { &*ctx.pool };
        Counters::bump(&pool.counters.watchdog_fires);
    }
}

fn worker_loop(pool: Arc<PoolInner>, local: Deque<Job>) {
    CTX.with(|c| {
        c.set(Some(WorkerCtx {
            pool: Arc::as_ptr(&pool),
            local: Some(&local as *const _),
        }))
    });
    loop {
        if let Some(job) = pool.find_task(Some(&local as *const _)) {
            pool.execute(job);
            continue;
        }
        let mut guard = pool.sleep.lock();
        if guard.shutdown {
            break;
        }
        // Re-check under the lock: a spawner always notifies after pushing,
        // and we re-poll after at most one timeout tick, so no task is lost.
        if !pool.injector.is_empty() {
            continue;
        }
        Counters::bump(&pool.counters.worker_parks);
        pool.wake.wait_for(&mut guard, Duration::from_micros(200));
        if guard.shutdown {
            break;
        }
    }
    CTX.with(|c| c.set(None));
}

/// Spawns tasks that may borrow from the enclosing stack frame.
///
/// Created by [`Runtime::scope`]; all tasks are joined before `scope`
/// returns, which is what makes the borrow sound.
pub struct Scope<'env, 'scope> {
    rt: &'scope Runtime,
    pending: &'scope AtomicUsize,
    panicked: &'scope AtomicBool,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env, 'scope> Scope<'env, 'scope> {
    /// Spawn a task that may borrow data living at least as long as `'env`.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let pending: &'static AtomicUsize =
            // SAFETY: `Runtime::scope` does not return until `pending`
            // reaches zero, so this reference never outlives the stack slot.
            unsafe { &*(self.pending as *const AtomicUsize) };
        let panicked: &'static AtomicBool =
            // SAFETY: as above.
            unsafe { &*(self.panicked as *const AtomicBool) };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the closure is joined (pending==0) before `'env` data can
        // be invalidated, because `Runtime::scope` blocks on it.  This is the
        // standard scoped-spawn lifetime erasure (cf. rayon / crossbeam).
        let job: Job = unsafe { std::mem::transmute(job) };
        self.rt.spawn(move || {
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                panicked.store(true, Ordering::Release);
            }
            pending.fetch_sub(1, Ordering::AcqRel);
        });
    }

    /// The runtime this scope spawns onto.
    pub fn runtime(&self) -> &Runtime {
        self.rt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawn_executes_tasks() {
        let rt = Runtime::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            rt.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        rt.wait_quiescent();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        rt.shutdown();
    }

    #[test]
    fn async_call_returns_value() {
        let rt = Runtime::new(2);
        let f = rt.async_call(|| 1 + 1);
        assert_eq!(f.get(), 2);
        rt.shutdown();
    }

    #[test]
    fn nested_spawn_from_worker_uses_local_queue() {
        let rt = Runtime::new(2);
        let rt2 = rt.clone();
        let f = rt.async_call(move || {
            let inner = rt2.async_call(|| 40);
            inner.get() + 2
        });
        assert_eq!(f.get(), 42);
        rt.shutdown();
    }

    #[test]
    fn scope_joins_borrowing_tasks() {
        let rt = Runtime::new(4);
        let mut data = vec![0u64; 64];
        rt.scope(|s| {
            for chunk in data.chunks_mut(8) {
                s.spawn(move || {
                    for x in chunk {
                        *x += 1;
                    }
                });
            }
        });
        assert!(data.iter().all(|&x| x == 1));
        rt.shutdown();
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let rt = Runtime::new(2);
        let total = Arc::new(AtomicU64::new(0));
        let t = total.clone();
        let rt2 = rt.clone();
        let f = rt.async_call(move || {
            rt2.scope(|outer| {
                for _ in 0..4 {
                    let t = t.clone();
                    let rt3 = outer.runtime().clone();
                    outer.spawn(move || {
                        rt3.scope(|inner| {
                            for _ in 0..4 {
                                let t = t.clone();
                                inner.spawn(move || {
                                    t.fetch_add(1, Ordering::SeqCst);
                                });
                            }
                        });
                    });
                }
            });
        });
        f.wait();
        assert_eq!(total.load(Ordering::SeqCst), 16);
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "scope panicked")]
    fn scope_propagates_task_panic() {
        let rt = Runtime::new(2);
        rt.scope(|s| {
            s.spawn(|| panic!("boom"));
        });
    }

    #[test]
    fn counters_track_spawn_and_execute() {
        let rt = Runtime::new(2);
        let before = rt.counters().snapshot();
        for _ in 0..10 {
            rt.spawn(|| {});
        }
        rt.wait_quiescent();
        let delta = rt.counters().snapshot().since(&before);
        assert_eq!(delta.tasks_spawned, 10);
        assert_eq!(delta.tasks_executed, 10);
        rt.shutdown();
    }

    #[test]
    fn on_worker_thread_detection() {
        let rt = Runtime::new(1);
        assert!(!rt.on_worker_thread());
        let rt2 = rt.clone();
        let f = rt.async_call(move || rt2.on_worker_thread());
        assert!(f.get());
        rt.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let rt = Runtime::new(2);
        rt.shutdown();
        rt.shutdown();
    }

    #[test]
    fn panicking_detached_task_does_not_kill_pool() {
        let rt = Runtime::new(1);
        rt.spawn(|| panic!("contained"));
        rt.wait_quiescent();
        let f = rt.async_call(|| 5);
        assert_eq!(f.get(), 5);
        rt.shutdown();
    }

    fn schedule_order(seed: u64, tasks: usize) -> Vec<usize> {
        let rt = Runtime::deterministic(seed);
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        rt.enter(|| {
            for i in 0..tasks {
                let order = order.clone();
                rt.spawn(move || order.lock().push(i));
            }
        });
        rt.run_until_idle();
        let out = order.lock().clone();
        out
    }

    #[test]
    fn deterministic_same_seed_reproduces_schedule() {
        let a = schedule_order(42, 16);
        let b = schedule_order(42, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_seeds_explore_different_orders() {
        let orders: std::collections::HashSet<Vec<usize>> =
            (0..8).map(|s| schedule_order(s, 8)).collect();
        assert!(
            orders.len() > 1,
            "8 seeds over 8 tasks should produce more than one interleaving"
        );
    }

    #[test]
    fn deterministic_async_and_scope_complete_under_enter() {
        let rt = Runtime::deterministic(7);
        let out = rt.enter(|| {
            let f = rt.async_call(|| 20);
            let g = f.then(&rt, |x| x + 2);
            let mut data = [0u64; 16];
            rt.scope(|s| {
                for chunk in data.chunks_mut(4) {
                    s.spawn(move || {
                        for x in chunk {
                            *x += 1;
                        }
                    });
                }
            });
            assert!(data.iter().all(|&x| x == 1));
            g.get()
        });
        assert_eq!(out, 22);
        assert!(rt.is_deterministic());
        assert_eq!(rt.schedule_seed(), Some(7));
        assert!(rt.schedule_steps() > 0);
    }

    #[test]
    fn deterministic_wait_on_forgotten_promise_reports_seed() {
        let rt = Runtime::deterministic(99);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            rt.enter(|| {
                let (p, f) = crate::future::Promise::<i32>::new_pair();
                std::mem::forget(p);
                f.wait();
            })
        }));
        let msg = panic_message(&*outcome.unwrap_err());
        assert!(msg.contains("deterministic schedule stalled"), "got: {msg}");
        assert!(msg.contains("seed 99"), "got: {msg}");
    }

    #[test]
    fn deterministic_contained_panics_are_recorded() {
        let rt = Runtime::deterministic(3);
        rt.enter(|| rt.spawn(|| panic!("planted double-resolve stand-in")));
        rt.run_until_idle();
        let panics = rt.take_contained_panics();
        assert_eq!(panics.len(), 1);
        assert!(panics[0].contains("planted double-resolve stand-in"));
        assert!(rt.take_contained_panics().is_empty(), "take drains");
    }

    #[test]
    fn heavy_fan_out_stress() {
        let rt = Runtime::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        rt.scope(|s| {
            for _ in 0..1000 {
                let c = counter.clone();
                s.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
        rt.shutdown();
    }
}
