//! Execution policies: what index space a kernel runs over and how it is
//! chunked into tasks.
//!
//! [`ChunkSpec`] is the load-bearing piece for the paper: the Kokkos HPX
//! execution space "allows splitting launched kernels into an arbitrary
//! amount of HPX tasks" (Section VII-C).  Octo-Tiger defaults to **one task
//! per kernel launch** (hot cache, kernel runs on the launching worker) and
//! switches the gravity solver's multipole kernel to **16 tasks** at scale
//! to avoid starvation — the Figure 9 experiment.

/// How a kernel's index range is split into scheduler tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkSpec {
    /// One task per kernel launch — Octo-Tiger's default: the kernel runs
    /// on the launching HPX worker and benefits from its hot cache.
    #[default]
    SingleTask,
    /// Split the range into exactly `n` tasks (the Figure 9 "ON" setting
    /// uses 16).
    Tasks(usize),
    /// Split into tasks of at most `n` consecutive indices.
    ChunkSize(usize),
    /// One task per worker thread of the executing runtime.
    Auto,
}

impl ChunkSpec {
    /// `Tasks(n)` for a positive `n`, `Auto` for 0 — the shape tuner-chosen
    /// task counts arrive in, where 0 means "not tuned, let the space
    /// decide" (one task per worker).
    pub fn tasks_or_auto(n: usize) -> ChunkSpec {
        if n == 0 {
            ChunkSpec::Auto
        } else {
            ChunkSpec::Tasks(n)
        }
    }

    /// Resolve to a concrete task count for a range of `len` indices on a
    /// pool of `workers` threads.  Always at least 1; never more tasks than
    /// indices (except for the empty range, which yields 0).
    pub fn resolve(self, len: usize, workers: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let n = match self {
            ChunkSpec::SingleTask => 1,
            ChunkSpec::Tasks(n) => n.max(1),
            ChunkSpec::ChunkSize(c) => len.div_ceil(c.max(1)),
            ChunkSpec::Auto => workers.max(1),
        };
        n.min(len)
    }
}

/// A 1-D half-open index range `[begin, end)` with a chunking directive
/// (Kokkos `RangePolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePolicy {
    pub begin: usize,
    pub end: usize,
    pub chunk: ChunkSpec,
    /// Vector-lane alignment of task boundaries (1 = unconstrained).
    ///
    /// A kernel that walks its sub-range with `W`-lane vector stores
    /// (`ChunkedLanes` + a masked tail) covers whole lane blocks per
    /// store: a task boundary in the middle of a block would make two
    /// tasks' masked stores touch the same block.  Setting `lane = W`
    /// rounds every interior [`split`](Self::split) boundary down to a
    /// multiple of `W` from `begin`, so task carving can never split a
    /// vector lane — the invariant `hpx-check races` validates.
    pub lane: usize,
}

impl RangePolicy {
    /// Policy over `[begin, end)` with the default single-task chunking.
    pub fn new(begin: usize, end: usize) -> Self {
        assert!(begin <= end, "RangePolicy requires begin <= end");
        RangePolicy {
            begin,
            end,
            chunk: ChunkSpec::SingleTask,
            lane: 1,
        }
    }

    /// Replace the chunk specification (builder style).
    pub fn with_chunk(mut self, chunk: ChunkSpec) -> Self {
        self.chunk = chunk;
        self
    }

    /// Require task boundaries aligned to `lane` indices from `begin`
    /// (builder style; see the [`lane`](Self::lane) field).
    pub fn with_lanes(mut self, lane: usize) -> Self {
        assert!(lane >= 1, "lane alignment must be >= 1");
        self.lane = lane;
        self
    }

    /// Number of indices in the range.
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// `true` if the range is empty.
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }

    /// Split into `tasks` contiguous sub-ranges of near-equal length.
    /// Returns fewer (possibly zero) ranges if the policy is short/empty.
    ///
    /// With a [`lane`](Self::lane) alignment > 1, every interior boundary
    /// is rounded down to a multiple of `lane` from `begin` (the first and
    /// last boundaries stay at `begin`/`end`); sub-ranges emptied by the
    /// rounding are dropped, so short ranges may yield fewer tasks.
    pub fn split(&self, tasks: usize) -> Vec<(usize, usize)> {
        let len = self.len();
        if len == 0 || tasks == 0 {
            return Vec::new();
        }
        let tasks = tasks.min(len);
        let base = len / tasks;
        let extra = len % tasks;
        let mut out: Vec<(usize, usize)> = Vec::with_capacity(tasks);
        let mut start = self.begin;
        let mut cursor = self.begin;
        for t in 0..tasks {
            let sz = base + usize::from(t < extra);
            cursor += sz;
            let mut bound = cursor;
            if self.lane > 1 && t + 1 < tasks {
                bound = self.begin + (bound - self.begin) / self.lane * self.lane;
            }
            if bound > start {
                out.push((start, bound));
                start = bound;
            }
        }
        debug_assert_eq!(cursor, self.end);
        debug_assert_eq!(out.last().map(|&(_, e)| e), Some(self.end));
        out
    }
}

/// A 3-D rectangular index space (Kokkos `MDRangePolicy<Rank<3>>`) —
/// the natural policy for sub-grid cell loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MDRangePolicy3 {
    pub lower: [usize; 3],
    pub upper: [usize; 3],
    pub chunk: ChunkSpec,
}

impl MDRangePolicy3 {
    /// Policy over the box `lower..upper` in each dimension.
    pub fn new(lower: [usize; 3], upper: [usize; 3]) -> Self {
        for d in 0..3 {
            assert!(
                lower[d] <= upper[d],
                "MDRangePolicy3 requires lower <= upper"
            );
        }
        MDRangePolicy3 {
            lower,
            upper,
            chunk: ChunkSpec::SingleTask,
        }
    }

    /// Replace the chunk specification (builder style).
    pub fn with_chunk(mut self, chunk: ChunkSpec) -> Self {
        self.chunk = chunk;
        self
    }

    /// Extent in each dimension.
    pub fn extent(&self) -> [usize; 3] {
        [
            self.upper[0] - self.lower[0],
            self.upper[1] - self.lower[1],
            self.upper[2] - self.lower[2],
        ]
    }

    /// Total number of index triples.
    pub fn len(&self) -> usize {
        let e = self.extent();
        e[0] * e[1] * e[2]
    }

    /// `true` if the box is empty in any dimension.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flatten to an equivalent linear policy; `unflatten` maps back.
    pub fn linear(&self) -> RangePolicy {
        RangePolicy {
            begin: 0,
            end: self.len(),
            chunk: self.chunk,
            lane: 1,
        }
    }

    /// Map a flat index from [`Self::linear`] back to `(i, j, k)`
    /// (row-major: `k` fastest).
    #[inline(always)]
    pub fn unflatten(&self, flat: usize) -> [usize; 3] {
        let e = self.extent();
        let k = flat % e[2];
        let j = (flat / e[2]) % e[1];
        let i = flat / (e[1] * e[2]);
        [self.lower[0] + i, self.lower[1] + j, self.lower[2] + k]
    }
}

/// A league of teams (Kokkos `TeamPolicy`): `league_size` work items, each
/// processed by a team of `team_size` cooperating "threads".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeamPolicy {
    pub league_size: usize,
    pub team_size: usize,
}

impl TeamPolicy {
    /// Policy with `league_size` teams of `team_size` members.
    pub fn new(league_size: usize, team_size: usize) -> Self {
        assert!(team_size >= 1, "team_size must be >= 1");
        TeamPolicy {
            league_size,
            team_size,
        }
    }
}

/// Handle passed to team kernels: which team and member is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeamMember {
    /// Index of this team within the league.
    pub league_rank: usize,
    /// Index of this member within its team.
    pub team_rank: usize,
    /// Team size (for intra-team strided loops).
    pub team_size: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_or_auto_maps_zero_to_auto() {
        assert_eq!(ChunkSpec::tasks_or_auto(0), ChunkSpec::Auto);
        assert_eq!(ChunkSpec::tasks_or_auto(1), ChunkSpec::Tasks(1));
        assert_eq!(ChunkSpec::tasks_or_auto(16), ChunkSpec::Tasks(16));
    }

    #[test]
    fn chunkspec_resolution() {
        assert_eq!(ChunkSpec::SingleTask.resolve(100, 8), 1);
        assert_eq!(ChunkSpec::Tasks(16).resolve(100, 8), 16);
        assert_eq!(ChunkSpec::Tasks(16).resolve(10, 8), 10); // capped at len
        assert_eq!(ChunkSpec::ChunkSize(25).resolve(100, 8), 4);
        assert_eq!(ChunkSpec::ChunkSize(30).resolve(100, 8), 4); // ceil
        assert_eq!(ChunkSpec::Auto.resolve(100, 8), 8);
        assert_eq!(ChunkSpec::Auto.resolve(0, 8), 0);
        assert_eq!(ChunkSpec::Tasks(0).resolve(5, 8), 1); // degenerate input
    }

    #[test]
    fn range_split_covers_exactly() {
        let p = RangePolicy::new(10, 110);
        let parts = p.split(7);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts.first().unwrap().0, 10);
        assert_eq!(parts.last().unwrap().1, 110);
        let mut prev_end = 10;
        let mut total = 0;
        for (b, e) in parts {
            assert_eq!(b, prev_end);
            assert!(e > b);
            total += e - b;
            prev_end = e;
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn range_split_more_tasks_than_indices() {
        let p = RangePolicy::new(0, 3);
        assert_eq!(p.split(10).len(), 3);
    }

    #[test]
    fn empty_range() {
        let p = RangePolicy::new(5, 5);
        assert!(p.is_empty());
        assert!(p.split(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "begin <= end")]
    fn backwards_range_panics() {
        RangePolicy::new(5, 4);
    }

    #[test]
    fn lane_split_aligns_interior_boundaries() {
        // 64 slots over 16 tasks would naively carve at multiples of 4;
        // lane = 8 must round every interior boundary to a multiple of 8.
        let p = RangePolicy::new(0, 64).with_lanes(8);
        let parts = p.split(16);
        assert_eq!(parts.first().unwrap().0, 0);
        assert_eq!(parts.last().unwrap().1, 64);
        let mut prev = 0;
        for &(b, e) in &parts {
            assert_eq!(b, prev);
            assert!(e > b);
            if e != 64 {
                assert_eq!(e % 8, 0, "interior boundary {e} splits a lane block");
            }
            prev = e;
        }
        // Rounding merges the half-lane tasks: 8 blocks of 8 remain.
        assert_eq!(parts.len(), 8);
        assert!(parts.iter().all(|&(b, e)| e - b == 8));
    }

    #[test]
    fn lane_split_alignment_is_relative_to_begin() {
        // begin = 5, lane = 4: boundaries sit at 5 + 4k, not absolute 4k,
        // matching a kernel that strides lane blocks from its own start.
        let p = RangePolicy::new(5, 26).with_lanes(4);
        let parts = p.split(3);
        assert_eq!(parts.first().unwrap().0, 5);
        assert_eq!(parts.last().unwrap().1, 26);
        for &(_, e) in &parts {
            if e != 26 {
                assert_eq!((e - 5) % 4, 0);
            }
        }
    }

    #[test]
    fn lane_split_shorter_than_one_block_collapses() {
        // Range shorter than a lane block: all interior boundaries round
        // down to begin and are dropped; one task covers everything.
        let p = RangePolicy::new(0, 5).with_lanes(8);
        assert_eq!(p.split(4), vec![(0, 5)]);
    }

    #[test]
    fn lane_one_matches_unaligned_split() {
        let a = RangePolicy::new(10, 110).split(7);
        let b = RangePolicy::new(10, 110).with_lanes(1).split(7);
        assert_eq!(a, b);
    }

    #[test]
    fn md3_flatten_unflatten_roundtrip() {
        let p = MDRangePolicy3::new([1, 2, 3], [4, 6, 10]);
        assert_eq!(p.extent(), [3, 4, 7]);
        assert_eq!(p.len(), 84);
        let mut seen = std::collections::HashSet::new();
        for flat in 0..p.len() {
            let [i, j, k] = p.unflatten(flat);
            assert!((1..4).contains(&i));
            assert!((2..6).contains(&j));
            assert!((3..10).contains(&k));
            assert!(seen.insert([i, j, k]));
        }
        assert_eq!(seen.len(), 84);
    }

    #[test]
    fn md3_k_is_fastest_index() {
        let p = MDRangePolicy3::new([0, 0, 0], [2, 2, 2]);
        assert_eq!(p.unflatten(0), [0, 0, 0]);
        assert_eq!(p.unflatten(1), [0, 0, 1]);
        assert_eq!(p.unflatten(2), [0, 1, 0]);
        assert_eq!(p.unflatten(4), [1, 0, 0]);
    }

    #[test]
    fn team_policy_construction() {
        let t = TeamPolicy::new(10, 4);
        assert_eq!(t.league_size, 10);
        assert_eq!(t.team_size, 4);
    }
}
