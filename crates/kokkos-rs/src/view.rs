//! Kokkos `View`s: labelled n-dimensional arrays with a memory layout.
//!
//! Octo-Tiger stores each sub-grid's state variables in Kokkos views; the
//! layout parameter is what lets the same kernel source index efficiently on
//! CPUs (LayoutRight — row-major, unit stride in the fastest loop) and GPUs
//! (LayoutLeft — column-major, coalesced across threads).

/// Memory layout of a [`View`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// Row-major / C order; the rightmost index has stride 1.  Kokkos
    /// default for CPU execution spaces.
    #[default]
    Right,
    /// Column-major / Fortran order; the leftmost index has stride 1.
    /// Kokkos default for CUDA device memory.
    Left,
}

/// Process-unique identity of one [`View`] allocation.
///
/// Used by the `race` module's happens-before checker to tell *which*
/// storage two kernel launches touch: a clone is a new allocation and gets a
/// fresh id, so only launches sharing the very same buffer can conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewId(u64);

impl ViewId {
    pub(crate) fn fresh() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(1);
        ViewId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// A labelled, owned, contiguous array of rank 1–3.
///
/// Views are the unit of data a kernel operates on.  `as_slice` /
/// `as_mut_slice` expose the raw storage for SIMD kernels; `at`/`at_mut`
/// give layout-aware multi-dimensional access.
#[derive(Debug)]
pub struct View<T> {
    id: ViewId,
    label: String,
    data: Vec<T>,
    dims: [usize; 3],
    rank: usize,
    layout: Layout,
}

impl<T: Clone> Clone for View<T> {
    fn clone(&self) -> Self {
        View {
            id: ViewId::fresh(), // a clone is a distinct allocation
            label: self.label.clone(),
            data: self.data.clone(),
            dims: self.dims,
            rank: self.rank,
            layout: self.layout,
        }
    }
}

impl<T: PartialEq> PartialEq for View<T> {
    fn eq(&self, other: &Self) -> bool {
        // Identity is deliberately excluded: two views are equal when their
        // observable contents are, whichever allocations back them.
        self.label == other.label
            && self.data == other.data
            && self.dims == other.dims
            && self.rank == other.rank
            && self.layout == other.layout
    }
}

impl<T: Clone + Default> View<T> {
    /// Rank-1 view of `n` default-initialized elements.
    pub fn new_1d(label: impl Into<String>, n: usize) -> Self {
        View {
            id: ViewId::fresh(),
            label: label.into(),
            data: vec![T::default(); n],
            dims: [n, 1, 1],
            rank: 1,
            layout: Layout::Right,
        }
    }

    /// Rank-2 view of `n0 × n1` default-initialized elements.
    pub fn new_2d(label: impl Into<String>, n0: usize, n1: usize) -> Self {
        View {
            id: ViewId::fresh(),
            label: label.into(),
            data: vec![T::default(); n0 * n1],
            dims: [n0, n1, 1],
            rank: 2,
            layout: Layout::Right,
        }
    }

    /// Rank-3 view of `n0 × n1 × n2` default-initialized elements.
    pub fn new_3d(label: impl Into<String>, n0: usize, n1: usize, n2: usize) -> Self {
        View {
            id: ViewId::fresh(),
            label: label.into(),
            data: vec![T::default(); n0 * n1 * n2],
            dims: [n0, n1, n2],
            rank: 3,
            layout: Layout::Right,
        }
    }

    /// Change the layout, reordering storage so logical contents are
    /// preserved (Kokkos `deep_copy` between differently laid-out mirrors).
    pub fn to_layout(&self, layout: Layout) -> Self {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = View {
            id: ViewId::fresh(),
            label: self.label.clone(),
            data: vec![T::default(); self.data.len()],
            dims: self.dims,
            rank: self.rank,
            layout,
        };
        let [n0, n1, n2] = self.dims;
        for i in 0..n0 {
            for j in 0..n1 {
                for k in 0..n2 {
                    let v = self.at3(i, j, k).clone();
                    *out.at3_mut(i, j, k) = v;
                }
            }
        }
        out
    }
}

impl<T> View<T> {
    /// This allocation's process-unique identity (see [`ViewId`]).
    pub fn id(&self) -> ViewId {
        self.id
    }

    /// Kokkos-style label (used in diagnostics).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Extents per dimension (unused trailing dims are 1).
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Rank (1–3).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Current layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the view holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw storage in layout order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw storage in layout order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    #[inline(always)]
    fn offset(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2]);
        let [n0, n1, n2] = self.dims;
        match self.layout {
            Layout::Right => (i * n1 + j) * n2 + k,
            Layout::Left => i + n0 * (j + n1 * k),
        }
    }

    /// Rank-1 element access.
    #[inline(always)]
    pub fn at(&self, i: usize) -> &T {
        &self.data[self.offset(i, 0, 0)]
    }

    /// Rank-1 mutable element access.
    #[inline(always)]
    pub fn at_mut(&mut self, i: usize) -> &mut T {
        let o = self.offset(i, 0, 0);
        &mut self.data[o]
    }

    /// Rank-2 element access.
    #[inline(always)]
    pub fn at2(&self, i: usize, j: usize) -> &T {
        &self.data[self.offset(i, j, 0)]
    }

    /// Rank-2 mutable element access.
    #[inline(always)]
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut T {
        let o = self.offset(i, j, 0);
        &mut self.data[o]
    }

    /// Rank-3 element access.
    #[inline(always)]
    pub fn at3(&self, i: usize, j: usize, k: usize) -> &T {
        &self.data[self.offset(i, j, k)]
    }

    /// Rank-3 mutable element access.
    #[inline(always)]
    pub fn at3_mut(&mut self, i: usize, j: usize, k: usize) -> &mut T {
        let o = self.offset(i, j, k);
        &mut self.data[o]
    }
}

impl<T: Clone> View<T> {
    /// Rank-1 view initialized from a slice.
    pub fn from_slice_1d(label: impl Into<String>, data: &[T]) -> Self {
        View {
            id: ViewId::fresh(),
            label: label.into(),
            data: data.to_vec(),
            dims: [data.len(), 1, 1],
            rank: 1,
            layout: Layout::Right,
        }
    }

    /// Kokkos `deep_copy`: copy contents of `src` (same shape required).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn deep_copy_from(&mut self, src: &View<T>) {
        assert_eq!(self.dims, src.dims, "deep_copy shape mismatch");
        if self.layout == src.layout {
            self.data.clone_from_slice(&src.data);
        } else {
            let [n0, n1, n2] = self.dims;
            for i in 0..n0 {
                for j in 0..n1 {
                    for k in 0..n2 {
                        let v = src.at3(i, j, k).clone();
                        *self.at3_mut(i, j, k) = v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank1_basics() {
        let mut v = View::<f64>::new_1d("x", 10);
        assert_eq!(v.len(), 10);
        assert_eq!(v.rank(), 1);
        *v.at_mut(3) = 2.5;
        assert_eq!(*v.at(3), 2.5);
        assert_eq!(v.label(), "x");
    }

    #[test]
    fn rank3_layout_right_strides() {
        let mut v = View::<u32>::new_3d("cube", 2, 3, 4);
        *v.at3_mut(1, 2, 3) = 9;
        // LayoutRight: offset = (i*n1 + j)*n2 + k = (1*3+2)*4+3 = 23.
        assert_eq!(v.as_slice()[23], 9);
    }

    #[test]
    fn rank3_layout_left_strides() {
        let v = View::<u32>::new_3d("cube", 2, 3, 4);
        let mut l = v.to_layout(Layout::Left);
        *l.at3_mut(1, 2, 3) = 9;
        // LayoutLeft: offset = i + n0*(j + n1*k) = 1 + 2*(2 + 3*3) = 23.
        assert_eq!(l.as_slice()[23], 9);
    }

    #[test]
    fn layout_conversion_preserves_contents() {
        let mut v = View::<u32>::new_3d("c", 3, 4, 5);
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..5 {
                    *v.at3_mut(i, j, k) = (100 * i + 10 * j + k) as u32;
                }
            }
        }
        let l = v.to_layout(Layout::Left);
        let back = l.to_layout(Layout::Right);
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..5 {
                    assert_eq!(*l.at3(i, j, k), (100 * i + 10 * j + k) as u32);
                    assert_eq!(*back.at3(i, j, k), (100 * i + 10 * j + k) as u32);
                }
            }
        }
        assert_ne!(l.as_slice(), back.as_slice()); // storage differs...
        assert_eq!(v.as_slice(), back.as_slice()); // ...contents round-trip
    }

    #[test]
    fn deep_copy_across_layouts() {
        let mut src = View::<f64>::new_2d("a", 4, 4);
        for i in 0..4 {
            for j in 0..4 {
                *src.at2_mut(i, j) = (i * 4 + j) as f64;
            }
        }
        let mut dst = View::<f64>::new_2d("b", 4, 4).to_layout(Layout::Left);
        dst.deep_copy_from(&src);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(*dst.at2(i, j), (i * 4 + j) as f64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn deep_copy_rejects_shape_mismatch() {
        let src = View::<f64>::new_1d("a", 4);
        let mut dst = View::<f64>::new_1d("b", 5);
        dst.deep_copy_from(&src);
    }

    #[test]
    fn from_slice_roundtrip() {
        let v = View::from_slice_1d("s", &[1, 2, 3]);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert!(!v.is_empty());
    }

    #[test]
    fn clone_gets_fresh_identity_but_stays_equal() {
        let v = View::from_slice_1d("s", &[1, 2, 3]);
        let c = v.clone();
        assert_ne!(v.id(), c.id());
        assert_eq!(v, c);
    }
}
