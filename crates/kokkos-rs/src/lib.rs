//! # kokkos-rs — Kokkos-style performance-portable kernel execution
//!
//! Octo-Tiger writes every solver kernel once against Kokkos abstractions
//! and retargets it by choosing an *execution space*: the CUDA space on
//! Summit/Perlmutter/Piz Daint GPUs, and the **HPX execution space** on
//! A64FX CPUs — the space that runs a kernel as one or more HPX tasks on the
//! runtime's worker threads (paper Section IV-B).  The per-launch choice of
//! *how many tasks a kernel is split into* is the knob behind the paper's
//! Figure 9 (multipole work splitting: 1 task vs. 16 tasks per kernel).
//!
//! This crate reproduces that abstraction layer on top of `hpx-rt`:
//!
//! * [`view::View`] — n-dimensional arrays with LayoutRight/LayoutLeft.
//! * [`policy`] — `RangePolicy`, `MDRangePolicy3`, `TeamPolicy`, and
//!   [`policy::ChunkSpec`] (the tasks-per-kernel knob).
//! * [`space::ExecSpace`] — `Serial`, `Hpx`, and a *modelled* `Device`
//!   space.  Device kernels execute on the host for correctness; their
//!   *performance* is modelled by the `cluster` crate (see the DESIGN.md
//!   substitution table — we have no GPUs, the paper's GPU numbers are
//!   reproduced by the machine models).
//! * [`parallel`] — `parallel_for` / `parallel_reduce` / `parallel_scan`.
//! * [`hpx_kokkos`] — asynchronous kernel launches returning `hpx-rt`
//!   futures, the HPX-Kokkos integration layer of the paper.

pub mod hpx_kokkos;
pub mod parallel;
pub mod policy;
pub mod pool;
pub mod race;
pub mod space;
pub mod view;

pub use hpx_kokkos::{
    launch_for_after, launch_for_async, launch_for_tracked, launch_reduce_after,
    launch_reduce_async, TrackedLaunch,
};
pub use parallel::{
    parallel_for, parallel_for_md3, parallel_for_mut, parallel_for_team, parallel_reduce,
    parallel_scan, planned_tasks,
};
pub use policy::{ChunkSpec, MDRangePolicy3, RangePolicy, TeamPolicy};
pub use pool::{BufferPool, Recycled, ScratchArena};
pub use race::{AccessKind, LaunchToken, RaceDetector, RaceReport, ViewAccess};
pub use space::{DeviceKind, DeviceSpec, ExecSpace, HpxSpace};
pub use view::{Layout, View, ViewId};

#[cfg(test)]
mod tests {
    use super::*;
    use hpx_rt::Runtime;

    #[test]
    fn kernel_runs_identically_on_all_spaces() {
        let rt = Runtime::new(4);
        let n = 1000usize;
        let mut outputs = Vec::new();
        for space in [
            ExecSpace::Serial,
            ExecSpace::hpx(rt.clone()),
            ExecSpace::device(DeviceKind::A100),
        ] {
            let acc = std::sync::atomic::AtomicU64::new(0);
            parallel_for(&space, RangePolicy::new(0, n), |i| {
                acc.fetch_add(i as u64, std::sync::atomic::Ordering::Relaxed);
            });
            outputs.push(acc.into_inner());
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
        assert_eq!(outputs[0], (n as u64 - 1) * n as u64 / 2);
        rt.shutdown();
    }
}
