//! Execution spaces: where a kernel runs.
//!
//! The paper's stack uses three spaces.  `Serial` and the **HPX execution
//! space** run on CPU worker threads (the latter splittable into many HPX
//! tasks), and the CUDA space runs on the GPUs of Summit / Piz Daint /
//! Perlmutter.  We execute `Device` kernels on the host — their semantics
//! are what the tests need — and *model* their throughput in the `cluster`
//! crate's machine descriptions (DESIGN.md substitution rule: no GPUs on
//! this machine, and the paper's GPU numbers are scaling-model inputs, not
//! things our laptop could measure anyway).

use hpx_rt::Runtime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The HPX execution space: kernels become `tasks_per_kernel` HPX tasks on
/// a runtime's worker pool (paper Section IV-B / VII-C).
#[derive(Clone)]
pub struct HpxSpace {
    /// Pool the kernel tasks are spawned onto.
    pub runtime: Runtime,
}

/// Which GPU a simulated device space stands in for.  The variants are the
/// accelerators of the paper's five machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// NVIDIA V100 (ORNL Summit, 6 per node).
    V100,
    /// NVIDIA P100 (CSCS Piz Daint, 1 per node).
    P100,
    /// NVIDIA A100 (NERSC Perlmutter, 4 per node).
    A100,
}

impl DeviceKind {
    /// Modelled sustained double-precision throughput in GFLOP/s, used by
    /// the `cluster` machine models.  Values are the vendor peak scaled by
    /// the ~35 % sustained efficiency Octo-Tiger kernels reach on GPUs
    /// (paper [7], [8] report similar fractions).
    pub fn modelled_gflops(self) -> f64 {
        match self {
            DeviceKind::V100 => 7800.0 * 0.35,
            DeviceKind::P100 => 5300.0 * 0.35,
            DeviceKind::A100 => 9700.0 * 0.35,
        }
    }

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            DeviceKind::V100 => "NVIDIA V100",
            DeviceKind::P100 => "NVIDIA P100",
            DeviceKind::A100 => "NVIDIA A100",
        }
    }
}

/// A simulated device execution space.
///
/// Kernels run on the calling host thread (bit-identical semantics for the
/// test suite); every launch is counted so workload models can attribute
/// device time.
#[derive(Clone)]
pub struct DeviceSpec {
    /// Which accelerator this space models.
    pub kind: DeviceKind,
    launches: Arc<AtomicU64>,
    indices_executed: Arc<AtomicU64>,
}

impl DeviceSpec {
    /// New device space of the given kind.
    pub fn new(kind: DeviceKind) -> Self {
        DeviceSpec {
            kind,
            launches: Arc::new(AtomicU64::new(0)),
            indices_executed: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of kernel launches so far.
    pub fn launches(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    /// Total index-space points executed so far.
    pub fn indices_executed(&self) -> u64 {
        self.indices_executed.load(Ordering::Relaxed)
    }

    pub(crate) fn record_launch(&self, indices: u64) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.indices_executed.fetch_add(indices, Ordering::Relaxed);
    }
}

/// An execution space selection, Kokkos-style.
#[derive(Clone)]
pub enum ExecSpace {
    /// Run on the calling thread (Kokkos `Serial`).
    Serial,
    /// Run as HPX tasks (Kokkos HPX execution space).
    Hpx(HpxSpace),
    /// Run on a modelled accelerator (Kokkos `Cuda`, simulated).
    Device(DeviceSpec),
}

impl ExecSpace {
    /// Convenience constructor for the HPX space.
    pub fn hpx(runtime: Runtime) -> Self {
        ExecSpace::Hpx(HpxSpace { runtime })
    }

    /// Convenience constructor for a modelled device space.
    pub fn device(kind: DeviceKind) -> Self {
        ExecSpace::Device(DeviceSpec::new(kind))
    }

    /// Worker-thread count relevant for `ChunkSpec::Auto` resolution.
    pub fn concurrency(&self) -> usize {
        match self {
            ExecSpace::Serial => 1,
            ExecSpace::Hpx(h) => h.runtime.num_workers(),
            // Model: a GPU behaves as one queue from the host's view.
            ExecSpace::Device(_) => 1,
        }
    }

    /// The bounded power-of-two ladder of `tasks_per_kernel` candidates an
    /// online tuner should search on this space: `1, 2, 4, …` up to 4×
    /// the space's concurrency (oversplitting beyond that only adds spawn
    /// overhead), capped at `cap`.  Serial and device spaces still expose
    /// a multi-point ladder so the tuner can *measure* that splitting does
    /// not help there, rather than assuming it.
    pub fn task_ladder(&self, cap: usize) -> Vec<usize> {
        let top = (self.concurrency() * 4).min(cap.max(1));
        let mut ladder = Vec::new();
        let mut v = 1usize;
        while v <= top {
            ladder.push(v);
            v *= 2;
        }
        ladder
    }

    /// Space name, matching Kokkos nomenclature.
    pub fn name(&self) -> &'static str {
        match self {
            ExecSpace::Serial => "Serial",
            ExecSpace::Hpx(_) => "HPX",
            ExecSpace::Device(d) => match d.kind {
                DeviceKind::V100 => "Cuda(V100)",
                DeviceKind::P100 => "Cuda(P100)",
                DeviceKind::A100 => "Cuda(A100)",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_reporting() {
        assert_eq!(ExecSpace::Serial.concurrency(), 1);
        let rt = Runtime::new(3);
        assert_eq!(ExecSpace::hpx(rt.clone()).concurrency(), 3);
        assert_eq!(ExecSpace::device(DeviceKind::P100).concurrency(), 1);
        rt.shutdown();
    }

    #[test]
    fn task_ladder_is_power_of_two_and_scales_with_concurrency() {
        assert_eq!(ExecSpace::Serial.task_ladder(64), vec![1, 2, 4]);
        let rt = Runtime::new(4);
        let ladder = ExecSpace::hpx(rt.clone()).task_ladder(64);
        assert_eq!(ladder, vec![1, 2, 4, 8, 16]);
        assert_eq!(ExecSpace::hpx(rt.clone()).task_ladder(8), vec![1, 2, 4, 8]);
        rt.shutdown();
        // Degenerate cap still yields a searchable ladder of one point.
        assert_eq!(ExecSpace::Serial.task_ladder(0), vec![1]);
    }

    #[test]
    fn device_counters_start_at_zero() {
        let d = DeviceSpec::new(DeviceKind::A100);
        assert_eq!(d.launches(), 0);
        assert_eq!(d.indices_executed(), 0);
        d.record_launch(128);
        assert_eq!(d.launches(), 1);
        assert_eq!(d.indices_executed(), 128);
    }

    #[test]
    fn gpu_throughput_ordering_matches_hardware_generations() {
        assert!(DeviceKind::A100.modelled_gflops() > DeviceKind::V100.modelled_gflops());
        assert!(DeviceKind::V100.modelled_gflops() > DeviceKind::P100.modelled_gflops());
    }

    #[test]
    fn names() {
        assert_eq!(ExecSpace::Serial.name(), "Serial");
        assert_eq!(ExecSpace::device(DeviceKind::V100).name(), "Cuda(V100)");
        assert_eq!(DeviceKind::P100.name(), "NVIDIA P100");
    }
}
