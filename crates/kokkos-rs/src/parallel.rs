//! `parallel_for` / `parallel_reduce` / `parallel_scan` dispatchers.
//!
//! These are the Kokkos entry points Octo-Tiger's kernels call.  On the HPX
//! space a kernel launch resolves its [`ChunkSpec`] to a task count and
//! spawns that many scoped tasks on the runtime — one task by default (hot
//! cache), 16 for the paper's split multipole kernel, etc.  Kernels borrow
//! from the caller (views live on the caller's stack), which is why the
//! scoped-spawn machinery of `hpx-rt` is used rather than detached tasks.

use crate::policy::{MDRangePolicy3, RangePolicy, TeamMember, TeamPolicy};
use crate::space::ExecSpace;

/// Execute `kernel(i)` for every `i` in the policy's range.
///
/// The kernel must be safe to call concurrently for distinct indices
/// (`Sync`); disjoint-range mutation should go through interior-mutability
/// or per-chunk splitting at the call site.
pub fn parallel_for<F>(space: &ExecSpace, policy: RangePolicy, kernel: F)
where
    F: Fn(usize) + Sync,
{
    match space {
        ExecSpace::Serial => {
            for i in policy.begin..policy.end {
                kernel(i);
            }
        }
        ExecSpace::Device(dev) => {
            dev.record_launch(policy.len() as u64);
            for i in policy.begin..policy.end {
                kernel(i);
            }
        }
        ExecSpace::Hpx(hpx) => {
            let tasks = policy
                .chunk
                .resolve(policy.len(), hpx.runtime.num_workers());
            if tasks <= 1 {
                // Octo-Tiger's default: run on the launching worker.
                for i in policy.begin..policy.end {
                    kernel(i);
                }
                return;
            }
            let kernel = &kernel;
            hpx.runtime.scope(|s| {
                for (b, e) in policy.split(tasks) {
                    s.spawn(move || {
                        for i in b..e {
                            kernel(i);
                        }
                    });
                }
            });
        }
    }
}

/// Number of scheduler tasks a launch of `policy` on `space` actually
/// carves — `ChunkSpec` resolution plus lane-alignment merging, exactly as
/// [`parallel_for`] / [`parallel_for_mut`] perform it.  This is the
/// launch-site truth an online granularity tuner observes: a requested
/// split can come back smaller on short or lane-constrained ranges, and a
/// tuner comparing candidate configurations that resolve to the *same*
/// plan here is measuring pure noise.
pub fn planned_tasks(space: &ExecSpace, policy: RangePolicy) -> usize {
    let tasks = policy.chunk.resolve(policy.len(), space.concurrency());
    match space {
        ExecSpace::Serial | ExecSpace::Device(_) => usize::from(!policy.is_empty()),
        ExecSpace::Hpx(_) => {
            if tasks <= 1 {
                usize::from(!policy.is_empty())
            } else {
                policy.split(tasks).len()
            }
        }
    }
}

/// Execute `kernel(i, &mut data[i])` for every element, handing each HPX
/// task a *disjoint* `&mut` chunk of `data` — the lock-free alternative to
/// `Vec<Mutex<T>>` slot vectors for kernels whose outputs are per-index.
///
/// The chunk split follows the policy's [`crate::policy::ChunkSpec`]
/// exactly like [`parallel_for`] (so the Figure 9 tasks-per-kernel knob
/// applies), but because every task owns its slice, the kernel needs no
/// interior mutability.  `kernel` may freely capture shared (`&`) state —
/// e.g. the already-finalized deeper-level half of a `split_at_mut`.
///
/// # Panics
/// Panics if `policy` does not cover `data` exactly
/// (`policy.begin != 0 || policy.end != data.len()`).
pub fn parallel_for_mut<T, F>(space: &ExecSpace, policy: RangePolicy, data: &mut [T], kernel: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    assert_eq!(policy.begin, 0, "parallel_for_mut: policy must start at 0");
    assert_eq!(
        policy.end,
        data.len(),
        "parallel_for_mut: policy/data length mismatch"
    );
    let serial = |data: &mut [T]| {
        for (i, slot) in data.iter_mut().enumerate() {
            kernel(i, slot);
        }
    };
    match space {
        ExecSpace::Serial => serial(data),
        ExecSpace::Device(dev) => {
            dev.record_launch(policy.len() as u64);
            serial(data);
        }
        ExecSpace::Hpx(hpx) => {
            let tasks = policy
                .chunk
                .resolve(policy.len(), hpx.runtime.num_workers());
            if tasks <= 1 {
                serial(data);
                return;
            }
            // Carve `data` into the policy's chunk ranges — disjoint, so
            // each task gets exclusive ownership of its slice.
            let ranges = policy.split(tasks);
            let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(ranges.len());
            let mut rest = data;
            for (b, e) in &ranges {
                let (head, tail) = rest.split_at_mut(e - b);
                parts.push((*b, head));
                rest = tail;
            }
            let kernel = &kernel;
            hpx.runtime.scope(|s| {
                for (base, part) in parts {
                    s.spawn(move || {
                        for (off, slot) in part.iter_mut().enumerate() {
                            kernel(base + off, slot);
                        }
                    });
                }
            });
        }
    }
}

/// Execute `kernel(i, j, k)` over a 3-D index box (flattened over the
/// slowest dimension combination for task splitting).
pub fn parallel_for_md3<F>(space: &ExecSpace, policy: MDRangePolicy3, kernel: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    let linear = policy.linear();
    parallel_for(space, linear, |flat| {
        let [i, j, k] = policy.unflatten(flat);
        kernel(i, j, k);
    });
}

/// Team-parallel execution: every `(league_rank, team_rank)` pair runs once.
///
/// On the HPX space each *team* is one task; members of a team execute
/// sequentially inside it (team-level cooperation maps onto intra-task
/// sequential work on CPUs, as in Kokkos' HPX backend).
pub fn parallel_for_team<F>(space: &ExecSpace, policy: TeamPolicy, kernel: F)
where
    F: Fn(TeamMember) + Sync,
{
    let run_team = |league_rank: usize| {
        for team_rank in 0..policy.team_size {
            kernel(TeamMember {
                league_rank,
                team_rank,
                team_size: policy.team_size,
            });
        }
    };
    match space {
        ExecSpace::Serial => {
            for lr in 0..policy.league_size {
                run_team(lr);
            }
        }
        ExecSpace::Device(dev) => {
            dev.record_launch((policy.league_size * policy.team_size) as u64);
            for lr in 0..policy.league_size {
                run_team(lr);
            }
        }
        ExecSpace::Hpx(hpx) => {
            let run_team = &run_team;
            hpx.runtime.scope(|s| {
                for lr in 0..policy.league_size {
                    s.spawn(move || run_team(lr));
                }
            });
        }
    }
}

/// Reduce `map(i)` over the range with a binary `combine`, starting from
/// `identity` (Kokkos `parallel_reduce` with a custom reducer).
///
/// `combine` must be associative; partial results are combined in chunk
/// order, so non-commutative reductions still see index order across chunk
/// boundaries.
pub fn parallel_reduce<T, M, C>(
    space: &ExecSpace,
    policy: RangePolicy,
    identity: T,
    map: M,
    combine: C,
) -> T
where
    T: Clone + Send + Sync,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    let serial = |b: usize, e: usize| {
        let mut acc = identity.clone();
        for i in b..e {
            acc = combine(acc, map(i));
        }
        acc
    };
    match space {
        ExecSpace::Serial => serial(policy.begin, policy.end),
        ExecSpace::Device(dev) => {
            dev.record_launch(policy.len() as u64);
            serial(policy.begin, policy.end)
        }
        ExecSpace::Hpx(hpx) => {
            let tasks = policy
                .chunk
                .resolve(policy.len(), hpx.runtime.num_workers());
            if tasks <= 1 {
                return serial(policy.begin, policy.end);
            }
            let ranges = policy.split(tasks);
            let mut partials: Vec<Option<T>> = vec![None; ranges.len()];
            let serial = &serial;
            hpx.runtime.scope(|s| {
                for (slot, (b, e)) in partials.iter_mut().zip(ranges.iter().copied()) {
                    s.spawn(move || {
                        *slot = Some(serial(b, e));
                    });
                }
            });
            let mut acc = identity;
            for p in partials {
                acc = combine(acc, p.expect("reduce task did not produce a partial"));
            }
            acc
        }
    }
}

/// Exclusive prefix scan (Kokkos `parallel_scan`): `out[i]` is the combined
/// value of `input[0..i]`.  Returns the grand total.
///
/// Two-pass chunked implementation: per-chunk totals, then offset fix-up —
/// the standard work-efficient scheme.
///
/// # Panics
/// Panics if `input.len() != out.len()`.
pub fn parallel_scan<T, C>(
    space: &ExecSpace,
    input: &[T],
    out: &mut [T],
    identity: T,
    combine: C,
) -> T
where
    T: Clone + Send + Sync,
    C: Fn(T, T) -> T + Sync,
{
    assert_eq!(input.len(), out.len(), "parallel_scan length mismatch");
    let n = input.len();
    if n == 0 {
        return identity;
    }
    let workers = space.concurrency();
    let chunks = workers.min(n).max(1);
    let policy = RangePolicy::new(0, n);
    let ranges = policy.split(chunks);

    // Pass 1: local exclusive scans + chunk totals.
    let mut chunk_totals: Vec<Option<T>> = vec![None; ranges.len()];
    {
        // Split `out` into disjoint chunk slices so tasks can write freely.
        let mut out_parts: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
        let mut rest = &mut *out;
        for (b, e) in &ranges {
            let (head, tail) = rest.split_at_mut(e - b);
            out_parts.push(head);
            rest = tail;
        }
        let combine = &combine;
        let identity2 = identity.clone();
        let run_chunk = move |b: usize, e: usize, part: &mut [T], total: &mut Option<T>| {
            let mut acc = identity2.clone();
            for (i, slot) in (b..e).zip(part.iter_mut()) {
                *slot = acc.clone();
                acc = combine(acc.clone(), input[i].clone());
            }
            *total = Some(acc);
        };
        match space {
            ExecSpace::Serial | ExecSpace::Device(_) => {
                if let ExecSpace::Device(dev) = space {
                    dev.record_launch(n as u64);
                }
                for ((range, part), total) in
                    ranges.iter().zip(out_parts).zip(chunk_totals.iter_mut())
                {
                    run_chunk(range.0, range.1, part, total);
                }
            }
            ExecSpace::Hpx(hpx) => {
                let run_chunk = &run_chunk;
                hpx.runtime.scope(|s| {
                    for ((range, part), total) in
                        ranges.iter().zip(out_parts).zip(chunk_totals.iter_mut())
                    {
                        let (b, e) = *range;
                        s.spawn(move || run_chunk(b, e, part, total));
                    }
                });
            }
        }
    }

    // Pass 2: fold chunk offsets forward.
    let mut offset = identity.clone();
    let mut grand_total = identity.clone();
    for (ci, (b, e)) in ranges.iter().copied().enumerate() {
        let chunk_total = chunk_totals[ci].clone().expect("missing chunk total");
        if ci > 0 {
            for slot in &mut out[b..e] {
                *slot = combine(offset.clone(), slot.clone());
            }
        }
        offset = combine(offset, chunk_total.clone());
        grand_total = offset.clone();
    }
    grand_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ChunkSpec;
    use crate::space::DeviceKind;
    use hpx_rt::Runtime;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn parallel_for_serial_covers_range() {
        let hits = AtomicU64::new(0);
        parallel_for(&ExecSpace::Serial, RangePolicy::new(3, 17), |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.into_inner(), 14);
    }

    #[test]
    fn parallel_for_hpx_multi_task_covers_range_once() {
        let rt = Runtime::new(4);
        let space = ExecSpace::hpx(rt.clone());
        let n = 1024;
        let flags: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(
            &space,
            RangePolicy::new(0, n).with_chunk(ChunkSpec::Tasks(16)),
            |i| {
                flags[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
        rt.shutdown();
    }

    #[test]
    fn planned_tasks_reports_launch_site_truth() {
        let rt = Runtime::new(4);
        let hpx = ExecSpace::hpx(rt.clone());
        // Requested splits resolve on the HPX space...
        let p = RangePolicy::new(0, 1024).with_chunk(ChunkSpec::Tasks(16));
        assert_eq!(planned_tasks(&hpx, p), 16);
        // ...but serial/device spaces always run one task.
        assert_eq!(planned_tasks(&ExecSpace::Serial, p), 1);
        // Lane alignment merges sub-lane chunks: 64 slots at lane 8 cannot
        // carve more than 8 tasks however many were requested.
        let lanes = RangePolicy::new(0, 64)
            .with_chunk(ChunkSpec::Tasks(16))
            .with_lanes(8);
        assert_eq!(planned_tasks(&hpx, lanes), 8);
        // Short ranges cap at one task per index; empty ranges at zero.
        let short = RangePolicy::new(0, 3).with_chunk(ChunkSpec::Tasks(16));
        assert_eq!(planned_tasks(&hpx, short), 3);
        assert_eq!(planned_tasks(&hpx, RangePolicy::new(5, 5)), 0);
        rt.shutdown();
    }

    #[test]
    fn parallel_for_mut_writes_every_slot_once() {
        let rt = Runtime::new(4);
        for space in [
            ExecSpace::Serial,
            ExecSpace::hpx(rt.clone()),
            ExecSpace::Device(crate::space::DeviceSpec::new(DeviceKind::A100)),
        ] {
            let n = 257; // not a multiple of the task count
            let mut data = vec![0u64; n];
            parallel_for_mut(
                &space,
                RangePolicy::new(0, n).with_chunk(ChunkSpec::Tasks(7)),
                &mut data,
                |i, slot| {
                    *slot += i as u64 + 1;
                },
            );
            assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
        }
        rt.shutdown();
    }

    #[test]
    fn parallel_for_mut_kernel_can_read_shared_state() {
        // The gravity upward pass's pattern: chunks write one level while
        // reading the already-finalized deeper levels through a `&` capture.
        let rt = Runtime::new(4);
        let deeper: Vec<u64> = (0..64).map(|i| i * i).collect();
        let mut level = vec![0u64; 32];
        parallel_for_mut(
            &ExecSpace::hpx(rt.clone()),
            RangePolicy::new(0, 32).with_chunk(ChunkSpec::Tasks(8)),
            &mut level,
            |i, slot| {
                *slot = deeper[2 * i] + deeper[2 * i + 1];
            },
        );
        for (i, &v) in level.iter().enumerate() {
            let (a, b) = ((2 * i) as u64, (2 * i + 1) as u64);
            assert_eq!(v, a * a + b * b);
        }
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn parallel_for_mut_rejects_mismatched_policy() {
        let mut data = vec![0u8; 4];
        parallel_for_mut(
            &ExecSpace::Serial,
            RangePolicy::new(0, 5),
            &mut data,
            |_, _| {},
        );
    }

    #[test]
    fn device_space_counts_launches() {
        let dev = crate::space::DeviceSpec::new(DeviceKind::V100);
        let space = ExecSpace::Device(dev.clone());
        parallel_for(&space, RangePolicy::new(0, 100), |_| {});
        parallel_for(&space, RangePolicy::new(0, 50), |_| {});
        assert_eq!(dev.launches(), 2);
        assert_eq!(dev.indices_executed(), 150);
    }

    #[test]
    fn reduce_sum_matches_closed_form() {
        let rt = Runtime::new(4);
        for space in [ExecSpace::Serial, ExecSpace::hpx(rt.clone())] {
            let sum = parallel_reduce(
                &space,
                RangePolicy::new(0, 1000).with_chunk(ChunkSpec::Auto),
                0u64,
                |i| i as u64,
                |a, b| a + b,
            );
            assert_eq!(sum, 999 * 1000 / 2);
        }
        rt.shutdown();
    }

    #[test]
    fn reduce_min_with_tasks() {
        let rt = Runtime::new(2);
        let data: Vec<f64> = (0..512).map(|i| ((i * 37) % 211) as f64).collect();
        let min = parallel_reduce(
            &ExecSpace::hpx(rt.clone()),
            RangePolicy::new(0, data.len()).with_chunk(ChunkSpec::Tasks(8)),
            f64::INFINITY,
            |i| data[i],
            f64::min,
        );
        let expected = data.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(min, expected);
        rt.shutdown();
    }

    #[test]
    fn reduce_empty_range_yields_identity() {
        let v = parallel_reduce(
            &ExecSpace::Serial,
            RangePolicy::new(5, 5),
            42i64,
            |_| 0,
            |a, b| a + b,
        );
        assert_eq!(v, 42);
    }

    #[test]
    fn md3_visits_every_cell_once() {
        let rt = Runtime::new(4);
        let space = ExecSpace::hpx(rt.clone());
        let n = 8;
        let cells: Vec<AtomicU64> = (0..n * n * n).map(|_| AtomicU64::new(0)).collect();
        parallel_for_md3(
            &space,
            MDRangePolicy3::new([0, 0, 0], [n, n, n]).with_chunk(ChunkSpec::Tasks(4)),
            |i, j, k| {
                cells[(i * n + j) * n + k].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(cells.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        rt.shutdown();
    }

    #[test]
    fn team_policy_every_member_runs() {
        let rt = Runtime::new(2);
        let space = ExecSpace::hpx(rt.clone());
        let hits = AtomicU64::new(0);
        parallel_for_team(&space, TeamPolicy::new(5, 3), |m| {
            assert!(m.league_rank < 5);
            assert!(m.team_rank < m.team_size);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.into_inner(), 15);
        rt.shutdown();
    }

    #[test]
    fn scan_exclusive_prefix_sums() {
        let rt = Runtime::new(4);
        for space in [ExecSpace::Serial, ExecSpace::hpx(rt.clone())] {
            let input: Vec<u64> = (1..=10).collect();
            let mut out = vec![0u64; 10];
            let total = parallel_scan(&space, &input, &mut out, 0u64, |a, b| a + b);
            assert_eq!(total, 55);
            assert_eq!(out, vec![0, 1, 3, 6, 10, 15, 21, 28, 36, 45]);
        }
        rt.shutdown();
    }

    #[test]
    fn scan_empty() {
        let mut out: Vec<u64> = Vec::new();
        let total = parallel_scan(&ExecSpace::Serial, &[], &mut out, 7u64, |a, b| a + b);
        assert_eq!(total, 7);
    }

    #[test]
    fn single_task_policy_runs_inline() {
        // With ChunkSpec::SingleTask no scope is needed; verify correctness.
        let rt = Runtime::new(2);
        let space = ExecSpace::hpx(rt.clone());
        let acc = AtomicU64::new(0);
        parallel_for(&space, RangePolicy::new(0, 100), |i| {
            acc.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(acc.into_inner(), 4950);
        rt.shutdown();
    }
}
