//! CPPuddle-style recycling buffer pool for kernel scratch memory.
//!
//! Octo-Tiger's A64FX runs live inside the node's hard 28 GB-usable HBM2
//! budget, and the stack attributes much of its node-level throughput to
//! *buffer recycling*: kernel scratch is checked out of a pool and returned
//! after the launch instead of being heap-allocated per task (CPPuddle).  A
//! steady-state timestep then performs zero transient allocations — the
//! allocator drops out of the profile and the memory footprint stays flat
//! regardless of how many tasks are in flight.
//!
//! [`BufferPool`] reproduces that allocator: size-bucketed thread-safe
//! free-lists keyed by `(len, T)` (the element type is the pool's type
//! parameter, the requested length is the bucket key), handing out RAII
//! [`Recycled`] handles that return their storage on drop.
//!
//! **Generation tagging.**  Every checkout stamps the buffer with a fresh
//! [`ViewId`], so to the happens-before checker in [`crate::race`] a
//! recycled buffer is a *new* allocation: two ordered launches reusing the
//! same storage across a checkout boundary are clean (no false positive),
//! while two launches sharing one *checkout generation* without an ordering
//! edge are still flagged (no false negative).  This is what keeps the pool
//! sound under `hpx-check races`.
//!
//! Every pool keeps its own statistics and mirrors them into the
//! process-global `/octotiger/scratch/*` counters in `hpx-rt`.

use crate::view::ViewId;
use hpx_rt::counters::{scratch_counters, ScratchSnapshot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-pool statistics (same shape as the global scratch counters).
#[derive(Debug, Default)]
struct PoolStats {
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_in_use: AtomicU64,
    high_water: AtomicU64,
}

#[derive(Debug)]
struct PoolInner<T> {
    /// Free lists, keyed by the bucket (requested element count).
    free: Mutex<HashMap<usize, Vec<Vec<T>>>>,
    stats: PoolStats,
}

impl<T> Default for PoolInner<T> {
    fn default() -> Self {
        PoolInner {
            free: Mutex::new(HashMap::new()),
            stats: PoolStats::default(),
        }
    }
}

/// A recycling allocator of `Vec<T>` scratch buffers.
///
/// Cloning a pool clones a *handle*: all clones share the same free lists,
/// so a pool can be handed to the gravity solver, the ghost exchange, and
/// every leaf workspace while remaining one arena.  Checked-out buffers keep
/// the arena alive, so dropping the last pool handle while launches are in
/// flight is safe.
#[derive(Debug, Default)]
pub struct BufferPool<T> {
    inner: Arc<PoolInner<T>>,
}

impl<T> Clone for BufferPool<T> {
    fn clone(&self) -> Self {
        BufferPool {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The `f64` pool every solver layer draws kernel scratch from.
pub type ScratchArena = BufferPool<f64>;

impl<T> BufferPool<T> {
    /// Fresh pool with empty free lists.
    pub fn new() -> Self {
        BufferPool {
            inner: Arc::new(PoolInner::default()),
        }
    }

    /// Number of buffers currently sitting in free lists.
    pub fn free_buffers(&self) -> usize {
        self.inner.free.lock().values().map(Vec::len).sum()
    }

    /// This pool's statistics (hits/misses are cumulative; the byte gauges
    /// track currently checked-out storage and its high-water mark).
    pub fn stats(&self) -> ScratchSnapshot {
        let s = &self.inner.stats;
        ScratchSnapshot {
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            bytes_in_use: s.bytes_in_use.load(Ordering::Relaxed),
            high_water: s.high_water.load(Ordering::Relaxed),
        }
    }

    fn note_checkout(&self, hit: bool, bytes: u64) {
        let s = &self.inner.stats;
        let g = scratch_counters();
        if hit {
            s.hits.fetch_add(1, Ordering::Relaxed);
            g.note_hit();
        } else {
            s.misses.fetch_add(1, Ordering::Relaxed);
            g.note_miss();
        }
        let now = s.bytes_in_use.fetch_add(bytes, Ordering::Relaxed) + bytes;
        s.high_water.fetch_max(now, Ordering::Relaxed);
        g.add_in_use(bytes);
    }

    fn pop_bucket(&self, bucket: usize) -> Option<Vec<T>> {
        self.inner.free.lock().get_mut(&bucket)?.pop()
    }

    /// Top up the `bucket` free list so at least `count` buffers are ready
    /// to check out, allocating (and counting as misses) only the
    /// shortfall.
    ///
    /// A caller that knows its peak concurrent demand — e.g. the ghost
    /// exchange, which checks out exactly one payload per link — can
    /// prewarm before fanning work out to concurrent tasks, making the
    /// steady state allocation-free *by construction*: once the pool holds
    /// `count` buffers the call is a no-op and every checkout hits,
    /// regardless of how checkouts and returns interleave across threads.
    /// Without it, the population the warm-up round happens to reach
    /// depends on scheduling, and a later round with more overlap still
    /// allocates.
    pub fn prewarm(&self, bucket: usize, count: usize) {
        let shortfall = {
            let mut free = self.inner.free.lock();
            let list = free.entry(bucket).or_default();
            let shortfall = count.saturating_sub(list.len());
            for _ in 0..shortfall {
                list.push(Vec::with_capacity(bucket));
            }
            shortfall
        };
        if shortfall > 0 {
            self.inner
                .stats
                .misses
                .fetch_add(shortfall as u64, Ordering::Relaxed);
            let g = scratch_counters();
            for _ in 0..shortfall {
                g.note_miss();
            }
        }
    }
}

impl<T: Clone + Default> BufferPool<T> {
    /// Check out a buffer of exactly `len` elements, each reset to
    /// `T::default()` — recycled storage never leaks a prior launch's data.
    /// Serves from the free list when possible (a *hit*), allocates
    /// otherwise (a *miss*).
    pub fn checkout(&self, len: usize) -> Recycled<T> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        match self.pop_bucket(len) {
            Some(mut data) => {
                data.clear();
                data.resize(len, T::default());
                self.note_checkout(true, bytes);
                Recycled::pooled(data, len, self)
            }
            None => {
                self.note_checkout(false, bytes);
                Recycled::pooled(vec![T::default(); len], len, self)
            }
        }
    }
}

impl<T> BufferPool<T> {
    /// Check out an *empty* buffer with capacity for at least `cap`
    /// elements, for push-style fills (ghost packing).  The bucket key is
    /// `cap`, so callers that compute the exact payload size get stable
    /// recycling and never re-grow the vector.
    pub fn checkout_empty(&self, cap: usize) -> Recycled<T> {
        let bytes = (cap * std::mem::size_of::<T>()) as u64;
        match self.pop_bucket(cap) {
            Some(mut data) => {
                data.clear();
                self.note_checkout(true, bytes);
                Recycled::pooled(data, cap, self)
            }
            None => {
                self.note_checkout(false, bytes);
                Recycled::pooled(Vec::with_capacity(cap), cap, self)
            }
        }
    }
}

/// RAII handle to a pooled buffer: derefs to its `Vec<T>` and returns the
/// storage to the owning pool's free list on drop.
///
/// Each checkout carries a fresh [`ViewId`] generation tag (see the module
/// docs); declare kernel accesses against [`Recycled::view_id`] with
/// [`crate::race::ViewAccess::read_id`] / `write_id`.
#[derive(Debug)]
pub struct Recycled<T> {
    data: Vec<T>,
    id: ViewId,
    bucket: usize,
    pool: Option<Arc<PoolInner<T>>>,
}

impl<T> Recycled<T> {
    fn pooled(data: Vec<T>, bucket: usize, pool: &BufferPool<T>) -> Self {
        Recycled {
            data,
            id: ViewId::fresh(),
            bucket,
            pool: Some(Arc::clone(&pool.inner)),
        }
    }

    /// A handle that owns `data` outright and frees it on drop instead of
    /// recycling — for tests, one-off paths, and `Default` impls of structs
    /// that normally hold pooled fields.
    pub fn detached(data: Vec<T>) -> Self {
        Recycled {
            bucket: data.len(),
            data,
            id: ViewId::fresh(),
            pool: None,
        }
    }

    /// This checkout generation's allocation identity for the race
    /// detector.  Distinct checkouts of the same storage get distinct ids.
    pub fn view_id(&self) -> ViewId {
        self.id
    }

    /// The underlying buffer.
    pub fn as_vec(&self) -> &Vec<T> {
        &self.data
    }

    /// The underlying buffer, mutably.
    pub fn as_vec_mut(&mut self) -> &mut Vec<T> {
        &mut self.data
    }
}

impl<T> Default for Recycled<T> {
    fn default() -> Self {
        Recycled::detached(Vec::new())
    }
}

/// Cloning copies the contents into a *detached* buffer with a fresh
/// identity — a clone is a new allocation, exactly as for `View`.
impl<T: Clone> Clone for Recycled<T> {
    fn clone(&self) -> Self {
        Recycled::detached(self.data.clone())
    }
}

impl<T: PartialEq> PartialEq for Recycled<T> {
    fn eq(&self, other: &Self) -> bool {
        // Identity and pool membership are excluded, as for `View`.
        self.data == other.data
    }
}

impl<T> std::ops::Deref for Recycled<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.data
    }
}

impl<T> std::ops::DerefMut for Recycled<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.data
    }
}

impl<T> Drop for Recycled<T> {
    fn drop(&mut self) {
        let Some(pool) = self.pool.take() else {
            return;
        };
        let bytes = (self.bucket * std::mem::size_of::<T>()) as u64;
        pool.stats.bytes_in_use.fetch_sub(bytes, Ordering::Relaxed);
        scratch_counters().sub_in_use(bytes);
        let data = std::mem::take(&mut self.data);
        pool.free.lock().entry(self.bucket).or_default().push(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::race::{RaceDetector, ViewAccess};

    #[test]
    fn checkout_miss_then_hit() {
        let pool = BufferPool::<f64>::new();
        let s0 = pool.stats();
        assert_eq!((s0.hits, s0.misses), (0, 0));
        {
            let b = pool.checkout(64);
            assert_eq!(b.len(), 64);
            assert!(b.iter().all(|&x| x == 0.0));
            let s = pool.stats();
            assert_eq!((s.hits, s.misses), (0, 1));
            assert_eq!(s.bytes_in_use, 64 * 8);
        }
        assert_eq!(pool.free_buffers(), 1);
        let mut b = pool.checkout(64);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        b[3] = 7.0;
        drop(b);
        // Recycled storage comes back zeroed on the next checkout.
        let b = pool.checkout(64);
        assert!(b.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn buckets_are_keyed_by_length() {
        let pool = BufferPool::<f64>::new();
        drop(pool.checkout(8));
        // A different length is a different bucket: miss again.
        drop(pool.checkout(16));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (0, 2));
        assert_eq!(pool.free_buffers(), 2);
        drop(pool.checkout(8));
        drop(pool.checkout(16));
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn checkout_empty_recycles_capacity() {
        let pool = BufferPool::<f64>::new();
        {
            let mut b = pool.checkout_empty(10);
            assert!(b.is_empty() && b.capacity() >= 10);
            for i in 0..10 {
                b.push(i as f64);
            }
        }
        let b = pool.checkout_empty(10);
        assert!(b.is_empty() && b.capacity() >= 10);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn prewarm_tops_up_only_the_shortfall() {
        let pool = BufferPool::<f64>::new();
        drop(pool.checkout(16)); // one buffer already in the free list
        pool.prewarm(16, 3);
        assert_eq!(pool.free_buffers(), 3);
        // The two fresh buffers are counted as allocations (misses).
        assert_eq!(pool.stats().misses, 1 + 2);
        // Once populated, prewarm is a no-op and checkouts all hit.
        pool.prewarm(16, 3);
        assert_eq!(pool.free_buffers(), 3);
        let a = pool.checkout(16);
        let b = pool.checkout_empty(16);
        let c = pool.checkout(16);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (3, 3));
        drop((a, b, c));
    }

    #[test]
    fn high_water_tracks_concurrent_checkouts() {
        let pool = BufferPool::<f64>::new();
        let a = pool.checkout(4);
        let b = pool.checkout(4);
        assert_eq!(pool.stats().bytes_in_use, 2 * 4 * 8);
        drop(a);
        drop(b);
        let s = pool.stats();
        assert_eq!(s.bytes_in_use, 0);
        assert_eq!(s.high_water, 2 * 4 * 8);
    }

    #[test]
    fn each_checkout_gets_a_fresh_generation_id() {
        let pool = BufferPool::<f64>::new();
        let first = pool.checkout(32);
        let id0 = first.view_id();
        drop(first);
        let second = pool.checkout(32); // same storage, recycled
        assert_ne!(id0, second.view_id());
    }

    #[test]
    fn detached_and_clone_have_no_pool() {
        let pool = BufferPool::<f64>::new();
        let b = pool.checkout(8);
        let c = b.clone();
        assert_ne!(b.view_id(), c.view_id());
        assert_eq!(b, c);
        drop(c); // detached clone must not enter the free list
        drop(b);
        assert_eq!(pool.free_buffers(), 1);
        drop(Recycled::<f64>::detached(vec![1.0; 4]));
    }

    /// Satellite regression: a recycled buffer reused by two *ordered*
    /// launches is clean under the race detector, because the second
    /// checkout is a new generation (fresh `ViewId`).
    #[test]
    fn recycled_reuse_by_ordered_launches_is_clean() {
        let pool = BufferPool::<f64>::new();
        let det = RaceDetector::new();

        let gen1 = pool.checkout(128);
        let t1 = det
            .launch(
                "stage1/flux",
                &[],
                &[ViewAccess::write_id(gen1.view_id(), "scratch")],
            )
            .unwrap();
        drop(gen1); // launch retired, buffer returns to the pool

        // Same storage, next generation, launch ordered after the first.
        let gen2 = pool.checkout(128);
        det.launch(
            "stage2/flux",
            &[t1],
            &[ViewAccess::write_id(gen2.view_id(), "scratch")],
        )
        .unwrap();
    }

    /// Satellite regression: reuse *within one checkout generation* without
    /// an ordering edge is still a race — generation tagging removes false
    /// positives without hiding true ones.
    #[test]
    fn unordered_reuse_of_one_generation_is_flagged() {
        let pool = BufferPool::<f64>::new();
        let det = RaceDetector::new();

        let shared = pool.checkout(128);
        det.launch(
            "leaf_a/flux",
            &[],
            &[ViewAccess::write_id(shared.view_id(), "scratch")],
        )
        .unwrap();
        let err = det
            .launch(
                "leaf_b/flux",
                &[],
                &[ViewAccess::write_id(shared.view_id(), "scratch")],
            )
            .unwrap_err();
        assert_eq!(err.conflict, "write-write");
        assert_eq!(err.view_label, "scratch");
    }

    /// Ordered reuse across generations is clean *and* unordered sharing of
    /// a generation is flagged, in one schedule — the full soundness story.
    #[test]
    fn generation_tagging_is_sound_in_mixed_schedule() {
        let pool = BufferPool::<f64>::new();
        let det = RaceDetector::new();

        let g1 = pool.checkout(64);
        let a = det
            .launch("a", &[], &[ViewAccess::write_id(g1.view_id(), "s")])
            .unwrap();
        let b = det
            .launch("b", &[a], &[ViewAccess::read_id(g1.view_id(), "s")])
            .unwrap();
        drop(g1);

        let g2 = pool.checkout(64);
        let c = det
            .launch("c", &[b], &[ViewAccess::write_id(g2.view_id(), "s")])
            .unwrap();
        // An unordered sibling touching generation 2 is still caught.
        assert!(det
            .launch("d", &[a], &[ViewAccess::write_id(g2.view_id(), "s")])
            .is_err());
        let _ = c;
    }
}
