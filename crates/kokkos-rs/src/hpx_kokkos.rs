//! HPX-Kokkos: asynchronous kernel launches as HPX futures.
//!
//! Plain Kokkos can *run* a kernel on HPX worker threads, but cannot hand
//! the caller a handle to its completion.  The paper's stack adds the
//! HPX-Kokkos interoperability library (its Section IV-B, reference [32])
//! so that *"any HPX task may asynchronously launch Kokkos kernels and
//! define what should be done with the results by adding HPX
//! continuations"*.  These functions are that layer: they return
//! `hpx_rt::Future`s that complete when the kernel does, composable with
//! `then` / `when_all` into the solver's dependency graph.

use crate::parallel::{parallel_for, parallel_reduce};
use crate::policy::RangePolicy;
use crate::race::{LaunchToken, RaceDetector, ViewAccess};
use crate::space::ExecSpace;
use hpx_rt::{when_all_of, Future, Runtime};

/// Launch `parallel_for(space, policy, kernel)` asynchronously on `rt`;
/// the returned future becomes ready when the whole kernel has executed.
///
/// Unlike [`parallel_for`], the kernel must be `'static`: it outlives the
/// caller's stack frame, exactly as a real asynchronous Kokkos launch
/// requires device-visible (not stack) data.
pub fn launch_for_async<F>(
    rt: &Runtime,
    space: ExecSpace,
    policy: RangePolicy,
    kernel: F,
) -> Future<()>
where
    F: Fn(usize) + Sync + Send + 'static,
{
    rt.async_call(move || parallel_for(&space, policy, kernel))
}

/// Launch a reduction asynchronously; the future carries the reduced value.
pub fn launch_reduce_async<T, M, C>(
    rt: &Runtime,
    space: ExecSpace,
    policy: RangePolicy,
    identity: T,
    map: M,
    combine: C,
) -> Future<T>
where
    T: Clone + Send + Sync + 'static,
    M: Fn(usize) -> T + Sync + Send + 'static,
    C: Fn(T, T) -> T + Sync + Send + 'static,
{
    rt.async_call(move || parallel_reduce(&space, policy, identity, map, combine))
}

/// Launch `parallel_for` only after `dep` resolves — the kernel is not even
/// enqueued until its dependency is satisfied, so a chain of `_after`
/// launches forms a dependency edge rather than an eager fork.
///
/// The dependency's payload is never cloned; only its completion gates the
/// launch (see `Future::ticket`).  This is the launch primitive the
/// pipelined stepper uses to hang a leaf's stage-N kernel off the ghost
/// futures of exactly the neighbors it reads.
pub fn launch_for_after<D, F>(
    rt: &Runtime,
    dep: &Future<D>,
    space: ExecSpace,
    policy: RangePolicy,
    kernel: F,
) -> Future<()>
where
    D: Send + 'static,
    F: Fn(usize) + Sync + Send + 'static,
{
    dep.ticket()
        .then(rt, move |()| parallel_for(&space, policy, kernel))
}

/// Launch a reduction only after `dep` resolves; the returned future carries
/// the reduced value.  Payload-free gating, as with [`launch_for_after`].
pub fn launch_reduce_after<D, T, M, C>(
    rt: &Runtime,
    dep: &Future<D>,
    space: ExecSpace,
    policy: RangePolicy,
    identity: T,
    map: M,
    combine: C,
) -> Future<T>
where
    D: Send + 'static,
    T: Clone + Send + Sync + 'static,
    M: Fn(usize) -> T + Sync + Send + 'static,
    C: Fn(T, T) -> T + Sync + Send + 'static,
{
    dep.ticket().then(rt, move |()| {
        parallel_reduce(&space, policy, identity, map, combine)
    })
}

/// A kernel launch registered with a [`RaceDetector`]: the completion future
/// plus the happens-before token later launches cite as a dependency.
pub struct TrackedLaunch {
    /// Completes when the kernel has executed.
    pub done: Future<()>,
    /// This launch's identity in the detector's happens-before order.
    pub token: LaunchToken,
}

/// Race-checked [`launch_for_after`]: registers the launch (site, ordering
/// deps, declared view accesses) with `det` — aborting with both launch
/// sites on an unordered conflicting access — then runs the kernel once
/// every dependency's future has resolved.
///
/// The declared `deps` are the *only* ordering edges the detector credits,
/// so a kernel gated on too little fails loudly here instead of racing
/// silently under an unlucky schedule.
// The signature is `launch_for_after`'s plus the three race-tracking
// inputs; bundling them would only obscure the correspondence.
#[allow(clippy::too_many_arguments)]
pub fn launch_for_tracked<F>(
    rt: &Runtime,
    space: ExecSpace,
    policy: RangePolicy,
    det: &RaceDetector,
    site: &str,
    deps: &[&TrackedLaunch],
    accesses: &[ViewAccess],
    kernel: F,
) -> TrackedLaunch
where
    F: Fn(usize) + Sync + Send + 'static,
{
    let dep_tokens: Vec<LaunchToken> = deps.iter().map(|d| d.token).collect();
    let token = det.launch_or_abort(site, &dep_tokens, accesses);
    let dep_futures: Vec<Future<()>> = deps.iter().map(|d| d.done.clone()).collect();
    let done =
        when_all_of(rt, &dep_futures).then(rt, move |()| parallel_for(&space, policy, kernel));
    TrackedLaunch { done, token }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ChunkSpec;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn async_launch_completes_future() {
        let rt = Runtime::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let f = launch_for_async(
            &rt,
            ExecSpace::hpx(rt.clone()),
            RangePolicy::new(0, 64).with_chunk(ChunkSpec::Tasks(4)),
            move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            },
        );
        f.wait();
        assert_eq!(hits.load(Ordering::SeqCst), 64);
        rt.shutdown();
    }

    #[test]
    fn continuation_on_kernel_completion() {
        // The paper's headline pattern: kernel -> continuation -> kernel.
        let rt = Runtime::new(2);
        let data = Arc::new((0..100).map(AtomicU64::new).collect::<Vec<_>>());
        let d1 = data.clone();
        let space = ExecSpace::hpx(rt.clone());
        let space2 = space.clone();
        let rt2 = rt.clone();
        let d2 = data.clone();
        let f = launch_for_async(
            &rt,
            space,
            RangePolicy::new(0, 100).with_chunk(ChunkSpec::Auto),
            move |i| {
                d1[i].fetch_add(1, Ordering::Relaxed);
            },
        )
        .then(&rt2, move |_| {
            // Second kernel, launched from the continuation.
            let d3 = d2.clone();
            parallel_for(&space2, RangePolicy::new(0, 100), move |i| {
                d3[i].fetch_add(10, Ordering::Relaxed);
            });
        });
        f.wait();
        assert!(data
            .iter()
            .enumerate()
            .all(|(i, c)| c.load(Ordering::Relaxed) == i as u64 + 11));
        rt.shutdown();
    }

    #[test]
    fn async_reduce_returns_value() {
        let rt = Runtime::new(4);
        let f = launch_reduce_async(
            &rt,
            ExecSpace::hpx(rt.clone()),
            RangePolicy::new(1, 101).with_chunk(ChunkSpec::Tasks(8)),
            0u64,
            |i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(f.get(), 5050);
        rt.shutdown();
    }

    #[test]
    fn launch_for_after_defers_until_dependency_resolves() {
        let rt = Runtime::new(2);
        let (dep_p, dep_f) = hpx_rt::Promise::<u64>::new_pair();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let f = launch_for_after(
            &rt,
            &dep_f,
            ExecSpace::hpx(rt.clone()),
            RangePolicy::new(0, 32).with_chunk(ChunkSpec::Tasks(4)),
            move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            },
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!f.is_ready());
        assert_eq!(
            hits.load(Ordering::SeqCst),
            0,
            "kernel ran before its dependency"
        );
        dep_p.set(7);
        f.wait();
        assert_eq!(hits.load(Ordering::SeqCst), 32);
        rt.shutdown();
    }

    #[test]
    fn launch_reduce_after_chains_two_reductions() {
        let rt = Runtime::new(2);
        let first = launch_reduce_async(
            &rt,
            ExecSpace::hpx(rt.clone()),
            RangePolicy::new(0, 10),
            0u64,
            |i| i as u64,
            |a, b| a + b,
        );
        let second = launch_reduce_after(
            &rt,
            &first,
            ExecSpace::hpx(rt.clone()),
            RangePolicy::new(0, 10),
            0u64,
            |i| i as u64 * 2,
            |a, b| a + b,
        );
        assert_eq!(first.get(), 45);
        assert_eq!(second.get(), 90);
        rt.shutdown();
    }

    #[test]
    fn tracked_launches_enforce_order_and_run() {
        let rt = Runtime::new(2);
        let det = RaceDetector::new();
        let view = crate::view::View::<f64>::new_1d("rho", 64);
        let hits = Arc::new(AtomicU64::new(0));
        let h1 = hits.clone();
        let init = launch_for_tracked(
            &rt,
            ExecSpace::hpx(rt.clone()),
            RangePolicy::new(0, 64),
            &det,
            "init(rho)",
            &[],
            &[ViewAccess::write(&view)],
            move |_| {
                h1.fetch_add(1, Ordering::Relaxed);
            },
        );
        let h2 = hits.clone();
        let flux = launch_for_tracked(
            &rt,
            ExecSpace::hpx(rt.clone()),
            RangePolicy::new(0, 64),
            &det,
            "flux(rho)",
            &[&init],
            &[ViewAccess::read(&view)],
            move |_| {
                h2.fetch_add(1, Ordering::Relaxed);
            },
        );
        flux.done.wait();
        assert_eq!(hits.load(Ordering::SeqCst), 128);
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "data race on view")]
    fn tracked_launch_without_edge_aborts() {
        let rt = Runtime::new(1);
        let det = RaceDetector::new();
        let view = crate::view::View::<f64>::new_1d("rho", 8);
        let _a = launch_for_tracked(
            &rt,
            ExecSpace::Serial,
            RangePolicy::new(0, 8),
            &det,
            "writer_a",
            &[],
            &[ViewAccess::write(&view)],
            |_| {},
        );
        // No dependency on `_a`: unordered write-write on the same view.
        let _b = launch_for_tracked(
            &rt,
            ExecSpace::Serial,
            RangePolicy::new(0, 8),
            &det,
            "writer_b",
            &[],
            &[ViewAccess::write(&view)],
            |_| {},
        );
    }

    #[test]
    fn when_all_over_kernel_launches() {
        // Octo-Tiger launches >10 kernels per sub-grid per step and joins
        // them; emulate a burst of launches joined by when_all.
        let rt = Runtime::new(4);
        let futures: Vec<Future<u64>> = (0..12)
            .map(|k| {
                launch_reduce_async(
                    &rt,
                    ExecSpace::hpx(rt.clone()),
                    RangePolicy::new(0, 128).with_chunk(ChunkSpec::Tasks(4)),
                    0u64,
                    move |i| (i as u64) * (k + 1),
                    |a, b| a + b,
                )
            })
            .collect();
        let all = hpx_rt::when_all(&rt, futures);
        let sums = all.get();
        let base: u64 = (0..128).sum();
        for (k, s) in sums.iter().enumerate() {
            assert_eq!(*s, base * (k as u64 + 1));
        }
        rt.shutdown();
    }
}
