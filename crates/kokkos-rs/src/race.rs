//! Happens-before race detection for [`View`](crate::view::View) accesses at
//! kernel-launch boundaries.
//!
//! The HPX-Kokkos integration overlaps kernels aggressively: a launch only
//! waits for the futures it is explicitly chained after.  Two overlapped
//! kernels that touch the same view without an ordering edge between them are
//! a data race — exactly the class of bug the paper's stack hunts with
//! sanitizers, and one that surfaces here as a rare wrong answer rather than
//! a crash.  This module keeps *shadow state* per view (last writer, current
//! readers) and validates every declared access when a launch is registered:
//! a conflicting access whose prior site is not a happens-before ancestor of
//! the new launch aborts with **both** launch sites.
//!
//! The detector checks declared access sets, not individual loads/stores, so
//! it is cheap enough to leave on in debug runs and in the `hpx-check` CI
//! job; the tracked-launch wrappers in [`crate::hpx_kokkos`] feed it.

use crate::view::{View, ViewId};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// How a kernel touches a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The kernel only reads the view.
    Read,
    /// The kernel writes (or reads and writes) the view.
    Write,
}

/// One declared view access of a kernel launch.
#[derive(Debug, Clone)]
pub struct ViewAccess {
    /// Identity of the accessed allocation.
    pub view: ViewId,
    /// The view's label, for diagnostics.
    pub label: String,
    /// Read or write.
    pub kind: AccessKind,
}

impl ViewAccess {
    /// Declare a read of `view`.
    pub fn read<T>(view: &View<T>) -> Self {
        ViewAccess {
            view: view.id(),
            label: view.label().to_owned(),
            kind: AccessKind::Read,
        }
    }

    /// Declare a write of `view`.
    pub fn write<T>(view: &View<T>) -> Self {
        ViewAccess {
            view: view.id(),
            label: view.label().to_owned(),
            kind: AccessKind::Write,
        }
    }

    /// Declare a read of the allocation identified by `id` — for storage
    /// tracked by identity alone (e.g. a pooled [`crate::pool::Recycled`]
    /// scratch buffer), without a full `View` in hand.
    pub fn read_id(id: ViewId, label: impl Into<String>) -> Self {
        ViewAccess {
            view: id,
            label: label.into(),
            kind: AccessKind::Read,
        }
    }

    /// Declare a write of the allocation identified by `id`.
    pub fn write_id(id: ViewId, label: impl Into<String>) -> Self {
        ViewAccess {
            view: id,
            label: label.into(),
            kind: AccessKind::Write,
        }
    }
}

/// Opaque handle for one registered launch, used to declare ordering edges
/// of later launches (`deps` in [`RaceDetector::launch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchToken(usize);

/// A detected unordered conflicting access, naming both launch sites.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Label of the view both launches touch.
    pub view_label: String,
    /// `"write-write"`, `"write-read"`, or `"read-write"`
    /// (prior access first).
    pub conflict: &'static str,
    /// Site string of the earlier, conflicting launch.
    pub prior_site: String,
    /// Site string of the launch being registered.
    pub site: String,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kokkos-rs: data race on view `{}`: {} conflict between launch \
             `{}` and launch `{}` with no happens-before edge between them",
            self.view_label, self.conflict, self.prior_site, self.site
        )
    }
}

impl std::error::Error for RaceReport {}

#[derive(Default)]
struct ViewState {
    last_writer: Option<usize>,
    readers: Vec<usize>,
}

#[derive(Default)]
struct DetectorState {
    /// Site string per launch, indexed by `LaunchToken.0`.
    sites: Vec<String>,
    /// Transitive happens-before ancestors per launch (excluding itself).
    ancestors: Vec<HashSet<usize>>,
    views: HashMap<ViewId, ViewState>,
}

/// Shadow-state happens-before checker for view accesses.
///
/// Register every kernel launch with its site, its ordering dependencies
/// (tokens of launches it is chained after), and its declared view accesses.
/// Registration fails with a [`RaceReport`] when a conflicting prior access
/// is not ordered before the new launch.
#[derive(Default)]
pub struct RaceDetector {
    state: Mutex<DetectorState>,
}

impl RaceDetector {
    /// Fresh detector with no recorded launches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a launch.  `deps` are the launches this one is ordered
    /// after (their ancestors are inherited transitively); `accesses`
    /// declares every view the kernel touches.
    ///
    /// All accesses are validated against the shadow state before any of
    /// them is committed, so a failed registration leaves the detector
    /// unchanged.
    pub fn launch(
        &self,
        site: &str,
        deps: &[LaunchToken],
        accesses: &[ViewAccess],
    ) -> Result<LaunchToken, RaceReport> {
        let mut g = self.state.lock();
        let id = g.sites.len();
        let mut ancestors: HashSet<usize> = HashSet::new();
        for d in deps {
            assert!(d.0 < id, "kokkos-rs: race detector: unknown dep token");
            ancestors.insert(d.0);
            ancestors.extend(g.ancestors[d.0].iter().copied());
        }
        // Validate first …
        for a in accesses {
            let Some(vs) = g.views.get(&a.view) else {
                continue;
            };
            let conflict = |prior: usize, kind: &'static str| RaceReport {
                view_label: a.label.clone(),
                conflict: kind,
                prior_site: g.sites[prior].clone(),
                site: site.to_owned(),
            };
            if let Some(w) = vs.last_writer {
                if !ancestors.contains(&w) {
                    return Err(conflict(
                        w,
                        if a.kind == AccessKind::Write {
                            "write-write"
                        } else {
                            "write-read"
                        },
                    ));
                }
            }
            if a.kind == AccessKind::Write {
                if let Some(&r) = vs.readers.iter().find(|r| !ancestors.contains(r)) {
                    return Err(conflict(r, "read-write"));
                }
            }
        }
        // … then commit.
        for a in accesses {
            let vs = g.views.entry(a.view).or_default();
            match a.kind {
                AccessKind::Write => {
                    vs.last_writer = Some(id);
                    vs.readers.clear();
                }
                AccessKind::Read => vs.readers.push(id),
            }
        }
        g.sites.push(site.to_owned());
        g.ancestors.push(ancestors);
        Ok(LaunchToken(id))
    }

    /// Like [`RaceDetector::launch`], but aborts the process (panics) with
    /// the full report on a race — the debug-build fail-fast mode.
    pub fn launch_or_abort(
        &self,
        site: &str,
        deps: &[LaunchToken],
        accesses: &[ViewAccess],
    ) -> LaunchToken {
        match self.launch(site, deps, accesses) {
            Ok(t) => t,
            Err(report) => panic!("{report}"),
        }
    }

    /// Number of launches registered so far.
    pub fn launches(&self) -> usize {
        self.state.lock().sites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(label: &str) -> View<f64> {
        View::new_1d(label, 8)
    }

    #[test]
    fn ordered_write_then_read_is_clean() {
        let det = RaceDetector::new();
        let a = v("rho");
        let w = det.launch("init", &[], &[ViewAccess::write(&a)]).unwrap();
        det.launch("flux", &[w], &[ViewAccess::read(&a)]).unwrap();
        assert_eq!(det.launches(), 2);
    }

    #[test]
    fn unordered_write_write_names_both_sites() {
        let det = RaceDetector::new();
        let a = v("rho");
        det.launch("kernel_a", &[], &[ViewAccess::write(&a)])
            .unwrap();
        let err = det
            .launch("kernel_b", &[], &[ViewAccess::write(&a)])
            .unwrap_err();
        assert_eq!(err.conflict, "write-write");
        assert_eq!(err.prior_site, "kernel_a");
        assert_eq!(err.site, "kernel_b");
        let text = err.to_string();
        assert!(text.contains("kernel_a") && text.contains("kernel_b"));
    }

    #[test]
    fn unordered_read_after_write_is_flagged() {
        let det = RaceDetector::new();
        let a = v("rho");
        det.launch("writer", &[], &[ViewAccess::write(&a)]).unwrap();
        let err = det
            .launch("reader", &[], &[ViewAccess::read(&a)])
            .unwrap_err();
        assert_eq!(err.conflict, "write-read");
    }

    #[test]
    fn write_over_unordered_reader_is_flagged() {
        let det = RaceDetector::new();
        let a = v("rho");
        let w = det.launch("init", &[], &[ViewAccess::write(&a)]).unwrap();
        det.launch("reader", &[w], &[ViewAccess::read(&a)]).unwrap();
        let err = det
            .launch("writer2", &[w], &[ViewAccess::write(&a)])
            .unwrap_err();
        assert_eq!(err.conflict, "read-write");
        assert_eq!(err.prior_site, "reader");
    }

    #[test]
    fn concurrent_readers_are_fine() {
        let det = RaceDetector::new();
        let a = v("rho");
        let w = det.launch("init", &[], &[ViewAccess::write(&a)]).unwrap();
        let r1 = det.launch("r1", &[w], &[ViewAccess::read(&a)]).unwrap();
        let r2 = det.launch("r2", &[w], &[ViewAccess::read(&a)]).unwrap();
        // A writer ordered after *both* readers is fine.
        det.launch("sum", &[r1, r2], &[ViewAccess::write(&a)])
            .unwrap();
    }

    #[test]
    fn ordering_is_transitive() {
        let det = RaceDetector::new();
        let a = v("rho");
        let w = det.launch("init", &[], &[ViewAccess::write(&a)]).unwrap();
        let mid = det.launch("mid", &[w], &[]).unwrap();
        // `late` only names `mid`, but inherits `init` transitively.
        det.launch("late", &[mid], &[ViewAccess::write(&a)])
            .unwrap();
    }

    #[test]
    fn distinct_views_never_conflict() {
        let det = RaceDetector::new();
        let a = v("rho");
        let b = v("rho"); // same label, different allocation
        det.launch("ka", &[], &[ViewAccess::write(&a)]).unwrap();
        det.launch("kb", &[], &[ViewAccess::write(&b)]).unwrap();
    }

    #[test]
    fn failed_registration_leaves_state_unchanged() {
        let det = RaceDetector::new();
        let a = v("rho");
        let w = det.launch("init", &[], &[ViewAccess::write(&a)]).unwrap();
        assert!(det.launch("bad", &[], &[ViewAccess::write(&a)]).is_err());
        // The failed launch must not have committed its write: a launch
        // ordered after `init` alone is still clean.
        det.launch("good", &[w], &[ViewAccess::write(&a)]).unwrap();
    }

    #[test]
    #[should_panic(expected = "data race on view")]
    fn launch_or_abort_panics_with_report() {
        let det = RaceDetector::new();
        let a = v("rho");
        det.launch_or_abort("ka", &[], &[ViewAccess::write(&a)]);
        det.launch_or_abort("kb", &[], &[ViewAccess::write(&a)]);
    }
}
