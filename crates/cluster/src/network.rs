//! Interconnect models.
//!
//! The paper repeatedly points at the interconnect when explaining
//! cross-machine differences — "Fugaku uses the Fujitsu Tofu-D interconnect
//! with Fujitsu MPI and Ookami uses Infiniband interconnect with OpenMPI"
//! (Section VII-D), with Ookami pulling ahead of Fugaku beyond 8 nodes.
//! Each model is a classic latency/bandwidth/overhead (LogGP-flavoured)
//! triple; constants are public figures for the links plus an effective
//! per-message software overhead that carries the MPI-implementation
//! difference the paper observed.

use serde::{Deserialize, Serialize};

/// A latency/bandwidth/overhead interconnect model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Human-readable name.
    pub name: &'static str,
    /// One-way small-message latency, seconds.
    pub latency_s: f64,
    /// Per-node injection bandwidth, bytes/second.
    pub bandwidth_bps: f64,
    /// Per-message software overhead on the host CPU, seconds — this is
    /// where Fujitsu-MPI-on-Tofu vs OpenMPI-on-InfiniBand differ in
    /// practice for the many small messages Octo-Tiger sends.
    pub per_message_overhead_s: f64,
}

impl Interconnect {
    /// Fugaku's Tofu-D (6D torus, ~6.8 GB/s injection per NIC group).
    /// The elevated per-message overhead reflects the Fujitsu-MPI
    /// small-message behaviour the paper ran into at scale.
    pub const fn tofu_d() -> Interconnect {
        Interconnect {
            name: "Tofu-D (Fujitsu MPI)",
            latency_s: 0.9e-6,
            bandwidth_bps: 6.8e9,
            per_message_overhead_s: 2.4e-6,
        }
    }

    /// Ookami's InfiniBand HDR with OpenMPI.
    pub const fn infiniband_hdr() -> Interconnect {
        Interconnect {
            name: "InfiniBand HDR (OpenMPI)",
            latency_s: 1.1e-6,
            bandwidth_bps: 12.5e9,
            per_message_overhead_s: 1.2e-6,
        }
    }

    /// Summit's dual-rail EDR InfiniBand.
    pub const fn infiniband_edr_dual() -> Interconnect {
        Interconnect {
            name: "InfiniBand EDR x2",
            latency_s: 1.0e-6,
            bandwidth_bps: 23.0e9,
            per_message_overhead_s: 1.3e-6,
        }
    }

    /// Piz Daint's Cray Aries dragonfly.
    pub const fn aries() -> Interconnect {
        Interconnect {
            name: "Cray Aries",
            latency_s: 1.3e-6,
            bandwidth_bps: 10.2e9,
            per_message_overhead_s: 1.4e-6,
        }
    }

    /// Perlmutter's HPE Slingshot 10 (phase 1 — the paper's disclaimer
    /// notes the network was not final).
    pub const fn slingshot10() -> Interconnect {
        Interconnect {
            name: "Slingshot 10 (phase 1)",
            latency_s: 1.2e-6,
            bandwidth_bps: 12.5e9,
            per_message_overhead_s: 1.3e-6,
        }
    }

    /// Time for one node to send `messages` messages totalling `bytes`
    /// bytes, with `overlap_cores` cores able to progress communication
    /// concurrently (HPX overlaps communication with computation, so
    /// per-message host overhead is divided over the helper cores).
    pub fn transfer_time(&self, messages: u64, bytes: u64, overlap_cores: usize) -> f64 {
        if messages == 0 {
            return 0.0;
        }
        let overhead = self.per_message_overhead_s * messages as f64 / overlap_cores.max(1) as f64;
        self.latency_s + overhead + bytes as f64 / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_messages_is_free() {
        assert_eq!(Interconnect::tofu_d().transfer_time(0, 0, 48), 0.0);
    }

    #[test]
    fn bandwidth_term_dominates_large_transfers() {
        let net = Interconnect::infiniband_hdr();
        let t = net.transfer_time(1, 12_500_000_000, 1);
        assert!((t - 1.0).abs() / 1.0 < 0.01, "1 s of bandwidth: {t}");
    }

    #[test]
    fn message_overhead_scales_and_overlaps() {
        let net = Interconnect::tofu_d();
        let serial = net.transfer_time(10_000, 0, 1);
        let overlapped = net.transfer_time(10_000, 0, 48);
        assert!(serial > overlapped * 10.0);
    }

    #[test]
    fn tofu_has_higher_message_overhead_than_ib() {
        // The Fugaku-vs-Ookami asymmetry the paper observed beyond 8 nodes.
        assert!(
            Interconnect::tofu_d().per_message_overhead_s
                > Interconnect::infiniband_hdr().per_message_overhead_s
        );
    }

    #[test]
    fn all_models_have_sane_magnitudes() {
        for net in [
            Interconnect::tofu_d(),
            Interconnect::infiniband_hdr(),
            Interconnect::infiniband_edr_dual(),
            Interconnect::aries(),
            Interconnect::slingshot10(),
        ] {
            assert!(net.latency_s > 1e-8 && net.latency_s < 1e-4, "{}", net.name);
            assert!(net.bandwidth_bps > 1e9 && net.bandwidth_bps < 1e12);
            assert!(net.per_message_overhead_s > 1e-8 && net.per_message_overhead_s < 1e-4);
        }
    }
}
