//! Digitized values from the paper, for paper-vs-model comparisons.
//!
//! Table II is the only fully numeric table in the evaluation (the
//! figures are plots); its entries are reproduced here verbatim so tests
//! and EXPERIMENTS.md can quantify the power model against the paper
//! instead of hand-waving.  Entries the paper leaves blank are absent.

use crate::calibrate::KernelCosts;
use crate::machine::{Machine, MachineId};
use crate::power::PowerModel;
use crate::workload::{RunOptions, Workload};

/// One Table II entry: (refinement level, nodes, average watts).
pub const TABLE2_PAPER: [(u8, usize, f64); 10] = [
    (5, 4, 373.94),
    (5, 16, 1145.69),
    (5, 32, 1969.14),
    (5, 128, 11908.93),
    (5, 256, 15228.07),
    (6, 128, 8659.86),
    (6, 256, 19274.0),
    (6, 1024, 111261.36),
    (7, 512, 55310.55),
    (7, 1024, 111235.41),
];

/// Paper-vs-model comparison of one Table II entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Comparison {
    pub level: u8,
    pub nodes: usize,
    pub paper_watts: f64,
    pub model_watts: f64,
}

impl Table2Comparison {
    /// model / paper ratio.
    pub fn ratio(&self) -> f64 {
        self.model_watts / self.paper_watts
    }
}

/// Evaluate the power model over the paper's Table II grid.
pub fn table2_comparisons() -> Vec<Table2Comparison> {
    let m = Machine::get(MachineId::Fugaku);
    let costs = KernelCosts::default();
    let opts = RunOptions::default();
    let power = PowerModel::default();
    TABLE2_PAPER
        .iter()
        .map(|&(level, nodes, paper_watts)| {
            let w = Workload::rotating_star(level);
            let model_watts = crate::campaign::power_for(&m, nodes, &w, &opts, &costs, &power);
            Table2Comparison {
                level,
                nodes,
                paper_watts,
                model_watts,
            }
        })
        .collect()
}

/// Geometric-mean model/paper ratio over all Table II entries — the
/// single-number calibration score reported in EXPERIMENTS.md.
pub fn table2_geometric_mean_ratio() -> f64 {
    let comps = table2_comparisons();
    let log_sum: f64 = comps.iter().map(|c| c.ratio().ln()).sum();
    (log_sum / comps.len() as f64).exp()
}

/// The paper's qualitative per-figure claims as short strings, used by the
/// bench reports (one place to keep the wording honest).
pub const PAPER_CLAIMS: [(&str, &str); 8] = [
    ("fig3", "boost mode resulted in a marginal performance improvement"),
    ("fig4", "Summit best; Piz Daint second; Fugaku close to Piz Daint"),
    (
        "fig5",
        "not using the GPUs results in a drop of two orders of magnitude; Fugaku gets close to the CPU-only run",
    ),
    (
        "fig6",
        "level 5 scales to ~64 nodes, level 6 to ~512, level 7 through 1024",
    ),
    ("fig7", "speed-up between a factor of two and three from SVE"),
    ("fig8", "benefit at 1-4 nodes, break-even at 8, slightly worse after"),
    (
        "fig9",
        "one task per kernel sufficient at one node; 16 tasks noticeably faster at 128",
    ),
    (
        "fig10",
        "Ookami slightly better to 4 nodes, close at 8, much better beyond",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_the_papers_ten_entries() {
        assert_eq!(TABLE2_PAPER.len(), 10);
        // Spot-check against the paper's text.
        assert_eq!(TABLE2_PAPER[7], (6, 1024, 111261.36));
    }

    #[test]
    fn largest_runs_agree_within_fifteen_percent() {
        for c in table2_comparisons() {
            if c.nodes >= 512 {
                assert!(
                    (c.ratio() - 1.0).abs() < 0.15,
                    "level {} @ {} nodes: model {} vs paper {}",
                    c.level,
                    c.nodes,
                    c.model_watts,
                    c.paper_watts
                );
            }
        }
    }

    #[test]
    fn geometric_mean_ratio_is_order_unity() {
        let r = table2_geometric_mean_ratio();
        assert!(
            (0.5..2.5).contains(&r),
            "power model systematically off: geo-mean ratio {r}"
        );
    }

    #[test]
    fn per_node_watts_always_physical() {
        for c in table2_comparisons() {
            let per_node = c.model_watts / c.nodes as f64;
            assert!(
                (40.0..150.0).contains(&per_node),
                "unphysical node power {per_node} W"
            );
        }
    }

    #[test]
    fn claims_cover_all_figures() {
        let ids: Vec<&str> = PAPER_CLAIMS.iter().map(|(id, _)| *id).collect();
        for fig in [
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        ] {
            assert!(ids.contains(&fig), "missing claim for {fig}");
        }
    }
}
