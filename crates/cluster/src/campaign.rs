//! Campaign helpers: sweeps that produce exactly the series each paper
//! figure plots, as serializable records the bench binaries print.

use crate::calibrate::KernelCosts;
use crate::des::{simulate_step, StepResult};
use crate::machine::{Machine, MachineId};
use crate::power::PowerModel;
use crate::workload::{RunOptions, Workload};
use serde::{Deserialize, Serialize};

/// One point of a figure's series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigurePoint {
    /// Figure identifier ("fig3", "fig6", "table2", ...).
    pub figure: String,
    /// Series label as it appears in the paper's legend.
    pub series: String,
    /// X value (node count or core count).
    pub x: f64,
    /// Y value.
    pub y: f64,
    /// Y unit ("cells/s", "speedup", "W").
    pub unit: String,
}

/// Sweep a workload over node counts on one machine.
pub fn sweep(
    machine: &Machine,
    workload: &Workload,
    node_counts: &[usize],
    opts: &RunOptions,
    costs: &KernelCosts,
) -> Vec<(usize, StepResult)> {
    node_counts
        .iter()
        .map(|&n| (n, simulate_step(machine, n, workload, opts, costs)))
        .collect()
}

/// Powers of two from `lo` to `hi` inclusive.
pub fn pow2_range(lo: usize, hi: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut n = lo.max(1);
    while n <= hi {
        out.push(n);
        n *= 2;
    }
    out
}

/// Speedup series relative to the smallest node count in `results`
/// (the paper's Figures 4b and 5b normalization).
pub fn speedups(results: &[(usize, StepResult)]) -> Vec<(usize, f64)> {
    let Some(&(n0, ref r0)) = results.first() else {
        return Vec::new();
    };
    let base = r0.cells_per_second / n0 as f64 * n0 as f64; // keep form explicit
    results
        .iter()
        .map(|(n, r)| (*n, r.cells_per_second / base))
        .collect()
}

/// Table II reproduction: average power for a (level, nodes) grid point.
pub fn power_for(
    machine: &Machine,
    nodes: usize,
    workload: &Workload,
    opts: &RunOptions,
    costs: &KernelCosts,
    power: &PowerModel,
) -> f64 {
    let r = simulate_step(machine, nodes, workload, opts, costs);
    power.total_watts(machine, nodes, r.parallel_efficiency, opts.sve)
}

/// The Figure 4 machine line-up for the v1309 comparison.
pub fn figure4_machines() -> Vec<MachineId> {
    vec![MachineId::Summit, MachineId::PizDaint, MachineId::Fugaku]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_ranges() {
        assert_eq!(pow2_range(1, 16), vec![1, 2, 4, 8, 16]);
        assert_eq!(pow2_range(16, 128), vec![16, 32, 64, 128]);
        assert_eq!(pow2_range(4, 3), Vec::<usize>::new());
    }

    #[test]
    fn sweep_produces_one_result_per_count() {
        let m = Machine::get(MachineId::Fugaku);
        let w = Workload::rotating_star(5);
        let results = sweep(
            &m,
            &w,
            &[1, 2, 4],
            &RunOptions::default(),
            &KernelCosts::default(),
        );
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|(_, r)| r.cells_per_second > 0.0));
    }

    #[test]
    fn speedup_is_one_at_base() {
        let m = Machine::get(MachineId::Fugaku);
        let w = Workload::rotating_star(5);
        let results = sweep(
            &m,
            &w,
            &[2, 4, 8],
            &RunOptions::default(),
            &KernelCosts::default(),
        );
        let s = speedups(&results);
        assert!((s[0].1 - 1.0).abs() < 1e-12);
        assert!(s[1].1 > 1.0);
    }

    #[test]
    fn figure_point_serializes() {
        let p = FigurePoint {
            figure: "fig6".into(),
            series: "level 5".into(),
            x: 64.0,
            y: 1.0e7,
            unit: "cells/s".into(),
        };
        let json = serde_json::to_string(&p).unwrap();
        assert!(json.contains("fig6"));
        let back: FigurePoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn power_in_plausible_total_band() {
        // Table II: e.g. 128 nodes at level 5 → ~12 kW total.
        let m = Machine::get(MachineId::Fugaku);
        let w = Workload::rotating_star(5);
        let watts = power_for(
            &m,
            128,
            &w,
            &RunOptions::default(),
            &KernelCosts::default(),
            &PowerModel::default(),
        );
        assert!(
            (128.0 * 55.0..128.0 * 130.0).contains(&watts),
            "total watts {watts}"
        );
    }
}
