//! Fault injection: the paper's observed hangs and deadlocks.
//!
//! Section VI-D: *"Octo-Tiger started to hang for a larger node count"*
//! on Fugaku with Fujitsu MPI (undebugged — the allocation ran out), and
//! Section VII: *"we experienced rare deadlocks (in about 1 out of 20
//! runs) on distributed runs on Ookami"*.  Per DESIGN.md these are modelled
//! as a documented stochastic fault layer (off by default), not shipped as
//! real bugs: campaigns can enable it to reproduce the papers' missing
//! data points.

use crate::machine::{Machine, MachineId};
use serde::{Deserialize, Serialize};

/// Stochastic hang/deadlock model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Node count beyond which Fujitsu-MPI hang probability ramps up
    /// (the paper's runs became unreliable past ~512 nodes).
    pub fugaku_hang_onset_nodes: usize,
    /// Hang probability per run at and beyond twice the onset.
    pub fugaku_hang_ceiling: f64,
    /// Deadlock probability per distributed Ookami run (paper: ~1/20).
    pub ookami_deadlock_p: f64,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            fugaku_hang_onset_nodes: 512,
            fugaku_hang_ceiling: 0.5,
            ookami_deadlock_p: 0.05,
        }
    }
}

/// Outcome of a fault draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The run completes.
    Completes,
    /// The run hangs (Fugaku / Fujitsu MPI at scale).
    Hangs,
    /// The run deadlocks (Ookami, rare).
    Deadlocks,
}

impl FaultModel {
    /// Hang/deadlock probability of one run.
    pub fn failure_probability(&self, machine: &Machine, nodes: usize) -> f64 {
        match machine.id {
            MachineId::Fugaku => {
                if nodes <= self.fugaku_hang_onset_nodes {
                    0.0
                } else {
                    let ramp = (nodes - self.fugaku_hang_onset_nodes) as f64
                        / self.fugaku_hang_onset_nodes as f64;
                    (ramp * self.fugaku_hang_ceiling).min(self.fugaku_hang_ceiling)
                }
            }
            MachineId::Ookami if nodes > 1 => self.ookami_deadlock_p,
            _ => 0.0,
        }
    }

    /// Deterministic draw from `seed` (split-mix hash → uniform in [0,1)).
    pub fn sample(&self, machine: &Machine, nodes: usize, seed: u64) -> FaultOutcome {
        let p = self.failure_probability(machine, nodes);
        if p == 0.0 {
            return FaultOutcome::Completes;
        }
        let mut x = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(nodes as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58476D1CE4E5B9);
        x ^= x >> 27;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u < p {
            if machine.id == MachineId::Ookami {
                FaultOutcome::Deadlocks
            } else {
                FaultOutcome::Hangs
            }
        } else {
            FaultOutcome::Completes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fugaku_reliable_up_to_onset() {
        let f = FaultModel::default();
        let m = Machine::get(MachineId::Fugaku);
        assert_eq!(f.failure_probability(&m, 512), 0.0);
        assert!(f.failure_probability(&m, 1024) > 0.0);
        for seed in 0..100 {
            assert_eq!(f.sample(&m, 256, seed), FaultOutcome::Completes);
        }
    }

    #[test]
    fn ookami_deadlocks_about_one_in_twenty() {
        let f = FaultModel::default();
        let m = Machine::get(MachineId::Ookami);
        let fails = (0..10_000)
            .filter(|&seed| f.sample(&m, 8, seed) == FaultOutcome::Deadlocks)
            .count();
        let rate = fails as f64 / 10_000.0;
        assert!(
            (0.03..0.07).contains(&rate),
            "deadlock rate should be near 1/20: {rate}"
        );
        // Single-node runs never deadlock.
        assert_eq!(f.failure_probability(&m, 1), 0.0);
    }

    #[test]
    fn other_machines_never_fault() {
        let f = FaultModel::default();
        for id in [
            MachineId::Summit,
            MachineId::PizDaint,
            MachineId::Perlmutter,
        ] {
            let m = Machine::get(id);
            assert_eq!(f.failure_probability(&m, 4096), 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let f = FaultModel::default();
        let m = Machine::get(MachineId::Ookami);
        for seed in 0..50 {
            assert_eq!(f.sample(&m, 16, seed), f.sample(&m, 16, seed));
        }
    }
}
