//! The discrete-event engine: one Octo-Tiger time step on a modelled
//! cluster.
//!
//! Every node runs the paper's phase sequence — bottom-up gravity pass,
//! per-level multipole (M2L) interactions, top-down pass, then three RK
//! stages each preceded by a ghost-layer exchange.  Ghost exchanges are
//! *synchronizing* phases: a node cannot finish one until its six logical
//! neighbours' boundary data has arrived, so late nodes (deterministic
//! per-node jitter models OS noise and load imbalance) delay their
//! neighbours — the mechanism that turns per-node imbalance into the
//! scaling losses the paper's figures show.  Starvation during the gravity
//! traversal appears exactly as in Section VII-C: high tree levels have
//! fewer multipole kernels than cores, and only task splitting
//! (`multipole_tasks` > 1) keeps the cores fed.

use crate::calibrate::KernelCosts;
use crate::machine::Machine;
use crate::workload::{RunOptions, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of simulating one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// Wall-clock of the step (max over nodes), seconds.
    pub step_time_s: f64,
    /// The paper's throughput metric.
    pub cells_per_second: f64,
    /// Same, in sub-grid updates per second.
    pub subgrids_per_second: f64,
    /// Per-node compute time folded into the step (no sync effects).
    pub compute_time_s: f64,
    /// Per-node ghost-exchange handling + wire time.
    pub comm_time_s: f64,
    /// Per-node gravity-phase time (including starvation stalls).
    pub gravity_time_s: f64,
    /// compute / wall fraction (≤ 1; falls when starved or sync-bound).
    pub parallel_efficiency: f64,
    /// DES events processed.
    pub events_processed: u64,
}

#[derive(Debug, Clone, Copy)]
struct Phase {
    /// Local work duration, seconds (before jitter).
    duration: f64,
    /// Whether this phase requires neighbour data (ghost exchange).
    sync: bool,
    /// One-way wire time of the neighbour messages for a sync phase.
    wire: f64,
    /// Category for the breakdown metrics.
    kind: PhaseKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PhaseKind {
    Gravity,
    Comm,
    Hydro,
}

/// Deterministic per-(node, phase) jitter in `[-1, 1]` — cheap integer
/// hash; models OS noise / load imbalance without a stateful RNG.
fn jitter(node: usize, phase: usize) -> f64 {
    let mut x = (node as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (phase as u64).wrapping_mul(0xD1B54A32D192ED03);
    x ^= x >> 31;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    (x % 2_000_003) as f64 / 1_000_001.5 - 1.0
}

/// Build the per-node phase list for one step.
fn build_phases(
    machine: &Machine,
    nodes: usize,
    workload: &Workload,
    opts: &RunOptions,
    costs: &KernelCosts,
) -> Vec<Phase> {
    let s = workload.subgrids_per_node(nodes);
    let cells_node = s * (crate::workload::SUBGRID_N as f64).powi(3);
    let simd = costs.simd_factor(opts.sve);
    let gpu_rate = machine.gpu_node_gflops(s) * 1e9;
    let cpu_rate = machine.cpu_node_gflops(machine.cores_per_node, simd, opts.boost) * 1e9;
    let use_gpu = machine.gpus_per_node > 0;
    let node_rate = if use_gpu { gpu_rate } else { cpu_rate };
    let core_rate = cpu_rate / machine.cores_per_node as f64;
    let cores = machine.cores_per_node as f64;

    let mut phases = Vec::new();

    // One task per sub-grid is Octo-Tiger's default granularity: a node
    // with fewer sub-grids than cores cannot keep all cores busy — the
    // "ran out of sufficient work per core" saturation of Figure 6.  Work
    // stealing needs ~2x over-decomposition to balance, so effective
    // utilization drops once S falls under two tasks per core.
    let bulk_rate = if use_gpu {
        node_rate
    } else {
        core_rate * cores.min((s / 2.0).max(1.0))
    };

    // ---- Gravity phase 1: bottom-up moments. -------------------------
    phases.push(Phase {
        duration: cells_node * 500.0 / bulk_rate,
        sync: false,
        wire: 0.0,
        kind: PhaseKind::Gravity,
    });

    // ---- Gravity phase 2: per-level M2L (the multipole kernel). ------
    // Tree levels from 2 (8² nodes, anything coarser is negligible) down
    // to the leaf level.
    let leaf_level = workload.tree_levels;
    for level in 2..=leaf_level {
        let tree_nodes_at_level = 8f64.powi(level as i32).min(workload.subgrids);
        let per_node = tree_nodes_at_level / nodes as f64;
        if per_node * costs.m2l_list_len < 1.0 {
            continue; // level has essentially no work anywhere
        }
        let work = per_node * costs.m2l_list_len * costs.m2l_flops_per_interaction;
        let duration = if use_gpu {
            work / node_rate + costs.tree_level_sync_s
        } else {
            // Starvation model: the kernels at this level can occupy at
            // most `kernels × tasks_per_kernel` cores (Section VII-C).
            let parallelism = (per_node.ceil() * opts.multipole_tasks as f64).max(1.0);
            let used_cores = cores.min(parallelism);
            let spawn =
                per_node.ceil() * opts.multipole_tasks as f64 * costs.task_spawn_overhead_s / cores;
            work / (core_rate * used_cores) + spawn + costs.tree_level_sync_s
        };
        phases.push(Phase {
            duration,
            sync: false,
            wire: 0.0,
            kind: PhaseKind::Gravity,
        });
    }

    // ---- Gravity phase 3: top-down evaluation. ------------------------
    phases.push(Phase {
        duration: cells_node * 500.0 / bulk_rate,
        sync: false,
        wire: 0.0,
        kind: PhaseKind::Gravity,
    });

    // ---- Three RK stages: ghost exchange + hydro compute. -------------
    let links = s * costs.links_per_subgrid;
    let rf = workload.remote_link_fraction(nodes);
    let remote = links * rf;
    let local = links - remote;
    let host_cost = if opts.comm_opt {
        local * costs.direct_access_overhead_s
            + remote * (costs.action_overhead_s + costs.comm_opt_remote_extra_s)
    } else {
        links * costs.action_overhead_s
    } / cores;
    let wire = machine.interconnect.transfer_time(
        remote.ceil() as u64,
        (remote * costs.ghost_bytes_per_link) as u64,
        machine.cores_per_node,
    );
    // Hydro granularity model (the hydro-side mirror of the multipole
    // starvation model above): grouping `hydro_leaves_per_task` leaves
    // into one task saves spawn overhead but leaves cores idle once fewer
    // than ~2 tasks per core remain.  Expressed as a delta against the
    // default one-leaf-per-task grouping so `hydro_leaves_per_task == 1`
    // reproduces the original phase durations bit for bit.
    let hydro_stage_cost = |leaves_per_task: f64| -> f64 {
        let tasks = (s / leaves_per_task).max(1.0);
        let used = cores.min((tasks / 2.0).max(1.0));
        cells_node * costs.hydro_flops_per_cell_stage / (core_rate * used)
            + tasks * costs.task_spawn_overhead_s / cores
    };
    let lpt = opts.hydro_leaves_per_task.max(1) as f64;
    let hydro_delta = if use_gpu {
        0.0
    } else {
        hydro_stage_cost(lpt) - hydro_stage_cost(1.0)
    };
    for stage in 0..3 {
        phases.push(Phase {
            duration: host_cost,
            sync: true,
            wire,
            kind: PhaseKind::Comm,
        });
        // Fold the gravity near-field (P2P) into the first stage.
        let extra = if stage == 0 {
            cells_node * costs.p2p_flops_per_cell / bulk_rate
        } else {
            0.0
        };
        phases.push(Phase {
            duration: cells_node * costs.hydro_flops_per_cell_stage / bulk_rate
                + extra
                + hydro_delta,
            sync: false,
            wire: 0.0,
            kind: PhaseKind::Hydro,
        });
    }
    phases
}

/// Logical 3-D node grid (near-cubic factorization) for the neighbour
/// topology.
fn node_grid(nodes: usize) -> [usize; 3] {
    let mut best = [nodes, 1, 1];
    let mut best_surface = usize::MAX;
    let mut x = 1;
    while x * x * x <= nodes {
        if nodes.is_multiple_of(x) {
            let rest = nodes / x;
            let mut y = x;
            while y * y <= rest {
                if rest.is_multiple_of(y) {
                    let z = rest / y;
                    let surface = x * y + y * z + x * z;
                    if surface < best_surface {
                        best_surface = surface;
                        best = [x, y, z];
                    }
                }
                y += 1;
            }
        }
        x += 1;
    }
    best
}

fn neighbors(idx: usize, grid: [usize; 3]) -> Vec<usize> {
    let [nx, ny, nz] = grid;
    let x = idx % nx;
    let y = (idx / nx) % ny;
    let z = idx / (nx * ny);
    let mut out = Vec::with_capacity(6);
    let mut push = |x: isize, y: isize, z: isize| {
        if x >= 0 && y >= 0 && z >= 0 && (x as usize) < nx && (y as usize) < ny && (z as usize) < nz
        {
            out.push(x as usize + nx * (y as usize + ny * z as usize));
        }
    };
    let (x, y, z) = (x as isize, y as isize, z as isize);
    push(x - 1, y, z);
    push(x + 1, y, z);
    push(x, y - 1, z);
    push(x, y + 1, z);
    push(x, y, z - 1);
    push(x, y, z + 1);
    out
}

#[derive(Debug, PartialEq)]
enum EventKind {
    /// A node's local work for its current phase finished.
    WorkDone { node: usize, phase: usize },
    /// Neighbour boundary data for a sync phase arrived.
    MsgArrive { node: usize, phase: usize },
}

struct Event {
    time: f64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are finite")
    }
}

struct NodeState {
    phase: usize,
    /// Local work of the current phase completed.
    work_done: bool,
    /// Whether this phase's local work has been scheduled yet (sync phases
    /// defer it until all neighbour data arrived — the unpack happens
    /// after arrival).
    work_scheduled: bool,
    /// Time the node entered its current phase.
    entered_at: f64,
    /// Messages still missing for the current (sync) phase.
    msgs_missing: usize,
    /// Messages that arrived early for future phases: msgs_early[p].
    early: Vec<usize>,
    finish_time: f64,
}

/// Simulate one Octo-Tiger step of `workload` on `nodes` nodes of
/// `machine` with the given options and cost table.
///
/// # Panics
/// Panics if `nodes == 0`.
pub fn simulate_step(
    machine: &Machine,
    nodes: usize,
    workload: &Workload,
    opts: &RunOptions,
    costs: &KernelCosts,
) -> StepResult {
    assert!(nodes > 0, "need at least one node");
    let phases = build_phases(machine, nodes, workload, opts, costs);
    let nphases = phases.len();
    let grid = node_grid(nodes);
    let nbrs: Vec<Vec<usize>> = (0..nodes).map(|i| neighbors(i, grid)).collect();

    let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut states: Vec<NodeState> = (0..nodes)
        .map(|_| NodeState {
            phase: 0,
            work_done: false,
            work_scheduled: true, // phase 0 work starts immediately
            entered_at: 0.0,
            msgs_missing: 0,
            early: vec![0; nphases + 1],
            finish_time: 0.0,
        })
        .collect();
    let mut events = 0u64;

    let dur = |node: usize, phase: usize| -> f64 {
        phases[phase].duration * (1.0 + 0.03 * jitter(node, phase))
    };

    // Kick off phase 0 everywhere (phase 0 is never a sync phase).
    for node in 0..nodes {
        states[node].msgs_missing = 0;
        queue.push(Reverse(Event {
            time: dur(node, 0),
            kind: EventKind::WorkDone { node, phase: 0 },
        }));
    }

    let mut finished_nodes = 0usize;
    let mut step_time = 0.0f64;

    while let Some(Reverse(Event { time, kind })) = queue.pop() {
        events += 1;
        match kind {
            EventKind::WorkDone { node, phase } => {
                let st = &mut states[node];
                debug_assert_eq!(st.phase, phase);
                st.work_done = true;
                advance(
                    node,
                    time,
                    &mut states,
                    &phases,
                    &nbrs,
                    &mut queue,
                    &dur,
                    &mut finished_nodes,
                    &mut step_time,
                );
            }
            EventKind::MsgArrive { node, phase } => {
                let st = &mut states[node];
                if st.phase == phase {
                    debug_assert!(phases[phase].sync);
                    st.msgs_missing = st.msgs_missing.saturating_sub(1);
                    if st.msgs_missing == 0 && !st.work_scheduled {
                        // All data present: the unpack/handling work can run.
                        st.work_scheduled = true;
                        queue.push(Reverse(Event {
                            time: time.max(st.entered_at) + dur(node, phase),
                            kind: EventKind::WorkDone { node, phase },
                        }));
                    }
                } else {
                    // Arrived before the node reached this phase.
                    st.early[phase] += 1;
                }
            }
        }
    }
    debug_assert_eq!(finished_nodes, nodes, "all nodes must finish");

    let compute_time: f64 = phases
        .iter()
        .filter(|p| p.kind == PhaseKind::Hydro)
        .map(|p| p.duration)
        .sum();
    let gravity_time: f64 = phases
        .iter()
        .filter(|p| p.kind == PhaseKind::Gravity)
        .map(|p| p.duration)
        .sum();
    let comm_time: f64 = phases
        .iter()
        .filter(|p| p.kind == PhaseKind::Comm)
        .map(|p| p.duration + p.wire)
        .sum();

    StepResult {
        step_time_s: step_time,
        cells_per_second: workload.cells / step_time,
        subgrids_per_second: workload.subgrids / step_time,
        compute_time_s: compute_time,
        comm_time_s: comm_time,
        gravity_time_s: gravity_time,
        parallel_efficiency: ((compute_time + gravity_time + comm_time) / step_time).min(1.0),
        events_processed: events,
    }
}

/// Node `node` completed phase `st.phase` at `time`: move to the next
/// phase, sending boundary data for it if it is a sync phase.
#[allow(clippy::too_many_arguments)]
fn advance(
    node: usize,
    time: f64,
    states: &mut [NodeState],
    phases: &[Phase],
    nbrs: &[Vec<usize>],
    queue: &mut BinaryHeap<Reverse<Event>>,
    dur: &dyn Fn(usize, usize) -> f64,
    finished_nodes: &mut usize,
    step_time: &mut f64,
) {
    let next = states[node].phase + 1;
    if next >= phases.len() {
        states[node].finish_time = time;
        *finished_nodes += 1;
        if time > *step_time {
            *step_time = time;
        }
        return;
    }
    // Entering `next`.
    if phases[next].sync {
        // Send boundary data to the neighbours for their phase `next`.
        for &nb in &nbrs[node] {
            queue.push(Reverse(Event {
                time: time + phases[next].wire,
                kind: EventKind::MsgArrive {
                    node: nb,
                    phase: next,
                },
            }));
        }
    }
    let st = &mut states[node];
    st.phase = next;
    st.work_done = false;
    st.entered_at = time;
    if phases[next].sync {
        st.msgs_missing = nbrs[node].len().saturating_sub(st.early[next]);
        if st.msgs_missing > 0 {
            // Defer the handling work until the data is here.
            st.work_scheduled = false;
            return;
        }
    } else {
        st.msgs_missing = 0;
    }
    st.work_scheduled = true;
    queue.push(Reverse(Event {
        time: time + dur(node, next),
        kind: EventKind::WorkDone { node, phase: next },
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineId;

    fn fugaku() -> Machine {
        Machine::get(MachineId::Fugaku)
    }

    fn defaults() -> (RunOptions, KernelCosts) {
        (RunOptions::default(), KernelCosts::default())
    }

    #[test]
    fn node_grid_factorization() {
        assert_eq!(node_grid(1), [1, 1, 1]);
        assert_eq!(node_grid(8), [2, 2, 2]);
        assert_eq!(node_grid(64), [4, 4, 4]);
        let g = node_grid(128);
        assert_eq!(g.iter().product::<usize>(), 128);
        // Near-cubic: no dimension dominates absurdly.
        assert!(*g.iter().max().unwrap() <= 8);
    }

    #[test]
    fn neighbors_in_interior_and_corner() {
        let grid = [4, 4, 4];
        // Corner node 0 has 3 neighbours.
        assert_eq!(neighbors(0, grid).len(), 3);
        // Interior node has 6.
        let interior = 1 + 4 * (1 + 4);
        assert_eq!(neighbors(interior, grid).len(), 6);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        for node in 0..100 {
            for phase in 0..20 {
                let j = jitter(node, phase);
                assert!((-1.0..=1.0).contains(&j));
                assert_eq!(j, jitter(node, phase));
            }
        }
    }

    #[test]
    fn single_node_step_is_compute_bound() {
        let (opts, costs) = defaults();
        let w = Workload::rotating_star(5);
        let r = simulate_step(&fugaku(), 1, &w, &opts, &costs);
        assert!(r.step_time_s > 0.0);
        assert!(r.cells_per_second > 0.0);
        assert!(r.parallel_efficiency > 0.8, "1 node should be efficient");
    }

    #[test]
    fn strong_scaling_increases_throughput_then_saturates() {
        // The Figure 6 shape: level 5 scales to ~64 nodes then flattens.
        let (opts, costs) = defaults();
        let w = Workload::rotating_star(5);
        let rate = |nodes| simulate_step(&fugaku(), nodes, &w, &opts, &costs).cells_per_second;
        let r1 = rate(1);
        let r16 = rate(16);
        let r64 = rate(64);
        let r256 = rate(256);
        assert!(
            r16 > 6.0 * r1,
            "16 nodes should speed up well: {}",
            r16 / r1
        );
        assert!(r64 > r16, "still scaling at 64");
        // Saturation: going 64 -> 256 gains much less than 4x.
        assert!(r256 < 2.5 * r64, "should saturate: {}", r256 / r64);
    }

    #[test]
    fn sve_improves_throughput() {
        let (mut opts, costs) = defaults();
        let w = Workload::rotating_star(5);
        opts.sve = true;
        let on = simulate_step(&fugaku(), 8, &w, &opts, &costs).cells_per_second;
        opts.sve = false;
        let off = simulate_step(&fugaku(), 8, &w, &opts, &costs).cells_per_second;
        assert!(on > 1.3 * off, "SVE should clearly help: {}", on / off);
    }

    #[test]
    fn multipole_splitting_helps_at_scale_not_at_one_node() {
        // Figure 9's crossover.
        let (mut opts, costs) = defaults();
        let w = Workload::rotating_star(5);
        opts.multipole_tasks = 1;
        let one_node_off = simulate_step(&fugaku(), 1, &w, &opts, &costs).step_time_s;
        let scale_off = simulate_step(&fugaku(), 128, &w, &opts, &costs).step_time_s;
        opts.multipole_tasks = 16;
        let one_node_on = simulate_step(&fugaku(), 1, &w, &opts, &costs).step_time_s;
        let scale_on = simulate_step(&fugaku(), 128, &w, &opts, &costs).step_time_s;
        assert!(
            one_node_on >= one_node_off * 0.999,
            "splitting must not help a busy single node: {one_node_on} vs {one_node_off}"
        );
        assert!(
            scale_on < scale_off,
            "splitting must help at 128 nodes: {scale_on} vs {scale_off}"
        );
    }

    #[test]
    fn comm_opt_break_even_behaviour() {
        // Figure 8: better at low node counts, slightly worse at scale.
        let (mut opts, costs) = defaults();
        let w = Workload::rotating_star(5);
        let diff = |nodes: usize, opts: &mut RunOptions| {
            opts.comm_opt = true;
            let on = simulate_step(&fugaku(), nodes, &w, opts, &costs).step_time_s;
            opts.comm_opt = false;
            let off = simulate_step(&fugaku(), nodes, &w, opts, &costs).step_time_s;
            off - on // positive = optimization wins
        };
        assert!(diff(2, &mut opts) > 0.0, "comm opt should win at 2 nodes");
        assert!(diff(4, &mut opts) > 0.0, "comm opt should win at 4 nodes");
        assert!(
            diff(128, &mut opts) < 0.0,
            "comm opt should slightly lose at 128 nodes"
        );
    }

    #[test]
    fn all_nodes_finish_and_events_are_bounded() {
        let (opts, costs) = defaults();
        let w = Workload::rotating_star(6);
        let r = simulate_step(&fugaku(), 512, &w, &opts, &costs);
        assert!(r.events_processed > 512);
        assert!(r.events_processed < 2_000_000);
        assert!(r.step_time_s.is_finite());
    }

    #[test]
    fn hydro_grouping_is_unimodal_with_a_clear_worst_end() {
        // The hydro-side granularity tradeoff: grouping a few leaves per
        // task shaves spawn overhead, grouping too many starves cores.
        let (opts0, costs) = defaults();
        let m = Machine::get(MachineId::Ookami);
        let w = Workload::rotating_star(5);
        let hydro = |lpt: usize| {
            let mut o = opts0;
            o.hydro_leaves_per_task = lpt;
            simulate_step(&m, 8, &w, &o, &costs).compute_time_s
        };
        let ladder = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];
        let times: Vec<f64> = ladder.iter().map(|&l| hydro(l)).collect();
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = times.iter().cloned().fold(0.0, f64::max);
        assert!(hydro(4) < hydro(1), "small groups amortize spawn overhead");
        assert!(worst > 1.5 * best, "starved end is clearly worst");
        // Unimodal: strictly falls to the minimum, never falls after it.
        let arg = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        for i in 1..times.len() {
            if i <= arg {
                assert!(times[i] < times[i - 1], "falling before the min");
            } else {
                assert!(times[i] >= times[i - 1], "never falls after the min");
            }
        }
    }

    #[test]
    fn hydro_grouping_leaves_other_phases_untouched() {
        // The knob models a hydro-only tradeoff: gravity and comm phase
        // durations must be bit-identical for every grouping, and a GPU
        // machine (which never task-splits on the host) ignores it fully.
        let (opts0, costs) = defaults();
        let w = Workload::rotating_star(5);
        let base = simulate_step(&fugaku(), 8, &w, &opts0, &costs);
        for lpt in [2usize, 64, 512] {
            let mut o = opts0;
            o.hydro_leaves_per_task = lpt;
            let r = simulate_step(&fugaku(), 8, &w, &o, &costs);
            assert_eq!(r.gravity_time_s, base.gravity_time_s);
            assert_eq!(r.comm_time_s, base.comm_time_s);
        }
        let gpu = Machine::get(MachineId::Perlmutter);
        let gbase = simulate_step(&gpu, 4, &Workload::dwd(), &opts0, &costs);
        let mut o = opts0;
        o.hydro_leaves_per_task = 512;
        assert_eq!(simulate_step(&gpu, 4, &Workload::dwd(), &o, &costs), gbase);
    }

    #[test]
    fn multipole_ladder_is_unimodal_at_scale() {
        // The Figure 9 tradeoff as seen by the online tuner at 512 nodes:
        // unimodal in `multipole_tasks` with >= 1.5x between the starved
        // single-task end and the optimum.
        let (opts0, costs) = defaults();
        let m = Machine::get(MachineId::Ookami);
        let w = Workload::rotating_star(5);
        let gravity = |mt: usize| {
            let mut o = opts0;
            o.multipole_tasks = mt;
            simulate_step(&m, 512, &w, &o, &costs).gravity_time_s
        };
        let ladder = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
        let times: Vec<f64> = ladder.iter().map(|&t| gravity(t)).collect();
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(times[0] > 1.5 * best, "one task per kernel starves cores");
        let arg = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        for i in 1..times.len() {
            if i <= arg {
                assert!(times[i] < times[i - 1], "falling before the min");
            } else {
                assert!(times[i] >= times[i - 1], "never falls after the min");
            }
        }
    }

    #[test]
    fn gpu_machine_uses_gpu_rate() {
        let (opts, costs) = defaults();
        let w = Workload::dwd();
        let gpu = simulate_step(&Machine::get(MachineId::Perlmutter), 4, &w, &opts, &costs);
        let cpu = simulate_step(
            &Machine::get(MachineId::PerlmutterCpuOnly),
            4,
            &w,
            &opts,
            &costs,
        );
        assert!(
            gpu.cells_per_second > 10.0 * cpu.cells_per_second,
            "GPUs must dominate: {} vs {}",
            gpu.cells_per_second,
            cpu.cells_per_second
        );
    }
}
