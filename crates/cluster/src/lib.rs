//! # cluster — machine models and the discrete-event scaling simulator
//!
//! The paper's evaluation runs Octo-Tiger on five machines we do not have:
//! Riken's Supercomputer Fugaku (A64FX, Tofu-D), Stony Brook's Ookami
//! (A64FX, InfiniBand), ORNL's Summit (Power9 + 6×V100), CSCS's Piz Daint
//! (Xeon + 1×P100) and NERSC's Perlmutter (EPYC + 4×A100).  Per the
//! DESIGN.md substitution rule, this crate models those machines and
//! replays Octo-Tiger's per-step task structure on them with a
//! discrete-event simulation:
//!
//! * [`machine`] — per-machine node descriptions (cores, clocks including
//!   Fugaku's 1.8/2.2 GHz boost mode, memory capacities, GPUs,
//!   interconnects) with literature-derived constants.
//! * [`network`] — interconnect latency/bandwidth/message-overhead models
//!   (Tofu-D vs InfiniBand is part of the paper's Fugaku-vs-Ookami
//!   discussion).
//! * [`workload`] — the Octo-Tiger step model: sub-grid counts of the
//!   paper's scenarios, ghost-exchange volumes, FMM tree-phase structure,
//!   and the option toggles (SVE, communication optimization, multipole
//!   task splitting, boost mode).
//! * [`des`] — the discrete-event engine: per-node phase state machines
//!   with neighbour message dependencies and deterministic jitter.
//! * [`power`] — a PowerAPI-style average-power model (Table II).
//! * [`calibrate`] — kernel cost constants tying the model to kernel
//!   timings measured on the host by the bench crate.
//! * [`campaign`] — sweep helpers that produce the exact series each
//!   paper figure plots, as serializable records.
//! * [`fault`] — the stochastic hang/deadlock injection mimicking the
//!   paper's observed Fujitsu-MPI hangs at large node counts and the rare
//!   Ookami deadlocks.

pub mod calibrate;
pub mod campaign;
pub mod des;
pub mod fault;
pub mod machine;
pub mod network;
pub mod paper;
pub mod power;
pub mod workload;

pub use calibrate::KernelCosts;
pub use campaign::{pow2_range, speedups, sweep, FigurePoint};
pub use des::{simulate_step, StepResult};
pub use fault::{FaultModel, FaultOutcome};
pub use machine::{Machine, MachineId, ALL_MACHINES};
pub use network::Interconnect;
pub use paper::{table2_comparisons, table2_geometric_mean_ratio, TABLE2_PAPER};
pub use power::PowerModel;
pub use workload::{RunOptions, Workload};
