//! PowerAPI-style average power model (paper Table II).
//!
//! The paper reports average power per run measured with PowerAPI on
//! Fugaku; the numbers work out to roughly 60–110 W per node depending on
//! utilization.  An A64FX node idles near 60 W and draws up to ~120 W
//! under full vector load, so the model is: idle floor + per-core active
//! power scaled by utilization, plus a vector-unit adder when SVE is hot,
//! plus a NIC/TofuD share.

use crate::machine::Machine;
use serde::{Deserialize, Serialize};

/// Node power coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle power per node, watts.
    pub idle_w: f64,
    /// Active power per busy core, watts.
    pub active_w_per_core: f64,
    /// Extra per busy core when the vector units are saturated, watts.
    pub simd_w_per_core: f64,
    /// Interconnect interface share per node, watts.
    pub nic_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // A64FX-calibrated: idle ~58 W, full SVE load ~115 W per node.
        PowerModel {
            idle_w: 58.0,
            active_w_per_core: 0.75,
            simd_w_per_core: 0.45,
            nic_w: 4.0,
        }
    }
}

impl PowerModel {
    /// Average power of one node given core-utilization in `[0, 1]` and
    /// whether SVE is active.
    pub fn node_watts(&self, machine: &Machine, utilization: f64, sve: bool) -> f64 {
        let util = utilization.clamp(0.0, 1.0);
        let cores = machine.cores_per_node as f64;
        let simd = if sve { self.simd_w_per_core } else { 0.0 };
        self.idle_w + cores * util * (self.active_w_per_core + simd) + self.nic_w
    }

    /// Average power of the whole allocation (Table II's quantity).
    pub fn total_watts(&self, machine: &Machine, nodes: usize, utilization: f64, sve: bool) -> f64 {
        nodes as f64 * self.node_watts(machine, utilization, sve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineId;

    #[test]
    fn fugaku_node_power_in_table_ii_band() {
        // Table II works out to ~60-110 W per node.
        let m = Machine::get(MachineId::Fugaku);
        let p = PowerModel::default();
        let idle = p.node_watts(&m, 0.0, false);
        let busy = p.node_watts(&m, 1.0, true);
        assert!((55.0..75.0).contains(&idle), "idle {idle}");
        assert!((95.0..125.0).contains(&busy), "busy {busy}");
    }

    #[test]
    fn power_monotone_in_utilization_and_simd() {
        let m = Machine::get(MachineId::Fugaku);
        let p = PowerModel::default();
        assert!(p.node_watts(&m, 0.9, false) > p.node_watts(&m, 0.4, false));
        assert!(p.node_watts(&m, 0.9, true) > p.node_watts(&m, 0.9, false));
    }

    #[test]
    fn utilization_is_clamped() {
        let m = Machine::get(MachineId::Fugaku);
        let p = PowerModel::default();
        assert_eq!(p.node_watts(&m, 2.0, true), p.node_watts(&m, 1.0, true));
        assert_eq!(p.node_watts(&m, -1.0, true), p.node_watts(&m, 0.0, true));
    }

    #[test]
    fn total_scales_with_nodes() {
        let m = Machine::get(MachineId::Fugaku);
        let p = PowerModel::default();
        let one = p.total_watts(&m, 1, 0.8, true);
        let many = p.total_watts(&m, 1024, 0.8, true);
        assert!((many / one - 1024.0).abs() < 1e-9);
    }
}
