//! Machine descriptions of the paper's five systems.
//!
//! Constants come from the public system specifications; the *sustained*
//! rates are calibrated so the cross-machine ratios reproduce the paper's
//! observed ordering (Figures 4 and 5): Summit (6 GPUs/node) fastest per
//! node, Perlmutter-GPU far above Perlmutter-CPU ("a drop of two orders of
//! magnitude"), Fugaku close to Piz Daint and slightly below
//! Perlmutter-CPU, all per-node at comparable cell counts.

use crate::network::Interconnect;
use serde::{Deserialize, Serialize};

/// Which machine a description models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineId {
    /// Riken Supercomputer Fugaku (A64FX, Tofu-D).
    Fugaku,
    /// Stony Brook Ookami (A64FX, InfiniBand).
    Ookami,
    /// ORNL Summit (Power9 + 6× V100).
    Summit,
    /// CSCS Piz Daint XC50 (Xeon + 1× P100).
    PizDaint,
    /// NERSC Perlmutter phase 1 (EPYC + 4× A100).
    Perlmutter,
    /// Perlmutter with GPUs disabled (the paper's CPU-only comparison).
    PerlmutterCpuOnly,
}

/// One compute node's modelled resources plus the interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    pub id: MachineId,
    pub name: &'static str,
    /// Cores available to the runtime per node.
    pub cores_per_node: usize,
    /// Default CPU clock, GHz.
    pub clock_ghz: f64,
    /// Boost clock, if the machine has a boost mode (Fugaku: 2.2 GHz,
    /// limited to small node counts — paper Section VI-A).
    pub boost_clock_ghz: Option<f64>,
    /// Memory usable by the application per node, GB.
    pub memory_gb: f64,
    /// GPUs per node (0 for CPU-only machines).
    pub gpus_per_node: usize,
    /// Sustained double-precision rate of one GPU on Octo-Tiger-like
    /// kernels, GFLOP/s.
    pub gpu_gflops: f64,
    /// Sustained per-core scalar rate at the default clock, GFLOP/s.
    /// (SVE/AVX vectorization multiplies this by the workload's measured
    /// SIMD speedup.)
    pub core_gflops_scalar: f64,
    /// Node memory bandwidth, GB/s — the roofline that makes Fugaku's
    /// boost mode marginal at full-node occupancy (Figure 3).
    pub mem_bw_gbs: f64,
    /// Interconnect model.
    pub interconnect: Interconnect,
    /// Largest node count the paper exercised on this machine.
    pub max_nodes: usize,
}

impl Machine {
    /// Look up a machine description.
    pub fn get(id: MachineId) -> Machine {
        match id {
            MachineId::Fugaku => Machine {
                id,
                name: "Supercomputer Fugaku",
                cores_per_node: 48,
                clock_ghz: 1.8,
                boost_clock_ghz: Some(2.2),
                memory_gb: 28.0, // paper: usable HBM2 per node
                gpus_per_node: 0,
                gpu_gflops: 0.0,
                core_gflops_scalar: 0.9,
                mem_bw_gbs: 1024.0,
                interconnect: Interconnect::tofu_d(),
                max_nodes: 1024,
            },
            MachineId::Ookami => Machine {
                id,
                name: "Ookami",
                cores_per_node: 48,
                clock_ghz: 1.8,
                boost_clock_ghz: None,
                memory_gb: 32.0,
                gpus_per_node: 0,
                gpu_gflops: 0.0,
                core_gflops_scalar: 0.9,
                mem_bw_gbs: 1024.0,
                interconnect: Interconnect::infiniband_hdr(),
                max_nodes: 128,
            },
            MachineId::Summit => Machine {
                id,
                name: "Summit",
                cores_per_node: 42,
                clock_ghz: 3.07,
                boost_clock_ghz: None,
                memory_gb: 512.0,
                gpus_per_node: 6,
                gpu_gflops: 450.0, // sustained V100 on Octo-Tiger kernels
                core_gflops_scalar: 2.0,
                mem_bw_gbs: 340.0,
                interconnect: Interconnect::infiniband_edr_dual(),
                max_nodes: 128,
            },
            MachineId::PizDaint => Machine {
                id,
                name: "Piz Daint",
                cores_per_node: 12,
                clock_ghz: 2.6,
                boost_clock_ghz: None,
                memory_gb: 64.0,
                gpus_per_node: 1,
                gpu_gflops: 250.0, // sustained P100
                core_gflops_scalar: 2.2,
                mem_bw_gbs: 68.0,
                interconnect: Interconnect::aries(),
                max_nodes: 512,
            },
            MachineId::Perlmutter => Machine {
                id,
                name: "Perlmutter (4x A100)",
                cores_per_node: 64,
                clock_ghz: 2.45,
                boost_clock_ghz: None,
                memory_gb: 256.0,
                gpus_per_node: 4,
                gpu_gflops: 1600.0, // sustained A100
                core_gflops_scalar: 2.1,
                mem_bw_gbs: 204.8,
                interconnect: Interconnect::slingshot10(),
                max_nodes: 128,
            },
            MachineId::PerlmutterCpuOnly => Machine {
                gpus_per_node: 0,
                gpu_gflops: 0.0,
                name: "Perlmutter (CPU only)",
                id,
                ..Machine::get(MachineId::Perlmutter)
            },
        }
    }

    /// Effective clock in GHz for a run (`boost` selects Fugaku's
    /// 2.2 GHz mode when available).
    pub fn effective_clock(&self, boost: bool) -> f64 {
        if boost {
            self.boost_clock_ghz.unwrap_or(self.clock_ghz)
        } else {
            self.clock_ghz
        }
    }

    /// Node-level sustained CPU rate in GFLOP/s, given how many cores are
    /// active, the SIMD speedup factor of the workload's kernels, and the
    /// clock mode.
    ///
    /// The A64FX's *scalar* pipeline is memory-latency bound (shallow
    /// out-of-order window, HBM latency), so a higher clock barely moves
    /// scalar throughput — this is why the paper's Figure 3 sees only a
    /// marginal gain from Fugaku's 2.2 GHz boost mode.  Vectorized (SVE)
    /// code is flop-bound and scales with the clock.  The node memory
    /// bandwidth remains a hard upper roofline.
    pub fn cpu_node_gflops(&self, cores: usize, simd_speedup: f64, boost: bool) -> f64 {
        let cores = cores.min(self.cores_per_node);
        let clock_scale = self.effective_clock(boost) / self.clock_ghz;
        // Scalar code: weak clock sensitivity; vector code: full.
        let clock_exponent = if simd_speedup > 1.0 { 1.0 } else { 0.25 };
        let flop_rate = cores as f64
            * self.core_gflops_scalar
            * simd_speedup
            * clock_scale.powf(clock_exponent);
        let mem_rate = self.mem_bw_gbs; // ~1 flop/byte roofline
        flop_rate.min(mem_rate)
    }

    /// Node-level sustained GPU rate in GFLOP/s, derated by an
    /// aggregation-efficiency factor (GPUs need large aggregated kernels;
    /// starved GPUs lose efficiency — the work-aggregation story of the
    /// paper's reference [9]).
    pub fn gpu_node_gflops(&self, subgrids_per_node: f64) -> f64 {
        if self.gpus_per_node == 0 {
            return 0.0;
        }
        let per_gpu = subgrids_per_node / self.gpus_per_node as f64;
        // Saturation form: ~50% efficiency at 64 sub-grids per GPU.
        let efficiency = per_gpu / (per_gpu + 64.0);
        self.gpus_per_node as f64 * self.gpu_gflops * efficiency
    }

    /// Smallest node count whose aggregate memory holds `footprint_gb`.
    pub fn min_nodes_for(&self, footprint_gb: f64) -> usize {
        (footprint_gb / self.memory_gb).ceil().max(1.0) as usize
    }
}

/// All machine ids the paper evaluates.
pub const ALL_MACHINES: [MachineId; 6] = [
    MachineId::Fugaku,
    MachineId::Ookami,
    MachineId::Summit,
    MachineId::PizDaint,
    MachineId::Perlmutter,
    MachineId::PerlmutterCpuOnly,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fugaku_matches_paper_description() {
        let m = Machine::get(MachineId::Fugaku);
        assert_eq!(m.cores_per_node, 48);
        assert_eq!(m.clock_ghz, 1.8);
        assert_eq!(m.boost_clock_ghz, Some(2.2));
        assert_eq!(m.memory_gb, 28.0);
        assert_eq!(m.gpus_per_node, 0);
    }

    #[test]
    fn boost_mode_only_on_fugaku() {
        for id in ALL_MACHINES {
            let m = Machine::get(id);
            if id == MachineId::Fugaku {
                assert!(m.boost_clock_ghz.is_some());
                assert!(m.effective_clock(true) > m.effective_clock(false));
            } else {
                assert_eq!(m.effective_clock(true), m.effective_clock(false));
            }
        }
    }

    #[test]
    fn boost_gain_is_marginal_for_scalar_code() {
        // Figure 3 ran the pre-SVE Octo-Tiger: scalar A64FX code barely
        // benefits from the 2.2 GHz boost.
        let m = Machine::get(MachineId::Fugaku);
        let scalar_gain = m.cpu_node_gflops(48, 1.0, true) / m.cpu_node_gflops(48, 1.0, false);
        assert!(
            scalar_gain > 1.0 && scalar_gain < 1.08,
            "scalar boost gain should be marginal: {scalar_gain}"
        );
        let vector_gain = m.cpu_node_gflops(48, 2.5, true) / m.cpu_node_gflops(48, 2.5, false);
        assert!(vector_gain > scalar_gain, "vector code clock-scales");
    }

    #[test]
    fn per_node_ordering_matches_figure_4_and_5() {
        // Node rates at generous per-node workload.
        let sub = 4096.0;
        let summit = Machine::get(MachineId::Summit).gpu_node_gflops(sub);
        let daint = Machine::get(MachineId::PizDaint).gpu_node_gflops(sub);
        let perl_gpu = Machine::get(MachineId::Perlmutter).gpu_node_gflops(sub);
        let perl_cpu = Machine::get(MachineId::PerlmutterCpuOnly).cpu_node_gflops(64, 1.0, false);
        let fugaku = Machine::get(MachineId::Fugaku).cpu_node_gflops(48, 2.5, false);
        assert!(summit > daint, "Summit per node beats Piz Daint");
        assert!(perl_gpu > 25.0 * perl_cpu, "GPU >> CPU on Perlmutter");
        assert!(
            fugaku < perl_cpu,
            "Fugaku slightly below Perlmutter CPU-only"
        );
        assert!(
            fugaku > 0.03 * daint,
            "Fugaku within 1.5 orders of Piz Daint"
        );
    }

    #[test]
    fn gpu_efficiency_falls_when_starved() {
        let m = Machine::get(MachineId::Perlmutter);
        assert!(m.gpu_node_gflops(10_000.0) > 3.0 * m.gpu_node_gflops(64.0));
        assert_eq!(
            Machine::get(MachineId::PerlmutterCpuOnly).gpu_node_gflops(1e6),
            0.0
        );
    }

    #[test]
    fn memory_feasibility_start_nodes_match_figure_4() {
        // The paper: v1309 fits on 1 Summit node (512 GB), 4 Piz Daint
        // nodes, 16 Fugaku nodes (with power-of-two rounding).
        let footprint = crate::workload::V1309_FOOTPRINT_GB;
        assert_eq!(Machine::get(MachineId::Summit).min_nodes_for(footprint), 1);
        assert_eq!(
            Machine::get(MachineId::PizDaint).min_nodes_for(footprint),
            4
        );
        let fugaku_min = Machine::get(MachineId::Fugaku).min_nodes_for(footprint);
        assert!(
            fugaku_min > 8 && fugaku_min <= 16,
            "fugaku min {fugaku_min}"
        );
    }
}
