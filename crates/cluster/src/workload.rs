//! The Octo-Tiger step workload model: the paper's scenarios as sub-grid
//! counts, tree depths and memory footprints, plus the run-time toggles.

use serde::{Deserialize, Serialize};

/// Modelled memory footprint of the paper's v1309 production scenario.
///
/// Chosen so the minimum feasible node counts match Section VI-B: fits one
/// Summit node (512 GB), four Piz Daint nodes (64 GB each), sixteen Fugaku
/// nodes (28 GB each, after power-of-two rounding).
pub const V1309_FOOTPRINT_GB: f64 = 250.0;

/// Modelled footprint of the DWD level-12 scenario — the paper chose the
/// refinement "such that it fits into the 28 GB of one Supercomputer
/// Fugaku node".
pub const DWD_FOOTPRINT_GB: f64 = 26.0;

/// Cells per sub-grid edge (the paper's N).
pub const SUBGRID_N: usize = 8;

/// One scenario's step workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Display name matching the paper's figures.
    pub name: String,
    /// Number of leaf sub-grids.
    pub subgrids: f64,
    /// Total cells (`subgrids × N³`).
    pub cells: f64,
    /// Depth of the octree (levels below the root).
    pub tree_levels: u32,
    /// Memory footprint in GB (decides the smallest feasible node count).
    pub footprint_gb: f64,
}

impl Workload {
    /// The rotating-star scaling problem at the paper's levels
    /// (Section VI-D: level 5 = 2.5 M cells, 6 = 14.2 M, 7 = 88.6 M).
    ///
    /// # Panics
    /// Panics for levels other than 5–7.
    pub fn rotating_star(level: u8) -> Workload {
        let cells: f64 = match level {
            5 => 2.5e6,
            6 => 14.2e6,
            7 => 88.6e6,
            _ => panic!("the paper runs the rotating star at levels 5-7"),
        };
        let subgrids = cells / (SUBGRID_N as f64).powi(3);
        Workload {
            name: format!("Rotating star level {level}"),
            subgrids,
            cells,
            tree_levels: u32::from(level) + 2, // AMR levels above the base
            // Scales with cells; level 7 ≈ 4.4 GB... the real footprint is
            // dominated by solver buffers: ~50 B/cell of state plus ~10×
            // scratch.
            footprint_gb: cells * 500.0 / 1e9,
        }
    }

    /// The v1309 contact-binary production scenario (Section VI-B,
    /// "17 million sub-grids" — we take the paper's number at face value).
    pub fn v1309() -> Workload {
        let subgrids = 17.0e6;
        Workload {
            name: "v1309".to_owned(),
            subgrids,
            cells: subgrids * (SUBGRID_N as f64).powi(3),
            tree_levels: 11,
            footprint_gb: V1309_FOOTPRINT_GB,
        }
    }

    /// The DWD level-12 scenario (Section VI-C: 5 150 720 sub-grids).
    pub fn dwd() -> Workload {
        let subgrids = 5_150_720.0;
        Workload {
            name: "DWD".to_owned(),
            subgrids,
            cells: subgrids * (SUBGRID_N as f64).powi(3),
            tree_levels: 12,
            footprint_gb: DWD_FOOTPRINT_GB,
        }
    }

    /// Sub-grids per node at a given node count.
    pub fn subgrids_per_node(&self, nodes: usize) -> f64 {
        self.subgrids / nodes as f64
    }

    /// Fraction of ghost links that cross node boundaries under a Morton
    /// partition into `nodes` parts: a surface-to-volume estimate
    /// `min(1, 2/S^{1/3})` with `S` sub-grids per node (matches the
    /// measured `octree::partition::partition_stats` trend).
    pub fn remote_link_fraction(&self, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let s = self.subgrids_per_node(nodes).max(1.0);
        (2.0 / s.cbrt()).min(1.0)
    }
}

/// The paper's run-time switches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Explicit SVE vectorization (Figure 7).
    pub sve: bool,
    /// Fugaku boost mode, 2.2 GHz (Figure 3).
    pub boost: bool,
    /// Section VII-B communication optimization (Figure 8).
    pub comm_opt: bool,
    /// HPX tasks per multipole-kernel launch: 1 = OFF, 16 = ON (Figure 9).
    pub multipole_tasks: usize,
    /// Leaf sub-grids grouped into one hydro RHS task: 1 = Octo-Tiger's
    /// default one-task-per-sub-grid granularity.  Larger groups amortize
    /// task-spawn overhead but starve cores once fewer than ~2 tasks per
    /// core remain — the hydro-side mirror of `multipole_tasks`.
    pub hydro_leaves_per_task: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            sve: true,
            boost: false,
            comm_opt: true,
            multipole_tasks: 1,
            hydro_leaves_per_task: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotating_star_levels_match_paper_cell_counts() {
        assert_eq!(Workload::rotating_star(5).cells, 2.5e6);
        assert_eq!(Workload::rotating_star(6).cells, 14.2e6);
        assert_eq!(Workload::rotating_star(7).cells, 88.6e6);
    }

    #[test]
    #[should_panic(expected = "levels 5-7")]
    fn unknown_level_panics() {
        Workload::rotating_star(3);
    }

    #[test]
    fn dwd_subgrid_count_matches_paper() {
        assert_eq!(Workload::dwd().subgrids, 5_150_720.0);
        assert!(Workload::dwd().footprint_gb <= 28.0, "fits one Fugaku node");
    }

    #[test]
    fn remote_fraction_grows_with_nodes_and_caps_at_one() {
        let w = Workload::rotating_star(5);
        assert_eq!(w.remote_link_fraction(1), 0.0);
        let mut prev = 0.0;
        for nodes in [2, 8, 64, 256, 4096] {
            let f = w.remote_link_fraction(nodes);
            assert!(f >= prev, "monotone");
            assert!(f <= 1.0);
            prev = f;
        }
        // Extreme scale: everything is remote.
        assert_eq!(w.remote_link_fraction(100_000_000), 1.0);
    }

    #[test]
    fn subgrids_per_node() {
        let w = Workload::dwd();
        assert!((w.subgrids_per_node(128) - 40240.0).abs() < 1.0);
    }
}
