//! Kernel cost constants tying the cluster model to the real kernels.
//!
//! The absolute throughputs of the paper were measured on hardware we do
//! not have; what our reproduction must preserve are the *ratios* that
//! produce the figures' shapes.  The constants here are calibrated in two
//! ways: the per-cell flop counts follow from counting operations in our
//! actual `octotiger` kernels (the bench crate's criterion microbenchmarks
//! measure the same kernels on the host, and `bench/src/bin/calibration.rs`
//! prints the comparison), and the overhead constants are set so the
//! paper's documented crossovers land where the paper saw them
//! (communication-optimization break-even at 8 nodes, multipole-split
//! win appearing around 128 nodes).

use serde::{Deserialize, Serialize};

/// All tunable model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCosts {
    /// Hydro flops per cell per RK stage (reconstruction + HLL over three
    /// axes + sources; counted from `octotiger::hydro::kernels`).
    pub hydro_flops_per_cell_stage: f64,
    /// RK stages per step.
    pub stages_per_step: f64,
    /// Gravity near-field (P2P) flops per cell per step, amortized.
    pub p2p_flops_per_cell: f64,
    /// M2L flops per tree-node interaction (multipole × interaction-list
    /// entry, order-3 Cartesian expansions).
    pub m2l_flops_per_interaction: f64,
    /// Average interaction-list length per tree node.
    pub m2l_list_len: f64,
    /// SVE speedup of the compute kernels measured between the `W = 1` and
    /// `W = 8` instantiations (paper: "a factor of two and three for
    /// various parts of the code"; our criterion benches land in the same
    /// band).
    pub sve_speedup: f64,
    /// Average ghost payload per neighbour link, bytes (all 26 link
    /// classes averaged, 8 fields, N = 8, ghost width 2).
    pub ghost_bytes_per_link: f64,
    /// Neighbour links per sub-grid per exchange.
    pub links_per_subgrid: f64,
    /// Host cost of one HPX action invocation with buffer staging — the
    /// per-link cost the Section VII-B optimization removes.
    pub action_overhead_s: f64,
    /// Host cost of one direct-memory ghost access (promise/future
    /// notification + copy).
    pub direct_access_overhead_s: f64,
    /// Extra coordination cost the communication optimization adds on
    /// *remote* links (keeping local neighbours up-to-date adds bookkeeping
    /// to the remote path — the reason Figure 8 turns slightly negative
    /// past the break-even).
    pub comm_opt_remote_extra_s: f64,
    /// Cost of spawning one HPX task (the overhead that makes 16-way
    /// kernel splitting a *loss* on a single busy node, Figure 9).
    pub task_spawn_overhead_s: f64,
    /// Per-tree-level synchronization latency of the gravity traversal.
    pub tree_level_sync_s: f64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts {
            hydro_flops_per_cell_stage: 3_000.0,
            stages_per_step: 3.0,
            p2p_flops_per_cell: 12_000.0,
            m2l_flops_per_interaction: 40_000.0,
            m2l_list_len: 30.0,
            sve_speedup: 2.5,
            ghost_bytes_per_link: 2_500.0,
            links_per_subgrid: 26.0,
            action_overhead_s: 2.0e-6,
            direct_access_overhead_s: 0.5e-6,
            comm_opt_remote_extra_s: 4.5e-6,
            task_spawn_overhead_s: 0.6e-6,
            tree_level_sync_s: 15.0e-6,
        }
    }
}

impl KernelCosts {
    /// Total compute flops per cell per step (hydro + gravity near field).
    pub fn flops_per_cell_step(&self) -> f64 {
        self.hydro_flops_per_cell_stage * self.stages_per_step + self.p2p_flops_per_cell
    }

    /// Effective SIMD speedup factor for a run (`1.0` when SVE is off).
    pub fn simd_factor(&self, sve: bool) -> f64 {
        if sve {
            self.sve_speedup
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_sane() {
        let c = KernelCosts::default();
        assert!(c.flops_per_cell_step() > 10_000.0);
        assert!(c.flops_per_cell_step() < 100_000.0);
        assert!(c.sve_speedup >= 2.0 && c.sve_speedup <= 3.0, "paper: 2-3x");
        assert!(c.action_overhead_s > c.direct_access_overhead_s);
    }

    #[test]
    fn simd_factor_switch() {
        let c = KernelCosts::default();
        assert_eq!(c.simd_factor(false), 1.0);
        assert_eq!(c.simd_factor(true), c.sve_speedup);
    }

    #[test]
    fn comm_opt_constants_put_break_even_near_one_quarter_local() {
        // Break-even when local_links·(action−direct) = remote_links·extra;
        // with the defaults that happens around 69% local fraction, which
        // the Morton partition of the rotating-star L5 problem crosses
        // near 8 nodes (Figure 8).
        let c = KernelCosts::default();
        let saving = c.action_overhead_s - c.direct_access_overhead_s;
        let ratio = c.comm_opt_remote_extra_s / saving;
        let local_at_break_even = ratio / (1.0 + ratio);
        assert!(
            (0.6..0.85).contains(&local_at_break_even),
            "break-even local fraction {local_at_break_even}"
        );
    }
}
