//! Run-time selection between the scalar and SVE-width vector backends.
//!
//! The paper switches between scalar and SVE types at *compile* time and
//! builds the application twice.  Rust monomorphisation gives us both
//! instantiations in one binary, so the switch becomes a run-time enum that
//! the `octotiger` kernels dispatch on.  The observable behaviour is the
//! same: identical kernel source, two vector widths, directly comparable
//! timings (Figure 7 of the paper).

/// The SVE vector length of the Fujitsu A64FX, in bits.
///
/// SVE is length-agnostic in the ISA, but the A64FX implements 512-bit
/// vectors; the paper's SVE types are fixed to that width.
pub const SVE_VECTOR_BITS: usize = 512;

/// `f64` lanes in one A64FX SVE vector.
pub const SVE_LANES_F64: usize = SVE_VECTOR_BITS / 64;

/// `f32` lanes in one A64FX SVE vector.
pub const SVE_LANES_F32: usize = SVE_VECTOR_BITS / 32;

/// Which vector backend a kernel should be instantiated with.
///
/// Mirrors the paper's compile-time choice between scalar types and the
/// authors' `sve::experimental::simd` types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VectorMode {
    /// One lane per operation — the reference scalar build.
    Scalar,
    /// 512-bit explicit vectorization — the A64FX SVE build.
    #[default]
    Sve512,
}

impl VectorMode {
    /// Number of `f64` lanes processed per vector operation in this mode.
    #[inline]
    pub const fn lanes_f64(self) -> usize {
        match self {
            VectorMode::Scalar => 1,
            VectorMode::Sve512 => SVE_LANES_F64,
        }
    }

    /// Number of `f32` lanes processed per vector operation in this mode.
    #[inline]
    pub const fn lanes_f32(self) -> usize {
        match self {
            VectorMode::Scalar => 1,
            VectorMode::Sve512 => SVE_LANES_F32,
        }
    }

    /// Human-readable name matching the labels used in the paper's plots.
    pub const fn label(self) -> &'static str {
        match self {
            VectorMode::Scalar => "SIMD OFF (scalar)",
            VectorMode::Sve512 => "SIMD ON (SVE)",
        }
    }

    /// All modes, in the order the paper presents them.
    pub const fn all() -> [VectorMode; 2] {
        [VectorMode::Scalar, VectorMode::Sve512]
    }

    /// Parse the `OCTO_VECTOR_MODE` environment variable, if set.
    ///
    /// Recognised values (case-insensitive): `scalar` and `sve512`/`sve`.
    /// Anything else — including an unset variable — yields `None` so the
    /// caller falls back to the compiled-in default.  This is how CI runs
    /// the full test suite once per backend without rebuilding.
    pub fn from_env() -> Option<VectorMode> {
        let raw = std::env::var("OCTO_VECTOR_MODE").ok()?;
        match raw.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(VectorMode::Scalar),
            "sve512" | "sve" => Some(VectorMode::Sve512),
            _ => None,
        }
    }

    /// The mode simulation options should default to: the `OCTO_VECTOR_MODE`
    /// override when present, else [`VectorMode::default`] (SVE).
    pub fn env_default() -> VectorMode {
        VectorMode::from_env().unwrap_or_default()
    }
}

impl std::fmt::Display for VectorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts() {
        assert_eq!(VectorMode::Scalar.lanes_f64(), 1);
        assert_eq!(VectorMode::Sve512.lanes_f64(), 8);
        assert_eq!(VectorMode::Scalar.lanes_f32(), 1);
        assert_eq!(VectorMode::Sve512.lanes_f32(), 16);
    }

    #[test]
    fn default_is_sve() {
        assert_eq!(VectorMode::default(), VectorMode::Sve512);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(VectorMode::Scalar.label(), VectorMode::Sve512.label());
    }

    #[test]
    fn env_default_falls_back_to_default_when_unset() {
        // The test harness does not set OCTO_VECTOR_MODE; mutating the
        // process environment from a parallel test runner is racy, so only
        // the unset path is exercised here.  `from_env` parsing is covered
        // through `env_default` consistency instead.
        if std::env::var("OCTO_VECTOR_MODE").is_err() {
            assert_eq!(VectorMode::env_default(), VectorMode::default());
            assert_eq!(VectorMode::from_env(), None);
        } else {
            assert_eq!(VectorMode::env_default(), VectorMode::from_env().unwrap());
        }
    }
}
