//! The fixed-width vector type [`Simd<T, W>`] and its element trait.

use crate::mask::Mask;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// Scalar types usable as SIMD lanes.
///
/// Only the floating-point types needed by the Octo-Tiger kernels are
/// implemented; the trait exists so `Simd` stays open for integer lanes.
pub trait SimdElement:
    Copy
    + Default
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Smallest representable value (for max-reductions).
    const MIN_VALUE: Self;
    /// Largest representable value (for min-reductions).
    const MAX_VALUE: Self;

    /// `|self|`.
    fn abs_elem(self) -> Self;
    /// `sqrt(self)`.
    fn sqrt_elem(self) -> Self;
    /// Fused (or at least contracted) multiply-add `self * a + b`.
    fn mul_add_elem(self, a: Self, b: Self) -> Self;
    /// Lane-wise minimum with NaN-insensitive semantics of `f64::min`.
    fn min_elem(self, other: Self) -> Self;
    /// Lane-wise maximum.
    fn max_elem(self, other: Self) -> Self;
    /// Copy the sign of `sign` onto `self`.
    fn copysign_elem(self, sign: Self) -> Self;
}

macro_rules! impl_simd_element_float {
    ($t:ty) => {
        impl SimdElement for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const MIN_VALUE: Self = <$t>::NEG_INFINITY;
            const MAX_VALUE: Self = <$t>::INFINITY;

            #[inline(always)]
            fn abs_elem(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn sqrt_elem(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn mul_add_elem(self, a: Self, b: Self) -> Self {
                // Plain `a*b+c`: lets LLVM contract when profitable without
                // forcing a libm call per lane in debug builds.
                self * a + b
            }
            #[inline(always)]
            fn min_elem(self, other: Self) -> Self {
                if self < other {
                    self
                } else {
                    other
                }
            }
            #[inline(always)]
            fn max_elem(self, other: Self) -> Self {
                if self > other {
                    self
                } else {
                    other
                }
            }
            #[inline(always)]
            fn copysign_elem(self, sign: Self) -> Self {
                self.copysign(sign)
            }
        }
    };
}

impl_simd_element_float!(f64);
impl_simd_element_float!(f32);

/// A fixed-width SIMD vector of `W` lanes of `T`.
///
/// Modeled on `std::experimental::simd<T, simd_abi::fixed_size<W>>`, the
/// abstraction the paper uses for all its compute kernels.  Operations are
/// lane-wise; comparisons produce a [`Mask`]; `select` blends two vectors
/// under a mask.  With `W = 8` and `T = f64` this corresponds to one A64FX
/// SVE register.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct Simd<T, const W: usize>(pub(crate) [T; W]);

impl<T: SimdElement, const W: usize> Default for Simd<T, W> {
    fn default() -> Self {
        Self::splat(T::ZERO)
    }
}

impl<T: SimdElement, const W: usize> Simd<T, W> {
    /// Number of lanes.
    pub const LANES: usize = W;

    /// Broadcast `v` into every lane.
    #[inline(always)]
    pub fn splat(v: T) -> Self {
        Simd([v; W])
    }

    /// Build from an array of lane values.
    #[inline(always)]
    pub fn from_array(a: [T; W]) -> Self {
        Simd(a)
    }

    /// Return the lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [T; W] {
        self.0
    }

    /// Borrow the lanes as a slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.0
    }

    /// Load `W` consecutive elements starting at `slice[0]`.
    ///
    /// # Panics
    /// Panics if `slice.len() < W`.
    #[inline(always)]
    pub fn from_slice(slice: &[T]) -> Self {
        let mut out = [T::ZERO; W];
        out.copy_from_slice(&slice[..W]);
        Simd(out)
    }

    /// Store all lanes to the first `W` elements of `slice`.
    ///
    /// # Panics
    /// Panics if `slice.len() < W`.
    #[inline(always)]
    pub fn write_to_slice(self, slice: &mut [T]) {
        slice[..W].copy_from_slice(&self.0);
    }

    /// Load `min(W, slice.len())` lanes, filling the tail with `fill`.
    ///
    /// The paper's kernels handle sub-grid edges whose extent is not a
    /// multiple of the vector width with masked/partial loads; this is the
    /// equivalent.
    #[inline(always)]
    pub fn from_slice_padded(slice: &[T], fill: T) -> Self {
        let mut out = [fill; W];
        let n = W.min(slice.len());
        out[..n].copy_from_slice(&slice[..n]);
        Simd(out)
    }

    /// Store `min(W, slice.len())` lanes.
    #[inline(always)]
    pub fn write_to_slice_partial(self, slice: &mut [T]) {
        let n = W.min(slice.len());
        slice[..n].copy_from_slice(&self.0[..n]);
    }

    /// Gather lanes from `src` at positions `idx`.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    #[inline(always)]
    pub fn gather(src: &[T], idx: &[usize; W]) -> Self {
        let mut out = [T::ZERO; W];
        for l in 0..W {
            out[l] = src[idx[l]];
        }
        Simd(out)
    }

    /// Scatter lanes into `dst` at positions `idx`.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.  Duplicate indices write in
    /// lane order (the last lane wins), matching `std::experimental::simd`.
    #[inline(always)]
    pub fn scatter(self, dst: &mut [T], idx: &[usize; W]) {
        for l in 0..W {
            dst[idx[l]] = self.0[l];
        }
    }

    /// Gather up to `W` lanes from `src` at positions `idx`, padding the
    /// tail lanes with `fill` when `idx.len() < W`.
    ///
    /// This is the predicated SVE gather: the FMM kernels walk flat source
    /// index lists whose length is rarely a multiple of the width, so the
    /// final chunk gathers through a shortened index slice.
    ///
    /// # Panics
    /// Panics if any index within `idx` is out of bounds for `src`.
    #[inline(always)]
    pub fn gather_or(src: &[T], idx: &[usize], fill: T) -> Self {
        let mut out = [fill; W];
        let n = W.min(idx.len());
        for l in 0..n {
            out[l] = src[idx[l]];
        }
        Simd(out)
    }

    /// Masked load: lane `l` is `slice[l]` where `mask[l]` is set, `fill`
    /// elsewhere.  Inactive lanes never touch memory, so `slice` only needs
    /// to cover the active lanes (SVE `ld1` under a predicate).
    ///
    /// # Panics
    /// Panics if an active lane indexes past `slice.len()`.
    #[inline(always)]
    pub fn load_select(slice: &[T], mask: Mask<W>, fill: T) -> Self {
        let mut out = [fill; W];
        for l in 0..W {
            if mask.test(l) {
                out[l] = slice[l];
            }
        }
        Simd(out)
    }

    /// Masked store: write lane `l` to `slice[l]` only where `mask[l]` is
    /// set.  Inactive lanes leave memory untouched (SVE `st1` under a
    /// predicate).
    ///
    /// # Panics
    /// Panics if an active lane indexes past `slice.len()`.
    #[inline(always)]
    pub fn store_select(self, slice: &mut [T], mask: Mask<W>) {
        for l in 0..W {
            if mask.test(l) {
                slice[l] = self.0[l];
            }
        }
    }

    /// Load the chunk of `s` at `off` with `lanes` active lanes: full
    /// chunks (`lanes == W`) take the unmasked contiguous load, the final
    /// remainder chunk pays the whilelt-style masked load with `fill` in
    /// the inactive lanes.
    ///
    /// This is the canonical `ChunkedLanes` loop body load.  It is a named
    /// `#[inline(always)]` method rather than a per-kernel closure on
    /// purpose: closures cannot carry `inline(always)`, and LLVM refuses to
    /// inline a plain-feature closure into a `#[target_feature]` caller
    /// (see [`crate::isa`]), which would leave an out-of-line scalar load
    /// in the middle of every vectorized chunk.
    ///
    /// # Panics
    /// Panics if `off + lanes > s.len()` or `lanes > W`.
    #[inline(always)]
    pub fn load_chunk(s: &[T], off: usize, lanes: usize, fill: T) -> Self {
        if lanes == W {
            Self::from_slice(&s[off..])
        } else {
            Self::load_select(&s[off..off + lanes], Mask::first_n(lanes), fill)
        }
    }

    /// Lane-wise fused multiply-add: `self * a + b`.
    #[inline(always)]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        let mut out = [T::ZERO; W];
        for l in 0..W {
            out[l] = self.0[l].mul_add_elem(a.0[l], b.0[l]);
        }
        Simd(out)
    }

    /// Lane-wise square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        let mut out = [T::ZERO; W];
        for l in 0..W {
            out[l] = self.0[l].sqrt_elem();
        }
        Simd(out)
    }

    /// Lane-wise absolute value.
    #[inline(always)]
    pub fn abs(self) -> Self {
        let mut out = [T::ZERO; W];
        for l in 0..W {
            out[l] = self.0[l].abs_elem();
        }
        Simd(out)
    }

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn simd_min(self, other: Self) -> Self {
        let mut out = [T::ZERO; W];
        for l in 0..W {
            out[l] = self.0[l].min_elem(other.0[l]);
        }
        Simd(out)
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn simd_max(self, other: Self) -> Self {
        let mut out = [T::ZERO; W];
        for l in 0..W {
            out[l] = self.0[l].max_elem(other.0[l]);
        }
        Simd(out)
    }

    /// Lane-wise clamp into `[lo, hi]`.
    #[inline(always)]
    pub fn simd_clamp(self, lo: Self, hi: Self) -> Self {
        self.simd_max(lo).simd_min(hi)
    }

    /// Lane-wise copysign.
    #[inline(always)]
    pub fn copysign(self, sign: Self) -> Self {
        let mut out = [T::ZERO; W];
        for l in 0..W {
            out[l] = self.0[l].copysign_elem(sign.0[l]);
        }
        Simd(out)
    }

    /// Horizontal sum of all lanes.
    #[inline(always)]
    pub fn reduce_sum(self) -> T {
        let mut acc = T::ZERO;
        for l in 0..W {
            acc = acc + self.0[l];
        }
        acc
    }

    /// Horizontal product of all lanes.
    #[inline(always)]
    pub fn reduce_product(self) -> T {
        let mut acc = T::ONE;
        for l in 0..W {
            acc = acc * self.0[l];
        }
        acc
    }

    /// Smallest lane value.
    #[inline(always)]
    pub fn reduce_min(self) -> T {
        let mut acc = T::MAX_VALUE;
        for l in 0..W {
            acc = acc.min_elem(self.0[l]);
        }
        acc
    }

    /// Largest lane value.
    #[inline(always)]
    pub fn reduce_max(self) -> T {
        let mut acc = T::MIN_VALUE;
        for l in 0..W {
            acc = acc.max_elem(self.0[l]);
        }
        acc
    }

    /// Lane-wise `self < other`.
    #[inline(always)]
    pub fn simd_lt(self, other: Self) -> Mask<W> {
        let mut m = [false; W];
        for l in 0..W {
            m[l] = self.0[l] < other.0[l];
        }
        Mask::from_array(m)
    }

    /// Lane-wise `self <= other`.
    #[inline(always)]
    pub fn simd_le(self, other: Self) -> Mask<W> {
        let mut m = [false; W];
        for l in 0..W {
            m[l] = self.0[l] <= other.0[l];
        }
        Mask::from_array(m)
    }

    /// Lane-wise `self > other`.
    #[inline(always)]
    pub fn simd_gt(self, other: Self) -> Mask<W> {
        other.simd_lt(self)
    }

    /// Lane-wise `self >= other`.
    #[inline(always)]
    pub fn simd_ge(self, other: Self) -> Mask<W> {
        other.simd_le(self)
    }

    /// Lane-wise equality.
    #[inline(always)]
    pub fn simd_eq(self, other: Self) -> Mask<W> {
        let mut m = [false; W];
        for l in 0..W {
            m[l] = self.0[l] == other.0[l];
        }
        Mask::from_array(m)
    }

    /// Blend: lane `l` of the result is `if mask[l] { t[l] } else { f[l] }`.
    #[inline(always)]
    pub fn select(mask: Mask<W>, t: Self, f: Self) -> Self {
        let mut out = [T::ZERO; W];
        for l in 0..W {
            out[l] = if mask.test(l) { t.0[l] } else { f.0[l] };
        }
        Simd(out)
    }

    /// Apply `f` to every lane (escape hatch for transcendental functions).
    #[inline(always)]
    pub fn map(self, mut f: impl FnMut(T) -> T) -> Self {
        let mut out = [T::ZERO; W];
        for l in 0..W {
            out[l] = f(self.0[l]);
        }
        Simd(out)
    }
}

impl<T: SimdElement, const W: usize> Index<usize> for Simd<T, W> {
    type Output = T;
    #[inline(always)]
    fn index(&self, i: usize) -> &T {
        &self.0[i]
    }
}

impl<T: SimdElement, const W: usize> IndexMut<usize> for Simd<T, W> {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.0[i]
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident) => {
        impl<T: SimdElement, const W: usize> $trait for Simd<T, W> {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: Self) -> Self {
                let mut out = [T::ZERO; W];
                for l in 0..W {
                    out[l] = self.0[l].$method(rhs.0[l]);
                }
                Simd(out)
            }
        }

        impl<T: SimdElement, const W: usize> $trait<T> for Simd<T, W> {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: T) -> Self {
                self.$method(Simd::splat(rhs))
            }
        }

        impl<T: SimdElement, const W: usize> $assign_trait for Simd<T, W> {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: Self) {
                *self = (*self).$method(rhs);
            }
        }

        impl<T: SimdElement, const W: usize> $assign_trait<T> for Simd<T, W> {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: T) {
                *self = (*self).$method(Simd::splat(rhs));
            }
        }
    };
}

impl_binop!(Add, add, AddAssign, add_assign);
impl_binop!(Sub, sub, SubAssign, sub_assign);
impl_binop!(Mul, mul, MulAssign, mul_assign);
impl_binop!(Div, div, DivAssign, div_assign);

impl<T: SimdElement, const W: usize> Neg for Simd<T, W> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        let mut out = [T::ZERO; W];
        for l in 0..W {
            out[l] = -self.0[l];
        }
        Simd(out)
    }
}

impl<T: SimdElement, const W: usize> std::iter::Sum for Simd<T, W> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::splat(T::ZERO), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V = Simd<f64, 8>;

    #[test]
    fn splat_and_extract() {
        let v = V::splat(3.5);
        for l in 0..V::LANES {
            assert_eq!(v[l], 3.5);
        }
    }

    #[test]
    fn arithmetic_lanewise() {
        let a = V::from_array([1., 2., 3., 4., 5., 6., 7., 8.]);
        let b = V::splat(2.0);
        assert_eq!((a + b)[0], 3.0);
        assert_eq!((a - b)[7], 6.0);
        assert_eq!((a * b)[3], 8.0);
        assert_eq!((a / b)[1], 1.0);
        assert_eq!((-a)[2], -3.0);
    }

    #[test]
    fn scalar_rhs_operators() {
        let a = V::splat(10.0);
        assert_eq!((a + 1.0)[0], 11.0);
        assert_eq!((a * 0.5)[5], 5.0);
        let mut c = a;
        c -= 4.0;
        assert_eq!(c[3], 6.0);
    }

    #[test]
    fn mul_add_matches_scalar() {
        let a = V::from_array([1., 2., 3., 4., 5., 6., 7., 8.]);
        let r = a.mul_add(V::splat(2.0), V::splat(1.0));
        for l in 0..8 {
            assert_eq!(r[l], a[l] * 2.0 + 1.0);
        }
    }

    #[test]
    fn sqrt_abs() {
        let v = Simd::<f64, 4>::from_array([4.0, 9.0, 16.0, 25.0]);
        assert_eq!(v.sqrt().to_array(), [2.0, 3.0, 4.0, 5.0]);
        let w = Simd::<f64, 4>::from_array([-1.0, 2.0, -3.0, 0.0]);
        assert_eq!(w.abs().to_array(), [1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn min_max_clamp() {
        let a = Simd::<f64, 4>::from_array([1., 5., -2., 8.]);
        let b = Simd::<f64, 4>::splat(3.0);
        assert_eq!(a.simd_min(b).to_array(), [1., 3., -2., 3.]);
        assert_eq!(a.simd_max(b).to_array(), [3., 5., 3., 8.]);
        let c = a.simd_clamp(Simd::splat(0.0), Simd::splat(4.0));
        assert_eq!(c.to_array(), [1., 4., 0., 4.]);
    }

    #[test]
    fn reductions() {
        let a = V::from_array([1., 2., 3., 4., 5., 6., 7., 8.]);
        assert_eq!(a.reduce_sum(), 36.0);
        assert_eq!(a.reduce_min(), 1.0);
        assert_eq!(a.reduce_max(), 8.0);
        let p = Simd::<f64, 3>::from_array([2., 3., 4.]);
        assert_eq!(p.reduce_product(), 24.0);
    }

    #[test]
    fn comparisons_and_select() {
        let a = Simd::<f64, 4>::from_array([1., 5., 3., 7.]);
        let b = Simd::<f64, 4>::splat(4.0);
        let m = a.simd_lt(b);
        assert_eq!(m.to_array(), [true, false, true, false]);
        let r = Simd::select(m, Simd::splat(1.0), Simd::splat(0.0));
        assert_eq!(r.to_array(), [1., 0., 1., 0.]);
        assert_eq!(a.simd_ge(b).to_array(), [false, true, false, true]);
        assert_eq!(a.simd_eq(a).count_set(), 4);
    }

    #[test]
    fn slice_roundtrip() {
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let v = V::from_slice(&data[4..]);
        assert_eq!(v[0], 4.0);
        let mut out = vec![0.0; 8];
        v.write_to_slice(&mut out);
        assert_eq!(out, &data[4..12]);
    }

    #[test]
    fn padded_load_and_partial_store() {
        let data = [1.0, 2.0, 3.0];
        let v = Simd::<f64, 8>::from_slice_padded(&data, -1.0);
        assert_eq!(v.to_array(), [1., 2., 3., -1., -1., -1., -1., -1.]);
        let mut out = [0.0; 3];
        v.write_to_slice_partial(&mut out);
        assert_eq!(out, [1., 2., 3.]);
    }

    #[test]
    fn gather_scatter() {
        let src = [10.0, 20.0, 30.0, 40.0];
        let v = Simd::<f64, 4>::gather(&src, &[3, 2, 1, 0]);
        assert_eq!(v.to_array(), [40., 30., 20., 10.]);
        let mut dst = [0.0; 4];
        v.scatter(&mut dst, &[0, 1, 2, 3]);
        assert_eq!(dst, [40., 30., 20., 10.]);
    }

    #[test]
    fn copysign_lanes() {
        let mag = Simd::<f64, 4>::from_array([1., 2., 3., 4.]);
        let sgn = Simd::<f64, 4>::from_array([-1., 1., -0.5, 0.5]);
        assert_eq!(mag.copysign(sgn).to_array(), [-1., 2., -3., 4.]);
    }

    #[test]
    fn scalar_width_one_behaves_like_scalar() {
        let a = Simd::<f64, 1>::splat(2.0);
        let b = Simd::<f64, 1>::splat(3.0);
        assert_eq!((a * b + a).reduce_sum(), 8.0);
    }

    #[test]
    fn sum_iterator() {
        let vs = [V::splat(1.0), V::splat(2.0), V::splat(3.0)];
        let s: V = vs.into_iter().sum();
        assert_eq!(s.to_array(), [6.0; 8]);
    }

    #[test]
    fn gather_or_pads_short_index_lists() {
        let src: Vec<f64> = (0..20).map(|i| i as f64 * 10.0).collect();
        // Every remainder length 1..=7 pads the tail with the fill value.
        for n in 1..=7usize {
            let idx: Vec<usize> = (0..n).map(|i| 2 * i + 1).collect();
            let v = Simd::<f64, 8>::gather_or(&src, &idx, -5.0);
            for l in 0..8 {
                if l < n {
                    assert_eq!(v[l], src[idx[l]], "lane {l} of {n}");
                } else {
                    assert_eq!(v[l], -5.0, "pad lane {l} of {n}");
                }
            }
        }
        // A full-width index list ignores the fill entirely.
        let idx: Vec<usize> = (0..8).collect();
        let v = Simd::<f64, 8>::gather_or(&src, &idx, f64::NAN);
        assert_eq!(v.to_array(), [0., 10., 20., 30., 40., 50., 60., 70.]);
        // Longer-than-W index lists use only the first W entries.
        let idx: Vec<usize> = (0..12).collect();
        let v = Simd::<f64, 8>::gather_or(&src, &idx, f64::NAN);
        assert_eq!(v[7], 70.0);
    }

    #[test]
    fn load_select_every_remainder_length() {
        let data: Vec<f64> = (0..8).map(|i| (i + 1) as f64).collect();
        for n in 1..=7usize {
            let m = Mask::<8>::first_n(n);
            // Slice exactly n long: inactive lanes must not read past it.
            let v = Simd::<f64, 8>::load_select(&data[..n], m, 0.25);
            for l in 0..8 {
                if l < n {
                    assert_eq!(v[l], data[l], "active lane {l} at n={n}");
                } else {
                    assert_eq!(v[l], 0.25, "fill lane {l} at n={n}");
                }
            }
        }
    }

    #[test]
    fn store_select_every_remainder_length() {
        let v = Simd::<f64, 8>::from_array([1., 2., 3., 4., 5., 6., 7., 8.]);
        for n in 1..=7usize {
            let m = Mask::<8>::first_n(n);
            // Buffer exactly n long: inactive lanes must not write past it.
            let mut out = vec![-9.0; n];
            v.store_select(&mut out, m);
            for (l, &x) in out.iter().enumerate() {
                assert_eq!(x, (l + 1) as f64, "lane {l} at n={n}");
            }
        }
        // Inactive lanes leave existing contents untouched.
        let mut buf = [0.0; 8];
        v.store_select(&mut buf, Mask::<8>::first_n(3));
        assert_eq!(buf, [1., 2., 3., 0., 0., 0., 0., 0.]);
    }

    #[test]
    fn load_store_select_all_true_and_all_false() {
        let data = [7.0; 8];
        let none = Simd::<f64, 8>::load_select(&data, Mask::splat(false), 1.5);
        assert_eq!(none.to_array(), [1.5; 8]);
        let all = Simd::<f64, 8>::load_select(&data, Mask::splat(true), 1.5);
        assert_eq!(all.to_array(), [7.0; 8]);

        let mut out = [2.0; 8];
        all.store_select(&mut out, Mask::splat(false));
        assert_eq!(out, [2.0; 8]);
        all.store_select(&mut out, Mask::splat(true));
        assert_eq!(out, [7.0; 8]);

        // All-false masks never touch memory, so even an empty slice is fine.
        let empty: [f64; 0] = [];
        let v = Simd::<f64, 8>::load_select(&empty, Mask::splat(false), 3.0);
        assert_eq!(v.to_array(), [3.0; 8]);
    }

    #[test]
    fn load_select_width_one() {
        let data = [42.0];
        let v = Simd::<f64, 1>::load_select(&data, Mask::<1>::first_n(1), 0.0);
        assert_eq!(v[0], 42.0);
        let w = Simd::<f64, 1>::load_select(&[], Mask::<1>::first_n(0), -1.0);
        assert_eq!(w[0], -1.0);
    }
}
