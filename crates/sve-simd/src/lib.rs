//! # sve-simd — explicit SIMD vector types in the style of `std::experimental::simd`
//!
//! The paper ("Simulating Stellar Merger using HPX/Kokkos on A64FX on
//! Supercomputer Fugaku", IPPS 2023) relies on *explicit vectorization with
//! types*: every hot compute kernel in Octo-Tiger is written once against a
//! `std::experimental::simd`-compatible vector type, and the concrete type —
//! scalar, AVX512, or the authors' SVE types for A64FX — is chosen at compile
//! time.  Running the application twice, once with scalar types and once with
//! the 512-bit SVE types, is exactly how the paper measures its Figure 7
//! vectorization speedup.
//!
//! This crate reproduces that design point in Rust:
//!
//! * [`Simd<T, W>`] is a const-generic, fixed-width vector of `W` lanes.
//!   All arithmetic is written as straight-line loops over a `[T; W]` array,
//!   which LLVM reliably compiles to packed SIMD instructions for the widths
//!   used here.
//! * [`ScalarF64`] (`W = 1`) plays the role of the scalar build, and
//!   [`SveF64`] (`W = 8`, i.e. 512 bit of `f64` — the A64FX SVE vector
//!   length) plays the role of the SVE build.
//! * [`VectorMode`] is the run-time analogue of the paper's compile-time
//!   switch: kernels in the `octotiger` crate are monomorphised for both
//!   widths and dispatched on a `VectorMode` value, so a single binary can
//!   run "scalar" and "SVE" configurations back to back like the paper does
//!   across two builds.
//!
//! The API follows `std::experimental::simd` naming where practical:
//! `splat`, element-wise operators, `simd_min`/`simd_max`, comparison
//! operators returning [`Mask`]s, `select`, and horizontal reductions.

pub mod backend;
pub mod isa;
pub mod mask;
pub mod simd;
pub mod slice;

pub use backend::{VectorMode, SVE_LANES_F32, SVE_LANES_F64, SVE_VECTOR_BITS};
pub use isa::{wide_isa, WideIsa};
pub use mask::Mask;
pub use simd::{Simd, SimdElement};
pub use slice::{for_each_simd, map_simd, zip_map_simd, ChunkedLanes};

/// Scalar (1-lane) double-precision vector: the paper's "no SVE" build.
pub type ScalarF64 = Simd<f64, 1>;
/// 512-bit (8-lane) double-precision vector: the A64FX SVE vector width.
pub type SveF64 = Simd<f64, 8>;
/// Scalar (1-lane) single-precision vector.
pub type ScalarF32 = Simd<f32, 1>;
/// 512-bit (16-lane) single-precision vector.
pub type SveF32 = Simd<f32, 16>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_aliases_have_expected_widths() {
        assert_eq!(ScalarF64::LANES, 1);
        assert_eq!(SveF64::LANES, 8);
        assert_eq!(ScalarF32::LANES, 1);
        assert_eq!(SveF32::LANES, 16);
    }

    #[test]
    fn sve_f64_is_512_bits() {
        assert_eq!(SveF64::LANES * 64, SVE_VECTOR_BITS);
        assert_eq!(SveF32::LANES * 32, SVE_VECTOR_BITS);
    }
}
