//! Helpers for running width-generic kernels over slices.
//!
//! Octo-Tiger's Kokkos kernels iterate over sub-grid cell arrays in strides
//! of the vector width, with a masked tail.  These helpers encapsulate that
//! traversal so the `octotiger` kernels contain only the physics.

use crate::simd::{Simd, SimdElement};

/// Iterator over `(offset, lanes_in_chunk)` pairs covering `len` elements in
/// strides of `W`, with a final partial chunk when `W` does not divide `len`.
#[derive(Debug, Clone)]
pub struct ChunkedLanes<const W: usize> {
    len: usize,
    pos: usize,
}

impl<const W: usize> ChunkedLanes<W> {
    /// Cover `len` elements.
    pub fn new(len: usize) -> Self {
        assert!(W > 0, "vector width must be non-zero");
        ChunkedLanes { len, pos: 0 }
    }
}

impl<const W: usize> Iterator for ChunkedLanes<W> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.pos >= self.len {
            return None;
        }
        let off = self.pos;
        let lanes = W.min(self.len - off);
        self.pos += lanes;
        Some((off, lanes))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.pos;
        let n = rem.div_ceil(W);
        (n, Some(n))
    }
}

impl<const W: usize> ExactSizeIterator for ChunkedLanes<W> {}

/// Apply an in-place vector kernel to every `W`-wide chunk of `data`.
///
/// The tail (when `W ∤ data.len()`) is processed with a padded load and a
/// partial store, mirroring SVE's predicated loop tails.
#[inline(always)]
pub fn for_each_simd<T: SimdElement, const W: usize>(
    data: &mut [T],
    mut kernel: impl FnMut(Simd<T, W>) -> Simd<T, W>,
) {
    let len = data.len();
    for (off, lanes) in ChunkedLanes::<W>::new(len) {
        if lanes == W {
            let v = Simd::<T, W>::from_slice(&data[off..]);
            kernel(v).write_to_slice(&mut data[off..]);
        } else {
            let v = Simd::<T, W>::from_slice_padded(&data[off..], T::ZERO);
            kernel(v).write_to_slice_partial(&mut data[off..]);
        }
    }
}

/// Map `src` through a vector kernel into `dst` (same length).
///
/// # Panics
/// Panics if `src.len() != dst.len()`.
#[inline(always)]
pub fn map_simd<T: SimdElement, const W: usize>(
    src: &[T],
    dst: &mut [T],
    mut kernel: impl FnMut(Simd<T, W>) -> Simd<T, W>,
) {
    assert_eq!(src.len(), dst.len(), "map_simd length mismatch");
    for (off, lanes) in ChunkedLanes::<W>::new(src.len()) {
        if lanes == W {
            let v = Simd::<T, W>::from_slice(&src[off..]);
            kernel(v).write_to_slice(&mut dst[off..]);
        } else {
            let v = Simd::<T, W>::from_slice_padded(&src[off..], T::ZERO);
            kernel(v).write_to_slice_partial(&mut dst[off..]);
        }
    }
}

/// Combine two equal-length sources into `dst` with a binary vector kernel.
///
/// # Panics
/// Panics if the three slices disagree in length.
#[inline(always)]
pub fn zip_map_simd<T: SimdElement, const W: usize>(
    a: &[T],
    b: &[T],
    dst: &mut [T],
    mut kernel: impl FnMut(Simd<T, W>, Simd<T, W>) -> Simd<T, W>,
) {
    assert_eq!(a.len(), b.len(), "zip_map_simd length mismatch (a vs b)");
    assert_eq!(
        a.len(),
        dst.len(),
        "zip_map_simd length mismatch (a vs dst)"
    );
    for (off, lanes) in ChunkedLanes::<W>::new(a.len()) {
        if lanes == W {
            let va = Simd::<T, W>::from_slice(&a[off..]);
            let vb = Simd::<T, W>::from_slice(&b[off..]);
            kernel(va, vb).write_to_slice(&mut dst[off..]);
        } else {
            let va = Simd::<T, W>::from_slice_padded(&a[off..], T::ZERO);
            let vb = Simd::<T, W>::from_slice_padded(&b[off..], T::ZERO);
            kernel(va, vb).write_to_slice_partial(&mut dst[off..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_lanes_exact_division() {
        let chunks: Vec<_> = ChunkedLanes::<4>::new(8).collect();
        assert_eq!(chunks, vec![(0, 4), (4, 4)]);
    }

    #[test]
    fn chunked_lanes_with_tail() {
        let chunks: Vec<_> = ChunkedLanes::<4>::new(10).collect();
        assert_eq!(chunks, vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(ChunkedLanes::<4>::new(10).len(), 3);
    }

    #[test]
    fn chunked_lanes_empty() {
        assert_eq!(ChunkedLanes::<8>::new(0).count(), 0);
    }

    #[test]
    fn for_each_simd_squares_with_tail() {
        let mut data: Vec<f64> = (0..11).map(|i| i as f64).collect();
        for_each_simd::<f64, 4>(&mut data, |v| v * v);
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, (i * i) as f64);
        }
    }

    #[test]
    fn map_simd_matches_scalar_loop() {
        let src: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        let mut dst = vec![0.0; 13];
        map_simd::<f64, 8>(&src, &mut dst, |v| v + Simd::splat(1.0));
        for i in 0..13 {
            assert_eq!(dst[i], src[i] + 1.0);
        }
    }

    #[test]
    fn zip_map_simd_adds() {
        let a: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..9).map(|i| (i * 10) as f64).collect();
        let mut dst = vec![0.0; 9];
        zip_map_simd::<f64, 4>(&a, &b, &mut dst, |x, y| x + y);
        for i in 0..9 {
            assert_eq!(dst[i], a[i] + b[i]);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn map_simd_rejects_mismatched_lengths() {
        let src = [1.0f64; 4];
        let mut dst = [0.0f64; 5];
        map_simd::<f64, 4>(&src, &mut dst, |v| v);
    }
}
