//! Lane masks produced by SIMD comparisons, in the style of
//! `std::experimental::simd_mask`.

use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A boolean per lane; the result type of `Simd::simd_lt` and friends and
/// the selector for `Simd::select`.
///
/// SVE is a predicated ISA: essentially every A64FX vector instruction takes
/// a predicate register.  Masks are therefore first-class in the paper's SVE
/// types, and they are first-class here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct Mask<const W: usize>([bool; W]);

impl<const W: usize> Mask<W> {
    /// Number of lanes.
    pub const LANES: usize = W;

    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: bool) -> Self {
        Mask([v; W])
    }

    /// Build from an array of lane booleans.
    #[inline(always)]
    pub fn from_array(a: [bool; W]) -> Self {
        Mask(a)
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [bool; W] {
        self.0
    }

    /// Value of lane `l`.
    ///
    /// # Panics
    /// Panics if `l >= W`.
    #[inline(always)]
    pub fn test(self, l: usize) -> bool {
        self.0[l]
    }

    /// Set lane `l` to `v`.
    #[inline(always)]
    pub fn set(&mut self, l: usize, v: bool) {
        self.0[l] = v;
    }

    /// `true` if any lane is set (SVE `ptest`).
    #[inline(always)]
    pub fn any(self) -> bool {
        self.0.iter().any(|&b| b)
    }

    /// `true` if every lane is set.
    #[inline(always)]
    pub fn all(self) -> bool {
        self.0.iter().all(|&b| b)
    }

    /// `true` if no lane is set.
    #[inline(always)]
    pub fn none(self) -> bool {
        !self.any()
    }

    /// Number of set lanes (SVE `cntp`).
    #[inline(always)]
    pub fn count_set(self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// Index of the first set lane, if any (SVE `brka`-style scan).
    #[inline(always)]
    pub fn first_set(self) -> Option<usize> {
        self.0.iter().position(|&b| b)
    }

    /// A mask with the first `n` lanes set — SVE's `whilelt` predicate,
    /// which the paper's kernels use for loop tails.
    #[inline(always)]
    pub fn first_n(n: usize) -> Self {
        // Fixed trip count with a per-lane compare, never a dynamic-length
        // prefix loop: the latter lowers to a variable-size `memset` — a
        // library call (with `vzeroupper`) in the middle of every masked
        // loop tail.  Per-lane `setcc` keeps the whole mask in registers.
        let mut m = [false; W];
        for (lane, b) in m.iter_mut().enumerate() {
            *b = lane < n;
        }
        Mask(m)
    }
}

impl<const W: usize> BitAnd for Mask<W> {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        let mut out = [false; W];
        for l in 0..W {
            out[l] = self.0[l] & rhs.0[l];
        }
        Mask(out)
    }
}

impl<const W: usize> BitOr for Mask<W> {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        let mut out = [false; W];
        for l in 0..W {
            out[l] = self.0[l] | rhs.0[l];
        }
        Mask(out)
    }
}

impl<const W: usize> BitXor for Mask<W> {
    type Output = Self;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        let mut out = [false; W];
        for l in 0..W {
            out[l] = self.0[l] ^ rhs.0[l];
        }
        Mask(out)
    }
}

impl<const W: usize> Not for Mask<W> {
    type Output = Self;
    #[inline(always)]
    fn not(self) -> Self {
        let mut out = [false; W];
        for l in 0..W {
            out[l] = !self.0[l];
        }
        Mask(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_any_all_none() {
        assert!(Mask::<8>::splat(true).all());
        assert!(Mask::<8>::splat(false).none());
        let mut m = Mask::<8>::splat(false);
        m.set(3, true);
        assert!(m.any());
        assert!(!m.all());
        assert_eq!(m.count_set(), 1);
        assert_eq!(m.first_set(), Some(3));
    }

    #[test]
    fn first_n_is_whilelt() {
        let m = Mask::<8>::first_n(3);
        assert_eq!(
            m.to_array(),
            [true, true, true, false, false, false, false, false]
        );
        assert_eq!(Mask::<4>::first_n(10).count_set(), 4);
        assert_eq!(Mask::<4>::first_n(0).count_set(), 0);
    }

    #[test]
    fn all_false_and_all_true_edge_cases() {
        let none = Mask::<8>::splat(false);
        assert!(none.none());
        assert!(!none.any());
        assert!(!none.all());
        assert_eq!(none.count_set(), 0);
        assert_eq!(none.first_set(), None);

        let all = Mask::<8>::splat(true);
        assert!(all.all());
        assert!(all.any());
        assert!(!all.none());
        assert_eq!(all.count_set(), 8);
        assert_eq!(all.first_set(), Some(0));

        // first_n at the extremes reproduces both.
        assert_eq!(Mask::<8>::first_n(0), none);
        assert_eq!(Mask::<8>::first_n(8), all);
        assert_eq!(Mask::<8>::first_n(usize::MAX), all);

        // Negation swaps them.
        assert_eq!(!none, all);
        assert_eq!(!all, none);
    }

    #[test]
    fn first_n_every_remainder_length() {
        for n in 1..=7usize {
            let m = Mask::<8>::first_n(n);
            assert_eq!(m.count_set(), n);
            assert_eq!(m.first_set(), Some(0));
            for l in 0..8 {
                assert_eq!(m.test(l), l < n, "lane {l} at n={n}");
            }
        }
    }

    #[test]
    fn width_one_masks() {
        assert!(Mask::<1>::first_n(1).all());
        assert!(Mask::<1>::first_n(0).none());
        assert_eq!(Mask::<1>::splat(true).count_set(), 1);
    }

    #[test]
    fn boolean_algebra() {
        let a = Mask::<4>::from_array([true, true, false, false]);
        let b = Mask::<4>::from_array([true, false, true, false]);
        assert_eq!((a & b).to_array(), [true, false, false, false]);
        assert_eq!((a | b).to_array(), [true, true, true, false]);
        assert_eq!((a ^ b).to_array(), [false, true, true, false]);
        assert_eq!((!a).to_array(), [false, false, true, true]);
    }
}
