//! Lane masks produced by SIMD comparisons, in the style of
//! `std::experimental::simd_mask`.

use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A boolean per lane; the result type of `Simd::simd_lt` and friends and
/// the selector for `Simd::select`.
///
/// SVE is a predicated ISA: essentially every A64FX vector instruction takes
/// a predicate register.  Masks are therefore first-class in the paper's SVE
/// types, and they are first-class here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct Mask<const W: usize>([bool; W]);

impl<const W: usize> Mask<W> {
    /// Number of lanes.
    pub const LANES: usize = W;

    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: bool) -> Self {
        Mask([v; W])
    }

    /// Build from an array of lane booleans.
    #[inline(always)]
    pub fn from_array(a: [bool; W]) -> Self {
        Mask(a)
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [bool; W] {
        self.0
    }

    /// Value of lane `l`.
    ///
    /// # Panics
    /// Panics if `l >= W`.
    #[inline(always)]
    pub fn test(self, l: usize) -> bool {
        self.0[l]
    }

    /// Set lane `l` to `v`.
    #[inline(always)]
    pub fn set(&mut self, l: usize, v: bool) {
        self.0[l] = v;
    }

    /// `true` if any lane is set (SVE `ptest`).
    #[inline(always)]
    pub fn any(self) -> bool {
        self.0.iter().any(|&b| b)
    }

    /// `true` if every lane is set.
    #[inline(always)]
    pub fn all(self) -> bool {
        self.0.iter().all(|&b| b)
    }

    /// `true` if no lane is set.
    #[inline(always)]
    pub fn none(self) -> bool {
        !self.any()
    }

    /// Number of set lanes (SVE `cntp`).
    #[inline(always)]
    pub fn count_set(self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// Index of the first set lane, if any (SVE `brka`-style scan).
    #[inline]
    pub fn first_set(self) -> Option<usize> {
        self.0.iter().position(|&b| b)
    }

    /// A mask with the first `n` lanes set — SVE's `whilelt` predicate,
    /// which the paper's kernels use for loop tails.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        let mut m = [false; W];
        for lane in m.iter_mut().take(n.min(W)) {
            *lane = true;
        }
        Mask(m)
    }
}

impl<const W: usize> BitAnd for Mask<W> {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        let mut out = [false; W];
        for l in 0..W {
            out[l] = self.0[l] & rhs.0[l];
        }
        Mask(out)
    }
}

impl<const W: usize> BitOr for Mask<W> {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        let mut out = [false; W];
        for l in 0..W {
            out[l] = self.0[l] | rhs.0[l];
        }
        Mask(out)
    }
}

impl<const W: usize> BitXor for Mask<W> {
    type Output = Self;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        let mut out = [false; W];
        for l in 0..W {
            out[l] = self.0[l] ^ rhs.0[l];
        }
        Mask(out)
    }
}

impl<const W: usize> Not for Mask<W> {
    type Output = Self;
    #[inline(always)]
    fn not(self) -> Self {
        let mut out = [false; W];
        for l in 0..W {
            out[l] = !self.0[l];
        }
        Mask(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_any_all_none() {
        assert!(Mask::<8>::splat(true).all());
        assert!(Mask::<8>::splat(false).none());
        let mut m = Mask::<8>::splat(false);
        m.set(3, true);
        assert!(m.any());
        assert!(!m.all());
        assert_eq!(m.count_set(), 1);
        assert_eq!(m.first_set(), Some(3));
    }

    #[test]
    fn first_n_is_whilelt() {
        let m = Mask::<8>::first_n(3);
        assert_eq!(
            m.to_array(),
            [true, true, true, false, false, false, false, false]
        );
        assert_eq!(Mask::<4>::first_n(10).count_set(), 4);
        assert_eq!(Mask::<4>::first_n(0).count_set(), 0);
    }

    #[test]
    fn boolean_algebra() {
        let a = Mask::<4>::from_array([true, true, false, false]);
        let b = Mask::<4>::from_array([true, false, true, false]);
        assert_eq!((a & b).to_array(), [true, false, false, false]);
        assert_eq!((a | b).to_array(), [true, true, true, false]);
        assert_eq!((a ^ b).to_array(), [false, true, true, false]);
        assert_eq!((!a).to_array(), [false, false, true, true]);
    }
}
