//! Runtime vector-ISA selection for the "SIMD ON" half of the dispatch.
//!
//! The paper builds the application twice: once scalar, once with the SVE
//! vector types, and compares the two builds head-to-head (Figure 7).  The
//! scalar build's compiler never emits vector instructions; the SVE build
//! gets the full 512-bit ISA.  Reproducing that inside *one* binary needs
//! the same asymmetry: this crate is compiled for the target *baseline*
//! (so the `W = 1` instantiations are genuinely scalar code, like the
//! paper's scalar build), and the wide (`W = 8`) kernel instantiations are
//! entered through [`wide_dispatch!`]-generated `#[target_feature]`
//! wrappers that unlock the widest vector ISA the host actually has.
//!
//! Enabling a wider ISA never changes results: every lane operation is the
//! same IEEE-754 arithmetic whether it executes in a scalar, 128-bit or
//! 512-bit register, so the bit-equality invariants between the `W = 1`
//! and `W = 8` instantiations are unaffected — only the throughput
//! changes, which is precisely the Figure 7 experiment.

/// The widest vector ISA the wide kernel instantiations may use on this
/// host, detected once at first use.
///
/// On x86-64 the 512-bit A64FX SVE registers map onto AVX-512 (8 × `f64`,
/// exactly one `Simd<f64, 8>` per register); AVX2+FMA is the 256-bit
/// fallback; `Baseline` means the compiled-in target only.  On every other
/// architecture the baseline build is all there is — on a real A64FX the
/// whole binary would be compiled `-C target-feature=+sve` instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WideIsa {
    /// AVX-512 F+DQ+VL: full 512-bit registers, one per `Simd<f64, 8>`.
    Avx512,
    /// AVX2 + FMA: 256-bit registers, two per `Simd<f64, 8>`.
    Avx2,
    /// Whatever the binary was compiled for (SSE2 on x86-64).
    Baseline,
}

impl WideIsa {
    /// Short label for logs and bench output.
    pub const fn label(self) -> &'static str {
        match self {
            WideIsa::Avx512 => "avx512",
            WideIsa::Avx2 => "avx2+fma",
            WideIsa::Baseline => "baseline",
        }
    }
}

/// Detect the widest usable [`WideIsa`] (cached after the first call).
pub fn wide_isa() -> WideIsa {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<WideIsa> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                WideIsa::Avx512
            } else if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                WideIsa::Avx2
            } else {
                WideIsa::Baseline
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        WideIsa::Baseline
    }
}

/// Define a monomorphic entry point for a wide (`W = 8`) kernel that runs
/// its body under the host's widest vector ISA.
///
/// ```ignore
/// sve_simd::wide_dispatch! {
///     pub fn p2p_at_wide(src: &PointMasses, x: f64, y: f64, z: f64) -> (f64, [f64; 3])
///         = p2p_at_w::<8>
/// }
/// ```
///
/// expands to a safe function `p2p_at_wide` with that exact signature that
/// calls `p2p_at_w::<8>` inside an `#[target_feature]` wrapper chosen by
/// [`wide_isa`].  The kernel must be marked `#[inline]` (or be otherwise
/// inlineable) so its body is compiled *inside* the wrapper and its lane
/// loops actually lower to the wide ISA; the feature sets here are strict
/// supersets of the baseline, so the compiler is always allowed to inline.
///
/// Safety: the `#[target_feature]` wrappers are only reached after
/// [`wide_isa`] has positively detected the matching CPU features.
#[macro_export]
macro_rules! wide_dispatch {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $ty:ty),* $(,)?) $(-> $ret:ty)?
        = $kernel:expr) => {
        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx512f,avx512dq,avx512vl,avx2,fma")]
                fn __wide_avx512($($arg: $ty),*) $(-> $ret)? {
                    ($kernel)($($arg),*)
                }
                #[target_feature(enable = "avx2,fma")]
                fn __wide_avx2($($arg: $ty),*) $(-> $ret)? {
                    ($kernel)($($arg),*)
                }
                match $crate::wide_isa() {
                    // SAFETY: the matching CPU features were detected.
                    $crate::WideIsa::Avx512 => return unsafe { __wide_avx512($($arg),*) },
                    $crate::WideIsa::Avx2 => return unsafe { __wide_avx2($($arg),*) },
                    $crate::WideIsa::Baseline => {}
                }
            }
            ($kernel)($($arg),*)
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable() {
        assert_eq!(wide_isa(), wide_isa());
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(WideIsa::Avx512.label(), WideIsa::Avx2.label());
        assert_ne!(WideIsa::Avx2.label(), WideIsa::Baseline.label());
    }

    // The macro must expand for plain, reference, and mut-reference
    // parameters, and the wrapped call must agree with the direct call.
    fn double_all(xs: &[f64], out: &mut Vec<f64>) -> usize {
        out.clear();
        out.extend(xs.iter().map(|x| 2.0 * x));
        out.len()
    }

    wide_dispatch! {
        fn double_all_wide(xs: &[f64], out: &mut Vec<f64>) -> usize = double_all
    }

    #[test]
    fn dispatched_call_matches_direct_call() {
        let xs = [1.0, 2.5, -3.0];
        let mut a = Vec::new();
        let mut b = Vec::new();
        assert_eq!(double_all_wide(&xs, &mut a), double_all(&xs, &mut b));
        assert_eq!(a, b);
    }
}
