//! Octree node identity and geometry: octant paths, integer coordinates at
//! a level, 26-neighbour arithmetic, and space-filling-curve keys.

/// Maximum refinement level supported by the 64-bit path encoding
/// (3 bits per level, 1 marker, leaves headroom).  The paper's production
/// runs use levels up to 12 (DWD) and the scaling study up to 7.
pub const MAX_LEVEL: u8 = 20;

/// One of the eight children of an octree node.
///
/// Bit 0 is the x half, bit 1 the y half, bit 2 the z half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Octant(pub u8);

impl Octant {
    /// All eight octants, in path order.
    pub fn all() -> impl Iterator<Item = Octant> {
        (0u8..8).map(Octant)
    }

    /// Build from per-axis half indices (each 0 or 1).
    #[inline]
    pub fn from_xyz(x: u8, y: u8, z: u8) -> Octant {
        debug_assert!(x < 2 && y < 2 && z < 2);
        Octant(x | (y << 1) | (z << 2))
    }

    /// Per-axis half indices.
    #[inline]
    pub fn xyz(self) -> [u8; 3] {
        [self.0 & 1, (self.0 >> 1) & 1, (self.0 >> 2) & 1]
    }
}

/// A direction to one of the 26 neighbours (face, edge or corner), each
/// component in `{-1, 0, +1}` and not all zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dir {
    pub dx: i8,
    pub dy: i8,
    pub dz: i8,
}

impl Dir {
    /// Construct; components must be in `{-1, 0, 1}` and not all zero.
    pub fn new(dx: i8, dy: i8, dz: i8) -> Dir {
        assert!(
            (-1..=1).contains(&dx) && (-1..=1).contains(&dy) && (-1..=1).contains(&dz),
            "direction components must be in -1..=1"
        );
        assert!(dx != 0 || dy != 0 || dz != 0, "null direction");
        Dir { dx, dy, dz }
    }

    /// All 26 directions: 6 faces, 12 edges, 8 corners — Octo-Tiger's
    /// neighbour model.
    pub fn all26() -> impl Iterator<Item = Dir> {
        (-1i8..=1)
            .flat_map(move |dx| {
                (-1i8..=1).flat_map(move |dy| (-1i8..=1).map(move |dz| (dx, dy, dz)))
            })
            .filter(|&(dx, dy, dz)| dx != 0 || dy != 0 || dz != 0)
            .map(|(dx, dy, dz)| Dir { dx, dy, dz })
    }

    /// The 6 face directions only.
    pub fn faces() -> impl Iterator<Item = Dir> {
        [
            Dir {
                dx: -1,
                dy: 0,
                dz: 0,
            },
            Dir {
                dx: 1,
                dy: 0,
                dz: 0,
            },
            Dir {
                dx: 0,
                dy: -1,
                dz: 0,
            },
            Dir {
                dx: 0,
                dy: 1,
                dz: 0,
            },
            Dir {
                dx: 0,
                dy: 0,
                dz: -1,
            },
            Dir {
                dx: 0,
                dy: 0,
                dz: 1,
            },
        ]
        .into_iter()
    }

    /// Number of non-zero components: 1 = face, 2 = edge, 3 = corner.
    pub fn codim(self) -> u8 {
        (self.dx != 0) as u8 + (self.dy != 0) as u8 + (self.dz != 0) as u8
    }

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        Dir {
            dx: -self.dx,
            dy: -self.dy,
            dz: -self.dz,
        }
    }

    /// Components as an array.
    pub fn as_array(self) -> [i8; 3] {
        [self.dx, self.dy, self.dz]
    }
}

/// Identity of an octree node: its refinement level and the octant path
/// from the root, packed 3 bits per level (most significant step first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    level: u8,
    path: u64,
}

impl NodeId {
    /// The root node.
    pub const ROOT: NodeId = NodeId { level: 0, path: 0 };

    /// Refinement level (root = 0).
    #[inline]
    pub fn level(self) -> u8 {
        self.level
    }

    /// Packed octant path.
    #[inline]
    pub fn path(self) -> u64 {
        self.path
    }

    /// The child of this node in `octant`.
    ///
    /// # Panics
    /// Panics if the child would exceed [`MAX_LEVEL`].
    pub fn child(self, octant: Octant) -> NodeId {
        assert!(self.level < MAX_LEVEL, "octree level overflow");
        NodeId {
            level: self.level + 1,
            path: (self.path << 3) | u64::from(octant.0),
        }
    }

    /// Parent node, or `None` for the root.
    pub fn parent(self) -> Option<NodeId> {
        if self.level == 0 {
            None
        } else {
            Some(NodeId {
                level: self.level - 1,
                path: self.path >> 3,
            })
        }
    }

    /// Which octant of its parent this node occupies.
    ///
    /// # Panics
    /// Panics on the root.
    pub fn octant_in_parent(self) -> Octant {
        assert!(self.level > 0, "root has no parent octant");
        Octant((self.path & 0b111) as u8)
    }

    /// Integer coordinates of this node within its level:
    /// each component in `[0, 2^level)`.
    pub fn coords(self) -> [u32; 3] {
        let mut x = 0u32;
        let mut y = 0u32;
        let mut z = 0u32;
        for step in 0..self.level {
            let shift = 3 * (self.level - 1 - step);
            let oct = ((self.path >> shift) & 0b111) as u8;
            x = (x << 1) | u32::from(oct & 1);
            y = (y << 1) | u32::from((oct >> 1) & 1);
            z = (z << 1) | u32::from((oct >> 2) & 1);
        }
        [x, y, z]
    }

    /// Node at `level` with the given integer coordinates.
    ///
    /// # Panics
    /// Panics if any coordinate is out of `[0, 2^level)` or the level
    /// exceeds [`MAX_LEVEL`].
    pub fn from_coords(level: u8, coords: [u32; 3]) -> NodeId {
        assert!(level <= MAX_LEVEL, "level exceeds MAX_LEVEL");
        let extent = 1u32 << level;
        for &c in &coords {
            assert!(c < extent, "coordinate out of range for level");
        }
        let mut path = 0u64;
        for step in 0..level {
            let shift = level - 1 - step;
            let x = (coords[0] >> shift) & 1;
            let y = (coords[1] >> shift) & 1;
            let z = (coords[2] >> shift) & 1;
            path = (path << 3) | u64::from(x | (y << 1) | (z << 2));
        }
        NodeId { level, path }
    }

    /// Same-level neighbour in direction `dir`, or `None` when it would
    /// fall outside the root domain (Octo-Tiger's outflow boundary).
    pub fn neighbor(self, dir: Dir) -> Option<NodeId> {
        let extent = 1i64 << self.level;
        let [x, y, z] = self.coords();
        let nx = i64::from(x) + i64::from(dir.dx);
        let ny = i64::from(y) + i64::from(dir.dy);
        let nz = i64::from(z) + i64::from(dir.dz);
        if nx < 0 || ny < 0 || nz < 0 || nx >= extent || ny >= extent || nz >= extent {
            return None;
        }
        Some(NodeId::from_coords(
            self.level,
            [nx as u32, ny as u32, nz as u32],
        ))
    }

    /// Space-filling-curve key: Morton order over the unit cube, refined
    /// nodes sorting between their neighbours.  Leaves of a tree sorted by
    /// this key form the locality-partitioning curve (paper: sub-grids are
    /// distributed over localities; we use Morton order like Octo-Tiger).
    pub fn sfc_key(self) -> u128 {
        // Left-align the path within MAX_LEVEL steps so ancestors sort
        // immediately before their descendants, then break ties by level.
        let shifted = u128::from(self.path) << (3 * (MAX_LEVEL - self.level) as u32);
        (shifted << 5) | u128::from(self.level)
    }

    /// Physical lower corner and edge length of this node's cube within the
    /// unit domain `[0,1]³`.
    pub fn cube(self) -> ([f64; 3], f64) {
        let size = 1.0 / f64::from(1u32 << self.level);
        let [x, y, z] = self.coords();
        (
            [
                f64::from(x) * size,
                f64::from(y) * size,
                f64::from(z) * size,
            ],
            size,
        )
    }

    /// Physical center of this node's cube in the unit domain.
    pub fn center(self) -> [f64; 3] {
        let (corner, size) = self.cube();
        [
            corner[0] + 0.5 * size,
            corner[1] + 0.5 * size,
            corner[2] + 0.5 * size,
        ]
    }

    /// `true` if `other` is a strict descendant of `self`.
    pub fn is_ancestor_of(self, other: NodeId) -> bool {
        other.level > self.level && {
            let shift = 3 * (other.level - self.level) as u32;
            (other.path >> shift) == self.path
        }
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}:", self.level)?;
        if self.level == 0 {
            return write!(f, "root");
        }
        for step in 0..self.level {
            let shift = 3 * (self.level - 1 - step);
            write!(f, "{}", (self.path >> shift) & 0b111)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_parent_roundtrip() {
        let root = NodeId::ROOT;
        for oct in Octant::all() {
            let c = root.child(oct);
            assert_eq!(c.level(), 1);
            assert_eq!(c.parent(), Some(root));
            assert_eq!(c.octant_in_parent(), oct);
        }
    }

    #[test]
    fn coords_roundtrip_deep() {
        for level in 0..=6u8 {
            let extent = 1u32 << level;
            for x in (0..extent).step_by(3) {
                for y in (0..extent).step_by(2) {
                    let z = (x + y) % extent;
                    let id = NodeId::from_coords(level, [x, y, z]);
                    assert_eq!(id.coords(), [x, y, z]);
                    assert_eq!(id.level(), level);
                }
            }
        }
    }

    #[test]
    fn octant_xyz_mapping() {
        assert_eq!(Octant::from_xyz(1, 0, 1).0, 0b101);
        assert_eq!(Octant(0b110).xyz(), [0, 1, 1]);
    }

    #[test]
    fn neighbors_within_domain() {
        let id = NodeId::from_coords(3, [3, 3, 3]);
        let n = id.neighbor(Dir::new(1, 0, 0)).unwrap();
        assert_eq!(n.coords(), [4, 3, 3]);
        let c = id.neighbor(Dir::new(-1, -1, -1)).unwrap();
        assert_eq!(c.coords(), [2, 2, 2]);
    }

    #[test]
    fn neighbor_outside_domain_is_none() {
        let id = NodeId::from_coords(2, [0, 0, 0]);
        assert!(id.neighbor(Dir::new(-1, 0, 0)).is_none());
        let id2 = NodeId::from_coords(2, [3, 3, 3]);
        assert!(id2.neighbor(Dir::new(0, 0, 1)).is_none());
    }

    #[test]
    fn neighbor_of_neighbor_is_self() {
        let id = NodeId::from_coords(4, [5, 9, 2]);
        for dir in Dir::all26() {
            if let Some(n) = id.neighbor(dir) {
                assert_eq!(n.neighbor(dir.opposite()), Some(id));
            }
        }
    }

    #[test]
    fn dir_census() {
        assert_eq!(Dir::all26().count(), 26);
        assert_eq!(Dir::all26().filter(|d| d.codim() == 1).count(), 6);
        assert_eq!(Dir::all26().filter(|d| d.codim() == 2).count(), 12);
        assert_eq!(Dir::all26().filter(|d| d.codim() == 3).count(), 8);
        assert_eq!(Dir::faces().count(), 6);
    }

    #[test]
    #[should_panic(expected = "null direction")]
    fn null_direction_rejected() {
        Dir::new(0, 0, 0);
    }

    #[test]
    fn sfc_parent_sorts_before_children_and_children_are_ordered() {
        let p = NodeId::from_coords(2, [1, 2, 3]);
        let mut prev = p.sfc_key();
        for oct in Octant::all() {
            let k = p.child(oct).sfc_key();
            assert!(k > prev, "children must ascend in SFC order");
            prev = k;
        }
        assert!(p.sfc_key() < p.child(Octant(0)).sfc_key());
        // And the next sibling of p sorts after all of p's children.
        let next = NodeId::from_coords(2, [1, 2, 3].map(|c| c)).neighbor(Dir::new(1, 0, 0));
        if let Some(next) = next {
            if next.path() > p.path() {
                assert!(next.sfc_key() > p.child(Octant(7)).sfc_key());
            }
        }
    }

    #[test]
    fn cube_geometry() {
        let (corner, size) = NodeId::ROOT.cube();
        assert_eq!(corner, [0.0, 0.0, 0.0]);
        assert_eq!(size, 1.0);
        let c = NodeId::from_coords(1, [1, 0, 1]);
        let (corner, size) = c.cube();
        assert_eq!(size, 0.5);
        assert_eq!(corner, [0.5, 0.0, 0.5]);
        assert_eq!(c.center(), [0.75, 0.25, 0.75]);
    }

    #[test]
    fn ancestry() {
        let a = NodeId::from_coords(1, [1, 1, 0]);
        let d = a.child(Octant(3)).child(Octant(5));
        assert!(a.is_ancestor_of(d));
        assert!(!d.is_ancestor_of(a));
        assert!(!a.is_ancestor_of(a));
        assert!(NodeId::ROOT.is_ancestor_of(d));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(format!("{}", NodeId::ROOT), "L0:root");
        let c = NodeId::ROOT.child(Octant(5)).child(Octant(2));
        assert_eq!(format!("{c}"), "L2:52");
    }
}
