//! The AMR octree: full-refinement property, 2:1 balance, neighbour
//! queries, and criterion-driven refinement.
//!
//! Paper Section IV-C: *"The grid structure for the hydrodynamics is based
//! on an adaptive mesh refinement (AMR) octree, with each node being either
//! a leaf node or a fully refined interior node of the octree."*  The tree
//! here is purely topological — leaf payloads (sub-grids, multipole
//! moments) are stored by `NodeId` in the layers above — which keeps
//! refinement logic independent of the physics.

use crate::index::{Dir, NodeId, Octant, MAX_LEVEL};
use std::collections::HashMap;

/// Node kind within the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Interior,
    Leaf,
}

/// The record of one regrid episode: every topology change since the delta
/// was last drained, in application order, plus the neighbour links each
/// change dirtied.  Emitted by [`Tree::refine`]/[`Tree::derefine`] (and
/// their balanced drivers) *in addition to* the `topology_version` bump,
/// so layers caching topology-derived structures (the gravity interaction
/// plan, halo plans, ghost payload demand) can patch themselves
/// subtree-locally instead of rebuilding wholesale.
///
/// The delta spans `[first_version, last_version]`: a consumer holding a
/// structure built at `first_version` can apply the delta to reach
/// `last_version`; anything else must fall back to a full rebuild.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegridDelta {
    /// Leaves that were refined (each now interior with 8 new leaf
    /// children), in refinement order.
    pub refined: Vec<NodeId>,
    /// Interior nodes that were collapsed back into leaves (their 8
    /// children removed), in collapse order.
    pub derefined: Vec<NodeId>,
    /// Neighbour links dirtied by the changes: for every changed node, the
    /// in-domain directions whose ghost/interaction classification may
    /// have changed.  Consumers resolve the far end against the *current*
    /// tree (covering leaf / finer children).
    pub touched_links: Vec<(NodeId, Dir)>,
    /// `topology_version` before the first recorded change.
    pub first_version: u64,
    /// `topology_version` after the last recorded change.
    pub last_version: u64,
}

impl RegridDelta {
    /// `true` if no topology change is recorded.
    pub fn is_empty(&self) -> bool {
        self.refined.is_empty() && self.derefined.is_empty()
    }

    /// Append `other` (a later episode) onto this delta.  The episodes
    /// must be contiguous: `other.first_version == self.last_version`
    /// (or either side empty).
    pub fn merge(&mut self, other: RegridDelta) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other;
            return;
        }
        assert_eq!(
            other.first_version, self.last_version,
            "merging non-contiguous regrid deltas"
        );
        self.refined.extend(other.refined);
        self.derefined.extend(other.derefined);
        self.touched_links.extend(other.touched_links);
        self.last_version = other.last_version;
    }

    /// `true` if applying this delta to a structure built at
    /// `built_version` yields the topology at `current_version`.
    pub fn spans(&self, built_version: u64, current_version: u64) -> bool {
        !self.is_empty()
            && self.first_version == built_version
            && self.last_version == current_version
    }
}

/// What a leaf finds in one of its 26 directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Neighbor {
    /// A leaf of the same refinement level.
    SameLevel(NodeId),
    /// A leaf one level coarser covering the queried region.
    Coarser(NodeId),
    /// The same-level neighbour is refined; these are its child leaves
    /// adjacent to the querying leaf (1, 2 or 4 of them depending on the
    /// direction's codimension).
    Finer(Vec<NodeId>),
    /// Outside the computational domain (outflow boundary).
    DomainBoundary,
}

/// An octree with the full-refinement and 2:1-balance invariants.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: HashMap<NodeId, Node>,
    /// Bumped on every successful [`Tree::refine`]/[`Tree::derefine`], so
    /// layers caching topology-derived structures (the gravity solver's
    /// interaction plan, ghost link tables, …) can detect regrids with one
    /// integer compare instead of re-walking the tree.
    topology_version: u64,
    /// Changes accumulated since [`Tree::take_regrid_delta`] last drained
    /// them — the subtree-local invalidation record.
    delta: RegridDelta,
}

impl Default for Tree {
    fn default() -> Self {
        Self::new()
    }
}

impl Tree {
    /// A tree consisting of just the root leaf.
    pub fn new() -> Tree {
        let mut nodes = HashMap::new();
        nodes.insert(NodeId::ROOT, Node::Leaf);
        Tree {
            nodes,
            topology_version: 0,
            delta: RegridDelta::default(),
        }
    }

    /// A tree uniformly refined to `level` (all leaves at that level).
    pub fn new_uniform(level: u8) -> Tree {
        assert!(level <= MAX_LEVEL);
        let mut tree = Tree::new();
        for _ in 0..level {
            let leaves = tree.leaves();
            for leaf in leaves {
                tree.refine(leaf);
            }
        }
        tree
    }

    /// Number of nodes (interior + leaves).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if only the root exists... never: the root always exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` if `id` exists in the tree.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// `true` if `id` is a leaf of the tree.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        matches!(self.nodes.get(&id), Some(Node::Leaf))
    }

    /// `true` if `id` is an interior (fully refined) node.
    pub fn is_interior(&self, id: NodeId) -> bool {
        matches!(self.nodes.get(&id), Some(Node::Interior))
    }

    /// All leaves, sorted in space-filling-curve order (deterministic).
    pub fn leaves(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|(_, n)| matches!(n, Node::Leaf))
            .map(|(id, _)| *id)
            .collect();
        out.sort_by_key(|id| id.sfc_key());
        out
    }

    /// All interior nodes of a given level, SFC-sorted.
    pub fn interior_at_level(&self, level: u8) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|(id, n)| matches!(n, Node::Interior) && id.level() == level)
            .map(|(id, _)| *id)
            .collect();
        out.sort_by_key(|id| id.sfc_key());
        out
    }

    /// All nodes of a given level (leaf or interior), SFC-sorted.
    pub fn nodes_at_level(&self, level: u8) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .nodes
            .keys()
            .filter(|id| id.level() == level)
            .copied()
            .collect();
        out.sort_by_key(|id| id.sfc_key());
        out
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .values()
            .filter(|n| matches!(n, Node::Leaf))
            .count()
    }

    /// Deepest level present.
    pub fn max_level(&self) -> u8 {
        self.nodes.keys().map(|id| id.level()).max().unwrap_or(0)
    }

    /// Monotonic counter of topology changes: two calls returning the same
    /// value guarantee the node set (and hence every interaction list
    /// derived from it) is unchanged in between.
    pub fn topology_version(&self) -> u64 {
        self.topology_version
    }

    /// Drain the changes accumulated since the last drain.  The returned
    /// delta spans `[delta.first_version, topology_version()]`; the next
    /// recorded change starts a fresh episode at the current version.
    pub fn take_regrid_delta(&mut self) -> RegridDelta {
        let mut fresh = RegridDelta::default();
        fresh.first_version = self.topology_version;
        fresh.last_version = self.topology_version;
        std::mem::replace(&mut self.delta, fresh)
    }

    /// The changes accumulated since the last drain, without draining.
    pub fn pending_regrid_delta(&self) -> &RegridDelta {
        &self.delta
    }

    /// Record one change at `id` into the pending delta (links first, so
    /// `first_version` is pinned before the version bump).
    fn record_change(&mut self, id: NodeId, refined: bool) {
        if self.delta.is_empty() {
            self.delta.first_version = self.topology_version;
        }
        for dir in Dir::all26() {
            if id.neighbor(dir).is_some() {
                self.delta.touched_links.push((id, dir));
            }
        }
        if refined {
            self.delta.refined.push(id);
        } else {
            self.delta.derefined.push(id);
        }
        self.delta.last_version = self.topology_version + 1;
    }

    /// Refine a leaf into an interior node with 8 leaf children.
    /// Does **not** restore 2:1 balance — use [`Tree::refine_balanced`]
    /// when the invariant must hold afterwards.
    ///
    /// # Panics
    /// Panics if `id` is not a leaf.
    pub fn refine(&mut self, id: NodeId) {
        match self.nodes.get_mut(&id) {
            Some(n @ Node::Leaf) => *n = Node::Interior,
            _ => panic!("refine: {id} is not a leaf of this tree"),
        }
        for oct in Octant::all() {
            self.nodes.insert(id.child(oct), Node::Leaf);
        }
        self.record_change(id, true);
        self.topology_version += 1;
    }

    /// Refine a leaf, recursively refining coarser neighbours first so the
    /// 2:1 balance across all 26 directions is preserved.
    /// Returns every leaf that was refined (including `id`), in refinement
    /// order, so callers can create payloads for the new children.
    pub fn refine_balanced(&mut self, id: NodeId) -> Vec<NodeId> {
        let mut refined = Vec::new();
        self.refine_balanced_inner(id, &mut refined);
        refined
    }

    fn refine_balanced_inner(&mut self, id: NodeId, refined: &mut Vec<NodeId>) {
        if !self.is_leaf(id) {
            return; // already refined by a prior recursive step
        }
        // Make sure every neighbouring region is at most one level coarser
        // than the children we are about to create.
        for dir in Dir::all26() {
            if let Some(nb) = id.neighbor(dir) {
                let covering = self.covering_leaf(nb);
                if let Some(cov) = covering {
                    if cov.level() < id.level() {
                        self.refine_balanced_inner(cov, refined);
                    }
                }
            }
        }
        self.refine(id);
        refined.push(id);
    }

    /// Collapse an interior node whose 8 children are all leaves back into
    /// a leaf.  Refuses (returns `false`) if any child is interior or if
    /// the collapse would break 2:1 balance against a finer neighbour.
    pub fn derefine(&mut self, id: NodeId) -> bool {
        if !self.is_interior(id) {
            return false;
        }
        for oct in Octant::all() {
            if !self.is_leaf(id.child(oct)) {
                return false;
            }
        }
        // Balance: no neighbouring region may be more than one level finer
        // than the would-be leaf; i.e. no neighbour's same-level node may be
        // interior with interior children... it suffices that every
        // same-level neighbour's children (if any) are leaves.
        for dir in Dir::all26() {
            if let Some(nb) = id.neighbor(dir) {
                if self.is_interior(nb) {
                    for oct in Octant::all() {
                        if self.is_interior(nb.child(oct)) {
                            return false;
                        }
                    }
                }
            }
        }
        for oct in Octant::all() {
            self.nodes.remove(&id.child(oct));
        }
        self.nodes.insert(id, Node::Leaf);
        self.record_change(id, false);
        self.topology_version += 1;
        true
    }

    /// Collapse `id` back into a leaf, first collapsing whatever blocks it:
    /// interior children (recursively) and neighbouring subtrees that are
    /// too fine for the would-be leaf.  The counterpart of
    /// [`Tree::refine_balanced`] — where that drags coarse neighbours
    /// *finer*, this drags fine neighbours *coarser*.  Returns every
    /// interior that was collapsed (including `id`, last), in collapse
    /// order; empty if `id` is not interior or a collapse was impossible
    /// (the tree is left with whatever collapses already succeeded — each
    /// was individually balance-safe).
    pub fn derefine_balanced(&mut self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        if !self.is_interior(id) {
            return out;
        }
        self.derefine_balanced_inner(id, &mut out);
        out
    }

    fn derefine_balanced_inner(&mut self, id: NodeId, out: &mut Vec<NodeId>) -> bool {
        if self.is_leaf(id) {
            return true; // already no finer than required
        }
        if !self.contains(id) {
            // The region is coarser than `id` — vacuously coarse enough.
            return self.covering_leaf(id).is_some();
        }
        // Interior children first: `derefine` needs all 8 to be leaves.
        // Recursion strictly deepens, so it terminates within MAX_LEVEL.
        for oct in Octant::all() {
            let c = id.child(oct);
            if self.is_interior(c) && !self.derefine_balanced_inner(c, out) {
                return false;
            }
        }
        // Then any same-level neighbour whose children are interior (they
        // would sit two levels below the would-be leaf).
        for dir in Dir::all26() {
            if let Some(nb) = id.neighbor(dir) {
                if self.is_interior(nb) {
                    for oct in Octant::all() {
                        let c = nb.child(oct);
                        if self.is_interior(c) && !self.derefine_balanced_inner(c, out) {
                            return false;
                        }
                    }
                }
            }
        }
        if self.derefine(id) {
            out.push(id);
            true
        } else {
            false
        }
    }

    /// The leaf covering position `id` (deepest existing ancestor-or-self
    /// that is a leaf), or `None` if the region is refined deeper than `id`
    /// or outside the tree.
    pub fn covering_leaf(&self, id: NodeId) -> Option<NodeId> {
        let mut cur = id;
        loop {
            match self.nodes.get(&cur) {
                Some(Node::Leaf) => return Some(cur),
                Some(Node::Interior) => return None, // refined deeper
                None => cur = cur.parent()?,
            }
        }
    }

    /// What leaf `id` (which must be a leaf) sees in direction `dir`.
    ///
    /// # Panics
    /// Panics if `id` is not a leaf.
    pub fn neighbor_of(&self, id: NodeId, dir: Dir) -> Neighbor {
        assert!(self.is_leaf(id), "neighbor_of: {id} is not a leaf");
        let Some(nb) = id.neighbor(dir) else {
            return Neighbor::DomainBoundary;
        };
        match self.nodes.get(&nb) {
            Some(Node::Leaf) => Neighbor::SameLevel(nb),
            Some(Node::Interior) => {
                // 2:1 balance guarantees the adjacent children are leaves.
                let kids = adjacent_children(nb, dir.opposite());
                debug_assert!(kids.iter().all(|k| self.is_leaf(*k)));
                Neighbor::Finer(kids)
            }
            None => match self.covering_leaf(nb) {
                Some(cov) => {
                    debug_assert_eq!(
                        cov.level() + 1,
                        id.level(),
                        "2:1 balance violated between {id} and {cov}"
                    );
                    Neighbor::Coarser(cov)
                }
                None => Neighbor::DomainBoundary,
            },
        }
    }

    /// Verify all structural invariants; returns a description of the first
    /// violation, or `Ok(())`.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.nodes.contains_key(&NodeId::ROOT) {
            return Err("root missing".into());
        }
        for (&id, &node) in &self.nodes {
            // Parent chain must exist and be interior.
            if let Some(p) = id.parent() {
                match self.nodes.get(&p) {
                    Some(Node::Interior) => {}
                    Some(Node::Leaf) => return Err(format!("{id} exists under leaf parent {p}")),
                    None => return Err(format!("{id} has no parent node {p}")),
                }
            }
            match node {
                Node::Interior => {
                    for oct in Octant::all() {
                        if !self.contains(id.child(oct)) {
                            return Err(format!("interior {id} missing child octant {}", oct.0));
                        }
                    }
                }
                Node::Leaf => {
                    for oct in Octant::all() {
                        if self.contains(id.child(oct)) {
                            return Err(format!("leaf {id} has child octant {}", oct.0));
                        }
                    }
                }
            }
        }
        // 2:1 balance over all 26 directions.
        for leaf in self.leaves() {
            for dir in Dir::all26() {
                if let Some(nb) = leaf.neighbor(dir) {
                    if !self.nodes.contains_key(&nb) {
                        match self.covering_leaf(nb) {
                            Some(cov) if cov.level() + 1 < leaf.level() => {
                                return Err(format!("balance violation: {leaf} vs coarser {cov}"));
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Refine every leaf for which `criterion` holds (up to `max_level`),
    /// repeatedly until no leaf qualifies.  Returns the list of refined
    /// leaves in order.  This is Octo-Tiger's density-driven regrid step.
    pub fn refine_where(
        &mut self,
        max_level: u8,
        mut criterion: impl FnMut(NodeId) -> bool,
    ) -> Vec<NodeId> {
        let mut all_refined = Vec::new();
        loop {
            let candidates: Vec<NodeId> = self
                .leaves()
                .into_iter()
                .filter(|l| l.level() < max_level && criterion(*l))
                .collect();
            if candidates.is_empty() {
                break;
            }
            for c in candidates {
                if self.is_leaf(c) {
                    let refined = self.refine_balanced(c);
                    all_refined.extend(refined);
                }
            }
        }
        all_refined
    }
}

/// Children of `parent` adjacent to its face/edge/corner in direction `dir`.
fn adjacent_children(parent: NodeId, dir: Dir) -> Vec<NodeId> {
    let mut out = Vec::new();
    for oct in Octant::all() {
        let [x, y, z] = oct.xyz();
        let ok = |d: i8, bit: u8| match d {
            -1 => bit == 0,
            1 => bit == 1,
            _ => true,
        };
        if ok(dir.dx, x) && ok(dir.dy, y) && ok(dir.dz, z) {
            out.push(parent.child(oct));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_tree_counts() {
        let t = Tree::new_uniform(2);
        assert_eq!(t.num_leaves(), 64);
        assert_eq!(t.len(), 1 + 8 + 64);
        assert!(t.check_invariants().is_ok());
        assert_eq!(t.max_level(), 2);
    }

    #[test]
    fn root_only_tree() {
        let t = Tree::new();
        assert_eq!(t.num_leaves(), 1);
        assert!(t.is_leaf(NodeId::ROOT));
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn refine_preserves_full_refinement() {
        let mut t = Tree::new();
        t.refine(NodeId::ROOT);
        assert!(t.is_interior(NodeId::ROOT));
        assert_eq!(t.num_leaves(), 8);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn refining_interior_panics() {
        let mut t = Tree::new_uniform(1);
        t.refine(NodeId::ROOT);
    }

    #[test]
    fn balanced_refine_refines_coarse_neighbors() {
        // Refine one corner leaf of a level-1 tree twice; balance must drag
        // neighbouring level-1 leaves to level 2 before level 3 appears.
        let mut t = Tree::new_uniform(1);
        let corner = NodeId::from_coords(1, [0, 0, 0]);
        t.refine_balanced(corner);
        assert!(t.check_invariants().is_ok());
        let deep = NodeId::from_coords(2, [0, 0, 0]);
        let refined = t.refine_balanced(deep);
        assert!(refined.contains(&deep));
        assert!(t.check_invariants().is_ok());
        // The level-1 neighbours of `corner` must now be refined.
        for dir in Dir::all26() {
            if let Some(nb) = corner.neighbor(dir) {
                assert!(
                    t.is_interior(nb) || t.is_leaf(nb),
                    "{nb} missing after balance"
                );
            }
        }
    }

    #[test]
    fn neighbor_same_level() {
        let t = Tree::new_uniform(2);
        let id = NodeId::from_coords(2, [1, 1, 1]);
        match t.neighbor_of(id, Dir::new(1, 0, 0)) {
            Neighbor::SameLevel(nb) => assert_eq!(nb.coords(), [2, 1, 1]),
            other => panic!("expected SameLevel, got {other:?}"),
        }
    }

    #[test]
    fn neighbor_domain_boundary() {
        let t = Tree::new_uniform(1);
        let id = NodeId::from_coords(1, [0, 0, 0]);
        assert_eq!(
            t.neighbor_of(id, Dir::new(-1, 0, 0)),
            Neighbor::DomainBoundary
        );
    }

    #[test]
    fn neighbor_finer_and_coarser() {
        let mut t = Tree::new_uniform(1);
        let refined = NodeId::from_coords(1, [0, 0, 0]);
        t.refine_balanced(refined);
        // The leaf at [1,0,0] (level 1) sees finer children in -x... no:
        // +(-1,0,0) from [1,0,0] is [0,0,0] which is interior now.
        let coarse = NodeId::from_coords(1, [1, 0, 0]);
        match t.neighbor_of(coarse, Dir::new(-1, 0, 0)) {
            Neighbor::Finer(kids) => {
                assert_eq!(kids.len(), 4);
                for k in kids {
                    assert_eq!(k.level(), 2);
                    // Children adjacent to the +x face of the refined node.
                    assert_eq!(k.coords()[0], 1);
                }
            }
            other => panic!("expected Finer, got {other:?}"),
        }
        // A fine leaf looking away from the refined region sees a coarser
        // leaf.
        let fine = NodeId::from_coords(2, [1, 0, 0]);
        assert!(t.is_leaf(fine));
        match t.neighbor_of(fine, Dir::new(1, 0, 0)) {
            Neighbor::Coarser(c) => assert_eq!(c, coarse),
            other => panic!("expected Coarser, got {other:?}"),
        }
    }

    #[test]
    fn finer_neighbor_counts_by_codim() {
        let mut t = Tree::new_uniform(1);
        t.refine_balanced(NodeId::from_coords(1, [0, 0, 0]));
        let nb = NodeId::from_coords(1, [1, 1, 1]);
        // Corner direction toward the refined node: exactly 1 adjacent child.
        match t.neighbor_of(nb, Dir::new(-1, -1, -1)) {
            Neighbor::Finer(kids) => assert_eq!(kids.len(), 1),
            other => panic!("expected Finer corner, got {other:?}"),
        }
        let edge_nb = NodeId::from_coords(1, [1, 1, 0]);
        match t.neighbor_of(edge_nb, Dir::new(-1, -1, 0)) {
            Neighbor::Finer(kids) => assert_eq!(kids.len(), 2),
            other => panic!("expected Finer edge, got {other:?}"),
        }
    }

    #[test]
    fn derefine_roundtrip() {
        let mut t = Tree::new_uniform(1);
        assert!(t.derefine(NodeId::ROOT));
        assert!(t.is_leaf(NodeId::ROOT));
        assert_eq!(t.num_leaves(), 1);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn derefine_refuses_when_children_are_interior() {
        let mut t = Tree::new_uniform(2);
        assert!(!t.derefine(NodeId::ROOT));
    }

    #[test]
    fn derefine_refuses_when_balance_would_break() {
        let mut t = Tree::new_uniform(1);
        let a = NodeId::from_coords(1, [0, 0, 0]);
        t.refine_balanced(a);
        t.refine_balanced(NodeId::from_coords(2, [0, 0, 0]));
        assert!(t.check_invariants().is_ok());
        // Collapsing the neighbour of `a` would place a level-1 leaf next to
        // level-3 leaves.
        let nb = NodeId::from_coords(1, [1, 0, 0]);
        if t.is_interior(nb) {
            assert!(!t.derefine(nb));
        }
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn refine_where_criterion() {
        let mut t = Tree::new_uniform(1);
        // Refine every leaf whose cube touches the domain center.
        let refined = t.refine_where(3, |id| {
            let (corner, size) = id.cube();
            (0..3).all(|a| corner[a] <= 0.5 && corner[a] + size >= 0.5)
        });
        assert!(!refined.is_empty());
        assert!(t.check_invariants().is_ok());
        assert_eq!(t.max_level(), 3);
        // All 8 level-3 leaves around the center exist.
        for x in 3..5u32 {
            for y in 3..5u32 {
                for z in 3..5u32 {
                    assert!(t.is_leaf(NodeId::from_coords(3, [x, y, z])));
                }
            }
        }
    }

    #[test]
    fn topology_version_tracks_refine_and_derefine() {
        let mut t = Tree::new();
        assert_eq!(t.topology_version(), 0);
        t.refine(NodeId::ROOT);
        let after_refine = t.topology_version();
        assert!(after_refine > 0);
        // Queries never bump the version.
        let _ = t.leaves();
        let _ = t.max_level();
        assert_eq!(t.topology_version(), after_refine);
        // A refused derefinement leaves the version unchanged…
        let mut deep = Tree::new_uniform(2);
        let v = deep.topology_version();
        assert!(!deep.derefine(NodeId::ROOT));
        assert_eq!(deep.topology_version(), v);
        // …a successful one bumps it.
        assert!(t.derefine(NodeId::ROOT));
        assert!(t.topology_version() > after_refine);
    }

    #[test]
    fn regrid_delta_records_changes_and_drains() {
        let mut t = Tree::new_uniform(1);
        let drained = t.take_regrid_delta();
        assert_eq!(drained.refined.len(), 1, "new_uniform refined the root");
        assert!(t.pending_regrid_delta().is_empty());
        let v0 = t.topology_version();
        let corner = NodeId::from_coords(1, [0, 0, 0]);
        let refined = t.refine_balanced(corner);
        assert!(t.derefine(corner));
        let d = t.take_regrid_delta();
        assert_eq!(d.refined, refined);
        assert_eq!(d.derefined, vec![corner]);
        assert!(d.spans(v0, t.topology_version()));
        assert!(!d.spans(v0 + 1, t.topology_version()));
        // Touched links cover the changed node's in-domain directions.
        assert!(d.touched_links.iter().any(|&(id, _)| id == corner));
        // Refused derefines record nothing.
        let mut deep = Tree::new_uniform(2);
        deep.take_regrid_delta();
        assert!(!deep.derefine(NodeId::ROOT));
        assert!(deep.pending_regrid_delta().is_empty());
    }

    #[test]
    fn regrid_delta_merge_chains_episodes() {
        let mut t = Tree::new();
        let _ = t.take_regrid_delta();
        let v0 = t.topology_version();
        t.refine(NodeId::ROOT);
        let mut a = t.take_regrid_delta();
        t.refine_balanced(NodeId::from_coords(1, [0, 0, 0]));
        let b = t.take_regrid_delta();
        a.merge(b);
        assert!(a.spans(v0, t.topology_version()));
        assert_eq!(a.refined.len(), 2);
    }

    #[test]
    fn derefine_balanced_collapses_blocking_neighbours() {
        let mut t = Tree::new_uniform(1);
        let a = NodeId::from_coords(1, [0, 0, 0]);
        t.refine_balanced(a);
        // Refining the centre-corner child drags the level-1 neighbours of
        // `a` down to level 2 for balance.
        t.refine_balanced(NodeId::from_coords(2, [1, 1, 1]));
        assert!(t.check_invariants().is_ok());
        // A plain derefine of `a`'s refined neighbour is refused (level-3
        // leaves would sit next to a level-1 leaf), but the balanced
        // collapse drags the deep subtree coarser first.
        let nb = NodeId::from_coords(1, [1, 0, 0]);
        assert!(t.is_interior(nb));
        assert!(!t.clone().derefine(nb));
        let collapsed = t.derefine_balanced(nb);
        assert!(collapsed.contains(&nb));
        assert_eq!(collapsed.last(), Some(&nb), "target collapses last");
        assert!(t.is_leaf(nb));
        assert!(t.check_invariants().is_ok());
        // Every collapse was recorded in the pending delta.
        assert!(t.pending_regrid_delta().derefined.len() >= collapsed.len());
    }

    #[test]
    fn derefine_balanced_inverts_uniform_refinement() {
        let mut t = Tree::new_uniform(2);
        let collapsed = t.derefine_balanced(NodeId::ROOT);
        assert_eq!(collapsed.len(), 1 + 8);
        assert!(t.is_leaf(NodeId::ROOT));
        assert_eq!(t.len(), 1);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn leaves_are_sfc_sorted() {
        let mut t = Tree::new_uniform(1);
        t.refine_balanced(NodeId::from_coords(1, [1, 1, 1]));
        let leaves = t.leaves();
        for w in leaves.windows(2) {
            assert!(w[0].sfc_key() < w[1].sfc_key());
        }
    }

    #[test]
    fn covering_leaf_lookup() {
        let mut t = Tree::new_uniform(1);
        t.refine_balanced(NodeId::from_coords(1, [0, 0, 0]));
        let deep = NodeId::from_coords(3, [7, 7, 7]);
        let cov = t.covering_leaf(deep).unwrap();
        assert_eq!(cov, NodeId::from_coords(1, [1, 1, 1]));
        // A position that is refined deeper than asked returns None.
        assert!(t.covering_leaf(NodeId::from_coords(1, [0, 0, 0])).is_none());
    }
}
