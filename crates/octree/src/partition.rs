//! Space-filling-curve partitioning of leaves over localities.
//!
//! Octo-Tiger distributes sub-grids over HPX localities along a Morton
//! curve; contiguous curve segments give compact partitions whose surface
//! (the ghost exchanges that cross locality boundaries) stays small.  The
//! statistics computed here — how many neighbour links stay on-locality vs.
//! cross localities — are exactly what decides whether the Section VII-B
//! communication optimization pays off (Figure 8: big win at 1–4 localities
//! where most links are local, break-even at 8, slightly negative beyond).

use crate::index::Dir;
use crate::tree::{Neighbor, Tree};
use crate::NodeId;
use hpx_rt::LocalityId;
use std::collections::HashMap;

/// Assign the tree's leaves to `num_localities` localities by splitting the
/// SFC-sorted leaf list into contiguous, near-equal chunks.
///
/// # Panics
/// Panics if `num_localities == 0`.
pub fn partition_morton(tree: &Tree, num_localities: usize) -> HashMap<NodeId, LocalityId> {
    assert!(num_localities > 0, "need at least one locality");
    let leaves = tree.leaves(); // already SFC-sorted
    let total = leaves.len();
    let mut out = HashMap::with_capacity(total);
    if total == 0 {
        return out;
    }
    let parts = num_localities.min(total);
    let base = total / parts;
    let extra = total % parts;
    let mut idx = 0usize;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        for leaf in &leaves[idx..idx + size] {
            out.insert(*leaf, LocalityId(p));
        }
        idx += size;
    }
    out
}

/// Locality-boundary statistics of a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStats {
    /// Leaves per locality.
    pub leaves_per_locality: Vec<usize>,
    /// Neighbour links (leaf, dir) whose data source is on the same
    /// locality.
    pub local_links: usize,
    /// Neighbour links crossing locality boundaries.
    pub remote_links: usize,
}

impl PartitionStats {
    /// Fraction of links that stay on-locality (`1.0` when everything is
    /// local, e.g. a single-locality run).
    pub fn local_fraction(&self) -> f64 {
        let total = self.local_links + self.remote_links;
        if total == 0 {
            1.0
        } else {
            self.local_links as f64 / total as f64
        }
    }

    /// Largest / smallest leaf count over localities (load imbalance).
    pub fn imbalance(&self) -> f64 {
        let max = self.leaves_per_locality.iter().copied().max().unwrap_or(0);
        let min = self
            .leaves_per_locality
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .min()
            .unwrap_or(1);
        max as f64 / min as f64
    }
}

/// Compute [`PartitionStats`] for a partition over all 26-direction links.
pub fn partition_stats(
    tree: &Tree,
    owner: &HashMap<NodeId, LocalityId>,
    num_localities: usize,
) -> PartitionStats {
    let mut leaves_per_locality = vec![0usize; num_localities];
    let mut local_links = 0usize;
    let mut remote_links = 0usize;
    for leaf in tree.leaves() {
        let me = owner[&leaf];
        leaves_per_locality[me.0] += 1;
        for dir in Dir::all26() {
            let sources: Vec<NodeId> = match tree.neighbor_of(leaf, dir) {
                Neighbor::SameLevel(nb) => vec![nb],
                Neighbor::Coarser(c) => vec![c],
                Neighbor::Finer(kids) => kids,
                Neighbor::DomainBoundary => continue,
            };
            for src in sources {
                if owner[&src] == me {
                    local_links += 1;
                } else {
                    remote_links += 1;
                }
            }
        }
    }
    PartitionStats {
        leaves_per_locality,
        local_links,
        remote_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_total_and_balanced() {
        let tree = Tree::new_uniform(2); // 64 leaves
        let owner = partition_morton(&tree, 4);
        assert_eq!(owner.len(), 64);
        let mut counts = [0usize; 4];
        for loc in owner.values() {
            counts[loc.0] += 1;
        }
        assert_eq!(counts, [16, 16, 16, 16]);
    }

    #[test]
    fn partition_handles_non_dividing_counts() {
        let tree = Tree::new_uniform(1); // 8 leaves
        let owner = partition_morton(&tree, 3);
        let mut counts = [0usize; 3];
        for loc in owner.values() {
            counts[loc.0] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert!(counts.iter().all(|&c| (2..=3).contains(&c)));
    }

    #[test]
    fn more_localities_than_leaves() {
        let tree = Tree::new(); // 1 leaf
        let owner = partition_morton(&tree, 16);
        assert_eq!(owner.len(), 1);
        assert_eq!(owner[&NodeId::ROOT], LocalityId(0));
    }

    #[test]
    fn partition_is_sfc_contiguous() {
        let tree = Tree::new_uniform(2);
        let owner = partition_morton(&tree, 4);
        let leaves = tree.leaves();
        // Along the SFC, locality ids must be non-decreasing.
        let mut prev = 0usize;
        for leaf in leaves {
            let l = owner[&leaf].0;
            assert!(l >= prev, "SFC contiguity violated");
            prev = l;
        }
    }

    #[test]
    fn single_locality_stats_are_fully_local() {
        let tree = Tree::new_uniform(2);
        let owner = partition_morton(&tree, 1);
        let stats = partition_stats(&tree, &owner, 1);
        assert_eq!(stats.remote_links, 0);
        assert!(stats.local_links > 0);
        assert_eq!(stats.local_fraction(), 1.0);
        assert_eq!(stats.imbalance(), 1.0);
    }

    #[test]
    fn local_fraction_decreases_with_locality_count() {
        // This monotonic trend is the geometric fact behind the paper's
        // Figure 8 break-even behaviour.
        let tree = Tree::new_uniform(3); // 512 leaves
        let mut prev_fraction = 1.1;
        for parts in [1usize, 2, 4, 8, 16] {
            let owner = partition_morton(&tree, parts);
            let stats = partition_stats(&tree, &owner, parts);
            let f = stats.local_fraction();
            assert!(
                f < prev_fraction + 1e-12,
                "local fraction should not increase: {parts} parts -> {f}"
            );
            prev_fraction = f;
        }
    }

    #[test]
    fn stats_on_adaptive_tree() {
        let mut tree = Tree::new_uniform(1);
        tree.refine_balanced(NodeId::from_coords(1, [0, 0, 0]));
        let owner = partition_morton(&tree, 2);
        let stats = partition_stats(&tree, &owner, 2);
        assert_eq!(
            stats.leaves_per_locality.iter().sum::<usize>(),
            tree.num_leaves()
        );
        assert!(stats.local_links + stats.remote_links > 0);
    }
}
