//! Space-filling-curve and coordinate-bisection partitioning of leaves
//! over localities.
//!
//! Octo-Tiger distributes sub-grids over HPX localities along a Morton
//! curve; contiguous curve segments give compact partitions whose surface
//! (the ghost exchanges that cross locality boundaries) stays small.  The
//! statistics computed here — how many neighbour links stay on-locality vs.
//! cross localities — are exactly what decides whether the Section VII-B
//! communication optimization pays off (Figure 8: big win at 1–4 localities
//! where most links are local, break-even at 8, slightly negative beyond).
//!
//! [`partition_rcb`] is the recursive-coordinate-bisection alternative:
//! leaves are recursively split along the widest spatial axis, with every
//! cut placed on a lane-aligned [`kokkos_rs::RangePolicy::split`] boundary
//! so the
//! per-locality leaf runs feed whole SIMD lane blocks downstream.

use crate::index::Dir;
use crate::tree::{Neighbor, Tree};
use crate::NodeId;
use hpx_rt::LocalityId;
use std::collections::HashMap;

/// Assign the tree's leaves to `num_localities` localities by splitting the
/// SFC-sorted leaf list into contiguous, near-equal chunks.
///
/// # Panics
/// Panics if `num_localities == 0`.
pub fn partition_morton(tree: &Tree, num_localities: usize) -> HashMap<NodeId, LocalityId> {
    assert!(num_localities > 0, "need at least one locality");
    let leaves = tree.leaves(); // already SFC-sorted
    let total = leaves.len();
    let mut out = HashMap::with_capacity(total);
    if total == 0 {
        return out;
    }
    let parts = num_localities.min(total);
    let base = total / parts;
    let extra = total % parts;
    let mut idx = 0usize;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        for leaf in &leaves[idx..idx + size] {
            out.insert(*leaf, LocalityId(p));
        }
        idx += size;
    }
    out
}

/// One bisection cut recorded by [`partition_rcb_with_cuts`].
///
/// Indices are positions in the recursion's working order (each subrange
/// re-sorted along its own widest axis).  The invariant property tests
/// pin: `cut - begin` is always a multiple of `lane` — the exact rounding
/// [`kokkos_rs::RangePolicy::split`] applies to interior task boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RcbCut {
    /// First index of the bisected subrange.
    pub begin: usize,
    /// One past the last index of the subrange.
    pub end: usize,
    /// The split position (`begin <= cut <= end`).
    pub cut: usize,
    /// Spatial axis the subrange was sorted along (0 = x, 1 = y, 2 = z).
    pub axis: usize,
    /// Lane alignment the cut respects.
    pub lane: usize,
}

/// The boundary `RangePolicy::new(0, len).with_lanes(lane).split(parts)`
/// places after the first `pl` proportional chunks: the proportional
/// cursor rounded down to a lane multiple.
fn lane_cut(len: usize, parts: usize, pl: usize, lane: usize) -> usize {
    let base = len / parts;
    let extra = len % parts;
    let cursor = pl * base + pl.min(extra);
    (cursor / lane) * lane
}

fn rcb_recurse(
    items: &mut [(NodeId, [f64; 3])],
    parts: usize,
    first_id: usize,
    offset: usize,
    lane: usize,
    out: &mut HashMap<NodeId, LocalityId>,
    cuts: &mut Vec<RcbCut>,
) {
    if parts <= 1 || items.len() <= 1 {
        for (leaf, _) in items.iter() {
            out.insert(*leaf, LocalityId(first_id));
        }
        return;
    }
    // Widest spatial extent of the subrange's leaf centers picks the axis.
    let axis = (0..3)
        .max_by(|&a, &b| {
            let spread = |ax: usize| {
                let lo = items
                    .iter()
                    .map(|(_, c)| c[ax])
                    .fold(f64::INFINITY, f64::min);
                let hi = items
                    .iter()
                    .map(|(_, c)| c[ax])
                    .fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            };
            spread(a).total_cmp(&spread(b))
        })
        .unwrap_or(0);
    // Deterministic order: coordinate along the axis, SFC key as tiebreak.
    items.sort_by(|(na, ca), (nb, cb)| {
        ca[axis]
            .total_cmp(&cb[axis])
            .then_with(|| na.sfc_key().cmp(&nb.sfc_key()))
    });
    let pl = parts - parts / 2;
    let pr = parts / 2;
    let cut = lane_cut(items.len(), parts, pl, lane);
    cuts.push(RcbCut {
        begin: offset,
        end: offset + items.len(),
        cut: offset + cut,
        axis,
        lane,
    });
    let (left, right) = items.split_at_mut(cut);
    rcb_recurse(left, pl, first_id, offset, lane, out, cuts);
    rcb_recurse(right, pr, first_id + pl, offset + cut, lane, out, cuts);
}

/// Assign the tree's leaves to `num_localities` localities by recursive
/// coordinate bisection: split along the widest axis at a lane-aligned
/// [`kokkos_rs::RangePolicy::split`] boundary, recurse on both halves with
/// the
/// locality budget split proportionally.
///
/// Compared to [`partition_morton`] this trades SFC contiguity for
/// spatially compact boxes; both keep every leaf owned by exactly one
/// locality.  `lane` is the SIMD lane count downstream kernels carve on
/// (`sve_simd::SVE_LANES_F64` in production); `lane == 1` disables
/// alignment.
///
/// # Panics
/// Panics if `num_localities == 0` or `lane == 0`.
pub fn partition_rcb(
    tree: &Tree,
    num_localities: usize,
    lane: usize,
) -> HashMap<NodeId, LocalityId> {
    partition_rcb_with_cuts(tree, num_localities, lane).0
}

/// [`partition_rcb`], also returning the recorded bisection cuts so tests
/// can verify every cut sits on a lane-aligned `RangePolicy::split`
/// boundary.
pub fn partition_rcb_with_cuts(
    tree: &Tree,
    num_localities: usize,
    lane: usize,
) -> (HashMap<NodeId, LocalityId>, Vec<RcbCut>) {
    assert!(num_localities > 0, "need at least one locality");
    assert!(lane > 0, "lane alignment must be >= 1");
    let leaves = tree.leaves();
    let mut items: Vec<(NodeId, [f64; 3])> = leaves
        .iter()
        .map(|&leaf| {
            let (corner, size) = leaf.cube();
            (
                leaf,
                [
                    corner[0] + 0.5 * size,
                    corner[1] + 0.5 * size,
                    corner[2] + 0.5 * size,
                ],
            )
        })
        .collect();
    let mut out = HashMap::with_capacity(items.len());
    let mut cuts = Vec::new();
    let parts = num_localities.min(items.len().max(1));
    rcb_recurse(&mut items, parts, 0, 0, lane, &mut out, &mut cuts);
    (out, cuts)
}

/// Statically verify that `owner` is a sound leaf partition of `tree`
/// over `num_localities`: every leaf is assigned exactly once, every
/// assignment names an in-range locality, and the map contains no stale
/// keys (nodes that are not leaves of this tree — the residue a regrid
/// leaves behind if a partition outlives the topology it was built for).
///
/// Returns one human-readable violation per problem; an empty vector
/// means the partition is total and well-formed.  Used by `hpx-check`'s
/// plan verifier before it shards gravity plans, and cheap enough to run
/// in tests on every regrid.
pub fn verify_partition(
    tree: &Tree,
    owner: &HashMap<NodeId, LocalityId>,
    num_localities: usize,
) -> Vec<String> {
    let mut out = Vec::new();
    if num_localities == 0 {
        out.push("partition over zero localities".to_string());
        return out;
    }
    let leaves = tree.leaves();
    for leaf in &leaves {
        match owner.get(leaf) {
            None => out.push(format!("leaf {leaf:?} has no owner")),
            Some(loc) if loc.0 >= num_localities => out.push(format!(
                "leaf {leaf:?} owned by out-of-range locality {} (cluster has {num_localities})",
                loc.0
            )),
            Some(_) => {}
        }
    }
    if owner.len() != leaves.len() {
        let leaf_set: std::collections::HashSet<NodeId> = leaves.iter().copied().collect();
        for key in owner.keys() {
            if !leaf_set.contains(key) {
                out.push(format!(
                    "owner map contains {key:?}, which is not a leaf of this tree"
                ));
            }
        }
    }
    out
}

/// Locality-boundary statistics of a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStats {
    /// Leaves per locality.
    pub leaves_per_locality: Vec<usize>,
    /// Neighbour links (leaf, dir) whose data source is on the same
    /// locality.
    pub local_links: usize,
    /// Neighbour links crossing locality boundaries.
    pub remote_links: usize,
}

impl PartitionStats {
    /// Fraction of links that stay on-locality (`1.0` when everything is
    /// local, e.g. a single-locality run).
    pub fn local_fraction(&self) -> f64 {
        let total = self.local_links + self.remote_links;
        if total == 0 {
            1.0
        } else {
            self.local_links as f64 / total as f64
        }
    }

    /// Largest / smallest leaf count over localities (load imbalance).
    pub fn imbalance(&self) -> f64 {
        let max = self.leaves_per_locality.iter().copied().max().unwrap_or(0);
        let min = self
            .leaves_per_locality
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .min()
            .unwrap_or(1);
        max as f64 / min as f64
    }
}

/// Compute [`PartitionStats`] for a partition over all 26-direction links.
pub fn partition_stats(
    tree: &Tree,
    owner: &HashMap<NodeId, LocalityId>,
    num_localities: usize,
) -> PartitionStats {
    let mut leaves_per_locality = vec![0usize; num_localities];
    let mut local_links = 0usize;
    let mut remote_links = 0usize;
    for leaf in tree.leaves() {
        let me = owner[&leaf];
        leaves_per_locality[me.0] += 1;
        for dir in Dir::all26() {
            let sources: Vec<NodeId> = match tree.neighbor_of(leaf, dir) {
                Neighbor::SameLevel(nb) => vec![nb],
                Neighbor::Coarser(c) => vec![c],
                Neighbor::Finer(kids) => kids,
                Neighbor::DomainBoundary => continue,
            };
            for src in sources {
                if owner[&src] == me {
                    local_links += 1;
                } else {
                    remote_links += 1;
                }
            }
        }
    }
    PartitionStats {
        leaves_per_locality,
        local_links,
        remote_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kokkos_rs::RangePolicy;

    #[test]
    fn partition_is_total_and_balanced() {
        let tree = Tree::new_uniform(2); // 64 leaves
        let owner = partition_morton(&tree, 4);
        assert_eq!(owner.len(), 64);
        let mut counts = [0usize; 4];
        for loc in owner.values() {
            counts[loc.0] += 1;
        }
        assert_eq!(counts, [16, 16, 16, 16]);
    }

    #[test]
    fn partition_handles_non_dividing_counts() {
        let tree = Tree::new_uniform(1); // 8 leaves
        let owner = partition_morton(&tree, 3);
        let mut counts = [0usize; 3];
        for loc in owner.values() {
            counts[loc.0] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert!(counts.iter().all(|&c| (2..=3).contains(&c)));
    }

    #[test]
    fn more_localities_than_leaves() {
        let tree = Tree::new(); // 1 leaf
        let owner = partition_morton(&tree, 16);
        assert_eq!(owner.len(), 1);
        assert_eq!(owner[&NodeId::ROOT], LocalityId(0));
    }

    #[test]
    fn partition_is_sfc_contiguous() {
        let tree = Tree::new_uniform(2);
        let owner = partition_morton(&tree, 4);
        let leaves = tree.leaves();
        // Along the SFC, locality ids must be non-decreasing.
        let mut prev = 0usize;
        for leaf in leaves {
            let l = owner[&leaf].0;
            assert!(l >= prev, "SFC contiguity violated");
            prev = l;
        }
    }

    #[test]
    fn single_locality_stats_are_fully_local() {
        let tree = Tree::new_uniform(2);
        let owner = partition_morton(&tree, 1);
        let stats = partition_stats(&tree, &owner, 1);
        assert_eq!(stats.remote_links, 0);
        assert!(stats.local_links > 0);
        assert_eq!(stats.local_fraction(), 1.0);
        assert_eq!(stats.imbalance(), 1.0);
    }

    #[test]
    fn local_fraction_decreases_with_locality_count() {
        // This monotonic trend is the geometric fact behind the paper's
        // Figure 8 break-even behaviour.
        let tree = Tree::new_uniform(3); // 512 leaves
        let mut prev_fraction = 1.1;
        for parts in [1usize, 2, 4, 8, 16] {
            let owner = partition_morton(&tree, parts);
            let stats = partition_stats(&tree, &owner, parts);
            let f = stats.local_fraction();
            assert!(
                f < prev_fraction + 1e-12,
                "local fraction should not increase: {parts} parts -> {f}"
            );
            prev_fraction = f;
        }
    }

    #[test]
    fn lane_cut_matches_range_policy_split_boundaries() {
        // The bisection cut must be exactly the boundary RangePolicy::split
        // places after the first `pl` proportional chunks.
        for (len, parts, lane) in [
            (64, 7, 8),
            (64, 4, 8),
            (512, 16, 8),
            (33, 3, 8),
            (100, 5, 4),
        ] {
            let chunks = RangePolicy::new(0, len).with_lanes(lane).split(parts);
            let pl = parts - parts / 2;
            if let Some(&(_, bound)) = chunks.get(pl - 1) {
                if bound < len {
                    assert_eq!(
                        lane_cut(len, parts, pl, lane),
                        bound,
                        "len={len} parts={parts} lane={lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn rcb_is_total_and_lane_aligned() {
        let tree = Tree::new_uniform(2); // 64 leaves
        for parts in [1usize, 2, 3, 4, 7] {
            let (owner, cuts) = partition_rcb_with_cuts(&tree, parts, 8);
            assert_eq!(owner.len(), 64, "{parts} parts");
            let mut counts = vec![0usize; parts];
            for loc in owner.values() {
                counts[loc.0] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), 64);
            for c in &cuts {
                assert_eq!(
                    (c.cut - c.begin) % c.lane,
                    0,
                    "unaligned cut {c:?} at {parts} parts"
                );
            }
            // 64 = 8 lanes × 8 blocks: every locality count is whole blocks.
            for (p, &c) in counts.iter().enumerate() {
                assert_eq!(c % 8, 0, "locality {p} got {c} leaves at {parts} parts");
            }
        }
    }

    #[test]
    fn rcb_covers_adaptive_trees() {
        let mut tree = Tree::new_uniform(1);
        tree.refine_balanced(NodeId::from_coords(1, [1, 0, 1]));
        let owner = partition_rcb(&tree, 3, 8);
        assert_eq!(owner.len(), tree.num_leaves());
        let stats = partition_stats(&tree, &owner, 3);
        assert_eq!(
            stats.leaves_per_locality.iter().sum::<usize>(),
            tree.num_leaves()
        );
    }

    #[test]
    fn rcb_single_locality_owns_everything() {
        let tree = Tree::new_uniform(2);
        let (owner, cuts) = partition_rcb_with_cuts(&tree, 1, 8);
        assert!(owner.values().all(|&l| l == LocalityId(0)));
        assert!(cuts.is_empty());
    }

    #[test]
    fn verify_partition_accepts_real_partitions_and_rejects_broken_ones() {
        let mut tree = Tree::new_uniform(1);
        tree.refine_balanced(NodeId::from_coords(1, [0, 0, 0]));
        for parts in [1usize, 2, 4, 7] {
            let owner = partition_morton(&tree, parts);
            assert_eq!(verify_partition(&tree, &owner, parts), Vec::<String>::new());
            let rcb = partition_rcb(&tree, parts, 8);
            assert_eq!(verify_partition(&tree, &rcb, parts), Vec::<String>::new());
        }
        // A missing leaf, an out-of-range owner, and a stale key are each
        // reported.
        let mut owner = partition_morton(&tree, 2);
        let victim = tree.leaves()[0];
        owner.remove(&victim);
        assert!(verify_partition(&tree, &owner, 2)
            .iter()
            .any(|v| v.contains("no owner")));
        let mut owner = partition_morton(&tree, 2);
        owner.insert(tree.leaves()[1], LocalityId(9));
        assert!(verify_partition(&tree, &owner, 2)
            .iter()
            .any(|v| v.contains("out-of-range")));
        let mut owner = partition_morton(&tree, 2);
        owner.insert(NodeId::ROOT, LocalityId(0));
        assert!(verify_partition(&tree, &owner, 2)
            .iter()
            .any(|v| v.contains("not a leaf")));
    }

    #[test]
    fn stats_on_adaptive_tree() {
        let mut tree = Tree::new_uniform(1);
        tree.refine_balanced(NodeId::from_coords(1, [0, 0, 0]));
        let owner = partition_morton(&tree, 2);
        let stats = partition_stats(&tree, &owner, 2);
        assert_eq!(
            stats.leaves_per_locality.iter().sum::<usize>(),
            tree.num_leaves()
        );
        assert!(stats.local_links + stats.remote_links > 0);
    }
}
