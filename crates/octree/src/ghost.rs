//! Distributed ghost-layer exchange with the Section VII-B communication
//! optimization.
//!
//! Before each solver stage every leaf fills its ghost shells from its 26
//! neighbours.  In HPX Octo-Tiger this is an action per (leaf, direction)
//! pair; the paper's optimization short-circuits pairs whose source lives
//! on the **same locality** to direct memory access, "avoiding HPX actions
//! and temporary communication buffers where possible", with promise/future
//! pairs guaranteeing the source is up to date.  Our exchange has the same
//! two paths:
//!
//! * **parcel path** — an action request/reply through the locality's
//!   parcelport (always used across localities, and also used locally when
//!   the optimization is off), metered in the locality counters;
//! * **direct path** — a read through the shared-memory grid handle,
//!   counted in `local_direct_accesses`.  The exchange's phase structure
//!   (all interiors are final before any ghost is read) plays the role of
//!   the paper's promise/future readiness notifications; the
//!   [`GhostConfig::notify_with_channels`] option additionally routes the
//!   readiness signal through real `hpx_rt::channel` promise/future pairs
//!   to mirror the paper's mechanism literally.
//!
//! Level jumps are handled as in Octo-Tiger: data from a coarser neighbour
//! is prolonged (piecewise-constant), data from finer neighbours is
//! restricted (conservative 8-cell average).

use crate::index::{Dir, NodeId};
use crate::partition::partition_morton;
use crate::subgrid::SubGrid;
use crate::tree::{Neighbor, RegridDelta, Tree};
use hpx_rt::locality::{downcast_payload, ArcPayload};
use hpx_rt::{LocalityId, SimCluster};
use kokkos_rs::pool::{BufferPool, Recycled};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Options of a ghost exchange.
#[derive(Debug, Clone, Copy)]
pub struct GhostConfig {
    /// The Section VII-B optimization: same-locality neighbours are read
    /// directly from memory instead of through parcels.
    pub direct_local_access: bool,
    /// Route direct-path readiness through `hpx_rt::channel` promise/future
    /// pairs (the paper's literal mechanism).  Off by default because the
    /// phase barrier already guarantees readiness; the channel variant
    /// exists to measure its overhead.
    pub notify_with_channels: bool,
}

impl Default for GhostConfig {
    fn default() -> Self {
        GhostConfig {
            direct_local_access: true,
            notify_with_channels: false,
        }
    }
}

/// Request payload of the `ghost_pack` action.
struct GhostRequest {
    leaf: NodeId,
    dir: Dir,
}

/// One (leaf, direction) ghost link, classified: which source leaves the
/// link reads (several for a fine-from-coarse jump), or none at the domain
/// boundary (outflow reads the leaf's own interior).
///
/// This is the *single* classification both the runtime graph
/// ([`DistGrid::exchange_ghosts_pipelined`]) and the `hpx-check` static
/// future-DAG linter consume, so the analyzed graph cannot drift from the
/// executed one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkSpec {
    /// The destination leaf whose ghost shell the link fills.
    pub leaf: NodeId,
    /// Direction of the shell, from the leaf's perspective.
    pub dir: Dir,
    /// Source leaves read to assemble the payload; empty at the domain
    /// boundary.
    pub sources: Vec<NodeId>,
}

impl LinkSpec {
    /// `true` for a domain-boundary (outflow) link.
    pub fn is_boundary(&self) -> bool {
        self.sources.is_empty()
    }
}

/// Classify every (leaf, direction) ghost link of `tree`: 26 per leaf, in
/// `leaves() × Dir::all26()` order.
pub fn ghost_link_specs(tree: &Tree) -> Vec<LinkSpec> {
    tree.leaves()
        .into_iter()
        .flat_map(|leaf| Dir::all26().map(move |dir| (leaf, dir)))
        .map(|(leaf, dir)| {
            let sources = match tree.neighbor_of(leaf, dir) {
                Neighbor::SameLevel(nb) => vec![nb],
                Neighbor::Coarser(c) => vec![c],
                Neighbor::Finer(kids) => kids,
                Neighbor::DomainBoundary => Vec::new(),
            };
            LinkSpec { leaf, dir, sources }
        })
        .collect()
}

struct DistGridInner {
    tree: RwLock<Tree>,
    owner: RwLock<HashMap<NodeId, LocalityId>>,
    grids: RwLock<HashMap<NodeId, Arc<RwLock<SubGrid>>>>,
    n: usize,
    ghost: usize,
    nfields: usize,
    /// Recycling arena every ghost payload is checked out of: after the
    /// first exchange warms it up, packing allocates nothing.
    pool: BufferPool<f64>,
    /// Cached per-bucket payload demand of the current topology
    /// (`topology_version` → `bucket → count`), patched leaf-locally from
    /// [`RegridDelta`]s instead of re-walked every exchange.  Counts are
    /// signed only because patch arithmetic may pass through transients;
    /// the settled demand is non-negative.
    payload_demand: parking_lot::Mutex<Option<(u64, HashMap<usize, i64>)>>,
}

/// A distributed AMR grid: a [`Tree`] whose leaves carry [`SubGrid`]s
/// partitioned over the localities of a [`SimCluster`].
#[derive(Clone)]
pub struct DistGrid {
    inner: Arc<DistGridInner>,
}

impl DistGrid {
    /// Build a distributed grid over `cluster` from `tree`, creating one
    /// zeroed sub-grid per leaf (`n` cells, `ghost` ghost width, `nfields`
    /// fields) and partitioning leaves in Morton order.
    ///
    /// Registers the `ghost_pack` action on the cluster; at most one
    /// `DistGrid` should be active per cluster at a time.
    pub fn new(
        tree: Tree,
        n: usize,
        ghost: usize,
        nfields: usize,
        cluster: &SimCluster,
    ) -> DistGrid {
        let owner = partition_morton(&tree, cluster.num_localities());
        let grids: HashMap<NodeId, Arc<RwLock<SubGrid>>> = tree
            .leaves()
            .into_iter()
            .map(|leaf| (leaf, Arc::new(RwLock::new(SubGrid::new(n, ghost, nfields)))))
            .collect();
        let inner = Arc::new(DistGridInner {
            tree: RwLock::new(tree),
            owner: RwLock::new(owner),
            grids: RwLock::new(grids),
            n,
            ghost,
            nfields,
            pool: BufferPool::new(),
            payload_demand: parking_lot::Mutex::new(None),
        });
        let handler_inner = inner.clone();
        cluster.register_action("ghost_pack", move |arg, _loc| {
            let req = arg
                .downcast::<GhostRequest>()
                .expect("GhostRequest payload");
            let payload = compute_payload(&handler_inner, req.leaf, req.dir).unwrap_or_default();
            Box::new(payload)
        });
        DistGrid { inner }
    }

    /// Interior extent per dimension of every sub-grid.
    pub fn n(&self) -> usize {
        self.inner.n
    }

    /// Ghost width of every sub-grid.
    pub fn ghost_width(&self) -> usize {
        self.inner.ghost
    }

    /// Fields per sub-grid.
    pub fn nfields(&self) -> usize {
        self.inner.nfields
    }

    /// Handle to the ghost-payload recycling arena (for pool telemetry —
    /// the stepper folds its statistics into `StepStats`).
    pub fn scratch(&self) -> BufferPool<f64> {
        self.inner.pool.clone()
    }

    /// SFC-sorted leaves.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.inner.tree.read().leaves()
    }

    /// Run `f` with shared access to the tree.
    pub fn with_tree<R>(&self, f: impl FnOnce(&Tree) -> R) -> R {
        f(&self.inner.tree.read())
    }

    /// The tree's [`Tree::topology_version`]: unchanged between two calls
    /// ⇒ no regrid happened ⇒ cached traversal plans are still valid.
    pub fn topology_version(&self) -> u64 {
        self.inner.tree.read().topology_version()
    }

    /// Handle to a leaf's sub-grid.
    ///
    /// # Panics
    /// Panics if `id` has no grid.
    pub fn grid(&self, id: NodeId) -> Arc<RwLock<SubGrid>> {
        self.inner.grids.read()[&id].clone()
    }

    /// Owner locality of a leaf.
    ///
    /// # Panics
    /// Panics if `id` is not a leaf of the grid.
    pub fn owner(&self, id: NodeId) -> LocalityId {
        self.inner.owner.read()[&id]
    }

    /// Leaves owned by `loc`, SFC-sorted.
    pub fn leaves_of(&self, loc: LocalityId) -> Vec<NodeId> {
        let owner = self.inner.owner.read();
        self.leaves()
            .into_iter()
            .filter(|l| owner[l] == loc)
            .collect()
    }

    /// Refine `leaf` (keeping 2:1 balance), prolonging its payload into the
    /// new children.  New children inherit the refined leaf's owner.
    pub fn refine_balanced(&self, leaf: NodeId) {
        let refined = self.inner.tree.write().refine_balanced(leaf);
        let mut grids = self.inner.grids.write();
        let mut owner = self.inner.owner.write();
        for r in refined {
            let parent_grid = grids.remove(&r).expect("refined leaf had a grid");
            let parent_owner = owner.remove(&r).expect("refined leaf had an owner");
            let parent = parent_grid.read();
            for oct in crate::index::Octant::all() {
                let child = r.child(oct);
                grids.insert(child, Arc::new(RwLock::new(parent.prolong_child(oct))));
                owner.insert(child, parent_owner);
            }
        }
    }

    /// Collapse the octet under `id` back into a leaf if 2:1 balance
    /// permits (the polite counterpart of [`DistGrid::derefine_balanced`],
    /// used by criterion-driven coarsening passes that must not drag
    /// still-wanted fine neighbours coarser).  Returns whether the
    /// collapse happened.
    pub fn derefine(&self, id: NodeId) -> bool {
        if !self.inner.tree.write().derefine(id) {
            return false;
        }
        self.collapse_payload(&[id]);
        true
    }

    /// Derefine the parent of `id`'s octet (keeping 2:1 balance), restricting
    /// the eight children's payloads into the collapsed parent by conservative
    /// averaging.  The parent inherits the first child's owner.
    pub fn derefine_balanced(&self, id: NodeId) {
        let collapsed = self.inner.tree.write().derefine_balanced(id);
        self.collapse_payload(&collapsed);
    }

    /// Restrict the eight children's payloads of each collapsed interior
    /// into a fresh parent grid and swap the grid/owner tables over.
    fn collapse_payload(&self, collapsed: &[NodeId]) {
        let mut grids = self.inner.grids.write();
        let mut owner = self.inner.owner.write();
        for &c in collapsed {
            let mut parent = SubGrid::new(self.inner.n, self.inner.ghost, self.inner.nfields);
            let mut parent_owner = None;
            for oct in crate::index::Octant::all() {
                let child = c.child(oct);
                let child_grid = grids.remove(&child).expect("collapsed child had a grid");
                let child_owner = owner.remove(&child).expect("collapsed child had an owner");
                parent.restrict_from_child(oct, &child_grid.read());
                parent_owner.get_or_insert(child_owner);
            }
            grids.insert(c, Arc::new(RwLock::new(parent)));
            owner.insert(c, parent_owner.expect("octet has eight children"));
        }
    }

    /// Drain the tree's accumulated [`RegridDelta`], patching the payload
    /// demand cache across it first so the next exchange's pool prewarm
    /// stays tree-walk-free.  The caller hands the delta on to whatever
    /// plan caches need invalidating (e.g. the gravity solver).
    pub fn take_regrid_delta(&self) -> RegridDelta {
        let delta = self.inner.tree.write().take_regrid_delta();
        self.patch_payload_demand(&delta);
        delta
    }

    /// One leaf's contribution to the payload-demand map: one buffer per
    /// non-boundary direction, bucketed by the receive box's element
    /// count.  Boundary-ness is a pure function of the leaf's coordinates
    /// (no tree access), which is what makes the demand patchable from a
    /// [`RegridDelta`] alone.
    fn fold_leaf_demand(&self, demand: &mut HashMap<usize, i64>, leaf: NodeId, sign: i64) {
        for dir in Dir::all26() {
            if leaf.neighbor(dir).is_none() {
                continue; // domain boundary: outflow, no payload
            }
            let cells =
                SubGrid::box_cells(&SubGrid::recv_box_of(self.inner.n, self.inner.ghost, dir));
            *demand.entry(self.inner.nfields * cells).or_default() += sign;
        }
    }

    /// Patch the cached payload demand across `delta` (leaf-locally: one
    /// refined leaf retracts its 26 links and adds its children's, a
    /// derefine the reverse) instead of invalidating it.  Falls back to
    /// dropping the cache when the delta does not span the cached version
    /// — the next exchange then re-walks the tree once.
    fn patch_payload_demand(&self, delta: &RegridDelta) {
        let mut guard = self.inner.payload_demand.lock();
        let Some((version, demand)) = guard.as_mut() else {
            return;
        };
        let current = self.inner.tree.read().topology_version();
        if *version == current {
            return;
        }
        if !delta.spans(*version, current) {
            *guard = None;
            return;
        }
        // Refine/derefine contributions are additive counts, so applying
        // the two op lists out of interleaving order nets the same map.
        for &id in &delta.refined {
            self.fold_leaf_demand(demand, id, -1);
            for oct in crate::index::Octant::all() {
                self.fold_leaf_demand(demand, id.child(oct), 1);
            }
        }
        for &id in &delta.derefined {
            for oct in crate::index::Octant::all() {
                self.fold_leaf_demand(demand, id.child(oct), -1);
            }
            self.fold_leaf_demand(demand, id, 1);
        }
        *version = current;
    }

    /// Top up the payload arena to this topology's exact per-bucket link
    /// demand (one buffer per non-boundary link, bucketed by the receive
    /// box's cell count) before an exchange fans out.
    ///
    /// Payloads are checked out both by this thread (direct links) and by
    /// the remote localities' parcel pumps (parcel links), so the pool
    /// population a warm-up exchange reaches depends on how those threads
    /// interleave — a later exchange with more overlap would still
    /// allocate.  Prewarming the peak demand makes the steady state
    /// allocation-free deterministically: after the first exchange the
    /// top-up is a no-op and every checkout is a hit.
    ///
    /// The demand map is cached per `topology_version` and patched
    /// leaf-locally across regrids ([`DistGrid::take_regrid_delta`]), so
    /// the steady state also stops re-walking the tree every exchange.
    fn prewarm_payload_pool(&self) {
        let mut guard = self.inner.payload_demand.lock();
        let current = self.inner.tree.read().topology_version();
        let demand = match guard.as_ref() {
            Some((version, demand)) if *version == current => demand,
            _ => {
                let mut demand: HashMap<usize, i64> = HashMap::new();
                for &leaf in &self.inner.tree.read().leaves() {
                    self.fold_leaf_demand(&mut demand, leaf, 1);
                }
                &guard.insert((current, demand)).1
            }
        };
        for (&bucket, &count) in demand {
            debug_assert!(count >= 0, "settled payload demand must be non-negative");
            if count > 0 {
                self.inner.pool.prewarm(bucket, count as usize);
            }
        }
    }

    /// Fill every leaf's ghost shells: interior data from neighbours
    /// (with prolongation/restriction across level jumps) and outflow
    /// extrapolation at the domain boundary.
    ///
    /// Returns the number of (leaf, direction) links that used the direct
    /// local path.
    pub fn exchange_ghosts(&self, cluster: &SimCluster, config: GhostConfig) -> usize {
        self.prewarm_payload_pool();
        // Optional literal promise/future readiness notification: one
        // channel per locality, signalled before any direct read happens.
        let ready_channels: Vec<(hpx_rt::Sender<()>, hpx_rt::Receiver<()>)> = (0..cluster
            .num_localities())
            .map(|_| hpx_rt::channel())
            .collect();
        if config.notify_with_channels {
            for (tx, _) in &ready_channels {
                tx.send(()); // interiors are final: announce readiness
            }
        }

        let leaves = self.leaves();
        let owner = self.inner.owner.read().clone();
        let mut direct_links = 0usize;

        // Phase 1: gather payloads (reads only — interiors are stable).
        // Each entry: (leaf, dir, payload or pending future).
        enum Pending {
            Data(Recycled<f64>),
            Remote(hpx_rt::Future<hpx_rt::locality::ArcPayload>),
            Boundary,
        }
        let mut pending: Vec<(NodeId, Dir, Pending)> = Vec::new();
        {
            let tree = self.inner.tree.read();
            for &leaf in &leaves {
                let me = owner[&leaf];
                for dir in Dir::all26() {
                    let sources: Vec<NodeId> = match tree.neighbor_of(leaf, dir) {
                        Neighbor::SameLevel(nb) => vec![nb],
                        Neighbor::Coarser(c) => vec![c],
                        Neighbor::Finer(kids) => kids,
                        Neighbor::DomainBoundary => {
                            pending.push((leaf, dir, Pending::Boundary));
                            continue;
                        }
                    };
                    let all_local = sources.iter().all(|s| owner[s] == me);
                    if all_local && config.direct_local_access {
                        if config.notify_with_channels {
                            // Wait on the readiness future before touching
                            // neighbour memory (paper Section VII-B).
                            let f = ready_channels[me.0].1.receive();
                            f.wait();
                            ready_channels[me.0].0.send(()); // re-arm
                        }
                        cluster.locality(me.0).note_local_direct_access();
                        direct_links += 1;
                        let payload = compute_payload(&self.inner, leaf, dir)
                            .expect("non-boundary link must produce data");
                        pending.push((leaf, dir, Pending::Data(payload)));
                    } else {
                        // Parcel path: ask the owner of the *first* source
                        // to assemble the payload (it can read all grids —
                        // shared memory under the simulation — but pays the
                        // parcel metering that the cluster models charge).
                        let dest = owner[&sources[0]];
                        let bytes = {
                            let grids = self.inner.grids.read();
                            let g = grids[&leaf].read();
                            g.payload_bytes(dir.opposite())
                        };
                        hpx_rt::parcel_counters()
                            .note_send(hpx_rt::ParcelClass::Ghost, bytes as u64);
                        let fut = cluster.locality(me.0).apply_async(
                            dest,
                            "ghost_pack",
                            Box::new(GhostRequest { leaf, dir }),
                            bytes,
                        );
                        pending.push((leaf, dir, Pending::Remote(fut)));
                    }
                }
            }
        }

        // Phase 2: unpack into ghost shells (writes).
        for (leaf, dir, p) in pending {
            match p {
                Pending::Boundary => {
                    let grid = self.grid(leaf);
                    apply_outflow(&mut grid.write(), dir);
                }
                Pending::Data(data) => {
                    let grid = self.grid(leaf);
                    grid.write().unpack_recv(dir, &data);
                }
                Pending::Remote(fut) => {
                    let reply = fut.get();
                    let data = downcast_payload::<Recycled<f64>>(&reply)
                        .expect("ghost_pack returns a recycled buffer");
                    let grid = self.grid(leaf);
                    grid.write().unpack_recv(dir, data);
                }
            }
        }
        direct_links
    }

    /// Total (leaf, direction) ghost links of the current tree: every leaf
    /// has exactly 26 links (a link with several finer sources still counts
    /// once, and domain-boundary directions count as outflow links).
    pub fn total_ghost_links(&self) -> usize {
        self.leaves().len() * 26
    }

    /// Classify every ghost link of the current tree (see
    /// [`ghost_link_specs`]): the exact link set
    /// [`DistGrid::exchange_ghosts_pipelined`] wires into futures.
    pub fn link_specs(&self) -> Vec<LinkSpec> {
        ghost_link_specs(&self.inner.tree.read())
    }

    /// Futurized ghost exchange: instead of a phase barrier, every
    /// (leaf, direction) link becomes its own future chain gated on the
    /// `ready` futures of exactly the source leaves it reads.
    ///
    /// `ready[l]` must complete when leaf `l`'s interior holds the data this
    /// exchange should see (for RK stage *s*, its stage-(s−1) update).  The
    /// returned handle carries, per leaf, a `ghosts_filled` future (all 26 of
    /// its ghost regions written — the gate for the leaf's next RHS kernel)
    /// and an `outgoing_packed` future (every link *reading* the leaf has
    /// packed its payload — the gate for overwriting the leaf's interior).
    /// Together they let interior leaves of the next stage run while slower
    /// neighbours are still exchanging: the paper's promise/future readiness
    /// notification made literal, with no copy of any packed buffer
    /// (`then_ref` consumes payloads in place).
    ///
    /// `config.notify_with_channels` is ignored here — the per-link futures
    /// *are* the readiness notification.  This method only builds the graph;
    /// it never blocks.
    pub fn exchange_ghosts_pipelined(
        &self,
        cluster: &SimCluster,
        config: GhostConfig,
        ready: &HashMap<NodeId, hpx_rt::Future<()>>,
    ) -> PipelinedExchange {
        self.prewarm_payload_pool();
        let leaves = self.leaves();
        let owner = self.inner.owner.read().clone();

        // Classify all links first so no tree lock is held while futures are
        // wired (continuations re-acquire it from worker threads).  This is
        // the same classification `hpx-check`'s DAG linter analyzes.
        let links = self.link_specs();

        let links_resolved = Arc::new(AtomicUsize::new(0));
        let total_links = links.len();
        let mut direct_links = 0usize;
        let mut incoming: HashMap<NodeId, Vec<hpx_rt::Future<()>>> =
            leaves.iter().map(|&l| (l, Vec::new())).collect();
        let mut outgoing: HashMap<NodeId, Vec<hpx_rt::Future<()>>> =
            leaves.iter().map(|&l| (l, Vec::new())).collect();

        for LinkSpec { leaf, dir, sources } in links {
            let me = owner[&leaf];
            let rt_leaf = cluster.locality(me.0).runtime().clone();
            let grid = self.grid(leaf);
            let resolved = links_resolved.clone();
            if sources.is_empty() {
                // Outflow reads the leaf's own interior: gate on the
                // leaf itself.
                let unpacked = ready[&leaf].then(&rt_leaf, move |()| {
                    apply_outflow(&mut grid.write(), dir);
                    resolved.fetch_add(1, Ordering::Relaxed);
                });
                incoming.get_mut(&leaf).unwrap().push(unpacked);
            } else {
                let all_local = sources.iter().all(|s| owner[s] == me);
                let src_rt = cluster.locality(owner[&sources[0]].0).runtime().clone();
                let gate = if sources.len() == 1 {
                    ready[&sources[0]].clone()
                } else {
                    let parts: Vec<hpx_rt::Future<()>> =
                        sources.iter().map(|s| ready[s].clone()).collect();
                    hpx_rt::when_all_of(&src_rt, &parts)
                };
                // The link's payload future: packed as soon as all of its
                // *sources* are ready, on either the direct or parcel
                // path.  The unpack additionally gates on the destination
                // leaf's own readiness — its previous-stage combine
                // rewrites the whole array (ghost shells included), so a
                // ghost write landing before it would be clobbered.
                let unpacked = if all_local && config.direct_local_access {
                    direct_links += 1;
                    let inner = self.inner.clone();
                    let loc = cluster.locality(me.0).clone();
                    let payload = gate.then(&src_rt, move |()| {
                        loc.note_local_direct_access();
                        compute_payload(&inner, leaf, dir)
                            .expect("non-boundary link must produce data")
                    });
                    for s in &sources {
                        outgoing.get_mut(s).unwrap().push(payload.ticket());
                    }
                    let parts = [payload.ticket(), ready[&leaf].clone()];
                    hpx_rt::when_all_of(&rt_leaf, &parts).then(&rt_leaf, move |()| {
                        payload.with_value(|data| grid.write().unpack_recv(dir, data));
                        resolved.fetch_add(1, Ordering::Relaxed);
                    })
                } else {
                    let dest = owner[&sources[0]];
                    let bytes = {
                        let grids = self.inner.grids.read();
                        let g = grids[&leaf].read();
                        g.payload_bytes(dir.opposite())
                    };
                    let loc_me = cluster.locality(me.0).clone();
                    // The parcel is only *sent* once the gate resolves, so
                    // the remote pack handler observes stage-consistent
                    // sources; its reply is re-exposed as a plain future.
                    let (reply_p, reply_f) = hpx_rt::Promise::<ArcPayload>::new_pair();
                    gate.on_ready(move |_| {
                        hpx_rt::parcel_counters()
                            .note_send(hpx_rt::ParcelClass::Ghost, bytes as u64);
                        let f = loc_me.apply_async(
                            dest,
                            "ghost_pack",
                            Box::new(GhostRequest { leaf, dir }),
                            bytes,
                        );
                        f.on_ready(move |arc| reply_p.set(arc.clone()));
                    });
                    for s in &sources {
                        outgoing.get_mut(s).unwrap().push(reply_f.ticket());
                    }
                    let parts = [reply_f.ticket(), ready[&leaf].clone()];
                    hpx_rt::when_all_of(&rt_leaf, &parts).then(&rt_leaf, move |()| {
                        reply_f.with_value(|arc| {
                            let data = downcast_payload::<Recycled<f64>>(arc)
                                .expect("ghost_pack returns a recycled buffer");
                            grid.write().unpack_recv(dir, data);
                        });
                        resolved.fetch_add(1, Ordering::Relaxed);
                    })
                };
                incoming.get_mut(&leaf).unwrap().push(unpacked);
            }
        }

        let join = |map: HashMap<NodeId, Vec<hpx_rt::Future<()>>>| {
            map.into_iter()
                .map(|(l, futs)| {
                    let rt = cluster.locality(owner[&l].0).runtime();
                    (l, hpx_rt::when_all_of(rt, &futs))
                })
                .collect()
        };
        PipelinedExchange {
            ghosts_filled: join(incoming),
            outgoing_packed: join(outgoing),
            total_links,
            direct_links,
            links_resolved,
        }
    }
}

/// Handle to one in-flight [`DistGrid::exchange_ghosts_pipelined`] stage.
pub struct PipelinedExchange {
    /// Per leaf: completes once all 26 of its ghost regions are written.
    pub ghosts_filled: HashMap<NodeId, hpx_rt::Future<()>>,
    /// Per leaf: completes once every link reading this leaf's interior has
    /// packed its payload — the leaf's interior may be overwritten after.
    pub outgoing_packed: HashMap<NodeId, hpx_rt::Future<()>>,
    /// Number of (leaf, direction) links in the graph (= 26 × leaves).
    pub total_links: usize,
    /// Links eligible for the Section VII-B direct local path.
    pub direct_links: usize,
    /// Live count of links whose ghost data has been written; reaches
    /// `total_links` when the exchange has fully drained.  Sampled by the
    /// stepper to measure communication/compute overlap.
    pub links_resolved: Arc<AtomicUsize>,
}

/// Assemble the ghost payload `leaf` needs from direction `dir`, in the
/// element order expected by `SubGrid::unpack_recv(dir, ..)`, in a buffer
/// checked out of the grid's recycling arena.  `None` at the domain
/// boundary.
fn compute_payload(inner: &DistGridInner, leaf: NodeId, dir: Dir) -> Option<Recycled<f64>> {
    let tree = inner.tree.read();
    let grids = inner.grids.read();
    // Every case produces exactly the destination ghost region's cell count
    // per field, so the checkout capacity is exact and the bucket is stable
    // per direction class.
    let cells = SubGrid::box_cells(&SubGrid::recv_box_of(inner.n, inner.ghost, dir));
    match tree.neighbor_of(leaf, dir) {
        Neighbor::SameLevel(nb) => {
            let mut out = inner.pool.checkout_empty(inner.nfields * cells);
            grids[&nb].read().pack_send_into(dir.opposite(), &mut out);
            Some(out)
        }
        Neighbor::Coarser(c) => {
            let mut out = inner.pool.checkout_empty(inner.nfields * cells);
            let coarse = grids[&c].read();
            pack_prolonged(&coarse, c, leaf, dir, inner.n, inner.ghost, &mut out);
            Some(out)
        }
        Neighbor::Finer(kids) => {
            let mut out = inner.pool.checkout_empty(inner.nfields * cells);
            let kid_grids: HashMap<NodeId, Arc<RwLock<SubGrid>>> =
                kids.iter().map(|k| (*k, grids[k].clone())).collect();
            pack_restricted(
                &kid_grids,
                leaf,
                dir,
                inner.n,
                inner.ghost,
                inner.nfields,
                &mut out,
            );
            Some(out)
        }
        Neighbor::DomainBoundary => None,
    }
}

/// Fill the ghost region toward `dir` by copying the nearest interior layer
/// (zero-gradient outflow, Octo-Tiger's outer boundary condition).
pub fn apply_outflow(grid: &mut SubGrid, dir: Dir) {
    let b = grid.recv_box(dir);
    let g = grid.ghost();
    let n = grid.n();
    let clamp = |v: usize| v.clamp(g, g + n - 1);
    for f in 0..grid.nfields() {
        for i in b[0].0..b[0].1 {
            for j in b[1].0..b[1].1 {
                for k in b[2].0..b[2].1 {
                    let v = grid.get(f, clamp(i), clamp(j), clamp(k));
                    grid.set(f, i, j, k, v);
                }
            }
        }
    }
}

/// Floor division of possibly-negative global indices.
#[inline]
fn div_floor(a: i64, b: i64) -> i64 {
    a.div_euclid(b)
}

/// Payload for a fine leaf whose neighbour in `dir` is one level coarser:
/// piecewise-constant prolongation of the coarse interior onto the fine
/// ghost region, pushed into `out` (cleared first).
#[allow(clippy::too_many_arguments)]
fn pack_prolonged(
    coarse: &SubGrid,
    coarse_id: NodeId,
    fine_id: NodeId,
    dir: Dir,
    n: usize,
    ghost: usize,
    out: &mut Vec<f64>,
) {
    let fine_coords = fine_id.coords();
    let coarse_coords = coarse_id.coords();
    // Shape of the fine ghost region (same as recv_box of the fine grid).
    let b = SubGrid::recv_box_of(n, ghost, dir);
    out.clear();
    let ni = n as i64;
    let gi = ghost as i64;
    for f in 0..coarse.nfields() {
        for i in b[0].0..b[0].1 {
            for j in b[1].0..b[1].1 {
                for k in b[2].0..b[2].1 {
                    let s = [i as i64, j as i64, k as i64];
                    let mut lc = [0usize; 3];
                    for a in 0..3 {
                        // Global fine index of this ghost cell.
                        let gf = i64::from(fine_coords[a]) * ni + s[a] - gi;
                        // Enclosing global coarse cell.
                        let gc = div_floor(gf, 2);
                        // Local storage index within the coarse grid.
                        let l = gc - i64::from(coarse_coords[a]) * ni + gi;
                        debug_assert!(
                            (0..(ni + 2 * gi)).contains(&l),
                            "prolongation index out of range"
                        );
                        lc[a] = l as usize;
                    }
                    out.push(coarse.get(f, lc[0], lc[1], lc[2]));
                }
            }
        }
    }
}

/// Payload for a coarse leaf whose same-level neighbour in `dir` is refined:
/// conservative 8-cell average of the fine children's interiors onto the
/// coarse ghost region, pushed into `out` (cleared first).
#[allow(clippy::too_many_arguments)]
fn pack_restricted(
    kids: &HashMap<NodeId, Arc<RwLock<SubGrid>>>,
    coarse_id: NodeId,
    dir: Dir,
    n: usize,
    ghost: usize,
    nfields: usize,
    out: &mut Vec<f64>,
) {
    let coarse_coords = coarse_id.coords();
    let b = SubGrid::recv_box_of(n, ghost, dir);
    out.clear();
    let ni = n as i64;
    let gi = ghost as i64;
    // Lock each child once.
    let locked: HashMap<NodeId, parking_lot::RwLockReadGuard<'_, SubGrid>> =
        kids.iter().map(|(id, g)| (*id, g.read())).collect();
    for f in 0..nfields {
        for i in b[0].0..b[0].1 {
            for j in b[1].0..b[1].1 {
                for k in b[2].0..b[2].1 {
                    let s = [i as i64, j as i64, k as i64];
                    // Global coarse cell of this ghost cell.
                    let mut gc = [0i64; 3];
                    for a in 0..3 {
                        gc[a] = i64::from(coarse_coords[a]) * ni + s[a] - gi;
                    }
                    // Average the 2×2×2 fine cells it covers.
                    let mut acc = 0.0;
                    for di in 0..2i64 {
                        for dj in 0..2i64 {
                            for dk in 0..2i64 {
                                let gf = [2 * gc[0] + di, 2 * gc[1] + dj, 2 * gc[2] + dk];
                                // Which fine leaf holds this cell?
                                let leaf_coords = [
                                    div_floor(gf[0], ni),
                                    div_floor(gf[1], ni),
                                    div_floor(gf[2], ni),
                                ];
                                let fine_level = coarse_id.level() + 1;
                                let fid = NodeId::from_coords(
                                    fine_level,
                                    [
                                        leaf_coords[0] as u32,
                                        leaf_coords[1] as u32,
                                        leaf_coords[2] as u32,
                                    ],
                                );
                                let grid = locked
                                    .get(&fid)
                                    .unwrap_or_else(|| panic!("restriction source {fid} missing"));
                                let li = (gf[0] - leaf_coords[0] * ni + gi) as usize;
                                let lj = (gf[1] - leaf_coords[1] * ni + gi) as usize;
                                let lk = (gf[2] - leaf_coords[2] * ni + gi) as usize;
                                acc += grid.get(f, li, lj, lk);
                            }
                        }
                    }
                    out.push(acc / 8.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fill every leaf with a globally smooth linear field so ghost values
    /// are predictable: field value = physical x + 10 y + 100 z at the cell
    /// center.
    fn fill_linear(dg: &DistGrid) {
        for leaf in dg.leaves() {
            let (corner, size) = leaf.cube();
            let n = dg.n();
            let h = size / n as f64;
            let grid = dg.grid(leaf);
            let mut g = grid.write();
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let x = corner[0] + (i as f64 + 0.5) * h;
                        let y = corner[1] + (j as f64 + 0.5) * h;
                        let z = corner[2] + (k as f64 + 0.5) * h;
                        g.set_interior(0, i, j, k, x + 10.0 * y + 100.0 * z);
                    }
                }
            }
        }
    }

    fn check_same_level_ghosts(dg: &DistGrid) {
        // After exchange, for same-level interior-adjacent leaves the ghost
        // cells must equal the linear field evaluated at the ghost cell
        // centers.
        for leaf in dg.leaves() {
            let (corner, size) = leaf.cube();
            let n = dg.n();
            let gw = dg.ghost_width();
            let h = size / n as f64;
            let tree_ok = dg.with_tree(|t| {
                Dir::all26().all(|d| {
                    !matches!(t.neighbor_of(leaf, d), Neighbor::DomainBoundary)
                        && matches!(t.neighbor_of(leaf, d), Neighbor::SameLevel(_))
                })
            });
            if !tree_ok {
                continue; // only interior same-level leaves in this check
            }
            let grid = dg.grid(leaf);
            let g = grid.read();
            let ext = g.ext();
            for i in 0..ext {
                for j in 0..ext {
                    for k in 0..ext {
                        let x = corner[0] + (i as f64 - gw as f64 + 0.5) * h;
                        let y = corner[1] + (j as f64 - gw as f64 + 0.5) * h;
                        let z = corner[2] + (k as f64 - gw as f64 + 0.5) * h;
                        let expect = x + 10.0 * y + 100.0 * z;
                        let got = g.get(0, i, j, k);
                        assert!(
                            (got - expect).abs() < 1e-12,
                            "leaf {leaf} cell ({i},{j},{k}): got {got}, want {expect}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn uniform_exchange_direct_path() {
        let cluster = SimCluster::new(2, 2);
        let dg = DistGrid::new(Tree::new_uniform(2), 4, 2, 1, &cluster);
        fill_linear(&dg);
        let direct = dg.exchange_ghosts(&cluster, GhostConfig::default());
        assert!(direct > 0, "expected some direct local links");
        check_same_level_ghosts(&dg);
        cluster.shutdown();
    }

    #[test]
    fn uniform_exchange_parcel_path_matches_direct() {
        let cluster = SimCluster::new(2, 2);
        let dg = DistGrid::new(Tree::new_uniform(2), 4, 2, 1, &cluster);
        fill_linear(&dg);
        let direct = dg.exchange_ghosts(
            &cluster,
            GhostConfig {
                direct_local_access: false,
                notify_with_channels: false,
            },
        );
        assert_eq!(direct, 0, "optimization off: no direct links");
        check_same_level_ghosts(&dg);
        // Every link went through parcels.
        let totals = cluster.total_counters();
        assert!(totals.parcels_sent > 0);
        cluster.shutdown();
    }

    #[test]
    fn channel_notification_variant_works() {
        let cluster = SimCluster::new(1, 2);
        let dg = DistGrid::new(Tree::new_uniform(1), 4, 1, 1, &cluster);
        fill_linear(&dg);
        dg.exchange_ghosts(
            &cluster,
            GhostConfig {
                direct_local_access: true,
                notify_with_channels: true,
            },
        );
        check_same_level_ghosts(&dg);
        cluster.shutdown();
    }

    #[test]
    fn outflow_boundary_extrapolates() {
        let cluster = SimCluster::new(1, 1);
        let dg = DistGrid::new(Tree::new_uniform(0), 4, 2, 1, &cluster);
        fill_linear(&dg);
        dg.exchange_ghosts(&cluster, GhostConfig::default());
        let grid = dg.grid(NodeId::ROOT);
        let g = grid.read();
        // -x ghost cells replicate the first interior layer.
        for j in 2..6 {
            for k in 2..6 {
                let inner = g.get(0, 2, j, k);
                assert_eq!(g.get(0, 0, j, k), inner);
                assert_eq!(g.get(0, 1, j, k), inner);
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn amr_exchange_prolongs_and_restricts() {
        let cluster = SimCluster::new(1, 2);
        let mut tree = Tree::new_uniform(1);
        tree.refine_balanced(NodeId::from_coords(1, [0, 0, 0]));
        let dg = DistGrid::new(tree, 4, 2, 1, &cluster);
        fill_linear(&dg);
        dg.exchange_ghosts(&cluster, GhostConfig::default());

        // Fine leaf looking at the coarser region: ghost = coarse cell value
        // (piecewise constant), i.e. within one coarse cell width of the
        // linear field.
        let fine = NodeId::from_coords(2, [1, 0, 0]);
        let coarse_h = 0.5 / 4.0; // coarse leaf size 0.5, n = 4
        let (corner, size) = fine.cube();
        let h = size / 4.0;
        let grid = dg.grid(fine);
        let g = grid.read();
        // +x ghosts come from the coarser leaf at [1,0,0] level 1.
        for i in 6..8usize {
            for j in 2..6usize {
                for k in 2..6usize {
                    let x = corner[0] + (i as f64 - 2.0 + 0.5) * h;
                    let y = corner[1] + (j as f64 - 2.0 + 0.5) * h;
                    let z = corner[2] + (k as f64 - 2.0 + 0.5) * h;
                    let expect = x + 10.0 * y + 100.0 * z;
                    let got = g.get(0, i, j, k);
                    assert!(
                        (got - expect).abs() <= 111.0 * coarse_h,
                        "prolonged ghost too far off: got {got}, want ~{expect}"
                    );
                }
            }
        }
        drop(g);

        // Coarse leaf looking at the refined region: ghost = average of fine
        // cells; for a linear field the average is exact at the coarse cell
        // center.
        let coarse = NodeId::from_coords(1, [1, 0, 0]);
        let (ccorner, csize) = coarse.cube();
        let ch = csize / 4.0;
        let cgrid = dg.grid(coarse);
        let cg = cgrid.read();
        for i in 0..2usize {
            for j in 2..6usize {
                for k in 2..6usize {
                    let x = ccorner[0] + (i as f64 - 2.0 + 0.5) * ch;
                    let y = ccorner[1] + (j as f64 - 2.0 + 0.5) * ch;
                    let z = ccorner[2] + (k as f64 - 2.0 + 0.5) * ch;
                    let expect = x + 10.0 * y + 100.0 * z;
                    let got = cg.get(0, i, j, k);
                    assert!(
                        (got - expect).abs() < 1e-12,
                        "restricted ghost: got {got}, want {expect}"
                    );
                }
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn refine_prolongs_payload_and_reassigns_owner() {
        let cluster = SimCluster::new(2, 1);
        let dg = DistGrid::new(Tree::new_uniform(1), 4, 1, 1, &cluster);
        fill_linear(&dg);
        let target = NodeId::from_coords(1, [0, 0, 0]);
        let parent_owner = dg.owner(target);
        let parent_sum = dg.grid(target).read().interior_sum(0);
        dg.refine_balanced(target);
        // Children exist, inherit the owner, and conserve the parent's mean.
        let mut child_sum = 0.0;
        for oct in crate::index::Octant::all() {
            let child = target.child(oct);
            assert_eq!(dg.owner(child), parent_owner);
            child_sum += dg.grid(child).read().interior_sum(0);
        }
        // Piecewise-constant prolongation: each parent value appears 8×.
        assert!((child_sum - 8.0 * parent_sum).abs() < 1e-9);
        cluster.shutdown();
    }

    #[test]
    fn derefine_restricts_payload_and_collapses_octet() {
        let cluster = SimCluster::new(2, 1);
        let dg = DistGrid::new(Tree::new_uniform(1), 4, 1, 1, &cluster);
        fill_linear(&dg);
        let target = NodeId::from_coords(1, [0, 0, 0]);
        let owner_before = dg.owner(target);
        let sum_before = dg.grid(target).read().interior_sum(0);
        dg.refine_balanced(target);
        dg.derefine_balanced(target);
        // Round trip: the collapsed parent reproduces the linear field
        // exactly (prolongation is piecewise constant, restriction averages
        // the 8 copies back) and keeps the octet's owner.
        assert_eq!(dg.owner(target), owner_before);
        let sum_after = dg.grid(target).read().interior_sum(0);
        assert!((sum_after - sum_before).abs() < 1e-9);
        assert!(dg.leaves().contains(&target));
        for oct in crate::index::Octant::all() {
            assert!(!dg.leaves().contains(&target.child(oct)));
        }
        cluster.shutdown();
    }

    /// Full-walk payload demand, the reference the patched cache must match.
    fn walked_demand(dg: &DistGrid) -> HashMap<usize, i64> {
        let mut demand = HashMap::new();
        for leaf in dg.leaves() {
            dg.fold_leaf_demand(&mut demand, leaf, 1);
        }
        demand.retain(|_, c| *c != 0);
        demand
    }

    #[test]
    fn payload_demand_cache_patches_across_regrids() {
        let cluster = SimCluster::new(1, 1);
        let dg = DistGrid::new(Tree::new_uniform(2), 4, 2, 3, &cluster);
        fill_linear(&dg);
        dg.take_regrid_delta(); // drain the seed delta
        dg.exchange_ghosts(&cluster, GhostConfig::default()); // populates the cache

        // A mixed episode: refine one corner, round-trip another so the
        // patch exercises both the refine and derefine arithmetic.
        dg.refine_balanced(NodeId::from_coords(2, [0, 0, 0]));
        dg.refine_balanced(NodeId::from_coords(2, [3, 3, 3]));
        dg.derefine_balanced(NodeId::from_coords(2, [3, 3, 3]));
        let delta = dg.take_regrid_delta(); // patches the cache leaf-locally
        assert!(!delta.is_empty());

        let cached = {
            let guard = dg.inner.payload_demand.lock();
            let (version, demand) = guard.as_ref().expect("cache survived the patch");
            assert_eq!(*version, dg.topology_version());
            let mut demand = demand.clone();
            demand.retain(|_, c| *c != 0);
            demand
        };
        assert_eq!(cached, walked_demand(&dg));

        // And the next exchange runs off the patched cache without panicking.
        dg.exchange_ghosts(&cluster, GhostConfig::default());
        cluster.shutdown();
    }

    #[test]
    fn unseen_regrid_invalidates_payload_demand_cache() {
        let cluster = SimCluster::new(1, 1);
        let dg = DistGrid::new(Tree::new_uniform(1), 4, 2, 1, &cluster);
        fill_linear(&dg);
        dg.take_regrid_delta();
        dg.exchange_ghosts(&cluster, GhostConfig::default());

        // Regrid, then prewarm again WITHOUT draining: the cache version is
        // stale, so the walk refreshes it in place.
        dg.refine_balanced(NodeId::from_coords(1, [0, 1, 0]));
        dg.exchange_ghosts(&cluster, GhostConfig::default());
        {
            let guard = dg.inner.payload_demand.lock();
            let (version, demand) = guard.as_ref().expect("walk refreshed the cache");
            assert_eq!(*version, dg.topology_version());
            let mut demand = demand.clone();
            demand.retain(|_, c| *c != 0);
            assert_eq!(demand, walked_demand(&dg));
        }

        // The pending delta no longer spans the cached (current) version's
        // start, but versions now match, so draining keeps the cache.
        dg.take_regrid_delta();
        assert!(dg.inner.payload_demand.lock().is_some());
        cluster.shutdown();
    }

    /// All-ready gate map: the pipelined exchange degenerates to "interiors
    /// are final", i.e. the same precondition the barrier exchange assumes.
    fn all_ready(dg: &DistGrid) -> HashMap<NodeId, hpx_rt::Future<()>> {
        dg.leaves()
            .into_iter()
            .map(|l| (l, hpx_rt::make_ready_future(())))
            .collect()
    }

    #[test]
    fn pipelined_exchange_resolves_each_link_exactly_once() {
        let cluster = SimCluster::new(2, 2);
        let dg = DistGrid::new(Tree::new_uniform(2), 4, 2, 1, &cluster);
        fill_linear(&dg);
        let ex = dg.exchange_ghosts_pipelined(&cluster, GhostConfig::default(), &all_ready(&dg));
        assert_eq!(ex.total_links, dg.total_ghost_links());
        for f in ex.ghosts_filled.values() {
            f.wait();
        }
        for f in ex.outgoing_packed.values() {
            f.wait();
        }
        // Every link wrote its ghost region exactly once: the counter lands
        // exactly on the link total, never above it.
        assert_eq!(ex.links_resolved.load(Ordering::SeqCst), ex.total_links);
        check_same_level_ghosts(&dg);
        cluster.shutdown();
    }

    #[test]
    fn pipelined_direct_link_accounting_matches_barrier_path() {
        // Same tree and partition on two clusters; the pipelined exchange
        // must classify exactly the same links as direct-local, and its
        // direct-access counters must match the barrier path's.
        let barrier_cluster = SimCluster::new(2, 2);
        let barrier_dg = DistGrid::new(Tree::new_uniform(2), 4, 2, 1, &barrier_cluster);
        fill_linear(&barrier_dg);
        let barrier_direct = barrier_dg.exchange_ghosts(&barrier_cluster, GhostConfig::default());

        let cluster = SimCluster::new(2, 2);
        let dg = DistGrid::new(Tree::new_uniform(2), 4, 2, 1, &cluster);
        fill_linear(&dg);
        let ex = dg.exchange_ghosts_pipelined(&cluster, GhostConfig::default(), &all_ready(&dg));
        for f in ex.ghosts_filled.values() {
            f.wait();
        }
        assert_eq!(ex.direct_links, barrier_direct);
        let direct_ctr = cluster.total_counters().local_direct_accesses;
        let barrier_ctr = barrier_cluster.total_counters().local_direct_accesses;
        assert_eq!(direct_ctr, barrier_ctr);

        // And the resulting fields are identical, cell for cell.
        for leaf in dg.leaves() {
            let a = dg.grid(leaf);
            let b = barrier_dg.grid(leaf);
            let (a, b) = (a.read(), b.read());
            let ext = a.ext();
            for i in 0..ext {
                for j in 0..ext {
                    for k in 0..ext {
                        assert_eq!(a.get(0, i, j, k), b.get(0, i, j, k), "leaf {leaf}");
                    }
                }
            }
        }
        cluster.shutdown();
        barrier_cluster.shutdown();
    }

    #[test]
    fn pipelined_exchange_gates_on_source_readiness() {
        let cluster = SimCluster::new(1, 2);
        let dg = DistGrid::new(Tree::new_uniform(1), 4, 1, 1, &cluster);
        fill_linear(&dg);
        let leaves = dg.leaves();
        // Hold back one leaf: at level 1 all eight leaves touch at the
        // domain center, so every other leaf reads it.
        let held = leaves[0];
        let (hold_p, hold_f) = hpx_rt::Promise::new_pair();
        let ready: HashMap<NodeId, hpx_rt::Future<()>> = leaves
            .iter()
            .map(|&l| {
                let f = if l == held {
                    hold_f.clone()
                } else {
                    hpx_rt::make_ready_future(())
                };
                (l, f)
            })
            .collect();
        let ex = dg.exchange_ghosts_pipelined(&cluster, GhostConfig::default(), &ready);
        std::thread::sleep(std::time::Duration::from_millis(30));
        for &l in &leaves {
            assert!(
                !ex.ghosts_filled[&l].is_ready(),
                "leaf {l} filled its ghosts before its source was ready"
            );
        }
        assert!(!ex.outgoing_packed[&held].is_ready());
        hold_p.set(());
        for f in ex.ghosts_filled.values() {
            f.wait();
        }
        for f in ex.outgoing_packed.values() {
            f.wait();
        }
        assert_eq!(ex.links_resolved.load(Ordering::SeqCst), ex.total_links);
        check_same_level_ghosts(&dg);
        cluster.shutdown();
    }

    #[test]
    fn repeated_exchange_recycles_every_payload() {
        let cluster = SimCluster::new(2, 2);
        let dg = DistGrid::new(Tree::new_uniform(2), 4, 2, 1, &cluster);
        fill_linear(&dg);
        // Warm up until the pool covers the peak concurrent demand: task
        // interleaving varies run to run (and with worker count), so the
        // high-water mark can take several rounds to reach.  Steady state
        // is reached once three consecutive rounds allocate nothing.
        dg.exchange_ghosts(&cluster, GhostConfig::default());
        let warm = dg.scratch().stats();
        assert!(warm.misses > 0, "warm-up must populate the pool");
        let mut prev = warm.misses;
        let mut stable = 0;
        let mut rounds = 0;
        while stable < 3 && rounds < 40 {
            dg.exchange_ghosts(&cluster, GhostConfig::default());
            let misses = dg.scratch().stats().misses;
            if misses == prev {
                stable += 1;
            } else {
                stable = 0;
                prev = misses;
            }
            rounds += 1;
        }
        assert_eq!(
            stable, 3,
            "steady-state exchange must allocate nothing (misses still growing after {rounds} rounds)"
        );
        assert!(dg.scratch().stats().hits > warm.hits);
        // A parcel reply's last reference can be dropped on the remote
        // pump's worker thread, so the final return may land a beat after
        // the exchange itself completes: poll for it instead of sampling
        // once.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let in_use = dg.scratch().stats().bytes_in_use;
            if in_use == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "payloads not returned to the pool: {in_use} bytes still checked out"
            );
            std::thread::yield_now();
        }
        cluster.shutdown();
    }

    #[test]
    fn direct_link_count_matches_partition_locality() {
        let cluster = SimCluster::new(1, 1);
        let dg = DistGrid::new(Tree::new_uniform(1), 4, 1, 1, &cluster);
        fill_linear(&dg);
        let direct = dg.exchange_ghosts(&cluster, GhostConfig::default());
        // Single locality: every non-boundary link is direct.
        let expected: usize = dg.with_tree(|t| {
            t.leaves()
                .iter()
                .map(|&l| {
                    Dir::all26()
                        .filter(|&d| !matches!(t.neighbor_of(l, d), Neighbor::DomainBoundary))
                        .count()
                })
                .sum()
        });
        assert_eq!(direct, expected);
        assert_eq!(cluster.total_counters().parcels_sent, 0);
        cluster.shutdown();
    }
}
