//! The `N × N × N` sub-grid each octree leaf carries, with ghost shells.
//!
//! Octo-Tiger associates each leaf with a sub-grid of evolved state
//! variables (N typically 8) surrounded by ghost layers filled from the 26
//! neighbours before each solver stage.  This module owns the raw storage
//! (`nfields` fields of `(N+2G)³` cells), the ghost-region geometry, the
//! pack/unpack routines used by the exchange, and the inter-level transfer
//! operators (piecewise-constant prolongation, conservative averaging
//! restriction) used across AMR level jumps and on refine/derefine.

use crate::index::Dir;

/// A dense block of `nfields` scalar fields over `(n + 2*ghost)³` cells.
///
/// Storage coordinates run over `[0, n + 2*ghost)` per dimension; the
/// interior occupies `[ghost, ghost + n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubGrid {
    n: usize,
    ghost: usize,
    nfields: usize,
    data: Vec<f64>,
}

/// Half-open per-dimension index ranges describing a box in storage
/// coordinates.
pub type Box3 = [(usize, usize); 3];

impl SubGrid {
    /// Create a zero-initialized sub-grid.
    ///
    /// # Panics
    /// Panics if `n` or `nfields` is zero (ghost width may be zero for
    /// gravity-only grids).
    pub fn new(n: usize, ghost: usize, nfields: usize) -> SubGrid {
        assert!(n > 0, "sub-grid extent must be positive");
        assert!(nfields > 0, "need at least one field");
        assert!(
            ghost <= n,
            "ghost width wider than the interior is unsupported"
        );
        let ext = n + 2 * ghost;
        SubGrid {
            n,
            ghost,
            nfields,
            data: vec![0.0; nfields * ext * ext * ext],
        }
    }

    /// Interior extent per dimension (the paper's N).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Ghost width per side.
    pub fn ghost(&self) -> usize {
        self.ghost
    }

    /// Number of fields.
    pub fn nfields(&self) -> usize {
        self.nfields
    }

    /// Storage extent per dimension (`n + 2*ghost`).
    pub fn ext(&self) -> usize {
        self.n + 2 * self.ghost
    }

    /// Number of interior cells (`n³`).
    pub fn interior_cells(&self) -> usize {
        self.n * self.n * self.n
    }

    #[inline(always)]
    fn offset(&self, f: usize, i: usize, j: usize, k: usize) -> usize {
        let ext = self.ext();
        debug_assert!(f < self.nfields && i < ext && j < ext && k < ext);
        ((f * ext + i) * ext + j) * ext + k
    }

    /// Read a cell in storage coordinates (ghosts included).
    #[inline(always)]
    pub fn get(&self, f: usize, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.offset(f, i, j, k)]
    }

    /// Write a cell in storage coordinates (ghosts included).
    #[inline(always)]
    pub fn set(&mut self, f: usize, i: usize, j: usize, k: usize, v: f64) {
        let o = self.offset(f, i, j, k);
        self.data[o] = v;
    }

    /// Read an interior cell (`i, j, k ∈ [0, n)`).
    #[inline(always)]
    pub fn get_interior(&self, f: usize, i: usize, j: usize, k: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n && k < self.n);
        self.get(f, i + self.ghost, j + self.ghost, k + self.ghost)
    }

    /// Write an interior cell (`i, j, k ∈ [0, n)`).
    #[inline(always)]
    pub fn set_interior(&mut self, f: usize, i: usize, j: usize, k: usize, v: f64) {
        debug_assert!(i < self.n && j < self.n && k < self.n);
        self.set(f, i + self.ghost, j + self.ghost, k + self.ghost, v);
    }

    /// Whole field as a flat slice in storage order.
    pub fn field(&self, f: usize) -> &[f64] {
        let ext3 = self.ext().pow(3);
        &self.data[f * ext3..(f + 1) * ext3]
    }

    /// Whole field as a mutable flat slice in storage order.
    pub fn field_mut(&mut self, f: usize) -> &mut [f64] {
        let ext3 = self.ext().pow(3);
        &mut self.data[f * ext3..(f + 1) * ext3]
    }

    /// Two distinct fields, one mutable (for `dst[i] = f(src[i])` kernels).
    ///
    /// # Panics
    /// Panics if `fa == fb`.
    pub fn fields_pair_mut(&mut self, fa: usize, fb: usize) -> (&mut [f64], &[f64]) {
        assert_ne!(fa, fb, "fields_pair_mut requires distinct fields");
        let ext3 = self.ext().pow(3);
        if fa < fb {
            let (lo, hi) = self.data.split_at_mut(fb * ext3);
            (&mut lo[fa * ext3..(fa + 1) * ext3], &hi[..ext3])
        } else {
            let (lo, hi) = self.data.split_at_mut(fa * ext3);
            (&mut hi[..ext3], &lo[fb * ext3..(fb + 1) * ext3])
        }
    }

    /// Fill every cell of every field with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Sum of a field over the interior (for conservation ledgers).
    pub fn interior_sum(&self, f: usize) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                for k in 0..self.n {
                    acc += self.get_interior(f, i, j, k);
                }
            }
        }
        acc
    }

    // ---------------------------------------------------------------
    // Ghost-region geometry
    // ---------------------------------------------------------------

    /// Source box (in storage coords) of the interior data this grid must
    /// *send* toward direction `dir`.
    pub fn send_box(&self, dir: Dir) -> Box3 {
        Self::send_box_of(self.n, self.ghost, dir)
    }

    /// [`SubGrid::send_box`] from geometry alone, without a grid in hand.
    pub fn send_box_of(n: usize, ghost: usize, dir: Dir) -> Box3 {
        let mut out = [(0usize, 0usize); 3];
        for (axis, d) in dir.as_array().into_iter().enumerate() {
            out[axis] = match d {
                -1 => (ghost, 2 * ghost),
                0 => (ghost, ghost + n),
                1 => (n, n + ghost),
                _ => unreachable!(),
            };
        }
        out
    }

    /// Destination box (in storage coords) of the ghost cells this grid
    /// *receives* from its neighbour in direction `dir`.
    pub fn recv_box(&self, dir: Dir) -> Box3 {
        Self::recv_box_of(self.n, self.ghost, dir)
    }

    /// [`SubGrid::recv_box`] from geometry alone, without a grid in hand.
    pub fn recv_box_of(n: usize, ghost: usize, dir: Dir) -> Box3 {
        let mut out = [(0usize, 0usize); 3];
        for (axis, d) in dir.as_array().into_iter().enumerate() {
            out[axis] = match d {
                -1 => (0, ghost),
                0 => (ghost, ghost + n),
                1 => (ghost + n, n + 2 * ghost),
                _ => unreachable!(),
            };
        }
        out
    }

    /// Number of cells in a box.
    pub fn box_cells(b: &Box3) -> usize {
        b.iter().map(|&(lo, hi)| hi - lo).product()
    }

    /// Pack all fields over `b` (field-major, then i, j, k order).
    pub fn pack_box(&self, b: &Box3) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.nfields * Self::box_cells(b));
        self.pack_box_into(b, &mut out);
        out
    }

    /// Pack all fields over `b` into `out` (cleared first) — the
    /// allocation-free variant: hand it a pooled buffer whose capacity is
    /// `nfields * box_cells(b)` and no heap traffic occurs.
    pub fn pack_box_into(&self, b: &Box3, out: &mut Vec<f64>) {
        out.clear();
        for f in 0..self.nfields {
            for i in b[0].0..b[0].1 {
                for j in b[1].0..b[1].1 {
                    for k in b[2].0..b[2].1 {
                        out.push(self.get(f, i, j, k));
                    }
                }
            }
        }
    }

    /// Unpack `data` (as produced by [`SubGrid::pack_box`] over a box of the
    /// same shape) into `b`.
    ///
    /// # Panics
    /// Panics if `data` has the wrong length.
    pub fn unpack_box(&mut self, b: &Box3, data: &[f64]) {
        assert_eq!(
            data.len(),
            self.nfields * Self::box_cells(b),
            "ghost payload length mismatch"
        );
        let mut it = data.iter();
        for f in 0..self.nfields {
            for i in b[0].0..b[0].1 {
                for j in b[1].0..b[1].1 {
                    for k in b[2].0..b[2].1 {
                        self.set(f, i, j, k, *it.next().expect("length checked"));
                    }
                }
            }
        }
    }

    /// Pack the slab this grid sends toward `dir` (same-level exchange).
    pub fn pack_send(&self, dir: Dir) -> Vec<f64> {
        self.pack_box(&self.send_box(dir))
    }

    /// Allocation-free variant of [`SubGrid::pack_send`].
    pub fn pack_send_into(&self, dir: Dir, out: &mut Vec<f64>) {
        self.pack_box_into(&self.send_box(dir), out);
    }

    /// Copy every cell of every field from `src` without touching the
    /// allocation (`clone_from_slice`), unlike the derived `Clone` which
    /// reallocates.
    ///
    /// # Panics
    /// Panics if the grids disagree in shape.
    pub fn copy_from(&mut self, src: &SubGrid) {
        assert_eq!(
            (self.n, self.ghost, self.nfields),
            (src.n, src.ghost, src.nfields),
            "copy_from shape mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Flat-index runs `(start, len)` covering exactly the ghost cells of
    /// *one* field, in storage order.  Rows fully outside the interior are
    /// one run; interior rows contribute their two ghost caps.  Computed
    /// once per leaf workspace and reused to zero ghost fields each stage
    /// without re-walking the geometry.
    pub fn ghost_runs(&self) -> Vec<(usize, usize)> {
        let (g, n, ext) = (self.ghost, self.n, self.ext());
        let mut runs = Vec::new();
        if g == 0 {
            return runs;
        }
        let interior = g..g + n;
        for i in 0..ext {
            for j in 0..ext {
                let row = (i * ext + j) * ext;
                if interior.contains(&i) && interior.contains(&j) {
                    runs.push((row, g));
                    runs.push((row + g + n, g));
                } else {
                    runs.push((row, ext));
                }
            }
        }
        runs
    }

    /// Unpack a same-level slab received *from* direction `dir`.
    ///
    /// The payload must come from the neighbour's `pack_send(dir.opposite())`.
    pub fn unpack_recv(&mut self, dir: Dir, data: &[f64]) {
        self.unpack_box(&self.recv_box(dir), data);
    }

    /// Wire size in bytes of one same-level exchange payload toward `dir`.
    pub fn payload_bytes(&self, dir: Dir) -> usize {
        self.nfields * Self::box_cells(&self.send_box(dir)) * std::mem::size_of::<f64>()
    }

    // ---------------------------------------------------------------
    // Inter-level transfer (AMR)
    // ---------------------------------------------------------------

    /// Build the child sub-grid for `octant` by piecewise-constant
    /// prolongation of this grid's interior (used on refine).  Ghosts of
    /// the child are left zero (filled by the next exchange).
    ///
    /// # Panics
    /// Panics if `n` is odd.
    pub fn prolong_child(&self, octant: crate::index::Octant) -> SubGrid {
        assert!(self.n.is_multiple_of(2), "prolongation requires even N");
        let half = self.n / 2;
        let [ox, oy, oz] = octant.xyz();
        let mut child = SubGrid::new(self.n, self.ghost, self.nfields);
        for f in 0..self.nfields {
            for i in 0..self.n {
                for j in 0..self.n {
                    for k in 0..self.n {
                        let pi = usize::from(ox) * half + i / 2;
                        let pj = usize::from(oy) * half + j / 2;
                        let pk = usize::from(oz) * half + k / 2;
                        child.set_interior(f, i, j, k, self.get_interior(f, pi, pj, pk));
                    }
                }
            }
        }
        child
    }

    /// Accumulate `child`'s interior into the `octant` region of this grid
    /// by conservative 2×2×2 averaging (used on derefine and in the FMM's
    /// upward pass restriction of densities).
    ///
    /// # Panics
    /// Panics if `n` is odd or the grids disagree in shape.
    pub fn restrict_from_child(&mut self, octant: crate::index::Octant, child: &SubGrid) {
        assert!(self.n.is_multiple_of(2), "restriction requires even N");
        assert_eq!(self.n, child.n, "parent/child N mismatch");
        assert_eq!(self.nfields, child.nfields, "parent/child field mismatch");
        let half = self.n / 2;
        let [ox, oy, oz] = octant.xyz();
        for f in 0..self.nfields {
            for i in 0..half {
                for j in 0..half {
                    for k in 0..half {
                        let mut acc = 0.0;
                        for di in 0..2 {
                            for dj in 0..2 {
                                for dk in 0..2 {
                                    acc +=
                                        child.get_interior(f, 2 * i + di, 2 * j + dj, 2 * k + dk);
                                }
                            }
                        }
                        self.set_interior(
                            f,
                            usize::from(ox) * half + i,
                            usize::from(oy) * half + j,
                            usize::from(oz) * half + k,
                            acc / 8.0,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Octant;

    fn filled(n: usize, g: usize, nf: usize) -> SubGrid {
        let mut sg = SubGrid::new(n, g, nf);
        let ext = sg.ext();
        for f in 0..nf {
            for i in 0..ext {
                for j in 0..ext {
                    for k in 0..ext {
                        sg.set(f, i, j, k, (f * 1000 + i * 100 + j * 10 + k) as f64);
                    }
                }
            }
        }
        sg
    }

    #[test]
    fn construction_and_extents() {
        let sg = SubGrid::new(8, 2, 5);
        assert_eq!(sg.ext(), 12);
        assert_eq!(sg.interior_cells(), 512);
        assert_eq!(sg.field(0).len(), 12 * 12 * 12);
        assert_eq!(sg.nfields(), 5);
    }

    #[test]
    fn interior_indexing_offsets_by_ghost() {
        let mut sg = SubGrid::new(4, 2, 1);
        sg.set_interior(0, 0, 0, 0, 7.0);
        assert_eq!(sg.get(0, 2, 2, 2), 7.0);
        sg.set_interior(0, 3, 3, 3, 9.0);
        assert_eq!(sg.get(0, 5, 5, 5), 9.0);
    }

    #[test]
    fn send_recv_boxes_are_consistent() {
        let sg = SubGrid::new(8, 2, 1);
        for dir in Dir::all26() {
            let s = sg.send_box(dir);
            let r = sg.recv_box(dir.opposite());
            // The slab I send toward `dir` has the same shape as the ghost
            // region my neighbour fills from me (received from `-dir`).
            let s_shape: Vec<usize> = s.iter().map(|&(a, b)| b - a).collect();
            let r_shape: Vec<usize> = r.iter().map(|&(a, b)| b - a).collect();
            assert_eq!(s_shape, r_shape, "shape mismatch for {dir:?}");
        }
    }

    #[test]
    fn face_exchange_roundtrip() {
        // Grid A's +x slab must land in grid B's -x ghost region such that
        // continuing the global index space is seamless.
        let mut a = SubGrid::new(4, 2, 2);
        let mut b = SubGrid::new(4, 2, 2);
        // Fill a with values encoding global x-index (a occupies x in 0..4).
        for f in 0..2 {
            for i in 0..4 {
                for j in 0..4 {
                    for k in 0..4 {
                        a.set_interior(f, i, j, k, (f * 100 + i) as f64);
                        b.set_interior(f, i, j, k, (f * 100 + i + 4) as f64);
                    }
                }
            }
        }
        let dir = Dir::new(1, 0, 0);
        let payload = a.pack_send(dir);
        // B receives from its -x side.
        b.unpack_recv(dir.opposite(), &payload);
        // B's ghost cells at storage x=0,1 must now carry a's interior x=2,3.
        for f in 0..2 {
            for j in 2..6 {
                for k in 2..6 {
                    assert_eq!(b.get(f, 0, j, k), (f * 100 + 2) as f64);
                    assert_eq!(b.get(f, 1, j, k), (f * 100 + 3) as f64);
                }
            }
        }
    }

    #[test]
    fn corner_exchange_has_ghost_cubed_cells() {
        let sg = filled(8, 2, 1);
        let dir = Dir::new(1, 1, 1);
        let payload = sg.pack_send(dir);
        assert_eq!(payload.len(), 2 * 2 * 2);
    }

    #[test]
    fn edge_exchange_size() {
        let sg = SubGrid::new(8, 2, 3);
        let dir = Dir::new(1, 0, -1);
        assert_eq!(sg.pack_send(dir).len(), 3 * 2 * 8 * 2);
        assert_eq!(sg.payload_bytes(dir), 3 * 2 * 8 * 2 * 8);
    }

    #[test]
    fn pack_unpack_box_roundtrip() {
        let src = filled(4, 1, 2);
        let b: Box3 = [(1, 3), (0, 2), (2, 5)];
        let data = src.pack_box(&b);
        let mut dst = SubGrid::new(4, 1, 2);
        dst.unpack_box(&b, &data);
        for f in 0..2 {
            for i in 1..3 {
                for j in 0..2 {
                    for k in 2..5 {
                        assert_eq!(dst.get(f, i, j, k), src.get(f, i, j, k));
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "payload length mismatch")]
    fn unpack_wrong_length_panics() {
        let mut sg = SubGrid::new(4, 1, 1);
        let b = sg.recv_box(Dir::new(1, 0, 0));
        sg.unpack_box(&b, &[0.0; 3]);
    }

    #[test]
    fn fields_pair_mut_disjoint() {
        let mut sg = filled(4, 1, 3);
        let expect_src: Vec<f64> = sg.field(2).to_vec();
        let (dst, src) = sg.fields_pair_mut(0, 2);
        assert_eq!(src, &expect_src[..]);
        dst[0] = -1.0;
        assert_eq!(sg.field(0)[0], -1.0);
        let (dst2, src2) = sg.fields_pair_mut(2, 0);
        assert_eq!(src2[0], -1.0);
        dst2[0] = -2.0;
        assert_eq!(sg.field(2)[0], -2.0);
    }

    #[test]
    fn prolong_then_restrict_is_identity_on_means() {
        // Piecewise-constant prolongation followed by 8-cell averaging must
        // reproduce the parent exactly (conservation round-trip).
        let mut parent = SubGrid::new(8, 1, 2);
        for f in 0..2 {
            for i in 0..8 {
                for j in 0..8 {
                    for k in 0..8 {
                        parent.set_interior(f, i, j, k, (f * 512 + i * 64 + j * 8 + k) as f64);
                    }
                }
            }
        }
        let mut rebuilt = SubGrid::new(8, 1, 2);
        for oct in Octant::all() {
            let child = parent.prolong_child(oct);
            rebuilt.restrict_from_child(oct, &child);
        }
        for f in 0..2 {
            for i in 0..8 {
                for j in 0..8 {
                    for k in 0..8 {
                        assert_eq!(
                            rebuilt.get_interior(f, i, j, k),
                            parent.get_interior(f, i, j, k)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn restriction_conserves_totals() {
        let mut parent = SubGrid::new(4, 1, 1);
        let mut total_children = 0.0;
        for oct in Octant::all() {
            let mut child = SubGrid::new(4, 1, 1);
            for i in 0..4 {
                for j in 0..4 {
                    for k in 0..4 {
                        child.set_interior(0, i, j, k, (oct.0 as f64) + 0.125);
                    }
                }
            }
            total_children += child.interior_sum(0) / 8.0; // child cells are 8× smaller
            parent.restrict_from_child(oct, &child);
        }
        let total_parent = parent.interior_sum(0);
        assert!((total_parent - total_children).abs() < 1e-12);
    }

    #[test]
    fn interior_sum_ignores_ghosts() {
        let mut sg = SubGrid::new(2, 1, 1);
        sg.fill(100.0);
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    sg.set_interior(0, i, j, k, 1.0);
                }
            }
        }
        assert_eq!(sg.interior_sum(0), 8.0);
    }

    #[test]
    #[should_panic(expected = "distinct fields")]
    fn fields_pair_mut_same_field_panics() {
        let mut sg = SubGrid::new(2, 0, 2);
        let _ = sg.fields_pair_mut(1, 1);
    }

    #[test]
    fn pack_box_into_matches_pack_box() {
        let src = filled(4, 1, 2);
        let b: Box3 = [(1, 3), (0, 2), (2, 5)];
        let mut out = Vec::new();
        out.push(99.0); // stale content must be cleared
        src.pack_box_into(&b, &mut out);
        assert_eq!(out, src.pack_box(&b));
        let mut out2 = Vec::new();
        let dir = Dir::new(1, 0, -1);
        src.pack_send_into(dir, &mut out2);
        assert_eq!(out2, src.pack_send(dir));
    }

    #[test]
    fn copy_from_preserves_allocation_and_contents() {
        let src = filled(4, 2, 3);
        let mut dst = SubGrid::new(4, 2, 3);
        let ptr = dst.data.as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.data.as_ptr(), ptr, "copy_from must not reallocate");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn copy_from_rejects_shape_mismatch() {
        let src = SubGrid::new(4, 1, 1);
        let mut dst = SubGrid::new(4, 2, 1);
        dst.copy_from(&src);
    }

    #[test]
    fn ghost_runs_cover_exactly_the_ghost_cells() {
        for (n, g) in [(4usize, 1usize), (4, 2), (8, 2), (2, 0)] {
            let sg = SubGrid::new(n, g, 1);
            let ext = sg.ext();
            let runs = sg.ghost_runs();
            let mut marked = vec![false; ext * ext * ext];
            for (start, len) in runs {
                for o in start..start + len {
                    assert!(!marked[o], "run overlap at {o} for n={n} g={g}");
                    marked[o] = true;
                }
            }
            let interior = g..g + n;
            for i in 0..ext {
                for j in 0..ext {
                    for k in 0..ext {
                        let is_ghost = !(interior.contains(&i)
                            && interior.contains(&j)
                            && interior.contains(&k));
                        assert_eq!(
                            marked[(i * ext + j) * ext + k],
                            is_ghost,
                            "cell ({i},{j},{k}) n={n} g={g}"
                        );
                    }
                }
            }
        }
    }
}
