//! Per-locality subtree views over a partitioned octree.
//!
//! Once leaves are assigned to localities ([`crate::partition`]), each
//! locality sees the tree through a [`Shard`]: the leaves it owns (in SFC
//! order, the order every fixed-fold summation uses) plus *remote-leaf
//! stubs* — the halo of leaves owned elsewhere whose data its ghost links
//! read.  A stub carries no sub-grid storage; its payloads arrive as
//! parcels.  The distributed gravity solver derives its own (wider) halo
//! from the interaction plan; this module is the ghost-exchange view and
//! the bookkeeping the distributed models in `hpx-check` exercise.

use crate::ghost::ghost_link_specs;
use crate::tree::Tree;
use crate::NodeId;
use hpx_rt::LocalityId;
use std::collections::{HashMap, HashSet};

/// One locality's view of the partitioned tree.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Which locality this view belongs to.
    pub locality: LocalityId,
    /// Leaves owned by this locality, in SFC order.
    pub owned: Vec<NodeId>,
    /// Remote-leaf stubs: leaves owned elsewhere that this locality's
    /// ghost links read, in SFC order, deduplicated.
    pub halo: Vec<NodeId>,
    owned_set: HashSet<NodeId>,
    halo_set: HashSet<NodeId>,
}

impl Shard {
    /// Does this locality own `leaf`?
    pub fn owns(&self, leaf: NodeId) -> bool {
        self.owned_set.contains(&leaf)
    }

    /// Is `leaf` a remote stub in this view (read via parcels, not owned)?
    pub fn is_remote_stub(&self, leaf: NodeId) -> bool {
        self.halo_set.contains(&leaf)
    }
}

/// The full set of per-locality shards for one partition.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: Vec<Shard>,
    remote_links: usize,
}

impl ShardMap {
    /// Build per-locality views from a partition over `num_localities`.
    ///
    /// The halo of locality `p` is every ghost-link source leaf owned by a
    /// different locality than the link's destination leaf — exactly the
    /// links `DistGrid` routes as parcels instead of direct access.
    pub fn build(
        tree: &Tree,
        owner: &HashMap<NodeId, LocalityId>,
        num_localities: usize,
    ) -> ShardMap {
        let mut owned: Vec<Vec<NodeId>> = vec![Vec::new(); num_localities];
        for leaf in tree.leaves() {
            owned[owner[&leaf].0].push(leaf);
        }
        let mut halo_sets: Vec<HashSet<NodeId>> = vec![HashSet::new(); num_localities];
        let mut remote_links = 0usize;
        for link in ghost_link_specs(tree) {
            let me = owner[&link.leaf];
            let mut crossed = false;
            for src in &link.sources {
                if owner[src] != me {
                    crossed = true;
                    halo_sets[me.0].insert(*src);
                }
            }
            remote_links += usize::from(crossed);
        }
        let shards = owned
            .into_iter()
            .zip(halo_sets)
            .enumerate()
            .map(|(p, (owned, halo_set))| {
                let mut halo: Vec<NodeId> = halo_set.iter().copied().collect();
                halo.sort_by_key(|l| l.sfc_key());
                Shard {
                    locality: LocalityId(p),
                    owned_set: owned.iter().copied().collect(),
                    owned,
                    halo,
                    halo_set,
                }
            })
            .collect();
        ShardMap {
            shards,
            remote_links,
        }
    }

    /// The shard of locality `loc`.
    pub fn shard(&self, loc: LocalityId) -> &Shard {
        &self.shards[loc.0]
    }

    /// All shards, locality 0 first.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of localities in the partition.
    pub fn num_localities(&self) -> usize {
        self.shards.len()
    }

    /// Ghost links with at least one cross-locality source (each becomes a
    /// parcel round-trip in the distributed exchange).
    pub fn remote_links(&self) -> usize {
        self.remote_links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_morton;

    #[test]
    fn single_locality_has_no_stubs() {
        let tree = Tree::new_uniform(2);
        let owner = partition_morton(&tree, 1);
        let map = ShardMap::build(&tree, &owner, 1);
        assert_eq!(map.num_localities(), 1);
        assert_eq!(map.remote_links(), 0);
        let shard = map.shard(LocalityId(0));
        assert_eq!(shard.owned.len(), 64);
        assert!(shard.halo.is_empty());
    }

    #[test]
    fn shards_cover_leaves_disjointly() {
        let tree = Tree::new_uniform(2);
        let owner = partition_morton(&tree, 4);
        let map = ShardMap::build(&tree, &owner, 4);
        let mut seen = HashSet::new();
        for shard in map.shards() {
            for &leaf in &shard.owned {
                assert!(seen.insert(leaf), "{leaf:?} owned twice");
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn stubs_are_remote_and_cover_cross_links() {
        let tree = Tree::new_uniform(2);
        let owner = partition_morton(&tree, 4);
        let map = ShardMap::build(&tree, &owner, 4);
        assert!(map.remote_links() > 0);
        for shard in map.shards() {
            assert!(!shard.halo.is_empty(), "{:?} has no halo", shard.locality);
            for &stub in &shard.halo {
                assert!(!shard.owns(stub), "halo leaf owned locally");
                assert!(shard.is_remote_stub(stub));
                assert_ne!(owner[&stub], shard.locality);
            }
        }
        // Every cross-locality link source appears as a stub of the
        // destination's shard.
        for link in ghost_link_specs(&tree) {
            let me = owner[&link.leaf];
            for src in &link.sources {
                if owner[src] != me {
                    assert!(map.shard(me).is_remote_stub(*src));
                }
            }
        }
    }

    #[test]
    fn refined_tree_stubs_follow_the_partition() {
        let mut tree = Tree::new_uniform(1);
        let first = tree.leaves()[0];
        tree.refine_balanced(first);
        let owner = partition_morton(&tree, 2);
        let map = ShardMap::build(&tree, &owner, 2);
        let total: usize = map.shards().iter().map(|s| s.owned.len()).sum();
        assert_eq!(total, tree.num_leaves());
        assert!(map.remote_links() > 0);
    }
}
