//! # octree — the AMR substrate under Octo-Tiger
//!
//! Octo-Tiger's grid (paper Section IV-C) is an adaptive-mesh-refinement
//! octree in which **every node is either a leaf or a fully refined interior
//! node** (all eight children exist), and each leaf carries an `N × N × N`
//! sub-grid of hydrodynamic state (N is typically 8).  Refinement follows
//! the density field and binary-component tracer fields.  Neighbouring
//! sub-grids exchange ghost layers every solver stage; in distributed runs
//! those exchanges are HPX actions unless both sub-grids live on the same
//! locality and the Section VII-B *communication optimization* short-cuts
//! them to direct memory access guarded by promise/future notifications.
//!
//! Modules:
//!
//! * [`index`] — octant paths, integer coordinates, 26-neighbour arithmetic
//!   and space-filling-curve keys.
//! * [`subgrid`] — the `N³` cell block with ghost shells, packing/unpacking
//!   of face/edge/corner regions, and inter-level prolongation/restriction.
//! * [`tree`] — the octree itself with full-refinement and 2:1-balance
//!   invariants, refinement driven by a criterion callback.
//! * [`ghost`] — distributed ghost-layer exchange over `hpx-rt` localities,
//!   with the communication-optimization fast path.
//! * [`partition`] — Morton-order space-filling-curve and recursive
//!   coordinate-bisection partitioning of leaves over localities.
//! * [`shard`] — per-locality subtree views (owned leaves + remote-leaf
//!   stubs) over a partition, the distributed stepper's ownership map.

pub mod ghost;
pub mod index;
pub mod partition;
pub mod shard;
pub mod subgrid;
pub mod tree;

pub use ghost::{ghost_link_specs, DistGrid, GhostConfig, LinkSpec, PipelinedExchange};
pub use index::{Dir, NodeId, Octant, MAX_LEVEL};
pub use partition::{
    partition_morton, partition_rcb, partition_rcb_with_cuts, verify_partition, PartitionStats,
    RcbCut,
};
pub use shard::{Shard, ShardMap};
pub use subgrid::SubGrid;
pub use tree::{Neighbor, RegridDelta, Tree};
