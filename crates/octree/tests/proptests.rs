//! Property-based tests of the AMR substrate: random refinement sequences,
//! random ghost-region round-trips, partition totality.

use octree::{
    partition_morton, partition_rcb, partition_rcb_with_cuts, Dir, NodeId, Octant, SubGrid, Tree,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Build a random adaptive tree by refining seq-picked leaves (capped at
/// level 4) — the shared generator for the partition properties below.
fn random_tree(seq: &[usize]) -> Tree {
    let mut tree = Tree::new_uniform(1);
    for &s in seq {
        let leaves = tree.leaves();
        let pick = leaves[s % leaves.len()];
        if pick.level() < 4 {
            tree.refine_balanced(pick);
        }
    }
    tree
}

proptest! {
    #[test]
    fn refinement_sequences_preserve_invariants(seq in prop::collection::vec(0usize..512, 0..10)) {
        let mut tree = Tree::new_uniform(1);
        for s in seq {
            let leaves = tree.leaves();
            let pick = leaves[s % leaves.len()];
            if pick.level() < 4 {
                tree.refine_balanced(pick);
            }
        }
        prop_assert!(tree.check_invariants().is_ok());
    }

    #[test]
    fn derefine_after_refine_preserves_invariants(seq in prop::collection::vec((0usize..64, any::<bool>()), 1..12)) {
        let mut tree = Tree::new_uniform(1);
        for (s, deref) in seq {
            if deref {
                let interiors = tree.interior_at_level(1);
                if !interiors.is_empty() {
                    let t = interiors[s % interiors.len()];
                    tree.derefine(t); // may refuse; either way invariants hold
                }
            } else {
                let leaves = tree.leaves();
                let pick = leaves[s % leaves.len()];
                if pick.level() < 3 {
                    tree.refine_balanced(pick);
                }
            }
            prop_assert!(tree.check_invariants().is_ok());
        }
    }

    #[test]
    fn pack_unpack_roundtrip_for_every_direction(values in prop::collection::vec(-1.0e3f64..1e3, 64),
                                                 dir_idx in 0usize..26) {
        let dir = Dir::all26().nth(dir_idx).expect("26 directions");
        let mut src = SubGrid::new(4, 2, 1);
        // Fill the interior deterministically from `values`.
        let mut it = values.iter().cycle();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    src.set_interior(0, i, j, k, *it.next().expect("cycled"));
                }
            }
        }
        let payload = src.pack_send(dir);
        let mut dst = SubGrid::new(4, 2, 1);
        dst.unpack_recv(dir.opposite(), &payload);
        // The receiving ghost region must hold exactly the packed data in
        // order; repack it from the ghost side and compare.
        let ghost_box = dst.recv_box(dir.opposite());
        let back = dst.pack_box(&ghost_box);
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn prolong_restrict_roundtrip_random_fields(values in prop::collection::vec(-10.0f64..10.0, 64)) {
        let mut parent = SubGrid::new(4, 1, 1);
        let mut it = values.iter();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    parent.set_interior(0, i, j, k, *it.next().expect("64 values"));
                }
            }
        }
        let mut rebuilt = SubGrid::new(4, 1, 1);
        for oct in Octant::all() {
            let child = parent.prolong_child(oct);
            rebuilt.restrict_from_child(oct, &child);
        }
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    prop_assert!((rebuilt.get_interior(0, i, j, k)
                        - parent.get_interior(0, i, j, k)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn partition_total_and_contiguous(level in 1u8..3, parts in 1usize..20) {
        let tree = Tree::new_uniform(level);
        let owner = partition_morton(&tree, parts);
        prop_assert_eq!(owner.len(), tree.num_leaves());
        let mut prev = 0usize;
        for leaf in tree.leaves() {
            let p = owner[&leaf].0;
            prop_assert!(p >= prev);
            prop_assert!(p < parts);
            prev = p;
        }
    }

    #[test]
    fn every_leaf_owned_by_exactly_one_locality(seq in prop::collection::vec(0usize..512, 0..8),
                                                parts in 1usize..9,
                                                lane_pow in 0u32..4) {
        let lane = 1usize << lane_pow;
        let tree = random_tree(&seq);
        for owner in [partition_morton(&tree, parts), partition_rcb(&tree, parts, lane)] {
            // Totality: the map covers the leaf set exactly (every leaf has
            // an owner; a HashMap can't assign a leaf twice).
            prop_assert_eq!(owner.len(), tree.num_leaves());
            for leaf in tree.leaves() {
                let p = owner[&leaf].0;
                prop_assert!(p < parts, "owner {} out of range", p);
            }
        }
    }

    #[test]
    fn sfc_cuts_stay_contiguous_on_adaptive_trees(seq in prop::collection::vec(0usize..512, 0..8),
                                                  parts in 1usize..9) {
        let tree = random_tree(&seq);
        let owner = partition_morton(&tree, parts);
        // Walking the leaves in SFC order, the owner index never decreases:
        // each locality owns one contiguous curve segment.
        let mut prev = 0usize;
        for leaf in tree.leaves() {
            let p = owner[&leaf].0;
            prop_assert!(p >= prev, "SFC cut not contiguous: {} after {}", p, prev);
            prev = p;
        }
    }

    #[test]
    fn rcb_cuts_are_lane_aligned(seq in prop::collection::vec(0usize..512, 0..8),
                                 parts in 1usize..9,
                                 lane_pow in 0u32..4) {
        let lane = 1usize << lane_pow;
        let tree = random_tree(&seq);
        let (owner, cuts) = partition_rcb_with_cuts(&tree, parts, lane);
        prop_assert_eq!(owner.len(), tree.num_leaves());
        for cut in cuts {
            prop_assert!(cut.begin <= cut.cut && cut.cut <= cut.end);
            // The invariant the distributed stepper leans on: every
            // bisection boundary sits where RangePolicy::split would put a
            // lane-aligned task boundary.
            prop_assert_eq!((cut.cut - cut.begin) % lane, 0,
                            "cut {} in [{}, {}) not aligned to lane {}",
                            cut.cut, cut.begin, cut.end, lane);
        }
    }

    #[test]
    fn repartition_after_refine_covers_new_leaves(seq in prop::collection::vec(0usize..512, 1..8),
                                                  parts in 1usize..5) {
        let mut tree = Tree::new_uniform(1);
        let before: HashMap<_, _> = partition_morton(&tree, parts);
        for &s in &seq {
            let leaves = tree.leaves();
            let pick = leaves[s % leaves.len()];
            if pick.level() < 4 {
                tree.refine_balanced(pick);
            }
        }
        // After refinement the stale map misses the new leaves...
        let still_covered = tree.leaves().iter().all(|l| before.contains_key(l));
        prop_assert!(tree.num_leaves() == before.len() || !still_covered);
        // ...and a repartition covers every leaf again, for both partitioners.
        for owner in [partition_morton(&tree, parts), partition_rcb(&tree, parts, 8)] {
            prop_assert_eq!(owner.len(), tree.num_leaves());
            for leaf in tree.leaves() {
                prop_assert!(owner.contains_key(&leaf), "new leaf unowned after repartition");
            }
        }
    }

    #[test]
    fn sfc_keys_are_unique_over_mixed_levels(seq in prop::collection::vec(0usize..512, 0..6)) {
        let mut tree = Tree::new_uniform(1);
        for s in seq {
            let leaves = tree.leaves();
            let pick = leaves[s % leaves.len()];
            if pick.level() < 4 {
                tree.refine_balanced(pick);
            }
        }
        let leaves = tree.leaves();
        let mut keys: Vec<u128> = leaves.iter().map(|l| l.sfc_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), leaves.len(), "duplicate SFC keys");
    }

    #[test]
    fn neighbor_queries_never_panic_on_balanced_trees(seq in prop::collection::vec(0usize..512, 0..8)) {
        let mut tree = Tree::new_uniform(1);
        for s in seq {
            let leaves = tree.leaves();
            let pick = leaves[s % leaves.len()];
            if pick.level() < 4 {
                tree.refine_balanced(pick);
            }
        }
        for leaf in tree.leaves() {
            for dir in Dir::all26() {
                let _ = tree.neighbor_of(leaf, dir);
            }
        }
        // Reaching here without panicking is the property.
        prop_assert!(true);
    }
}

#[test]
fn node_id_ordering_matches_sfc_on_a_uniform_level() {
    // On one level, SFC order equals path order.
    let tree = Tree::new_uniform(2);
    let leaves = tree.leaves();
    for w in leaves.windows(2) {
        assert!(w[0].path() < w[1].path());
    }
    assert_eq!(leaves.len(), 64);
    assert_eq!(leaves[0], NodeId::from_coords(2, [0, 0, 0]));
}
