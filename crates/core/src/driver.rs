//! The time-step driver: Octo-Tiger's per-step orchestration.
//!
//! One step (paper Sections IV-B/IV-C): solve gravity with the FMM, pick
//! the global fixed Δt from the CFL reduction, then run three SSP-RK3
//! stages, each preceded by a ghost-layer exchange.  Every leaf's hydro
//! RHS is an independently launched kernel — the paper counts "multiple
//! (> 10) kernel launches per sub-grid in each time-step", which is
//! exactly what the launch counter here reproduces — and leaves execute as
//! HPX tasks on their owner locality's worker pool.
//!
//! The driver reports the paper's throughput metric: **processed cells per
//! second** (Figures 4–10 all plot cells/s or sub-grids/s).

use crate::diag::ConservationLedger;
use crate::gravity::direct::PointMasses;
use crate::gravity::{GravityOptions, GravitySolver, LeafField, LeafSources};
use crate::hydro::{self, HydroOptions, SourceInput};
use crate::state::field;
use crate::units::BOX_SIZE;
use crate::workspace::{self, LeafWorkspace};
use hpx_rt::{Future, SimCluster};
use kokkos_rs::pool::ScratchArena;
use kokkos_rs::ExecSpace;
use octree::{DistGrid, GhostConfig, NodeId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use sve_simd::VectorMode;

/// Shared handle to the per-leaf workspace table, cloned into stage tasks.
type WorkspaceMap = Arc<HashMap<NodeId, Arc<parking_lot::Mutex<LeafWorkspace>>>>;

/// All the paper's run-time switches in one place.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// SIMD width (Figure 7: scalar vs SVE).
    pub vector_mode: VectorMode,
    /// Ghost-exchange configuration (Figure 8: communication optimization).
    pub ghost: GhostConfig,
    /// Solve self-gravity each step.
    pub gravity: bool,
    /// FMM options (Figure 9: `tasks_per_multipole_kernel`).
    pub gravity_opts: GravityOptions,
    /// Rotating-frame frequency (from the scenario's SCF model).
    pub omega: f64,
    /// CFL number.
    pub cfl: f64,
    /// Futurized per-leaf stepper: instead of a barrier between ghost
    /// exchange and RK stage, every leaf's stage kernel chains on the
    /// per-neighbor ghost futures it actually reads, so interior leaves of
    /// stage N+1 run while boundary exchanges of stage N are in flight and
    /// the gravity FMM overlaps the first stage's ghost fill.  Bit-identical
    /// physics to the barrier path (see `tests/switch_equivalence.rs`).
    pub pipeline: bool,
    /// Arm the `hpx-rt` blocked-worker watchdog for this run: a worker stuck
    /// on an unresolved future for this many milliseconds (with nothing to
    /// help with) aborts with a deadlock diagnosis instead of hanging, and
    /// the fire is exported as the `/threads/count/watchdog-fires` counter.
    /// `None` keeps the build default (30 s in debug, off in release —
    /// release runs can also opt in via `HPX_WATCHDOG_MS`); `Some(0)`
    /// disables it.
    pub watchdog_ms: Option<u64>,
    /// Reuse the per-leaf workspaces and scratch arena across steps (the
    /// CPPuddle-style zero-allocation steady state).  `false` rebuilds every
    /// workspace from a fresh arena each step — physics is bit-identical
    /// (see `tests/scratch_recycling.rs`), only allocation traffic changes.
    pub recycle_scratch: bool,
    /// Reuse the FMM interaction plan across steps while the tree topology
    /// is unchanged (Octo-Tiger computes interaction lists once per
    /// regrid).  `false` invalidates the plan before every solve — the
    /// traverse-every-step reference configuration; physics is
    /// bit-identical (see `tests/gravity_plan.rs`), only traversal work
    /// changes.
    pub cache_gravity_plan: bool,
    /// Simulated localities to shard the gravity octree over (clamped to
    /// the cluster's locality count).  `1` — the reference configuration —
    /// runs the plain shared-memory solve; `> 1` partitions the leaves
    /// with [`octree::partition_morton`], runs each shard's kernels on its
    /// own locality's runtime, and moves every cross-locality interaction
    /// as a typed parcel (metered under `/octotiger/parcels/*`).  Physics
    /// is bit-identical either way (see `tests/distributed_equivalence.rs`).
    /// Defaults from `OCTO_LOCALITIES` (CI's distribution axis).
    pub localities: usize,
    /// Mid-run adaptive regridding: every `Some(k)` steps the driver runs
    /// the density/shock criterion pass ([`Simulation::regrid`]) before the
    /// step proper, hands the resulting [`octree::RegridDelta`] to the
    /// gravity solver (which patches its cached plans subtree-locally
    /// instead of rebuilding them), and rebuilds only the touched leaves'
    /// workspaces.  `None` — the default — never regrids mid-run.
    /// Defaults from `OCTO_REGRID_CADENCE` (CI's adaptive-run axis).
    pub regrid_cadence: Option<usize>,
    /// Maximum refinement level the cadence-driven criterion pass may
    /// create (the `max_level` argument of [`Simulation::regrid`]).
    pub regrid_max_level: u8,
    /// Refine a leaf when its peak interior density exceeds this (paper
    /// Section IV-C: "AMR is based on the density field").
    pub regrid_refine_threshold: f64,
    /// Also refine when the relative density jump between adjacent cells
    /// exceeds this (a shock indicator; `INFINITY` disables it).
    pub regrid_shock_threshold: f64,
    /// Coarsen an octet back into its parent when every child's peak
    /// density falls below this (`0.0` disables coarsening).
    pub regrid_coarsen_threshold: f64,
    /// Online auto-tuning of task granularity (the closed-loop Figure 9):
    /// an [`hpx_rt::Tuner`] reads the step's apex timer windows and
    /// adaptively picks `tasks_per_kernel` for the gravity kernel families,
    /// the hydro-RHS leaves-per-task grouping, and the pipelined-vs-barrier
    /// stepper.  Every knob flows through the chunk-count-independent
    /// launch paths, so physics is bit-identical tuner-on vs tuner-off
    /// (see `tests/autotune_equivalence.rs`).  Defaults from
    /// `OCTO_AUTOTUNE` (`1`/`true`/`on`).
    pub autotune: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            // SVE unless overridden through OCTO_VECTOR_MODE (CI runs the
            // suite once per backend via that switch).
            vector_mode: VectorMode::env_default(),
            ghost: GhostConfig::default(),
            gravity: true,
            gravity_opts: GravityOptions::default(),
            omega: 0.0,
            cfl: 0.4,
            pipeline: false,
            watchdog_ms: None,
            recycle_scratch: true,
            cache_gravity_plan: true,
            localities: std::env::var("OCTO_LOCALITIES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(1),
            regrid_cadence: std::env::var("OCTO_REGRID_CADENCE")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&k| k > 0),
            regrid_max_level: 3,
            regrid_refine_threshold: 1.0,
            regrid_shock_threshold: f64::INFINITY,
            regrid_coarsen_threshold: 0.0,
            autotune: std::env::var("OCTO_AUTOTUNE")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on"))
                .unwrap_or(false),
        }
    }
}

// Kernel-family names the driver registers with the tuner.  The three
// gravity knobs share one apex signal (`gravity:kernels`), so they are
// observed through `Tuner::observe_shared`.
const TUNE_M2L: &str = "gravity:m2l";
const TUNE_P2P: &str = "gravity:p2p";
const TUNE_SLOT: &str = "gravity:slot";
const TUNE_HYDRO: &str = "hydro:rhs";
const TUNE_STEPPER: &str = "stepper";

/// Telemetry of one step.
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// SIMD backend the step's kernels ran on (Figure 7 axis).
    pub vector_mode: VectorMode,
    /// Time step used.
    pub dt: f64,
    /// Simulation time after the step.
    pub time: f64,
    /// Interior cells processed (3 RK stages × cells).
    pub cells_processed: u64,
    /// Wall-clock seconds.
    pub elapsed_seconds: f64,
    /// The paper's throughput metric.
    pub cells_per_second: f64,
    /// Kernel launches this step (hydro RHS + stage combines + gravity).
    pub kernel_launches: u64,
    /// Ghost links served via the direct local path (Figure 8 numerator).
    pub direct_ghost_links: u64,
    /// Mass that left through the outflow boundary during this step.
    pub mass_outflow: f64,
    /// (leaf, direction) ghost links this step across all RK stages.
    pub ghost_links_total: u64,
    /// Ghost links whose data actually arrived (equals the total when the
    /// step drained cleanly; the pipelined stepper asserts this).
    pub ghost_links_resolved: u64,
    /// Communication/compute overlap: leaf stage kernels that started while
    /// their stage's ghost exchange still had unresolved links elsewhere.
    /// Always 0 for the barrier stepper, which fully drains each exchange
    /// before launching any kernel.
    pub overlapped_tasks: u64,
    /// Scratch-pool checkouts served from a free list (cumulative across
    /// the run; kernel-scratch, gravity, and ghost-payload pools combined).
    pub scratch_hits: u64,
    /// Scratch-pool checkouts that had to allocate (cumulative).  In steady
    /// state this stops growing after the first step.
    pub scratch_misses: u64,
    /// Bytes currently checked out of the scratch pools.
    pub scratch_bytes_in_use: u64,
    /// High-water mark of bytes simultaneously checked out.
    pub scratch_high_water: u64,
    /// FMM interaction counts, if gravity ran.
    pub gravity_stats: Option<crate::gravity::solver::SolveStats>,
    /// Whether this step's gravity solve reused the cached interaction
    /// plan (`false` when the plan was rebuilt — first step, post-regrid,
    /// or `cache_gravity_plan = false` — and when gravity is off).
    pub gravity_plan_hit: bool,
    /// Leaves refined by this step's cadence-driven regrid pass (0 when no
    /// regrid ran; also exported as `/octotiger/regrid/refined`).
    pub regrid_refined: u64,
    /// Octets coarsened by this step's cadence-driven regrid pass (also
    /// exported as `/octotiger/regrid/derefined`).
    pub regrid_derefined: u64,
    /// Whether this step's gravity plans were *patched* subtree-locally
    /// from the regrid delta instead of rebuilt from scratch (the
    /// `/octotiger/regrid/plan-patched` path; `false` when no regrid ran,
    /// the topology was unchanged, or the solver fell back to a rebuild).
    pub gravity_plan_patched: bool,
    /// The granularity tuner's chosen configs and activity counts after
    /// this step (`None` unless [`SimOptions::autotune`] is on).
    pub tuner: Option<hpx_rt::TunerSnapshot>,
}

/// Breakdown of one [`Simulation::regrid`] criterion pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegridOutcome {
    /// Leaves split into octets (including 2:1-balance drag-alongs).
    pub refined: usize,
    /// Octets collapsed back into their parent leaf.
    pub derefined: usize,
}

impl RegridOutcome {
    /// Did the pass change the topology at all?
    pub fn changed(&self) -> bool {
        self.refined > 0 || self.derefined > 0
    }
}

/// A running simulation bound to a cluster's localities.
pub struct Simulation {
    /// The distributed AMR grid.
    pub grid: DistGrid,
    /// Options (mutable between steps, like re-launching with new flags).
    pub opts: SimOptions,
    /// Current simulation time.
    pub time: f64,
    /// Steps taken.
    pub step_count: u64,
    /// Cumulative mass that left the domain through the outflow boundary
    /// (tracked so the conservation ledger closes to machine precision).
    pub mass_outflow: f64,
    /// APEX-style phase profiler (paper conclusion: "more runs using HPX's
    /// performance counters or APEX are needed" — here it is built in).
    pub apex: hpx_rt::Apex,
    /// FMM statistics of the most recent gravity solve.
    last_gravity_stats: Option<crate::gravity::solver::SolveStats>,
    /// The simulation's scratch arena: kernel scratch and gravity fields
    /// check their buffers out of this pool.
    scratch: ScratchArena,
    /// One recycled workspace per leaf, rebuilt lazily after regrids.
    workspaces: HashMap<NodeId, Arc<parking_lot::Mutex<LeafWorkspace>>>,
    /// The persistent FMM solver: its cached interaction plan (and pooled
    /// expansion buffers) survive across steps, so a solve on an unchanged
    /// tree skips the dual-tree traversal entirely.
    gravity_solver: GravitySolver,
    /// The online granularity tuner ([`SimOptions::autotune`]); its chosen
    /// configs override the static launch knobs at the start of each step.
    tuner: Option<hpx_rt::Tuner>,
    /// Leaves grouped per hydro task in [`Simulation::for_each_leaf`]
    /// (tuner-controlled; 1 = the default one-task-per-leaf launch).
    hydro_leaves_per_task: usize,
}

impl Simulation {
    /// Wrap an initialized grid.
    pub fn new(grid: DistGrid, opts: SimOptions) -> Simulation {
        // The construction-time delta (the scenario's initial refines)
        // predates every cached plan; drain it so the first mid-run
        // regrid's delta starts exactly at the version the first gravity
        // plan is built against — the precondition for patching it.
        grid.take_regrid_delta();
        let scratch = ScratchArena::new();
        let gravity_solver = GravitySolver::with_scratch(opts.gravity_opts, scratch.clone());
        let tuner = opts.autotune.then(|| Self::build_tuner(&opts));
        Simulation {
            grid,
            opts,
            time: 0.0,
            step_count: 0,
            mass_outflow: 0.0,
            apex: hpx_rt::Apex::new(false),
            last_gravity_stats: None,
            scratch,
            workspaces: HashMap::new(),
            gravity_solver,
            tuner,
            hydro_leaves_per_task: 1,
        }
    }

    /// Register the step's kernel families with a fresh tuner.  Ladders are
    /// bounded powers of two; each family starts at the static default so
    /// switching the tuner on never jumps away from a hand-tuned value.
    fn build_tuner(opts: &SimOptions) -> hpx_rt::Tuner {
        let mut tuner = hpx_rt::Tuner::new();
        // The Figure 9 knob proper: tasks per M2L kernel launch.
        tuner.register(
            TUNE_M2L,
            vec![1, 2, 4, 8, 16, 32],
            opts.gravity_opts.tasks_per_multipole_kernel.max(1),
        );
        // P2P/evaluation and the lane-aligned slot-table passes; their
        // static default is `Auto` (0), so start mid-ladder.
        let start_or = |knob: usize, auto: usize| if knob == 0 { auto } else { knob };
        tuner.register(
            TUNE_P2P,
            vec![1, 2, 4, 8, 16],
            start_or(opts.gravity_opts.tasks_per_p2p_kernel, 4),
        );
        tuner.register(
            TUNE_SLOT,
            vec![1, 2, 4, 8, 16],
            start_or(opts.gravity_opts.tasks_per_slot_kernel, 4),
        );
        // Hydro RHS: leaves grouped per task (1 = one task per leaf).
        tuner.register(TUNE_HYDRO, vec![1, 2, 4, 8, 16], 1);
        // The stepper switch: 0 = barrier, 1 = pipelined.
        tuner.register(TUNE_STEPPER, vec![0, 1], usize::from(opts.pipeline));
        tuner
    }

    /// Per-run (plan-hit, plan-rebuild) counts of the persistent gravity
    /// solver — the per-`Simulation` view of the global
    /// `/octotiger/gravity/plan-{hits,rebuilds}` counters.
    pub fn gravity_plan_counters(&self) -> (u64, u64) {
        self.gravity_solver.plan_counters()
    }

    /// Handle to the simulation's scratch arena (kernel + gravity buffers;
    /// ghost payloads live in [`DistGrid::scratch`]).
    pub fn scratch(&self) -> ScratchArena {
        self.scratch.clone()
    }

    /// Create workspaces for new leaves and drop the ones whose leaves a
    /// regrid consumed.  Dropped workspaces return their kernel scratch to
    /// the arena, so the new leaves' checkouts can recycle it.
    fn ensure_workspaces(&mut self) {
        let n = self.grid.n();
        let gw = self.grid.ghost_width();
        let leaves = self.grid.leaves();
        let live: std::collections::HashSet<NodeId> = leaves.iter().copied().collect();
        self.workspaces.retain(|id, _| live.contains(id));
        for leaf in leaves {
            self.workspaces.entry(leaf).or_insert_with(|| {
                Arc::new(parking_lot::Mutex::new(LeafWorkspace::new(
                    n,
                    gw,
                    &self.scratch,
                )))
            });
        }
    }

    /// Combined pool telemetry: the simulation arena plus the grid's
    /// ghost-payload pool, as the four `StepStats` scratch fields.
    fn scratch_telemetry(&self) -> (u64, u64, u64, u64) {
        let a = self.scratch.stats();
        let b = self.grid.scratch().stats();
        (
            a.hits + b.hits,
            a.misses + b.misses,
            a.bytes_in_use + b.bytes_in_use,
            a.high_water + b.high_water,
        )
    }

    /// Leaf-parallel execution: each locality runs its own leaves as tasks
    /// on its own worker pool, mirroring HPX's per-locality scheduling.
    ///
    /// Leaves are grouped `hydro_leaves_per_task` per task (the tuner's
    /// hydro-RHS granularity knob; default 1 = one task per leaf).  Each
    /// leaf's work is independent — per-leaf workspace, per-leaf output
    /// slot — so the grouping is bitwise neutral to the physics; it only
    /// trades spawn overhead against parallelism.
    fn for_each_leaf(&self, cluster: &SimCluster, f: impl Fn(NodeId) + Send + Sync + 'static) {
        let f = Arc::new(f);
        let group = self.hydro_leaves_per_task.max(1);
        let mut futures: Vec<Future<()>> = Vec::new();
        for loc in cluster.localities() {
            let leaves = self.grid.leaves_of(loc.id());
            if leaves.is_empty() {
                continue;
            }
            let f = f.clone();
            let rt = loc.runtime().clone();
            let rt_inner = rt.clone();
            futures.push(rt.async_call(move || {
                rt_inner.scope(|s| {
                    for chunk in leaves.chunks(group) {
                        let f = f.clone();
                        let chunk = chunk.to_vec();
                        s.spawn(move || {
                            for leaf in chunk {
                                f(leaf);
                            }
                        });
                    }
                });
            }));
        }
        for fut in futures {
            fut.wait();
        }
    }

    /// Gather per-leaf point masses for the gravity solver.
    fn leaf_sources(&self) -> HashMap<NodeId, LeafSources> {
        let n = self.grid.n();
        let mut out = HashMap::new();
        for leaf in self.grid.leaves() {
            let (corner, size) = leaf.cube();
            let h = size / n as f64;
            let h_phys = h * BOX_SIZE;
            let vol = h_phys * h_phys * h_phys;
            let handle = self.grid.grid(leaf);
            let g = handle.read();
            let mut points = PointMasses::default();
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let x = (corner[0] + (i as f64 + 0.5) * h - 0.5) * BOX_SIZE;
                        let y = (corner[1] + (j as f64 + 0.5) * h - 0.5) * BOX_SIZE;
                        let z = (corner[2] + (k as f64 + 0.5) * h - 0.5) * BOX_SIZE;
                        points.push([x, y, z], g.get_interior(field::RHO, i, j, k) * vol);
                    }
                }
            }
            out.insert(leaf, LeafSources { points });
        }
        out
    }

    /// Global CFL time step (fixed across the whole grid, per the paper).
    pub fn compute_dt(&self) -> f64 {
        let hopts = HydroOptions {
            vector_mode: self.opts.vector_mode,
            cfl: self.opts.cfl,
        };
        let mut max_speed: f64 = 1e-30;
        let mut h_min = f64::INFINITY;
        let n = self.grid.n();
        for leaf in self.grid.leaves() {
            let (_, size) = leaf.cube();
            let h = size * BOX_SIZE / n as f64;
            h_min = h_min.min(h);
            let handle = self.grid.grid(leaf);
            let speed = hydro::max_signal_speed(&handle.read(), &hopts);
            max_speed = max_speed.max(speed);
        }
        self.opts.cfl * h_min / max_speed
    }

    /// Advance one full RK3 step; returns the step telemetry.
    pub fn step(&mut self, cluster: &SimCluster) -> StepStats {
        if let Some(ms) = self.opts.watchdog_ms {
            hpx_rt::set_blocked_wait_timeout(std::time::Duration::from_millis(ms));
        }
        if !self.opts.recycle_scratch {
            // Fresh arena + workspaces every step: the unpooled reference
            // configuration the recycling equivalence tests compare against.
            self.scratch = ScratchArena::new();
            self.workspaces.clear();
            self.gravity_solver.set_scratch(self.scratch.clone());
        }
        // Options are mutable between steps: push the current FMM knobs
        // into the persistent solver (a θ change invalidates the cached
        // plan by itself, via the plan's validity key).
        self.gravity_solver.opts = GravityOptions {
            vector_mode: self.opts.vector_mode,
            ..self.opts.gravity_opts
        };
        if !self.opts.cache_gravity_plan {
            // Traverse-every-step reference configuration.
            self.gravity_solver.invalidate_plan();
        }
        // ---- Mid-run adaptive regrid (every `regrid_cadence` steps). ----
        // Runs before workspaces are ensured, so both steppers see the new
        // topology; the delta flows to the solver inside `regrid`, so the
        // step's gravity solve patches its plans instead of rebuilding.
        let regrid = match self.opts.regrid_cadence {
            Some(k) if self.step_count > 0 && self.step_count.is_multiple_of(k as u64) => {
                let _t = self.apex.timer("regrid:criterion_pass");
                self.regrid(
                    self.opts.regrid_max_level,
                    self.opts.regrid_refine_threshold,
                )
            }
            _ => RegridOutcome::default(),
        };
        // ---- Online granularity tuner (apply phase). ----
        // Runs after the regrid so `note_topology` sees the post-regrid
        // version: a topology change unfreezes every family for exactly one
        // re-probe cycle.  Applying launch knobs here — at a step boundary,
        // before any kernel of the step launches — is the safety argument:
        // no kernel is ever re-split mid-launch (see DESIGN.md and the
        // hpx-check `tuner-resplit` race model).
        let mut pipeline = self.opts.pipeline;
        if let Some(t) = &mut self.tuner {
            let ver = self.grid.with_tree(|tr| tr.topology_version());
            t.note_topology(ver);
            self.gravity_solver.opts.tasks_per_multipole_kernel = t.current(TUNE_M2L);
            self.gravity_solver.opts.tasks_per_p2p_kernel = t.current(TUNE_P2P);
            self.gravity_solver.opts.tasks_per_slot_kernel = t.current(TUNE_SLOT);
            self.hydro_leaves_per_task = t.current(TUNE_HYDRO).max(1);
            pipeline = t.current(TUNE_STEPPER) == 1;
        }
        let patches_before = self.gravity_solver.plan_patch_counters();
        self.ensure_workspaces();
        let mut stats = if pipeline {
            self.step_pipelined(cluster)
        } else {
            self.step_barrier(cluster)
        };
        let patches_after = self.gravity_solver.plan_patch_counters();
        stats.regrid_refined = regrid.refined as u64;
        stats.regrid_derefined = regrid.derefined as u64;
        stats.gravity_plan_patched = patches_after.0 > patches_before.0;
        // ---- Online granularity tuner (observe phase). ----
        // Feed the step's windowed kernel timings back, then close the
        // windows so the next step's observation is not diluted by this
        // one.  The three gravity knobs share one apex signal
        // (`gravity:kernels`); `observe_shared` attributes it to whichever
        // family is actively probing.  The pipelined stepper fuses RK
        // stages into continuations and records no `hydro:rk_stage` timer,
        // hence the window_count guards.
        if let Some(tuner) = self.tuner.as_mut() {
            let g = self.apex.stats("gravity:kernels");
            if g.window_count > 0 {
                tuner.observe_shared(&[TUNE_M2L, TUNE_SLOT, TUNE_P2P], g.window_mean_s());
            }
            let h = self.apex.stats("hydro:rk_stage");
            if h.window_count > 0 {
                tuner.observe(TUNE_HYDRO, h.window_mean_s());
            }
            tuner.observe(TUNE_STEPPER, stats.elapsed_seconds);
            self.apex.reset_window("gravity:kernels");
            self.apex.reset_window("hydro:rk_stage");
            stats.tuner = Some(tuner.snapshot());
        }
        stats
    }

    /// Apex label for the active SIMD backend, so the profile table shows
    /// scalar and SVE step time side by side (the Figure 7 comparison).
    fn simd_timer_label(&self) -> &'static str {
        match self.opts.vector_mode {
            VectorMode::Scalar => "step:simd-scalar",
            VectorMode::Sve512 => "step:simd-sve512",
        }
    }

    /// The classic stepper: a full ghost-exchange barrier before each RK
    /// stage.
    fn step_barrier(&mut self, cluster: &SimCluster) -> StepStats {
        let t0 = Instant::now();
        let _mode_timer = self.apex.timer(self.simd_timer_label());
        let leaves = self.grid.leaves();
        let n = self.grid.n();
        let n3 = (n * n * n) as u64;
        let mut kernel_launches = 0u64;
        let mut direct_ghost_links = 0u64;

        // ---- Gravity (once per step; reused across RK stages). ---------
        let gravity_fields: Option<Arc<HashMap<NodeId, LeafField>>> = if self.opts.gravity {
            let _t = self.apex.timer("gravity:solve");
            let sources = Arc::new(self.leaf_sources());
            let solver = &self.gravity_solver;
            let nloc = self.opts.localities.min(cluster.num_localities()).max(1);
            let space = ExecSpace::hpx(cluster.locality(0).runtime().clone());
            // Plan acquisition (cache hit: no traversal) and the dense
            // kernels are timed separately, so the apex report shows what
            // caching actually saves.
            let plan = {
                let _p = self.apex.timer("gravity:plan");
                self.grid.with_tree(|t| solver.plan_for(t))
            };
            let (fields, stats) = {
                let _k = self.apex.timer("gravity:kernels");
                if nloc > 1 {
                    // Shard the solve: the halo plan caches alongside the
                    // interaction plan, keyed on the same topology version.
                    let dist = {
                        let owner = self.grid.with_tree(|t| octree::partition_morton(t, nloc));
                        solver.dist_plan_for(&plan, &owner, nloc)
                    };
                    let rts: Vec<hpx_rt::Runtime> = (0..nloc)
                        .map(|i| cluster.locality(i).runtime().clone())
                        .collect();
                    solver.solve_distributed(&plan, &dist, &sources, &rts)
                } else {
                    solver.solve_with_plan(&plan, &sources, &space)
                }
            };
            kernel_launches += stats.multipole_kernel_launches as u64 + leaves.len() as u64;
            self.last_gravity_stats = Some(stats);
            Some(Arc::new(fields))
        } else {
            self.last_gravity_stats = None;
            None
        };
        let gravity_plan_hit = self.opts.gravity && self.gravity_solver.last_plan_hit();

        // ---- Global fixed time step. -----------------------------------
        let dt = {
            let _t = self.apex.timer("hydro:cfl_reduction");
            self.compute_dt()
        };

        // ---- Save u⁰ into the recycled workspaces. ----------------------
        // No tasks are in flight yet, so the try_lock never contends.
        for &l in &leaves {
            self.workspaces[&l]
                .try_lock()
                .expect("leaf workspace aliased outside a step")
                .u0
                .copy_from(&self.grid.grid(l).read());
        }
        let ws_map: WorkspaceMap = Arc::new(self.workspaces.clone());

        // ---- Three SSP-RK3 stages. --------------------------------------
        // Effective Shu-Osher weights of the three stage RHS evaluations in
        // the final update: uⁿ⁺¹ = uⁿ + Δt (L⁰/6 + L¹/6 + 2L²/3); boundary
        // outflow integrates with the same weights.
        let stage_weight = [1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0];
        // Precompute each leaf's domain-boundary face mask.
        let boundary_masks: Arc<HashMap<NodeId, [bool; 6]>> = Arc::new(self.grid.with_tree(|t| {
            leaves
                .iter()
                .map(|&l| {
                    let dirs = [
                        octree::Dir::new(-1, 0, 0),
                        octree::Dir::new(1, 0, 0),
                        octree::Dir::new(0, -1, 0),
                        octree::Dir::new(0, 1, 0),
                        octree::Dir::new(0, 0, -1),
                        octree::Dir::new(0, 0, 1),
                    ];
                    let mask = dirs
                        .map(|d| matches!(t.neighbor_of(l, d), octree::Neighbor::DomainBoundary));
                    (l, mask)
                })
                .collect()
        }));
        let mut step_outflow = 0.0;
        for stage in 0..3 {
            {
                let _t = self.apex.timer("comm:ghost_exchange");
                direct_ghost_links += self.grid.exchange_ghosts(cluster, self.opts.ghost) as u64;
            }
            let _stage_timer = self.apex.timer("hydro:rk_stage");
            let grid = self.grid.clone();
            let opts = self.opts;
            let gf = gravity_fields.clone();
            let ws_map = ws_map.clone();
            let masks = boundary_masks.clone();
            // Per-leaf outflow rates, folded in fixed leaf order after the
            // join: a shared `+=` in task-completion order would make the
            // mass ledger scheduling-dependent (float addition does not
            // associate), breaking bit-reproducibility across runs and
            // between vector widths.
            let stage_outflow: Arc<parking_lot::Mutex<HashMap<NodeId, f64>>> =
                Arc::new(parking_lot::Mutex::new(HashMap::new()));
            let stage_outflow_task = stage_outflow.clone();
            self.for_each_leaf(cluster, move |leaf| {
                let handle = grid.grid(leaf);
                let (corner, size) = leaf.cube();
                let nn = grid.n();
                let h = size * BOX_SIZE / nn as f64;
                let origin = [
                    (corner[0] + 0.5 * size / nn as f64 - 0.5) * BOX_SIZE,
                    (corner[1] + 0.5 * size / nn as f64 - 0.5) * BOX_SIZE,
                    (corner[2] + 0.5 * size / nn as f64 - 0.5) * BOX_SIZE,
                ];
                let hopts = HydroOptions {
                    vector_mode: opts.vector_mode,
                    cfl: opts.cfl,
                };
                // Each stage exchange drains before any stage task runs, so
                // exactly one task touches this leaf's workspace at a time.
                let mut guard = ws_map[&leaf]
                    .try_lock()
                    .expect("leaf workspace aliased by a concurrent task");
                let ws = &mut *guard;
                // Compute the RHS from the current state (reads), then
                // apply the stage combination (writes).
                {
                    let g = handle.read();
                    ws.u_cur.copy_from(&g);
                }
                let leaf_gravity = gf.as_ref().map(|m| &m[&leaf]);
                let gvecs = leaf_gravity.map(|f| [&f.gx[..], &f.gy[..], &f.gz[..]]);
                let src = SourceInput {
                    gravity: gvecs,
                    omega: opts.omega,
                    origin,
                    h,
                    boundary_faces: masks[&leaf],
                };
                let info =
                    hydro::compute_rhs(&ws.u_cur, &mut ws.rhs, &src, &hopts, &mut ws.scratch);
                stage_outflow_task
                    .lock()
                    .insert(leaf, info.boundary_mass_outflow_rate);
                // Zero RHS in ghost zones so stage combines don't touch
                // them with stale flux data (they are refreshed by the next
                // exchange anyway, but keep them clean for diagnostics).
                workspace::zero_ghost_runs(&mut ws.rhs, &ws.ghost_runs);
                let mut g = handle.write();
                match stage {
                    0 => hydro::rk3::stage_euler(&ws.u_cur, &ws.rhs, dt, &mut g, opts.vector_mode),
                    1 => hydro::rk3::stage_two(
                        &ws.u0,
                        &ws.u_cur,
                        &ws.rhs,
                        dt,
                        &mut g,
                        opts.vector_mode,
                    ),
                    _ => hydro::rk3::stage_three(
                        &ws.u0,
                        &ws.u_cur,
                        &ws.rhs,
                        dt,
                        &mut g,
                        opts.vector_mode,
                    ),
                }
            });
            let rates = stage_outflow.lock();
            let stage_rate: f64 = leaves.iter().map(|l| rates[l]).sum();
            step_outflow += stage_weight[stage] * dt * stage_rate;
            kernel_launches += 2 * leaves.len() as u64; // RHS + combine
        }
        self.mass_outflow += step_outflow;

        self.time += dt;
        self.step_count += 1;
        let elapsed = t0.elapsed().as_secs_f64();
        let cells = 3 * n3 * leaves.len() as u64;
        // Each of the three exchanges drains fully before its stage runs.
        let links_total = 3 * self.grid.total_ghost_links() as u64;
        let (scratch_hits, scratch_misses, scratch_bytes_in_use, scratch_high_water) =
            self.scratch_telemetry();
        StepStats {
            vector_mode: self.opts.vector_mode,
            dt,
            time: self.time,
            cells_processed: cells,
            elapsed_seconds: elapsed,
            cells_per_second: cells as f64 / elapsed.max(1e-12),
            kernel_launches,
            direct_ghost_links,
            mass_outflow: step_outflow,
            ghost_links_total: links_total,
            ghost_links_resolved: links_total,
            overlapped_tasks: 0,
            scratch_hits,
            scratch_misses,
            scratch_bytes_in_use,
            scratch_high_water,
            gravity_stats: self.last_gravity_stats,
            gravity_plan_hit,
            regrid_refined: 0,
            regrid_derefined: 0,
            gravity_plan_patched: false,
            tuner: None,
        }
    }

    /// The futurized stepper: one dependency graph for the whole step.
    ///
    /// Per RK stage, [`DistGrid::exchange_ghosts_pipelined`] turns every
    /// (leaf, direction) ghost link into a future chain gated on the leaves
    /// it reads, and each leaf's stage kernel becomes a continuation on
    /// - all 26 of its incoming ghost futures (its stencil inputs),
    /// - its outgoing pack futures (its interior may not be overwritten
    ///   while a neighbour is still packing from it), and
    /// - at stage 0, the global Δt reduction and the gravity solve, both of
    ///   which run as futures overlapping the first stage's ghost fill.
    ///
    /// All three stage graphs are built eagerly up front; the only blocking
    /// point is the final join on the stage-2 update futures.  Physics is
    /// bit-identical to [`Simulation::step_barrier`]: packs read exactly the
    /// interiors the barrier path reads (stage-consistent via the gates),
    /// unpack regions of the 26 directions are disjoint, and the Δt
    /// reduction is associative-commutative (min/max), so no result depends
    /// on completion order.
    fn step_pipelined(&mut self, cluster: &SimCluster) -> StepStats {
        use std::sync::atomic::{AtomicU64, Ordering};

        let t0 = Instant::now();
        let _step_timer = self.apex.timer("step:pipelined");
        let _mode_timer = self.apex.timer(self.simd_timer_label());
        let leaves = self.grid.leaves();
        let n = self.grid.n();
        let n3 = (n * n * n) as u64;
        let mut kernel_launches = 0u64;
        let rt0 = cluster.locality(0).runtime().clone();

        // ---- Gravity as a future (overlaps the stage-0 ghost fill). -----
        // Sources are gathered synchronously from uⁿ; nothing writes until
        // the stage-0 gates open, and those include this future's ticket.
        type GravityResult = (
            Arc<HashMap<NodeId, LeafField>>,
            crate::gravity::solver::SolveStats,
        );
        let gravity_fut: Option<Future<GravityResult>> = if self.opts.gravity {
            let sources = Arc::new(self.leaf_sources());
            // The clone shares the persistent solver's plan cache, so the
            // solve inside the future still hits the cached plan.
            let solver = self.gravity_solver.clone();
            let apex = self.apex.clone();
            let nloc = self.opts.localities.min(cluster.num_localities()).max(1);
            let rts: Vec<hpx_rt::Runtime> = (0..nloc)
                .map(|i| cluster.locality(i).runtime().clone())
                .collect();
            let space = ExecSpace::hpx(rt0.clone());
            let grid = self.grid.clone();
            Some(rt0.async_call(move || {
                let _t = apex.timer("gravity:solve");
                let plan = {
                    let _p = apex.timer("gravity:plan");
                    grid.with_tree(|t| solver.plan_for(t))
                };
                let (fields, stats) = {
                    let _k = apex.timer("gravity:kernels");
                    if nloc > 1 {
                        // The distributed solve treats a cross-locality
                        // ghost link exactly like a local one: the whole
                        // sharded pipeline still runs inside this future,
                        // overlapping the stage-0 ghost fill.
                        let dist = {
                            let owner = grid.with_tree(|t| octree::partition_morton(t, nloc));
                            solver.dist_plan_for(&plan, &owner, nloc)
                        };
                        solver.solve_distributed(&plan, &dist, &sources, &rts)
                    } else {
                        solver.solve_with_plan(&plan, &sources, &space)
                    }
                };
                (Arc::new(fields), stats)
            }))
        } else {
            None
        };

        // ---- Save u⁰ (synchronously: the previous step fully joined, so
        // no task holds a workspace and the grids race only with reads). --
        for &l in &leaves {
            self.workspaces[&l]
                .try_lock()
                .expect("leaf workspace aliased outside a step")
                .u0
                .copy_from(&self.grid.grid(l).read());
        }
        let ws_map: WorkspaceMap = Arc::new(self.workspaces.clone());

        // ---- Global Δt as an asynchronous Kokkos reduction. -------------
        // min/max are associative and commutative, so the chunked reduction
        // gives bit-identical Δt to the sequential fold in `compute_dt`.
        let dt_fut: Future<f64> = {
            let hopts = HydroOptions {
                vector_mode: self.opts.vector_mode,
                cfl: self.opts.cfl,
            };
            let cfl = self.opts.cfl;
            let handles: Vec<_> = leaves
                .iter()
                .map(|&l| {
                    let (_, size) = l.cube();
                    (size * BOX_SIZE / n as f64, self.grid.grid(l))
                })
                .collect();
            let space = ExecSpace::hpx(rt0.clone());
            kokkos_rs::launch_reduce_async(
                &rt0,
                space,
                kokkos_rs::RangePolicy::new(0, handles.len()),
                (f64::INFINITY, 1e-30f64),
                move |i| {
                    let (h, handle) = &handles[i];
                    (*h, hydro::max_signal_speed(&handle.read(), &hopts))
                },
                |a, b| (a.0.min(b.0), a.1.max(b.1)),
            )
            .then(&rt0, move |(h_min, max_speed)| cfl * h_min / max_speed)
        };
        kernel_launches += 1; // the Δt reduction is a real kernel here
        let dt_gate = dt_fut.ticket();
        let gravity_gate: Option<Future<()>> = gravity_fut.as_ref().map(|f| f.ticket());

        let stage_weight = [1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0];
        let boundary_masks: Arc<HashMap<NodeId, [bool; 6]>> = Arc::new(self.grid.with_tree(|t| {
            leaves
                .iter()
                .map(|&l| {
                    let dirs = [
                        octree::Dir::new(-1, 0, 0),
                        octree::Dir::new(1, 0, 0),
                        octree::Dir::new(0, -1, 0),
                        octree::Dir::new(0, 1, 0),
                        octree::Dir::new(0, 0, -1),
                        octree::Dir::new(0, 0, 1),
                    ];
                    let mask = dirs
                        .map(|d| matches!(t.neighbor_of(l, d), octree::Neighbor::DomainBoundary));
                    (l, mask)
                })
                .collect()
        }));

        // ---- Build all three stage graphs eagerly. ----------------------
        let overlapped = Arc::new(AtomicU64::new(0));
        // Per-leaf outflow rates per stage, folded in fixed leaf order at
        // the end of the step: tasks complete in scheduler order, and a
        // shared `+=` would make the ledger scheduling-dependent.
        let stage_outflows: [Arc<parking_lot::Mutex<HashMap<NodeId, f64>>>; 3] = Default::default();
        let mut stage_links: Vec<(Arc<std::sync::atomic::AtomicUsize>, usize)> = Vec::new();
        let mut links_total = 0u64;
        let mut direct_ghost_links = 0u64;
        let mut ready: HashMap<NodeId, Future<()>> = leaves
            .iter()
            .map(|&l| (l, hpx_rt::make_ready_future(())))
            .collect();
        for stage in 0..3 {
            let ex = self
                .grid
                .exchange_ghosts_pipelined(cluster, self.opts.ghost, &ready);
            links_total += ex.total_links as u64;
            direct_ghost_links += ex.direct_links as u64;
            let mut next: HashMap<NodeId, Future<()>> = HashMap::with_capacity(leaves.len());
            for &leaf in &leaves {
                let mut parts: Vec<Future<()>> = vec![
                    ex.ghosts_filled[&leaf].clone(),
                    ex.outgoing_packed[&leaf].clone(),
                ];
                if stage == 0 {
                    parts.push(dt_gate.clone());
                    if let Some(g) = &gravity_gate {
                        parts.push(g.clone());
                    }
                }
                let rt = cluster.locality(self.grid.owner(leaf).0).runtime().clone();
                let gate = hpx_rt::when_all_of(&rt, &parts);
                let grid = self.grid.clone();
                let opts = self.opts;
                let gf = gravity_fut.clone();
                let ws_map = ws_map.clone();
                let masks = boundary_masks.clone();
                let stage_outflow = stage_outflows[stage].clone();
                let dt_fut = dt_fut.clone();
                let resolved = ex.links_resolved.clone();
                let total = ex.total_links;
                let overlapped = overlapped.clone();
                let update = gate.then(&rt, move |()| {
                    // The gate transitively includes the Δt/gravity futures,
                    // so these `get`s never block.
                    if resolved.load(Ordering::Relaxed) < total {
                        overlapped.fetch_add(1, Ordering::Relaxed);
                    }
                    let dt = dt_fut.get();
                    let handle = grid.grid(leaf);
                    let (corner, size) = leaf.cube();
                    let nn = grid.n();
                    let h = size * BOX_SIZE / nn as f64;
                    let origin = [
                        (corner[0] + 0.5 * size / nn as f64 - 0.5) * BOX_SIZE,
                        (corner[1] + 0.5 * size / nn as f64 - 0.5) * BOX_SIZE,
                        (corner[2] + 0.5 * size / nn as f64 - 0.5) * BOX_SIZE,
                    ];
                    let hopts = HydroOptions {
                        vector_mode: opts.vector_mode,
                        cfl: opts.cfl,
                    };
                    // The per-leaf future chain (`ready` → exchange gates →
                    // this update) serializes every task touching this
                    // leaf's workspace; contention here is a graph bug.
                    let mut guard = ws_map[&leaf]
                        .try_lock()
                        .expect("leaf workspace aliased by a concurrent task");
                    let ws = &mut *guard;
                    {
                        let g = handle.read();
                        ws.u_cur.copy_from(&g);
                    }
                    let gfields = gf.as_ref().map(|f| f.get().0);
                    let leaf_gravity = gfields.as_ref().map(|m| &m[&leaf]);
                    let gvecs = leaf_gravity.map(|f| [&f.gx[..], &f.gy[..], &f.gz[..]]);
                    let src = SourceInput {
                        gravity: gvecs,
                        omega: opts.omega,
                        origin,
                        h,
                        boundary_faces: masks[&leaf],
                    };
                    let info =
                        hydro::compute_rhs(&ws.u_cur, &mut ws.rhs, &src, &hopts, &mut ws.scratch);
                    stage_outflow
                        .lock()
                        .insert(leaf, info.boundary_mass_outflow_rate);
                    workspace::zero_ghost_runs(&mut ws.rhs, &ws.ghost_runs);
                    let mut g = handle.write();
                    match stage {
                        0 => hydro::rk3::stage_euler(
                            &ws.u_cur,
                            &ws.rhs,
                            dt,
                            &mut g,
                            opts.vector_mode,
                        ),
                        1 => hydro::rk3::stage_two(
                            &ws.u0,
                            &ws.u_cur,
                            &ws.rhs,
                            dt,
                            &mut g,
                            opts.vector_mode,
                        ),
                        _ => hydro::rk3::stage_three(
                            &ws.u0,
                            &ws.u_cur,
                            &ws.rhs,
                            dt,
                            &mut g,
                            opts.vector_mode,
                        ),
                    }
                });
                next.insert(leaf, update);
            }
            stage_links.push((ex.links_resolved, ex.total_links));
            kernel_launches += 2 * leaves.len() as u64; // RHS + combine
            ready = next;
        }

        // ---- The single blocking point: join the stage-2 updates. -------
        for f in ready.values() {
            f.wait();
        }

        let ghost_links_resolved: u64 = stage_links
            .iter()
            .map(|(c, _)| c.load(Ordering::SeqCst) as u64)
            .sum();
        debug_assert_eq!(
            ghost_links_resolved, links_total,
            "pipelined step finished with undrained ghost links"
        );

        let dt = dt_fut.get();
        let gravity_stats = gravity_fut.as_ref().map(|f| f.get().1);
        self.last_gravity_stats = gravity_stats;
        if let Some(stats) = gravity_stats {
            kernel_launches += stats.multipole_kernel_launches as u64 + leaves.len() as u64;
        }
        let mut step_outflow = 0.0;
        for s in 0..3 {
            let rates = stage_outflows[s].lock();
            let stage_rate: f64 = leaves.iter().map(|l| rates[l]).sum();
            step_outflow += stage_weight[s] * dt * stage_rate;
        }
        self.mass_outflow += step_outflow;

        self.time += dt;
        self.step_count += 1;
        let elapsed = t0.elapsed().as_secs_f64();
        let cells = 3 * n3 * leaves.len() as u64;
        let (scratch_hits, scratch_misses, scratch_bytes_in_use, scratch_high_water) =
            self.scratch_telemetry();
        StepStats {
            vector_mode: self.opts.vector_mode,
            dt,
            time: self.time,
            cells_processed: cells,
            elapsed_seconds: elapsed,
            cells_per_second: cells as f64 / elapsed.max(1e-12),
            kernel_launches,
            direct_ghost_links,
            mass_outflow: step_outflow,
            ghost_links_total: links_total,
            ghost_links_resolved,
            overlapped_tasks: overlapped.load(Ordering::SeqCst),
            scratch_hits,
            scratch_misses,
            scratch_bytes_in_use,
            scratch_high_water,
            gravity_stats,
            gravity_plan_hit: self.opts.gravity && self.gravity_solver.last_plan_hit(),
            regrid_refined: 0,
            regrid_derefined: 0,
            gravity_plan_patched: false,
            tuner: None,
        }
    }

    /// Run `steps` steps; returns the ledger before and after plus per-step
    /// stats.
    pub fn run(
        &mut self,
        cluster: &SimCluster,
        steps: usize,
    ) -> (ConservationLedger, ConservationLedger, Vec<StepStats>) {
        let before = ConservationLedger::measure(&self.grid);
        let mut stats = Vec::with_capacity(steps);
        for _ in 0..steps {
            stats.push(self.step(cluster));
        }
        let after = ConservationLedger::measure(&self.grid);
        (before, after, stats)
    }
}

impl Simulation {
    /// FMM statistics of the most recent step (if gravity ran).
    pub fn last_gravity_stats(&self) -> Option<crate::gravity::solver::SolveStats> {
        self.last_gravity_stats
    }

    /// Peak interior density and maximum relative density jump between
    /// adjacent interior cells of one leaf — the two refinement indicators
    /// of the criterion pass.
    fn leaf_density_extrema(&self, leaf: NodeId) -> (f64, f64) {
        let handle = self.grid.grid(leaf);
        let g = handle.read();
        let n = g.n();
        let mut peak = 0.0f64;
        let mut jump = 0.0f64;
        let rel = |a: f64, b: f64| (a - b).abs() / a.min(b).max(1e-300);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let rho = g.get_interior(field::RHO, i, j, k);
                    peak = peak.max(rho);
                    if i + 1 < n {
                        jump = jump.max(rel(rho, g.get_interior(field::RHO, i + 1, j, k)));
                    }
                    if j + 1 < n {
                        jump = jump.max(rel(rho, g.get_interior(field::RHO, i, j + 1, k)));
                    }
                    if k + 1 < n {
                        jump = jump.max(rel(rho, g.get_interior(field::RHO, i, j, k + 1)));
                    }
                }
            }
        }
        (peak, jump)
    }

    /// Octo-Tiger's regrid, both directions of it (paper Section IV-C:
    /// "AMR is based on the density field"):
    ///
    /// * **refine** every leaf below `max_level` whose peak interior
    ///   density exceeds `threshold` or whose relative cell-to-cell
    ///   density jump exceeds [`SimOptions::regrid_shock_threshold`],
    ///   prolonging payloads into the new children conservatively;
    /// * **coarsen** every octet whose eight children are leaves with peak
    ///   density below [`SimOptions::regrid_coarsen_threshold`] (and no
    ///   shock), restricting the children back into the parent — via the
    ///   polite [`DistGrid::derefine`], which refuses rather than drag
    ///   still-wanted fine neighbours coarser.
    ///
    /// 2:1 balance is maintained throughout.  The accumulated
    /// [`octree::RegridDelta`] is drained at the end of the pass: touched
    /// leaves' workspaces are dropped (clean leaves keep theirs — and
    /// their recycled kernel scratch) and the delta is deposited with the
    /// gravity solver so the next solve *patches* its cached interaction
    /// and halo plans subtree-locally instead of rebuilding them.
    pub fn regrid(&mut self, max_level: u8, threshold: f64) -> RegridOutcome {
        let shock = self.opts.regrid_shock_threshold;
        let coarsen = self.opts.regrid_coarsen_threshold;
        let mut outcome = RegridOutcome::default();
        loop {
            let candidates: Vec<NodeId> = self
                .grid
                .leaves()
                .into_iter()
                .filter(|&leaf| {
                    if leaf.level() >= max_level {
                        return false;
                    }
                    let (peak, jump) = self.leaf_density_extrema(leaf);
                    peak > threshold || jump > shock
                })
                .collect();
            if candidates.is_empty() {
                break;
            }
            for leaf in candidates {
                // A previous refinement in this round may have consumed it.
                if self.grid.with_tree(|t| t.is_leaf(leaf)) {
                    self.grid.refine_balanced(leaf);
                    outcome.refined += 1;
                }
            }
        }
        if coarsen > 0.0 {
            let mut parents: Vec<NodeId> = self
                .grid
                .leaves()
                .into_iter()
                .filter_map(|l| l.parent())
                .collect();
            parents.sort();
            parents.dedup();
            for p in parents {
                let whole_octet_of_leaves = self.grid.with_tree(|t| {
                    octree::Octant::all()
                        .into_iter()
                        .all(|o| t.is_leaf(p.child(o)))
                });
                let collapsible = whole_octet_of_leaves
                    && octree::Octant::all().into_iter().all(|o| {
                        let (peak, jump) = self.leaf_density_extrema(p.child(o));
                        peak < coarsen && jump < shock
                    });
                if collapsible && self.grid.derefine(p) {
                    outcome.derefined += 1;
                }
            }
        }
        hpx_rt::regrid_counters().note_refined(outcome.refined as u64);
        hpx_rt::regrid_counters().note_derefined(outcome.derefined as u64);
        // Drain the episode's delta once: the ghost-payload demand cache is
        // patched inside `take_regrid_delta`, the workspaces here, and the
        // solver's plan caches on its next plan miss.
        let delta = self.grid.take_regrid_delta();
        self.patch_workspaces(&delta);
        self.gravity_solver.note_regrid(delta);
        outcome
    }

    /// Subtree-local workspace invalidation: drop exactly the workspaces
    /// whose leaves the delta consumed (refined leaves and collapsed
    /// children); every clean leaf keeps its recycled workspace across the
    /// regrid.  New leaves are provisioned lazily by `ensure_workspaces`.
    fn patch_workspaces(&mut self, delta: &octree::RegridDelta) {
        for &id in &delta.refined {
            self.workspaces.remove(&id);
        }
        for &id in &delta.derefined {
            for oct in octree::Octant::all() {
                self.workspaces.remove(&id.child(oct));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioKind};
    use crate::state::NF;

    fn small_sim(cluster: &SimCluster, gravity: bool) -> Simulation {
        let sc = Scenario::build(ScenarioKind::RotatingStar, cluster, 1, 0, 4);
        let mut opts = SimOptions::default();
        opts.gravity = gravity;
        opts.omega = sc.omega;
        Simulation::new(sc.grid, opts)
    }

    #[test]
    fn dt_is_positive_and_finite() {
        let cluster = SimCluster::new(1, 2);
        let sim = small_sim(&cluster, false);
        let dt = sim.compute_dt();
        assert!(dt.is_finite() && dt > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn hydro_step_conserves_mass_to_machine_precision() {
        // Mass + tracked boundary outflow must close to machine precision
        // (the property Octo-Tiger's fixed time step exists to protect).
        let cluster = SimCluster::new(2, 2);
        let mut sim = small_sim(&cluster, false);
        let (before, after, stats) = sim.run(&cluster, 2);
        assert_eq!(stats.len(), 2);
        let closed = (after.mass + sim.mass_outflow - before.mass).abs() / before.mass;
        assert!(
            closed < 1e-12,
            "mass ledger does not close: drift {closed}, outflow {}",
            sim.mass_outflow
        );
        assert!(stats[0].cells_per_second > 0.0);
        assert!(stats[0].kernel_launches > 0);
        cluster.shutdown();
    }

    #[test]
    fn gravity_step_runs_and_reports_stats() {
        let cluster = SimCluster::new(1, 2);
        // Level 2: deep enough for the dual-tree traversal to produce
        // far-field (M2L) interactions; level 1 is all near-field.
        let sc = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 4);
        let mut opts = SimOptions::default();
        opts.gravity = true;
        opts.omega = sc.omega;
        let mut sim = Simulation::new(sc.grid, opts);
        let s = sim.step(&cluster);
        assert!(s.gravity_stats.is_some());
        assert!(s.gravity_stats.unwrap().m2l_interactions > 0);
        assert!(s.gravity_stats.unwrap().p2p_pairs > 0);
        assert!(s.dt > 0.0);
        // State must remain finite everywhere.
        for leaf in sim.grid.leaves() {
            let g = sim.grid.grid(leaf);
            let gg = g.read();
            assert!(gg.field(field::RHO).iter().all(|v| v.is_finite()));
            assert!(gg.field(field::EGAS).iter().all(|v| v.is_finite()));
        }
        cluster.shutdown();
    }

    #[test]
    fn scalar_and_sve_runs_produce_identical_states() {
        // The Figure 7 switch is performance-only.
        let cluster_a = SimCluster::new(1, 2);
        let cluster_b = SimCluster::new(1, 2);
        let mut sim_a = small_sim(&cluster_a, false);
        let mut sim_b = small_sim(&cluster_b, false);
        sim_a.opts.vector_mode = VectorMode::Scalar;
        sim_b.opts.vector_mode = VectorMode::Sve512;
        let sa = sim_a.step(&cluster_a);
        let sb = sim_b.step(&cluster_b);
        assert_eq!(sa.vector_mode, VectorMode::Scalar);
        assert_eq!(sb.vector_mode, VectorMode::Sve512);
        assert_eq!(sa.dt.to_bits(), sb.dt.to_bits(), "Δt must be bit-identical");
        for leaf in sim_a.grid.leaves() {
            let ga = sim_a.grid.grid(leaf);
            let gb = sim_b.grid.grid(leaf);
            let (ga, gb) = (ga.read(), gb.read());
            for f in 0..NF {
                for (a, b) in ga.field(f).iter().zip(gb.field(f)) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "state diverged between widths: {a} vs {b}"
                    );
                }
            }
        }
        // The per-backend apex timers landed under distinct labels.
        assert_eq!(sim_a.apex.stats("step:simd-scalar").count, 1);
        assert_eq!(sim_b.apex.stats("step:simd-sve512").count, 1);
        cluster_a.shutdown();
        cluster_b.shutdown();
    }

    #[test]
    fn apex_profiles_the_step_phases() {
        let cluster = SimCluster::new(1, 2);
        let mut sim = small_sim(&cluster, true);
        sim.step(&cluster);
        let gravity = sim.apex.stats("gravity:solve");
        let stages = sim.apex.stats("hydro:rk_stage");
        let ghosts = sim.apex.stats("comm:ghost_exchange");
        assert_eq!(gravity.count, 1);
        assert_eq!(stages.count, 3);
        assert_eq!(ghosts.count, 3);
        assert!(gravity.total_s > 0.0);
        let table = sim.apex.summary_table();
        assert!(table.contains("gravity:solve"));
        cluster.shutdown();
    }

    #[test]
    fn regrid_refines_dense_leaves_and_conserves_mass() {
        let cluster = SimCluster::new(1, 2);
        // Level 2 so cell centers actually sample the (small) star.
        let sc = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 4);
        let mut opts = SimOptions::default();
        opts.gravity = false;
        opts.omega = sc.omega;
        let mut sim = Simulation::new(sc.grid, opts);
        let before = crate::diag::ConservationLedger::measure(&sim.grid);
        let leaves_before = sim.grid.leaves().len();
        let refined = sim.regrid(3, 1.0);
        assert!(refined.refined > 0, "the star should trigger refinement");
        assert_eq!(refined.derefined, 0, "coarsening is off by default");
        assert!(refined.changed());
        assert!(sim.grid.leaves().len() > leaves_before);
        sim.grid
            .with_tree(|t| t.check_invariants().expect("balanced"));
        let after = crate::diag::ConservationLedger::measure(&sim.grid);
        assert!(
            after.mass_drift(&before) < 1e-12,
            "prolongation must conserve mass: {}",
            after.mass_drift(&before)
        );
        // And the refined grid still steps.
        let s = sim.step(&cluster);
        assert!(s.dt > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn regrid_coarsens_vacuum_octets_and_reports_breakdown() {
        let cluster = SimCluster::new(1, 2);
        // Base level 3: the star at the box centre leaves the corner
        // level-2 octets fully below the floor, so they can collapse
        // (at level 2 every octet touches the centre and nothing could).
        let sc = Scenario::build(ScenarioKind::RotatingStar, &cluster, 3, 0, 4);
        let mut opts = SimOptions::default();
        opts.gravity = false;
        opts.omega = sc.omega;
        opts.regrid_coarsen_threshold = 1e-6;
        let mut sim = Simulation::new(sc.grid, opts);
        let before = crate::diag::ConservationLedger::measure(&sim.grid);
        let leaves_before = sim.grid.leaves().len();
        // An infinite refine threshold isolates the coarsen direction: the
        // far-field octets (floor density) collapse, the star stays put.
        let out = sim.regrid(3, f64::INFINITY);
        assert_eq!(out.refined, 0);
        assert!(out.derefined > 0, "vacuum octets should collapse");
        assert!(out.changed());
        assert!(sim.grid.leaves().len() < leaves_before);
        sim.grid
            .with_tree(|t| t.check_invariants().expect("balanced"));
        let after = crate::diag::ConservationLedger::measure(&sim.grid);
        assert!(
            after.mass_drift(&before) < 1e-12,
            "restriction must conserve mass: {}",
            after.mass_drift(&before)
        );
        // And the coarsened grid still steps.
        let s = sim.step(&cluster);
        assert!(s.dt > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn cadence_regrid_patches_gravity_plans_mid_run() {
        let cluster = SimCluster::new(1, 2);
        let sc = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 4);
        let mut opts = SimOptions::default();
        opts.gravity = true;
        opts.omega = sc.omega;
        opts.regrid_cadence = Some(1);
        let mut sim = Simulation::new(sc.grid, opts);
        let snap = hpx_rt::regrid_counters().snapshot();
        // Step 0 never regrids (there is nothing mid-run about it yet).
        let s0 = sim.step(&cluster);
        assert_eq!(s0.regrid_refined, 0);
        assert!(!s0.gravity_plan_patched);
        // The cadence fires before step 1: the star refines, and the solve
        // that follows must *patch* the cached interaction plan from the
        // deposited delta (every patched plan is verified and, in debug
        // builds, byte-compared against a from-scratch rebuild).
        let s1 = sim.step(&cluster);
        assert!(s1.regrid_refined > 0, "the star should trigger refinement");
        assert!(
            s1.gravity_plan_patched,
            "post-regrid solve must patch the plan, not rebuild it"
        );
        assert!(s1.dt > 0.0);
        let (patches, _) = sim.gravity_solver.plan_patch_counters();
        assert!(patches >= 1);
        // The global counters are shared with concurrently running tests,
        // so only lower-bound them.
        let d = hpx_rt::regrid_counters().snapshot().since(&snap);
        assert!(d.refined >= s1.regrid_refined);
        assert!(d.plan_patched >= 1);
        cluster.shutdown();
    }

    #[test]
    fn pipelined_step_matches_barrier_bit_for_bit() {
        // The tentpole switch must be performance-only, like the others —
        // and with gravity on, so the FMM future overlaps the stage-0 fill.
        let cluster_a = SimCluster::new(2, 2);
        let cluster_b = SimCluster::new(2, 2);
        let mut sim_a = small_sim(&cluster_a, true);
        let mut sim_b = small_sim(&cluster_b, true);
        sim_b.opts.pipeline = true;
        let sa = sim_a.step(&cluster_a);
        let sb = sim_b.step(&cluster_b);
        assert_eq!(sa.dt.to_bits(), sb.dt.to_bits(), "Δt must be bit-identical");
        // Outflow is accumulated leaf-by-leaf in task-completion order in
        // both steppers, so it is only reproducible to rounding.
        let outflow_diff = (sa.mass_outflow - sb.mass_outflow).abs();
        assert!(outflow_diff <= 1e-12 * (1.0 + sa.mass_outflow.abs()));
        for leaf in sim_a.grid.leaves() {
            let ga = sim_a.grid.grid(leaf);
            let gb = sim_b.grid.grid(leaf);
            let (ga, gb) = (ga.read(), gb.read());
            for f in 0..NF {
                assert_eq!(ga.field(f), gb.field(f), "field {f} differs at {leaf}");
            }
        }
        // Telemetry contract: the barrier path never overlaps; the
        // pipelined path drains every link and counts the same link set.
        assert_eq!(sa.overlapped_tasks, 0);
        assert_eq!(sa.ghost_links_resolved, sa.ghost_links_total);
        assert_eq!(sb.ghost_links_resolved, sb.ghost_links_total);
        assert_eq!(sb.ghost_links_total, sa.ghost_links_total);
        assert_eq!(sb.direct_ghost_links, sa.direct_ghost_links);
        cluster_a.shutdown();
        cluster_b.shutdown();
    }

    #[test]
    fn comm_optimization_does_not_change_physics() {
        // Figure 8's switch must be performance-only too.
        let cluster_a = SimCluster::new(2, 1);
        let cluster_b = SimCluster::new(2, 1);
        let mut sim_a = small_sim(&cluster_a, false);
        let mut sim_b = small_sim(&cluster_b, false);
        sim_a.opts.ghost = GhostConfig {
            direct_local_access: true,
            notify_with_channels: false,
        };
        sim_b.opts.ghost = GhostConfig {
            direct_local_access: false,
            notify_with_channels: false,
        };
        let sa = sim_a.step(&cluster_a);
        let sb = sim_b.step(&cluster_b);
        assert!(sa.direct_ghost_links > 0);
        assert_eq!(sb.direct_ghost_links, 0);
        for leaf in sim_a.grid.leaves() {
            let ga = sim_a.grid.grid(leaf);
            let gb = sim_b.grid.grid(leaf);
            let (ga, gb) = (ga.read(), gb.read());
            for f in 0..NF {
                assert_eq!(ga.field(f), gb.field(f), "field {f} differs");
            }
        }
        cluster_a.shutdown();
        cluster_b.shutdown();
    }
}
