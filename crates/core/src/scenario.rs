//! Scenario builders: the paper's three workloads as initialized grids.
//!
//! * **Rotating star** — the single-star problem of the Fugaku scaling
//!   study (paper Section VI-D, Figures 6–10), run at "levels" 5/6/7 there.
//! * **V1309 Scorpii** — the contact MS binary whose merger produced the
//!   2008 luminous red nova (Section III-A).
//! * **DWD** — the double-white-dwarf system with mass ratio q = 0.7, the
//!   R CrB formation channel (Section III-B).
//!
//! Each builder solves the SCF model, refines the octree where the density
//! demands it (Octo-Tiger's density-based AMR criterion), and fills the
//! distributed sub-grids with the equilibrium state in the rotating frame.

use crate::scf::{BinaryModel, BinaryParams};
use crate::state::{field, NF};
use crate::units::{BOX_SIZE, GAMMA, RHO_FLOOR};
use hpx_rt::SimCluster;
use octree::{DistGrid, NodeId, Tree};

/// Which of the paper's workloads to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Single rotating polytrope (the scaling-study problem).
    RotatingStar,
    /// Contact MS binary, the V1309 Sco progenitor.
    V1309,
    /// Double white dwarf, q = 0.7.
    Dwd,
}

impl ScenarioKind {
    /// SCF parameters of this scenario.
    pub fn params(self) -> BinaryParams {
        match self {
            ScenarioKind::RotatingStar => BinaryParams::single_star(),
            ScenarioKind::V1309 => BinaryParams::v1309(),
            ScenarioKind::Dwd => BinaryParams::dwd_q07(),
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::RotatingStar => "Rotating star",
            ScenarioKind::V1309 => "v1309",
            ScenarioKind::Dwd => "DWD",
        }
    }
}

/// A built scenario: the distributed grid plus the frame/model metadata.
pub struct Scenario {
    pub kind: ScenarioKind,
    pub grid: DistGrid,
    /// Rotating-frame frequency (the binary's orbital frequency).
    pub omega: f64,
    /// The underlying SCF model.
    pub model: BinaryModel,
    /// Base refinement level of the octree.
    pub level: u8,
}

impl Scenario {
    /// Build a scenario on `cluster`.
    ///
    /// * `level` — base uniform refinement of the octree.
    /// * `amr_extra` — extra levels allowed where the density criterion
    ///   triggers (0 = uniform grid).
    /// * `n_cell` — sub-grid extent N (8 in the paper; tests use 4).
    pub fn build(
        kind: ScenarioKind,
        cluster: &SimCluster,
        level: u8,
        amr_extra: u8,
        n_cell: usize,
    ) -> Scenario {
        let model = BinaryModel::solve(kind.params());
        let mut tree = Tree::new_uniform(level);
        if amr_extra > 0 {
            // Octo-Tiger refines on the density field (and component
            // tracers); sample the SCF density over each candidate leaf.
            // Reference density: the primary's mid-radius density (the
            // bulk of the star), not the softened central peak.
            let mid1 = model.density_at([model.x1[0] + 0.5 * model.r1, 0.0, 0.0]).0;
            let mid2 = if model.params.m2 > 0.0 {
                model.density_at([model.x2[0] - 0.5 * model.r2, 0.0, 0.0]).0
            } else {
                0.0
            };
            let threshold = 0.05 * mid1.max(mid2);
            let model_ref = &model;
            tree.refine_where(level + amr_extra, |id: NodeId| {
                let (corner, size) = id.cube();
                let mut max_rho: f64 = 0.0;
                let probes = 5;
                for i in 0..probes {
                    for j in 0..probes {
                        for k in 0..probes {
                            let u = [
                                corner[0] + size * (i as f64 + 0.5) / probes as f64,
                                corner[1] + size * (j as f64 + 0.5) / probes as f64,
                                corner[2] + size * (k as f64 + 0.5) / probes as f64,
                            ];
                            let x = [
                                (u[0] - 0.5) * BOX_SIZE,
                                (u[1] - 0.5) * BOX_SIZE,
                                (u[2] - 0.5) * BOX_SIZE,
                            ];
                            let (rho, _, _) = model_ref.density_at(x);
                            max_rho = max_rho.max(rho);
                        }
                    }
                }
                max_rho > threshold
            });
        }
        let grid = DistGrid::new(tree, n_cell, 2, NF, cluster);
        fill_from_model(&grid, &model);
        Scenario {
            kind,
            grid,
            omega: model.omega,
            model,
            level,
        }
    }

    /// Total number of interior cells over all leaves.
    pub fn total_cells(&self) -> usize {
        let n3 = self.grid.n().pow(3);
        self.grid.leaves().len() * n3
    }
}

/// Fill every leaf's conserved fields from the SCF model (co-rotating
/// equilibrium: zero velocity in the rotating frame).
pub fn fill_from_model(grid: &DistGrid, model: &BinaryModel) {
    let n = grid.n();
    for leaf in grid.leaves() {
        let (corner, size) = leaf.cube();
        let h = size / n as f64;
        let handle = grid.grid(leaf);
        let mut g = handle.write();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let u = [
                        corner[0] + (i as f64 + 0.5) * h,
                        corner[1] + (j as f64 + 0.5) * h,
                        corner[2] + (k as f64 + 0.5) * h,
                    ];
                    let x = [
                        (u[0] - 0.5) * BOX_SIZE,
                        (u[1] - 0.5) * BOX_SIZE,
                        (u[2] - 0.5) * BOX_SIZE,
                    ];
                    let (rho_raw, f1, f2) = model.density_at(x);
                    let rho = rho_raw.max(RHO_FLOOR);
                    // Pressure from the component's polytrope; the ambient
                    // floor gets a matching tiny pressure.
                    let p = if f1 > 0.0 {
                        model.eos1.pressure_of_rho(rho)
                    } else if f2 > 0.0 {
                        model.eos2.pressure_of_rho(rho)
                    } else {
                        crate::units::P_FLOOR * 10.0
                    };
                    let e = p / (GAMMA - 1.0);
                    g.set_interior(field::RHO, i, j, k, rho);
                    g.set_interior(field::SX, i, j, k, 0.0);
                    g.set_interior(field::SY, i, j, k, 0.0);
                    g.set_interior(field::SZ, i, j, k, 0.0);
                    g.set_interior(field::EGAS, i, j, k, e);
                    g.set_interior(field::TAU, i, j, k, e.max(0.0).powf(1.0 / GAMMA));
                    g.set_interior(field::FRAC1, i, j, k, f1);
                    g.set_interior(field::FRAC2, i, j, k, f2);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotating_star_builds_with_positive_mass() {
        let cluster = SimCluster::new(1, 2);
        let sc = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 4);
        let mut mass = 0.0;
        for leaf in sc.grid.leaves() {
            let (_, size) = leaf.cube();
            let h = size * BOX_SIZE / 4.0;
            mass += sc.grid.grid(leaf).read().interior_sum(field::RHO) * h * h * h;
        }
        assert!(mass > 0.3, "total mass too small: {mass}");
        assert!(sc.omega > 0.0);
        assert_eq!(sc.total_cells(), 64 * 64);
        cluster.shutdown();
    }

    #[test]
    fn amr_refines_around_the_star() {
        let cluster = SimCluster::new(1, 2);
        let sc = Scenario::build(ScenarioKind::RotatingStar, &cluster, 1, 2, 4);
        let max_level = sc.grid.with_tree(|t| t.max_level());
        assert!(max_level > 1, "AMR should refine dense regions");
        sc.grid.with_tree(|t| assert!(t.check_invariants().is_ok()));
        // Refined leaves must concentrate where the star is (center-ish).
        let deep: Vec<NodeId> = sc
            .grid
            .leaves()
            .into_iter()
            .filter(|l| l.level() == max_level)
            .collect();
        assert!(!deep.is_empty());
        cluster.shutdown();
    }

    #[test]
    fn v1309_has_two_tagged_components() {
        let cluster = SimCluster::new(1, 2);
        let sc = Scenario::build(ScenarioKind::V1309, &cluster, 2, 0, 4);
        let mut m1 = 0.0;
        let mut m2 = 0.0;
        for leaf in sc.grid.leaves() {
            let (_, size) = leaf.cube();
            let vol = (size * BOX_SIZE / 4.0).powi(3);
            let g = sc.grid.grid(leaf);
            let gg = g.read();
            m1 += gg.interior_sum(field::FRAC1) * vol;
            m2 += gg.interior_sum(field::FRAC2) * vol;
        }
        assert!(m1 > 0.0 && m2 > 0.0, "both components present: {m1}, {m2}");
        assert!(m1 > m2, "primary heavier");
        cluster.shutdown();
    }

    #[test]
    fn dwd_mass_ratio_near_07() {
        let cluster = SimCluster::new(1, 2);
        let sc = Scenario::build(ScenarioKind::Dwd, &cluster, 3, 0, 4);
        let mut m1 = 0.0;
        let mut m2 = 0.0;
        for leaf in sc.grid.leaves() {
            let (_, size) = leaf.cube();
            let vol = (size * BOX_SIZE / 4.0).powi(3);
            let g = sc.grid.grid(leaf);
            let gg = g.read();
            m1 += gg.interior_sum(field::FRAC1) * vol;
            m2 += gg.interior_sum(field::FRAC2) * vol;
        }
        let q = m2 / m1;
        assert!((q - 0.7).abs() < 0.2, "mass ratio off: {q}");
        cluster.shutdown();
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(ScenarioKind::V1309.name(), "v1309");
        assert_eq!(ScenarioKind::Dwd.name(), "DWD");
        assert_eq!(ScenarioKind::RotatingStar.name(), "Rotating star");
    }
}
