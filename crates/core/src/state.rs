//! The evolved state vector and primitive-variable recovery.
//!
//! Octo-Tiger evolves, per cell: mass density, the three momentum
//! densities, gas energy density, an entropy tracer `τ` (the dual-energy
//! formalism of its hydro module), and passive tracer fields recording "the
//! original mass fractions of the binary components (e.g. as the core and
//! envelope fractions)" used by the refinement criterion (paper Section
//! IV-C).  We carry two component tracers.

use crate::units::{GAMMA, P_FLOOR, RHO_FLOOR};

/// Field indices within each leaf's [`octree::SubGrid`].
pub mod field {
    /// Mass density ρ.
    pub const RHO: usize = 0;
    /// x-momentum density `s_x = ρ v_x`.
    pub const SX: usize = 1;
    /// y-momentum density.
    pub const SY: usize = 2;
    /// z-momentum density.
    pub const SZ: usize = 3;
    /// Total gas energy density `E = e + ρv²/2` (internal + kinetic).
    pub const EGAS: usize = 4;
    /// Entropy tracer `τ = e^{1/γ}` (dual-energy formalism).
    pub const TAU: usize = 5;
    /// Mass fraction tracer of binary component 1 (ρ · X₁).
    pub const FRAC1: usize = 6;
    /// Mass fraction tracer of binary component 2 (ρ · X₂).
    pub const FRAC2: usize = 7;
}

/// Number of evolved fields.
pub const NF: usize = 8;

/// Human-readable names of the evolved fields, index-aligned with
/// [`field`].
pub const FIELD_NAMES: [&str; NF] = ["rho", "sx", "sy", "sz", "egas", "tau", "frac1", "frac2"];

/// Primitive variables of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Primitive {
    pub rho: f64,
    pub vx: f64,
    pub vy: f64,
    pub vz: f64,
    pub p: f64,
}

/// Conserved variables of one cell (the five dynamic fields).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Conserved {
    pub rho: f64,
    pub sx: f64,
    pub sy: f64,
    pub sz: f64,
    pub egas: f64,
}

impl Conserved {
    /// Recover primitives with floors and the dual-energy fallback:
    /// when the internal energy from `E − ρv²/2` falls below
    /// `DUAL_ENERGY_SWITCH · E`, pressure is taken from the entropy tracer
    /// `τ` instead (Octo-Tiger's `tau`-based dual-energy treatment keeps
    /// highly supersonic flows well-behaved).
    pub fn to_primitive(self, tau: f64) -> Primitive {
        let rho = self.rho.max(RHO_FLOOR);
        let vx = self.sx / rho;
        let vy = self.sy / rho;
        let vz = self.sz / rho;
        let kinetic = 0.5 * rho * (vx * vx + vy * vy + vz * vz);
        let e_from_total = self.egas - kinetic;
        let e = if e_from_total > DUAL_ENERGY_SWITCH * self.egas.abs() {
            e_from_total
        } else {
            // τ = e^{1/γ}  ⇒  e = τ^γ.
            tau.max(0.0).powf(GAMMA)
        };
        let p = ((GAMMA - 1.0) * e).max(P_FLOOR);
        Primitive { rho, vx, vy, vz, p }
    }

    /// Kinetic energy density of this state.
    pub fn kinetic(self) -> f64 {
        let rho = self.rho.max(RHO_FLOOR);
        0.5 * (self.sx * self.sx + self.sy * self.sy + self.sz * self.sz) / rho
    }
}

/// Threshold of the dual-energy switch (fraction of total energy below
/// which `E − K` is considered untrustworthy).
pub const DUAL_ENERGY_SWITCH: f64 = 1.0e-3;

/// Build the conserved state of a cell from primitives (used by the
/// scenario initializers).  Returns `(Conserved, tau)`.
pub fn from_primitive(p: &Primitive) -> (Conserved, f64) {
    let e = p.p / (GAMMA - 1.0);
    let kinetic = 0.5 * p.rho * (p.vx * p.vx + p.vy * p.vy + p.vz * p.vz);
    (
        Conserved {
            rho: p.rho,
            sx: p.rho * p.vx,
            sy: p.rho * p.vy,
            sz: p.rho * p.vz,
            egas: e + kinetic,
        },
        e.max(0.0).powf(1.0 / GAMMA),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_conserved_roundtrip() {
        let p0 = Primitive {
            rho: 1.3,
            vx: 0.2,
            vy: -0.1,
            vz: 0.05,
            p: 0.7,
        };
        let (u, tau) = from_primitive(&p0);
        let p1 = u.to_primitive(tau);
        assert!((p1.rho - p0.rho).abs() < 1e-14);
        assert!((p1.vx - p0.vx).abs() < 1e-14);
        assert!((p1.vy - p0.vy).abs() < 1e-14);
        assert!((p1.vz - p0.vz).abs() < 1e-14);
        assert!((p1.p - p0.p).abs() < 1e-12);
    }

    #[test]
    fn floors_apply_to_vacuum() {
        let u = Conserved::default();
        let p = u.to_primitive(0.0);
        assert!(p.rho >= RHO_FLOOR);
        assert!(p.p >= P_FLOOR);
        assert_eq!(p.vx, 0.0);
    }

    #[test]
    fn dual_energy_recovers_pressure_in_supersonic_flow() {
        // Kinetic-dominated state: E - K catastrophically cancels; τ saves p.
        let rho = 1.0;
        let v = 100.0;
        let e_true = 1e-4;
        let u = Conserved {
            rho,
            sx: rho * v,
            sy: 0.0,
            sz: 0.0,
            // Slightly corrupted total energy (simulating roundoff).
            egas: e_true + 0.5 * rho * v * v * (1.0 + 1e-12),
        };
        let tau = e_true.powf(1.0 / GAMMA);
        let p = u.to_primitive(tau);
        let p_expected = (GAMMA - 1.0) * e_true;
        assert!(
            (p.p - p_expected).abs() / p_expected < 1e-9,
            "dual energy failed: {} vs {}",
            p.p,
            p_expected
        );
    }

    #[test]
    fn kinetic_energy() {
        let u = Conserved {
            rho: 2.0,
            sx: 2.0,
            sy: 0.0,
            sz: 0.0,
            egas: 10.0,
        };
        assert!((u.kinetic() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn field_names_align() {
        assert_eq!(FIELD_NAMES[field::RHO], "rho");
        assert_eq!(FIELD_NAMES[field::TAU], "tau");
        assert_eq!(FIELD_NAMES.len(), NF);
    }
}
