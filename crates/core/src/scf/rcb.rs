//! Post-merger product analysis: the R Coronae Borealis candidacy test.
//!
//! Paper Section III-B: *"We examine the resulted merger products, and
//! estimate their probability to later evolve to a star with the
//! characteristics of an RCB star."*  RCB stars are hydrogen-deficient
//! giants of ~0.9 M☉ formed by He-CO white-dwarf mergers; the diagnostics
//! that matter from the hydro side are the merger product's mass, its
//! spin, and how strongly the two components' material mixed (the
//! observed ¹⁸O/¹⁶O ratios constrain mixing).  We compute those from the
//! grid's component-tracer fields.

use crate::state::field;
use crate::units::BOX_SIZE;
use octree::DistGrid;

/// Integral properties of a (possibly merged) product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergerProduct {
    /// Total gas mass on the grid.
    pub total_mass: f64,
    /// Mass of component-1 material.
    pub m1: f64,
    /// Mass of component-2 material.
    pub m2: f64,
    /// Center of mass.
    pub com: [f64; 3],
    /// Spin angular momentum about z through the COM.
    pub spin_lz: f64,
    /// Mass-weighted RMS radius about the COM (compactness proxy).
    pub rms_radius: f64,
    /// Mixing fraction: the mass fraction of the *minority* component
    /// inside the half-mass radius, normalized by its global fraction.
    /// 0 = fully stratified, 1 = perfectly mixed.
    pub core_mixing: f64,
}

impl MergerProduct {
    /// Analyze the current state of `grid`.
    pub fn analyze(grid: &DistGrid) -> MergerProduct {
        let n = grid.n();
        // Pass 1: masses and center of mass.
        let mut total_mass = 0.0;
        let mut m1 = 0.0;
        let mut m2 = 0.0;
        let mut com = [0.0f64; 3];
        // (position, cell mass, minority-tracer mass) for the radial pass.
        let mut cells: Vec<([f64; 3], f64, f64)> = Vec::new();
        for leaf in grid.leaves() {
            let (corner, size) = leaf.cube();
            let h = size / n as f64;
            let vol = (h * BOX_SIZE).powi(3);
            let handle = grid.grid(leaf);
            let g = handle.read();
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let x = [
                            (corner[0] + (i as f64 + 0.5) * h - 0.5) * BOX_SIZE,
                            (corner[1] + (j as f64 + 0.5) * h - 0.5) * BOX_SIZE,
                            (corner[2] + (k as f64 + 0.5) * h - 0.5) * BOX_SIZE,
                        ];
                        let dm = g.get_interior(field::RHO, i, j, k) * vol;
                        let f1 = g.get_interior(field::FRAC1, i, j, k) * vol;
                        let f2 = g.get_interior(field::FRAC2, i, j, k) * vol;
                        total_mass += dm;
                        m1 += f1;
                        m2 += f2;
                        for a in 0..3 {
                            com[a] += dm * x[a];
                        }
                        cells.push((x, dm, f1.min(f2)));
                    }
                }
            }
        }
        if total_mass > 0.0 {
            for c in &mut com {
                *c /= total_mass;
            }
        }
        // Pass 2: radii and mixing from the stashed cells.
        let mut rms = 0.0;
        let mut by_radius: Vec<(f64, f64, f64)> = Vec::with_capacity(cells.len());
        for (x, dm, minority) in &cells {
            let dx = x[0] - com[0];
            let dy = x[1] - com[1];
            let dz = x[2] - com[2];
            let r2 = dx * dx + dy * dy + dz * dz;
            rms += dm * r2;
            by_radius.push((r2.sqrt(), *dm, *minority));
        }
        // Spin needs momenta relative to the COM: dedicated sweep.
        let mut spin_lz = 0.0;
        for leaf in grid.leaves() {
            let (corner, size) = leaf.cube();
            let h = size / n as f64;
            let vol = (h * BOX_SIZE).powi(3);
            let handle = grid.grid(leaf);
            let g = handle.read();
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let x = (corner[0] + (i as f64 + 0.5) * h - 0.5) * BOX_SIZE - com[0];
                        let y = (corner[1] + (j as f64 + 0.5) * h - 0.5) * BOX_SIZE - com[1];
                        let sx = g.get_interior(field::SX, i, j, k) * vol;
                        let sy = g.get_interior(field::SY, i, j, k) * vol;
                        spin_lz += x * sy - y * sx;
                    }
                }
            }
        }
        let rms_radius = if total_mass > 0.0 {
            (rms / total_mass).sqrt()
        } else {
            0.0
        };

        // Mixing: fraction of minority-component mass within the half-mass
        // radius, relative to its global share.
        by_radius.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite radii"));
        let minority_total = m1.min(m2);
        let mut acc_mass = 0.0;
        let mut acc_minority = 0.0;
        for (_, dm, dmin) in &by_radius {
            if acc_mass >= 0.5 * total_mass {
                break;
            }
            acc_mass += dm;
            acc_minority += dmin;
        }
        let core_mixing = if minority_total > 0.0 && acc_mass > 0.0 {
            // Minority share inside the half-mass core vs its global share.
            (acc_minority / acc_mass) / (minority_total / total_mass)
        } else {
            0.0
        }
        .min(1.0);

        MergerProduct {
            total_mass,
            m1,
            m2,
            com,
            spin_lz,
            rms_radius,
            core_mixing,
        }
    }

    /// A heuristic RCB-candidacy score in `[0, 1]`, combining the three
    /// observational constraints the paper cites: product mass near
    /// ~0.9 M☉ (Saio's RCB mass scale), a He-dominated (q < 1 merger)
    /// composition, and partial — not total — mixing (the ¹⁸O/¹⁶O
    /// constraint requires some envelope mixing but a surviving core).
    pub fn rcb_candidate_score(&self) -> f64 {
        let mass_term = {
            // Gaussian preference centered at 0.9, width 0.3.
            let d = (self.total_mass - 0.9) / 0.3;
            (-0.5 * d * d).exp()
        };
        let q = if self.m1 > 0.0 {
            self.m2 / self.m1
        } else {
            0.0
        };
        let q_term = if (0.4..1.0).contains(&q) { 1.0 } else { 0.5 };
        let mix_term = 1.0 - (self.core_mixing - 0.5).abs();
        (mass_term * q_term * mix_term).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioKind};
    use hpx_rt::SimCluster;

    #[test]
    fn dwd_product_masses_match_ledger() {
        let cluster = SimCluster::new(1, 2);
        let sc = Scenario::build(ScenarioKind::Dwd, &cluster, 2, 0, 4);
        let product = MergerProduct::analyze(&sc.grid);
        let ledger = crate::diag::ConservationLedger::measure(&sc.grid);
        assert!((product.total_mass - ledger.mass).abs() < 1e-10);
        assert!((product.m1 - ledger.component_mass[0]).abs() < 1e-10);
        assert!((product.m2 - ledger.component_mass[1]).abs() < 1e-10);
        cluster.shutdown();
    }

    #[test]
    fn com_is_near_the_origin_for_a_binary() {
        let cluster = SimCluster::new(1, 2);
        let sc = Scenario::build(ScenarioKind::Dwd, &cluster, 2, 0, 4);
        let product = MergerProduct::analyze(&sc.grid);
        // The SCF binary is built with its COM at the origin.
        // Coarse 16-cell sampling skews the discrete COM a little.
        assert!(product.com[0].abs() < 0.2, "com x {}", product.com[0]);
        assert!(product.com[1].abs() < 0.05);
        assert!(product.com[2].abs() < 0.05);
        cluster.shutdown();
    }

    #[test]
    fn initial_binary_is_stratified_not_mixed() {
        // Before any evolution, components sit in separate lobes: the
        // minority component is *depleted* in the core region relative to
        // its global share.
        let cluster = SimCluster::new(1, 2);
        let sc = Scenario::build(ScenarioKind::Dwd, &cluster, 2, 0, 4);
        let product = MergerProduct::analyze(&sc.grid);
        assert!(
            product.core_mixing < 0.9,
            "initial binary should not read as fully mixed: {}",
            product.core_mixing
        );
        cluster.shutdown();
    }

    #[test]
    fn zero_velocity_grid_has_zero_spin() {
        let cluster = SimCluster::new(1, 2);
        let sc = Scenario::build(ScenarioKind::RotatingStar, &cluster, 2, 0, 4);
        let product = MergerProduct::analyze(&sc.grid);
        // Co-rotating equilibrium: velocities are zero in the frame.
        assert!(product.spin_lz.abs() < 1e-12);
        assert!(product.rms_radius > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn rcb_score_prefers_point_nine_solar_masses() {
        let base = MergerProduct {
            total_mass: 0.9,
            m1: 0.55,
            m2: 0.35,
            com: [0.0; 3],
            spin_lz: 0.1,
            rms_radius: 0.2,
            core_mixing: 0.5,
        };
        let heavy = MergerProduct {
            total_mass: 2.5,
            ..base
        };
        assert!(base.rcb_candidate_score() > heavy.rcb_candidate_score());
        assert!(base.rcb_candidate_score() > 0.5);
        let fully_mixed = MergerProduct {
            core_mixing: 1.0,
            ..base
        };
        assert!(base.rcb_candidate_score() > fully_mixed.rcb_candidate_score());
    }
}
