//! The iterative SCF binary builder.
//!
//! Bernoulli integral in the frame co-rotating at Ω:
//! `H(x) + Φ(x) − ½ Ω² ϖ² = C_i` inside component `i`.
//! Following the paper's description we iterate two unknowns per star —
//! the surface constant `C_i` and the polytropic constant `K_i` — until
//! the components reach their target masses, with the gravitational
//! potential approximated by the two components' (softened) point masses
//! during the iteration; the full grid solve then relaxes the model
//! further.  The surface constants are parameterized against the L1
//! potential, so the builder can produce detached, semi-detached and
//! contact binaries on demand — the taxonomy of paper Section IV-C.

use crate::eos::{Eos, Polytrope};
use crate::scf::lane_emden::LaneEmden;
use crate::units::G;

/// Input parameters of an SCF binary.
#[derive(Debug, Clone, Copy)]
pub struct BinaryParams {
    /// Target mass of the primary.
    pub m1: f64,
    /// Target mass of the secondary (0 for a single star).
    pub m2: f64,
    /// Orbital separation.
    pub a: f64,
    /// Polytropic index of both components.
    pub n: f64,
    /// Where each star's surface potential sits between its central
    /// potential (0) and the L1 potential (1): ≥ 1 overflows the lobe
    /// (contact), < 1 is detached.  For a single star this is the surface
    /// radius as a fraction of `a`.
    pub fill_factor: f64,
}

impl BinaryParams {
    /// The paper's V1309 progenitor: a *contact* binary of two MS stars
    /// (masses after Tylenda et al., code units).
    pub fn v1309() -> BinaryParams {
        BinaryParams {
            m1: 1.52,
            m2: 0.16,
            a: 0.5,
            n: 1.5,
            fill_factor: 1.04, // overfilled: contact
        }
    }

    /// The paper's DWD scenario with mass ratio q = 0.7.
    pub fn dwd_q07() -> BinaryParams {
        BinaryParams {
            m1: 0.6,
            m2: 0.42,
            a: 0.56,
            n: 1.5,
            fill_factor: 0.9, // just shy of contact: transfer soon
        }
    }

    /// A single rotating star (the paper's scaling-study problem).
    pub fn single_star() -> BinaryParams {
        BinaryParams {
            m1: 1.0,
            m2: 0.0,
            a: 0.4,
            n: 1.5,
            fill_factor: 0.5,
        }
    }
}

/// Classification of the converged binary (paper Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryKind {
    Detached,
    SemiDetached,
    Contact,
    SingleStar,
}

/// A converged SCF model, evaluable at any point.
#[derive(Debug, Clone)]
pub struct BinaryModel {
    pub params: BinaryParams,
    /// Center of component 1 (on the x-axis, COM at the origin).
    pub x1: [f64; 3],
    /// Center of component 2.
    pub x2: [f64; 3],
    /// Orbital frequency of the rotating frame.
    pub omega: f64,
    /// Per-component polytropes (after the K iteration).
    pub eos1: Polytrope,
    pub eos2: Polytrope,
    /// Surface Bernoulli constants.
    pub c1: f64,
    pub c2: f64,
    /// Central densities (post-convergence, at the softened centers).
    pub rho_c1: f64,
    pub rho_c2: f64,
    /// Characteristic stellar radii (lobe-assignment / softening scale).
    pub r1: f64,
    pub r2: f64,
    /// Plummer softening lengths of the iteration potential.
    eps1: f64,
    eps2: f64,
    /// Achieved masses (diagnostics; close to the targets on success).
    pub achieved_m1: f64,
    pub achieved_m2: f64,
}

/// Eggleton (1983) volume-equivalent Roche-lobe radius ratio `R_L/a`.
fn eggleton_rl(q: f64) -> f64 {
    let q23 = q.powf(2.0 / 3.0);
    0.49 * q23 / (0.6 * q23 + (1.0 + q.powf(1.0 / 3.0)).ln())
}

impl BinaryModel {
    /// Run the SCF iteration.
    ///
    /// # Panics
    /// Panics on non-physical parameters (non-positive m1 or a).
    pub fn solve(params: BinaryParams) -> BinaryModel {
        assert!(
            params.m1 > 0.0 && params.a > 0.0,
            "invalid binary parameters"
        );
        let le = LaneEmden::solve(params.n, 1e-3);
        let mtot = params.m1 + params.m2;
        // Kepler: the paper's grids rotate "with the original orbital
        // frequency of the binary".
        let omega = if params.m2 > 0.0 {
            (G * mtot / params.a.powi(3)).sqrt()
        } else {
            // Single star: a slow solid rotation to exercise the frame.
            0.2 * (G * params.m1 / params.a.powi(3)).sqrt()
        };
        let x1 = [-params.a * params.m2 / mtot, 0.0, 0.0];
        let x2 = [params.a * params.m1 / mtot, 0.0, 0.0];

        // Characteristic radii from the Roche geometry (lobe assignment &
        // softening only; the converged surface emerges from H = 0).
        let (r1, r2) = if params.m2 > 0.0 {
            let q1 = params.m1 / params.m2;
            let q2 = params.m2 / params.m1;
            (eggleton_rl(q1) * params.a, eggleton_rl(q2) * params.a)
        } else {
            (params.fill_factor * params.a, 0.0)
        };

        // Initial K from the Lane-Emden mass-radius relation.
        let k_init = |m: f64, r: f64| -> f64 {
            if m <= 0.0 || r <= 0.0 {
                return 1.0;
            }
            let rho_c =
                le.central_to_mean_density() * 3.0 * m / (4.0 * std::f64::consts::PI * r.powi(3));
            let alpha = r / le.xi1;
            4.0 * std::f64::consts::PI * G * alpha * alpha * rho_c.powf(1.0 - 1.0 / params.n)
                / (params.n + 1.0)
        };
        let mut model = BinaryModel {
            params,
            x1,
            x2,
            omega,
            eos1: Polytrope::new(k_init(params.m1, r1).max(1e-12), params.n),
            eos2: Polytrope::new(k_init(params.m2, r2).max(1e-12), params.n),
            c1: 0.0,
            c2: 0.0,
            rho_c1: 0.0,
            rho_c2: 0.0,
            r1,
            r2,
            eps1: 0.5 * r1.max(1e-6),
            eps2: 0.5 * r2.max(1e-6),
            achieved_m1: 0.0,
            achieved_m2: 0.0,
        };

        // Surface constants: interpolate between the (softened) central
        // potential and the L1 potential by the fill factor.
        if params.m2 > 0.0 {
            let l1 = model.phi_l1();
            let pc1 = model.phi_eff(x1);
            let pc2 = model.phi_eff(x2);
            model.c1 = pc1 + params.fill_factor * (l1 - pc1);
            model.c2 = pc2 + params.fill_factor * (l1 - pc2);
        } else {
            let surf = [x1[0] + r1, 0.0, 0.0];
            model.c1 = model.phi_eff(surf);
            model.c2 = f64::NEG_INFINITY;
        }

        // K iteration: with C fixed, the component mass scales as K^{-n}
        // (ρ = (H / ((n+1)K))^n), so correct multiplicatively.
        for _iter in 0..10 {
            let (m1_now, m2_now) = model.integrate_masses(48);
            model.achieved_m1 = m1_now;
            model.achieved_m2 = m2_now;
            let done1 = (m1_now - params.m1).abs() / params.m1 < 5e-3;
            let done2 = params.m2 == 0.0 || (m2_now - params.m2).abs() / params.m2 < 5e-3;
            if done1 && done2 {
                break;
            }
            if m1_now > 0.0 {
                let f = (m1_now / params.m1).powf(1.0 / params.n).clamp(0.5, 2.0);
                model.eos1 = Polytrope::new(model.eos1.k * f, params.n);
            }
            if params.m2 > 0.0 && m2_now > 0.0 {
                let f = (m2_now / params.m2).powf(1.0 / params.n).clamp(0.5, 2.0);
                model.eos2 = Polytrope::new(model.eos2.k * f, params.n);
            }
        }
        let (m1_now, m2_now) = model.integrate_masses(64);
        model.achieved_m1 = m1_now;
        model.achieved_m2 = m2_now;
        model.rho_c1 = model.density_at(model.x1).0;
        model.rho_c2 = if params.m2 > 0.0 {
            model.density_at(model.x2).0
        } else {
            0.0
        };
        model
    }

    /// Effective (softened point-mass + centrifugal) potential of the
    /// rotating frame.
    pub fn phi_eff(&self, x: [f64; 3]) -> f64 {
        let d1sq = dist2(x, self.x1) + self.eps1 * self.eps1;
        let mut phi = -G * self.params.m1 / d1sq.sqrt();
        if self.params.m2 > 0.0 {
            let d2sq = dist2(x, self.x2) + self.eps2 * self.eps2;
            phi -= G * self.params.m2 / d2sq.sqrt();
        }
        phi - 0.5 * self.omega * self.omega * (x[0] * x[0] + x[1] * x[1])
    }

    /// Density and component fractions at a point: the SCF density from
    /// the Bernoulli integral, assigned to the nearer component (scaled by
    /// lobe size).  Returns `(rho, frac1, frac2)`.
    /// The Bernoulli criterion `H = C − Φ_eff > 0` alone is only valid
    /// inside the Roche geometry: beyond the corotation radius the
    /// centrifugal term drives `Φ_eff → −∞`, so `H` turns positive again
    /// far from the stars and would spuriously fill the outer domain with
    /// gas.  Real SCF codes restrict the solution to the lobes; we cut
    /// each component off beyond 1.6 of its characteristic radius
    /// (generous enough for contact envelopes, far inside corotation for
    /// the paper's scenarios).
    pub fn density_at(&self, x: [f64; 3]) -> (f64, f64, f64) {
        const LOBE_CUTOFF: f64 = 1.6;
        let d1 = dist2(x, self.x1).sqrt() / self.r1.max(1e-12);
        let d2 = if self.params.m2 > 0.0 {
            dist2(x, self.x2).sqrt() / self.r2.max(1e-12)
        } else {
            f64::INFINITY
        };
        let (c, eos, d, first) = if d1 <= d2 {
            (self.c1, &self.eos1, d1, true)
        } else {
            (self.c2, &self.eos2, d2, false)
        };
        if d > LOBE_CUTOFF {
            return (0.0, 0.0, 0.0);
        }
        let h = c - self.phi_eff(x);
        if h <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let rho = eos.rho_from_enthalpy(h);
        if first {
            (rho, rho, 0.0)
        } else {
            (rho, 0.0, rho)
        }
    }

    /// Integrate both component masses on a `res³` grid over the domain
    /// box (midpoint rule; the SCF iteration only needs ratios).
    pub fn integrate_masses(&self, res: usize) -> (f64, f64) {
        let half = crate::units::BOX_SIZE / 2.0;
        let h = crate::units::BOX_SIZE / res as f64;
        let vol = h * h * h;
        let mut m1 = 0.0;
        let mut m2 = 0.0;
        for i in 0..res {
            for j in 0..res {
                for k in 0..res {
                    let x = [
                        -half + (i as f64 + 0.5) * h,
                        -half + (j as f64 + 0.5) * h,
                        -half + (k as f64 + 0.5) * h,
                    ];
                    let (_, f1, f2) = self.density_at(x);
                    m1 += f1 * vol;
                    m2 += f2 * vol;
                }
            }
        }
        (m1, m2)
    }

    /// Effective potential at the inner Lagrange point (maximum along the
    /// line between the centers).
    pub fn phi_l1(&self) -> f64 {
        if self.params.m2 == 0.0 {
            return f64::INFINITY;
        }
        let mut best = f64::NEG_INFINITY;
        for i in 1..999 {
            let t = i as f64 / 999.0;
            let x = [self.x1[0] + t * (self.x2[0] - self.x1[0]), 0.0, 0.0];
            best = best.max(self.phi_eff(x));
        }
        best
    }

    /// Classify the converged configuration.
    pub fn kind(&self) -> BinaryKind {
        if self.params.m2 == 0.0 {
            return BinaryKind::SingleStar;
        }
        let l1 = self.phi_l1();
        // A component overflows its lobe when its surface constant
        // reaches the L1 potential.
        let over1 = self.c1 >= l1 - 1e-12;
        let over2 = self.c2 >= l1 - 1e-12;
        match (over1, over2) {
            (true, true) => BinaryKind::Contact,
            (false, false) => BinaryKind::Detached,
            _ => BinaryKind::SemiDetached,
        }
    }
}

fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_star_mass_converges() {
        let model = BinaryModel::solve(BinaryParams::single_star());
        let (m1, m2) = model.integrate_masses(96);
        assert!(
            (m1 - 1.0).abs() < 0.1,
            "single-star mass should approach target: {m1}"
        );
        assert_eq!(m2, 0.0);
        assert_eq!(model.kind(), BinaryKind::SingleStar);
    }

    #[test]
    fn density_peaks_at_center_and_vanishes_outside() {
        let model = BinaryModel::solve(BinaryParams::single_star());
        let (rho_center, f1, _) = model.density_at(model.x1);
        assert!(rho_center > 0.0);
        assert_eq!(f1, rho_center);
        let (rho_far, _, _) = model.density_at([0.9, 0.9, 0.9]);
        assert_eq!(rho_far, 0.0);
        // Monotone-ish falloff along +x.
        let (rho_half, _, _) = model.density_at([model.x1[0] + 0.5 * model.r1, 0.0, 0.0]);
        assert!(
            rho_half < rho_center && rho_half > 0.0,
            "rho_half {rho_half} vs center {rho_center}"
        );
    }

    #[test]
    fn dwd_masses_close_to_targets() {
        let model = BinaryModel::solve(BinaryParams::dwd_q07());
        let (m1, m2) = model.integrate_masses(96);
        assert!((m1 - 0.6).abs() / 0.6 < 0.15, "m1 = {m1}");
        assert!((m2 - 0.42).abs() / 0.42 < 0.15, "m2 = {m2}");
        // Mass ratio near 0.7 (the paper's q).
        let q = m2 / m1;
        assert!((q - 0.7).abs() < 0.1, "q = {q}");
    }

    #[test]
    fn kepler_frequency() {
        let p = BinaryParams::dwd_q07();
        let model = BinaryModel::solve(p);
        let expect = (G * (p.m1 + p.m2) / p.a.powi(3)).sqrt();
        assert!((model.omega - expect).abs() < 1e-12);
    }

    #[test]
    fn com_is_at_origin() {
        let p = BinaryParams::v1309();
        let model = BinaryModel::solve(p);
        let com = p.m1 * model.x1[0] + p.m2 * model.x2[0];
        assert!(com.abs() < 1e-12);
        assert!(model.x1[0] < 0.0 && model.x2[0] > 0.0);
    }

    #[test]
    fn v1309_is_contact_and_low_fill_is_detached() {
        let contact = BinaryModel::solve(BinaryParams::v1309());
        assert_eq!(contact.kind(), BinaryKind::Contact, "V1309 must be contact");
        let mut detached_params = BinaryParams::dwd_q07();
        detached_params.fill_factor = 0.5;
        let detached = BinaryModel::solve(detached_params);
        assert_eq!(detached.kind(), BinaryKind::Detached);
    }

    #[test]
    fn l1_lies_between_the_stars() {
        let model = BinaryModel::solve(BinaryParams::dwd_q07());
        let l1 = model.phi_l1();
        // L1 potential must be higher than the potential at either center.
        assert!(l1 > model.phi_eff(model.x1));
        assert!(l1 > model.phi_eff(model.x2));
        assert!(l1 < 0.0);
    }

    #[test]
    fn component_fraction_tags_are_exclusive() {
        let model = BinaryModel::solve(BinaryParams::dwd_q07());
        let (rho1, f1, f2) = model.density_at(model.x1);
        assert!(rho1 > 0.0 && f1 > 0.0 && f2 == 0.0);
        let (rho2, g1, g2) = model.density_at(model.x2);
        assert!(rho2 > 0.0 && g2 > 0.0 && g1 == 0.0);
    }

    #[test]
    fn achieved_masses_recorded() {
        let model = BinaryModel::solve(BinaryParams::dwd_q07());
        assert!(model.achieved_m1 > 0.0);
        assert!(model.achieved_m2 > 0.0);
        assert!(model.rho_c1 > 0.0 && model.rho_c2 > 0.0);
    }
}
