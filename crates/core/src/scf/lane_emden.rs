//! The Lane-Emden equation: structure of a polytropic star.
//!
//! `θ'' + (2/ξ) θ' + θⁿ = 0`, `θ(0) = 1`, `θ'(0) = 0`; the first zero `ξ₁`
//! marks the stellar surface.  Integrated with classic RK4; the solution
//! supplies the density profile `ρ(r) = ρ_c θ(ξ)ⁿ` used by the SCF module
//! and the scenario initializers (n = 3/2 for the convective MS stars of
//! V1309 and for non-relativistic white dwarfs).

/// A tabulated Lane-Emden solution for one polytropic index.
#[derive(Debug, Clone)]
pub struct LaneEmden {
    /// Polytropic index.
    pub n: f64,
    /// Radial samples of ξ.
    xi: Vec<f64>,
    /// θ(ξ) samples.
    theta: Vec<f64>,
    /// First zero ξ₁ (stellar surface).
    pub xi1: f64,
    /// −ξ₁² θ'(ξ₁), the mass integral constant.
    pub mass_constant: f64,
}

impl LaneEmden {
    /// Integrate the Lane-Emden equation for index `n` with step `h`.
    ///
    /// # Panics
    /// Panics if `n < 0` or `h <= 0`.
    pub fn solve(n: f64, h: f64) -> LaneEmden {
        assert!(n >= 0.0, "polytropic index must be non-negative");
        assert!(h > 0.0, "step must be positive");
        // State y = (θ, φ) with φ = θ'.
        // θ'' = −θⁿ − (2/ξ)θ'.  Start from the series expansion at ξ → 0:
        // θ ≈ 1 − ξ²/6 to avoid the coordinate singularity.
        let mut xi = vec![0.0];
        let mut theta = vec![1.0];
        let mut x = h;
        let mut t = 1.0 - x * x / 6.0 + n * x.powi(4) / 120.0;
        let mut dt = -x / 3.0 + n * x.powi(3) / 30.0;
        xi.push(x);
        theta.push(t);
        let deriv = |x: f64, t: f64, dt: f64| -> (f64, f64) {
            let tn = if t > 0.0 { t.powf(n) } else { 0.0 };
            (dt, -tn - 2.0 / x * dt)
        };
        let (mut xi1, mut mass_constant) = (f64::NAN, f64::NAN);
        for _ in 0..(200.0 / h) as usize {
            let (k1t, k1d) = deriv(x, t, dt);
            let (k2t, k2d) = deriv(x + 0.5 * h, t + 0.5 * h * k1t, dt + 0.5 * h * k1d);
            let (k3t, k3d) = deriv(x + 0.5 * h, t + 0.5 * h * k2t, dt + 0.5 * h * k2d);
            let (k4t, k4d) = deriv(x + h, t + h * k3t, dt + h * k3d);
            let t_new = t + h / 6.0 * (k1t + 2.0 * k2t + 2.0 * k3t + k4t);
            let dt_new = dt + h / 6.0 * (k1d + 2.0 * k2d + 2.0 * k3d + k4d);
            let x_new = x + h;
            if t_new <= 0.0 {
                // Linear interpolation for the zero crossing.
                let frac = t / (t - t_new);
                xi1 = x + frac * h;
                let dt1 = dt + frac * (dt_new - dt);
                mass_constant = -xi1 * xi1 * dt1;
                xi.push(xi1);
                theta.push(0.0);
                break;
            }
            x = x_new;
            t = t_new;
            dt = dt_new;
            xi.push(x);
            theta.push(t);
        }
        assert!(
            xi1.is_finite(),
            "Lane-Emden integration did not reach the surface (n = {n})"
        );
        LaneEmden {
            n,
            xi,
            theta,
            xi1,
            mass_constant,
        }
    }

    /// θ(ξ) by linear interpolation; 0 beyond the surface.
    pub fn theta_at(&self, xi: f64) -> f64 {
        if xi <= 0.0 {
            return 1.0;
        }
        if xi >= self.xi1 {
            return 0.0;
        }
        // Uniform grid except the last point; binary search is robust.
        match self
            .xi
            .binary_search_by(|probe| probe.partial_cmp(&xi).expect("finite"))
        {
            Ok(i) => self.theta[i],
            Err(i) => {
                let (x0, x1) = (self.xi[i - 1], self.xi[i]);
                let (t0, t1) = (self.theta[i - 1], self.theta[i]);
                t0 + (t1 - t0) * (xi - x0) / (x1 - x0)
            }
        }
    }

    /// Dimensionless density `θⁿ` at ξ.
    pub fn density_ratio(&self, xi: f64) -> f64 {
        self.theta_at(xi).powf(self.n)
    }

    /// Ratio of central to mean density, `ρ_c/ρ̄ = ξ₁³ / (3 · mass_constant)`.
    pub fn central_to_mean_density(&self) -> f64 {
        self.xi1.powi(3) / (3.0 * self.mass_constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n0_has_analytic_solution() {
        // n = 0: θ = 1 − ξ²/6, ξ₁ = √6, −ξ₁²θ'(ξ₁) = ξ₁³/3.
        let le = LaneEmden::solve(0.0, 1e-4);
        assert!((le.xi1 - 6.0f64.sqrt()).abs() < 1e-5, "xi1 = {}", le.xi1);
        assert!((le.mass_constant - le.xi1.powi(3) / 3.0).abs() < 1e-3);
        assert!((le.theta_at(1.0) - (1.0 - 1.0 / 6.0)).abs() < 1e-6);
    }

    #[test]
    fn n1_has_analytic_solution() {
        // n = 1: θ = sin ξ / ξ, ξ₁ = π.
        let le = LaneEmden::solve(1.0, 1e-4);
        assert!((le.xi1 - std::f64::consts::PI).abs() < 1e-5);
        for x in [0.5, 1.0, 2.0, 3.0] {
            assert!((le.theta_at(x) - x.sin() / x).abs() < 1e-6, "xi = {x}");
        }
    }

    #[test]
    fn n5_surface_is_far_but_n32_is_finite() {
        // n = 3/2 (our stars): ξ₁ ≈ 3.6538.
        let le = LaneEmden::solve(1.5, 1e-4);
        assert!((le.xi1 - 3.65375).abs() < 1e-3, "xi1 = {}", le.xi1);
        // Known: −ξ₁²θ'(ξ₁) ≈ 2.71406.
        assert!((le.mass_constant - 2.71406).abs() < 1e-3);
    }

    #[test]
    fn n3_standard_model() {
        // n = 3 (Eddington standard model): ξ₁ ≈ 6.8968, m ≈ 2.01824.
        let le = LaneEmden::solve(3.0, 1e-4);
        assert!((le.xi1 - 6.8968).abs() < 5e-3);
        assert!((le.mass_constant - 2.01824).abs() < 2e-3);
    }

    #[test]
    fn theta_is_monotone_decreasing() {
        let le = LaneEmden::solve(1.5, 1e-3);
        let mut prev = 1.0 + 1e-12;
        for i in 0..=100 {
            let x = le.xi1 * i as f64 / 100.0;
            let t = le.theta_at(x);
            assert!(t <= prev + 1e-9, "θ must not increase");
            prev = t;
        }
        assert_eq!(le.theta_at(le.xi1 + 1.0), 0.0);
        assert_eq!(le.theta_at(0.0), 1.0);
    }

    #[test]
    fn central_to_mean_density_known_value() {
        // n = 3/2: ρc/ρ̄ ≈ 5.99.
        let le = LaneEmden::solve(1.5, 1e-4);
        assert!((le.central_to_mean_density() - 5.99).abs() < 0.05);
    }
}
