//! Self-consistent-field (SCF) initial models.
//!
//! Paper Section IV-C: *"Our binary models are initialized using an
//! iterative 'self-consistent field' (SCF) technique.  The hydrostatic
//! equilibrium equation in the rotating frame is integrated to produce an
//! algebraic equation with two unknowns, the 'effective' gravitational
//! potential and the enthalpy.  The module is capable of producing
//! detached, semi-detached, and contact binaries, such as the progenitor to
//! V1309 Sco."*
//!
//! * [`lane_emden`] — the Lane-Emden polytrope integrator providing the
//!   single-star structure.
//! * [`binary`] — the iterative SCF solver balancing `H + Φ_eff = C` for
//!   each component in the rotating frame, with per-star polytropic
//!   constants rescaled until the target masses are met.
//! * [`rcb`] — post-merger product diagnostics: the R CrB candidacy
//!   analysis of paper Section III-B.

pub mod binary;
pub mod lane_emden;
pub mod rcb;

pub use binary::{BinaryKind, BinaryModel, BinaryParams};
pub use lane_emden::LaneEmden;
pub use rcb::MergerProduct;
