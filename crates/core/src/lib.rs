//! # octotiger — the application layer of the reproduction
//!
//! A Rust implementation of the astrophysics code the paper ports to
//! A64FX: Octo-Tiger, *"a code for modeling self-gravitating astrophysical
//! fluids"* (paper Section IV-C).  The solver stack follows the paper's
//! description:
//!
//! * **Hydrodynamics** — Eulerian, on the AMR octree's `N³` sub-grids
//!   (N = 8 by default), semi-discrete finite-volume with piecewise-linear
//!   reconstruction and an HLL Riemann solver, advanced by a third-order
//!   SSP Runge-Kutta scheme with a **global fixed time step** (Octo-Tiger
//!   deliberately avoids adaptive time stepping to keep machine-precision
//!   conservation of the evolved variables).
//! * **Gravity** — a fast multipole method coupled to the same octree:
//!   bottom-up moment aggregation (P2M/M2M), multipole-to-local
//!   interactions (M2L) with monopole + quadrupole and an optional octupole
//!   correction (the paper's angular-momentum-conserving modification),
//!   top-down local-expansion passes (L2L), and direct P2P near fields.
//!   The M2L kernel takes a `tasks_per_kernel` knob — the paper's Figure 9
//!   multipole work splitting.
//! * **SCF initialization** — Lane-Emden polytropes and an iterative
//!   self-consistent-field binary generator producing detached,
//!   semi-detached and contact binaries (V1309-like contact MS binary, DWD
//!   with mass ratio q = 0.7).
//! * **Rotating frame** — the grid rotates with the binary's initial
//!   orbital frequency to reduce numerical viscosity (Coriolis +
//!   centrifugal sources).
//! * **IO** — a "silo-lite" hierarchical checkpoint format standing in for
//!   Silo/HDF5 (see DESIGN.md substitution table).
//!
//! Every hot kernel is written once over `sve_simd::Simd<f64, W>` and
//! monomorphised for the scalar (`W = 1`) and SVE (`W = 8`) widths, then
//! dispatched on `sve_simd::VectorMode` — the paper's compile-time SIMD
//! switch, reproduced at run time (Figure 7).

pub mod diag;
pub mod driver;
pub mod eos;
pub mod gravity;
pub mod hydro;
pub mod io;
pub mod scenario;
pub mod scf;
pub mod state;
pub mod units;
pub mod workspace;

pub use diag::ConservationLedger;
pub use driver::{RegridOutcome, SimOptions, Simulation, StepStats};
pub use eos::{Eos, IdealGas, Polytrope};
pub use scenario::{Scenario, ScenarioKind};
pub use state::{field, NF};
