//! Per-leaf recycled workspaces: the stepper-side face of the CPPuddle-style
//! memory subsystem.
//!
//! Every leaf owns one [`LeafWorkspace`] holding the buffers an RK stage
//! needs — the step-start state `u0`, the stage input copy `u_cur`, the RHS
//! accumulator, the kernel scratch checked out of the simulation's
//! [`ScratchArena`], and the precomputed ghost-cell run list.  The workspace
//! is created once (first step after construction or regrid) and reused by
//! every stage of every step, so a steady-state timestep performs no
//! transient allocations in the stepper.
//!
//! Concurrency: both steppers guard each workspace behind a `Mutex` and
//! acquire it with `try_lock`.  The per-leaf future chain orders every task
//! touching a leaf, so the lock is never contended — a failed `try_lock` is
//! a dependency-graph bug, and panicking loudly there is exactly the
//! fail-fast behaviour the `hpx-check races` model proves unreachable.

use crate::hydro::kernels::KernelScratch;
use crate::state::NF;
use kokkos_rs::pool::ScratchArena;
use octree::SubGrid;

/// Recycled per-leaf buffers for the stepper (see module docs).
#[derive(Debug)]
pub struct LeafWorkspace {
    /// State at step start (`u⁰`), copied once per step.
    pub u0: SubGrid,
    /// Stage input copy of the leaf's grid (ghosts included).
    pub u_cur: SubGrid,
    /// RHS accumulator `L(u)`.
    pub rhs: SubGrid,
    /// Pooled primitive/flux scratch for the hydro kernels.
    pub scratch: KernelScratch,
    /// Flat-index `(start, len)` runs covering one field's ghost cells,
    /// computed once — [`zero_ghost_runs`] reuses it every stage instead of
    /// re-walking the region geometry.
    pub ghost_runs: Vec<(usize, usize)>,
}

impl LeafWorkspace {
    /// Workspace for an `n`-cell leaf with `ghost` ghost width, with kernel
    /// scratch checked out of `pool`.
    pub fn new(n: usize, ghost: usize, pool: &ScratchArena) -> LeafWorkspace {
        let probe = SubGrid::new(n, ghost, NF);
        let ghost_runs = probe.ghost_runs();
        LeafWorkspace {
            u0: SubGrid::new(n, ghost, NF),
            u_cur: probe,
            rhs: SubGrid::new(n, ghost, NF),
            scratch: KernelScratch::new(n, ghost, pool),
            ghost_runs,
        }
    }
}

/// Zero every ghost cell of every field of `rhs` using the precomputed run
/// list (`runs` must come from a grid of the same shape).
pub fn zero_ghost_runs(rhs: &mut SubGrid, runs: &[(usize, usize)]) {
    for f in 0..rhs.nfields() {
        let field = rhs.field_mut(f);
        for &(start, len) in runs {
            field[start..start + len].fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_ghost_runs_clears_exactly_the_ghosts() {
        let pool = ScratchArena::new();
        let ws = LeafWorkspace::new(4, 2, &pool);
        let mut g = SubGrid::new(4, 2, NF);
        g.fill(3.5);
        zero_ghost_runs(&mut g, &ws.ghost_runs);
        let ext = g.ext();
        for f in 0..NF {
            for i in 0..ext {
                for j in 0..ext {
                    for k in 0..ext {
                        let interior =
                            (2..6).contains(&i) && (2..6).contains(&j) && (2..6).contains(&k);
                        let want = if interior { 3.5 } else { 0.0 };
                        assert_eq!(g.get(f, i, j, k), want, "f{f} ({i},{j},{k})");
                    }
                }
            }
        }
    }

    #[test]
    fn workspace_scratch_comes_from_the_pool() {
        let pool = ScratchArena::new();
        {
            let _ws = LeafWorkspace::new(4, 2, &pool);
            assert_eq!(pool.stats().misses, 2); // prim + flux
        }
        // Dropped workspace returns its scratch; a new one recycles it.
        let _ws2 = LeafWorkspace::new(4, 2, &pool);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
    }
}
