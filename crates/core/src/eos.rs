//! Equations of state: ideal gas for the hydro evolution, polytropes for
//! the SCF initial models.
//!
//! Paper Section IV-C: the SCF module builds binaries whose components
//! "may be polytropic or a 'bi-polytropic' structure, with core, envelope,
//! and/or common envelope components".

use crate::units::{GAMMA, P_FLOOR, RHO_FLOOR};

/// Minimal EOS interface used by the hydro solver and SCF module.
pub trait Eos {
    /// Pressure from density and specific internal energy density `e`
    /// (energy per volume).
    fn pressure(&self, rho: f64, e: f64) -> f64;
    /// Sound speed from density and pressure.
    fn sound_speed(&self, rho: f64, p: f64) -> f64;
    /// Specific enthalpy `h(ρ)` along the EOS's barotrope (used by SCF).
    fn enthalpy(&self, rho: f64) -> f64;
    /// Inverse of [`Eos::enthalpy`]: density from specific enthalpy.
    fn rho_from_enthalpy(&self, h: f64) -> f64;
}

/// Gamma-law ideal gas, `p = (γ−1) e`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealGas {
    /// Ratio of specific heats.
    pub gamma: f64,
}

impl Default for IdealGas {
    fn default() -> Self {
        IdealGas { gamma: GAMMA }
    }
}

impl Eos for IdealGas {
    #[inline]
    fn pressure(&self, _rho: f64, e: f64) -> f64 {
        ((self.gamma - 1.0) * e).max(P_FLOOR)
    }

    #[inline]
    fn sound_speed(&self, rho: f64, p: f64) -> f64 {
        (self.gamma * p / rho.max(RHO_FLOOR)).sqrt()
    }

    fn enthalpy(&self, rho: f64) -> f64 {
        // For an isentropic gamma-law gas with K = 1:
        // h = γ/(γ−1) K ρ^(γ−1).
        self.gamma / (self.gamma - 1.0) * rho.max(0.0).powf(self.gamma - 1.0)
    }

    fn rho_from_enthalpy(&self, h: f64) -> f64 {
        if h <= 0.0 {
            return 0.0;
        }
        ((self.gamma - 1.0) / self.gamma * h).powf(1.0 / (self.gamma - 1.0))
    }
}

/// Polytrope `p = K ρ^(1 + 1/n)` with index `n`.
///
/// `n = 3/2` models fully convective low-mass MS stars and (roughly)
/// non-relativistic white dwarfs — the components of both paper scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Polytrope {
    /// Polytropic constant.
    pub k: f64,
    /// Polytropic index.
    pub n: f64,
}

impl Polytrope {
    /// Polytrope with index `n` and constant `k`.
    pub fn new(k: f64, n: f64) -> Polytrope {
        assert!(k > 0.0 && n > 0.0, "polytrope parameters must be positive");
        Polytrope { k, n }
    }

    /// Adiabatic exponent `Γ = 1 + 1/n`.
    pub fn gamma(&self) -> f64 {
        1.0 + 1.0 / self.n
    }

    /// Barotropic pressure `p(ρ)`.
    pub fn pressure_of_rho(&self, rho: f64) -> f64 {
        self.k * rho.max(0.0).powf(self.gamma())
    }
}

impl Eos for Polytrope {
    fn pressure(&self, rho: f64, _e: f64) -> f64 {
        self.pressure_of_rho(rho).max(P_FLOOR)
    }

    fn sound_speed(&self, rho: f64, p: f64) -> f64 {
        (self.gamma() * p / rho.max(RHO_FLOOR)).sqrt()
    }

    fn enthalpy(&self, rho: f64) -> f64 {
        // h = ∫ dp/ρ = K (n+1) ρ^(1/n).
        self.k * (self.n + 1.0) * rho.max(0.0).powf(1.0 / self.n)
    }

    fn rho_from_enthalpy(&self, h: f64) -> f64 {
        if h <= 0.0 {
            return 0.0;
        }
        (h / (self.k * (self.n + 1.0))).powf(self.n)
    }
}

/// Bi-polytropic structure: a core polytrope beneath a transition density,
/// an envelope polytrope above — with the envelope constant chosen for
/// pressure continuity at the transition (paper: "core, envelope, and/or
/// common envelope components").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiPolytrope {
    /// Core EOS (applies for `rho >= rho_transition`).
    pub core: Polytrope,
    /// Envelope EOS (applies below the transition).
    pub envelope: Polytrope,
    /// Transition density.
    pub rho_transition: f64,
}

impl BiPolytrope {
    /// Build with pressure-matched envelope: `k_env` is derived so
    /// `p_core(ρ_t) = p_env(ρ_t)`.
    pub fn pressure_matched(core: Polytrope, n_envelope: f64, rho_transition: f64) -> Self {
        assert!(rho_transition > 0.0);
        let p_t = core.pressure_of_rho(rho_transition);
        let gamma_env = 1.0 + 1.0 / n_envelope;
        let k_env = p_t / rho_transition.powf(gamma_env);
        BiPolytrope {
            core,
            envelope: Polytrope::new(k_env, n_envelope),
            rho_transition,
        }
    }

    /// Which component's EOS applies at density `rho`.
    fn part(&self, rho: f64) -> &Polytrope {
        if rho >= self.rho_transition {
            &self.core
        } else {
            &self.envelope
        }
    }
}

impl Eos for BiPolytrope {
    fn pressure(&self, rho: f64, _e: f64) -> f64 {
        self.part(rho).pressure_of_rho(rho).max(P_FLOOR)
    }

    fn sound_speed(&self, rho: f64, p: f64) -> f64 {
        self.part(rho).sound_speed(rho, p)
    }

    fn enthalpy(&self, rho: f64) -> f64 {
        if rho >= self.rho_transition {
            // Continuity: h_core(ρ) - h_core(ρ_t) + h_env(ρ_t).
            self.core.enthalpy(rho) - self.core.enthalpy(self.rho_transition)
                + self.envelope.enthalpy(self.rho_transition)
        } else {
            self.envelope.enthalpy(rho)
        }
    }

    fn rho_from_enthalpy(&self, h: f64) -> f64 {
        let h_t = self.envelope.enthalpy(self.rho_transition);
        if h <= h_t {
            self.envelope.rho_from_enthalpy(h)
        } else {
            self.core
                .rho_from_enthalpy(h - h_t + self.core.enthalpy(self.rho_transition))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_gas_pressure_and_sound_speed() {
        let eos = IdealGas::default();
        let p = eos.pressure(1.0, 1.5);
        assert!((p - (GAMMA - 1.0) * 1.5).abs() < 1e-14);
        let cs = eos.sound_speed(1.0, p);
        assert!((cs * cs - GAMMA * p).abs() < 1e-12);
    }

    #[test]
    fn ideal_gas_enthalpy_roundtrip() {
        let eos = IdealGas::default();
        for rho in [1e-4, 0.1, 1.0, 7.3] {
            let h = eos.enthalpy(rho);
            assert!((eos.rho_from_enthalpy(h) - rho).abs() / rho < 1e-12);
        }
        assert_eq!(eos.rho_from_enthalpy(-1.0), 0.0);
    }

    #[test]
    fn polytrope_enthalpy_roundtrip() {
        let eos = Polytrope::new(0.4242, 1.5);
        for rho in [1e-5, 0.3, 2.0] {
            let h = eos.enthalpy(rho);
            assert!((eos.rho_from_enthalpy(h) - rho).abs() / rho < 1e-12);
        }
    }

    #[test]
    fn polytrope_gamma() {
        assert!((Polytrope::new(1.0, 1.5).gamma() - 5.0 / 3.0).abs() < 1e-15);
        assert!((Polytrope::new(1.0, 3.0).gamma() - 4.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn enthalpy_is_dp_drho_over_rho_consistent() {
        // dh/dρ must equal (dp/dρ)/ρ for a barotrope.
        let eos = Polytrope::new(0.7, 1.5);
        let rho = 0.9;
        let drho = 1e-7;
        let dh = (eos.enthalpy(rho + drho) - eos.enthalpy(rho - drho)) / (2.0 * drho);
        let dp = (eos.pressure_of_rho(rho + drho) - eos.pressure_of_rho(rho - drho)) / (2.0 * drho);
        assert!((dh - dp / rho).abs() < 1e-5);
    }

    #[test]
    fn bipolytrope_pressure_is_continuous() {
        let core = Polytrope::new(1.0, 1.5);
        let bi = BiPolytrope::pressure_matched(core, 3.0, 0.5);
        let below = bi.pressure(0.5 - 1e-9, 0.0);
        let above = bi.pressure(0.5 + 1e-9, 0.0);
        assert!((below - above).abs() / above < 1e-6);
    }

    #[test]
    fn bipolytrope_enthalpy_continuous_and_invertible() {
        let core = Polytrope::new(1.0, 1.5);
        let bi = BiPolytrope::pressure_matched(core, 3.0, 0.5);
        let h_below = bi.enthalpy(0.5 - 1e-9);
        let h_above = bi.enthalpy(0.5 + 1e-9);
        assert!((h_below - h_above).abs() / h_above < 1e-6);
        for rho in [0.05, 0.3, 0.5, 0.9, 2.0] {
            let h = bi.enthalpy(rho);
            let back = bi.rho_from_enthalpy(h);
            assert!(
                (back - rho).abs() / rho < 1e-9,
                "rho {rho} -> h {h} -> {back}"
            );
        }
    }
}
