//! Rotating-frame and gravity source terms.
//!
//! Paper Section IV-C: *"We have additionally implemented features
//! specifically suited to the study of interacting binary stars, such as
//! rotating the AMR grid with the original orbital frequency of the binary.
//! This reduces the numerical viscosity, at least in the early phases of a
//! simulation."*  In the frame rotating with Ω ẑ about the domain center,
//! the momentum equation gains Coriolis (−2ρ Ω×v) and centrifugal
//! (+ρ Ω² ϖ) sources; only the centrifugal term does work on the gas.
//! Gravity enters as ρ g on momentum and s·g on energy.

use super::SourceInput;
use crate::state::{field, NF};
use crate::units::RHO_FLOOR;
use octree::SubGrid;

/// Add gravity + rotating-frame sources to the interior cells of `rhs`.
pub fn apply_sources(u: &SubGrid, rhs: &mut SubGrid, src: &SourceInput<'_>) {
    let n = u.n();
    debug_assert_eq!(rhs.nfields(), NF);
    let omega = src.omega;
    let have_frame = omega != 0.0;
    let have_gravity = src.gravity.is_some();
    if !have_frame && !have_gravity {
        return;
    }
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let rho = u.get_interior(field::RHO, i, j, k).max(RHO_FLOOR);
                let sx = u.get_interior(field::SX, i, j, k);
                let sy = u.get_interior(field::SY, i, j, k);
                let sz = u.get_interior(field::SZ, i, j, k);
                let mut dsx = 0.0;
                let mut dsy = 0.0;
                let mut dsz = 0.0;
                let mut de = 0.0;
                if let Some([gx, gy, gz]) = src.gravity {
                    let c = (i * n + j) * n + k;
                    dsx += rho * gx[c];
                    dsy += rho * gy[c];
                    dsz += rho * gz[c];
                    // Energy-conserving coupling: dE/dt = s·g.
                    de += sx * gx[c] + sy * gy[c] + sz * gz[c];
                }
                if have_frame {
                    let x = src.origin[0] + i as f64 * src.h;
                    let y = src.origin[1] + j as f64 * src.h;
                    // Coriolis: −2 Ω ẑ × s = (2Ω s_y, −2Ω s_x, 0).
                    dsx += 2.0 * omega * sy;
                    dsy -= 2.0 * omega * sx;
                    // Centrifugal: ρ Ω² (x, y, 0).
                    let cfx = rho * omega * omega * x;
                    let cfy = rho * omega * omega * y;
                    dsx += cfx;
                    dsy += cfy;
                    // Work done by the centrifugal force: v·F_cf.
                    de += (sx * cfx + sy * cfy) / rho;
                }
                let cur_sx = rhs.get_interior(field::SX, i, j, k);
                let cur_sy = rhs.get_interior(field::SY, i, j, k);
                let cur_sz = rhs.get_interior(field::SZ, i, j, k);
                let cur_e = rhs.get_interior(field::EGAS, i, j, k);
                rhs.set_interior(field::SX, i, j, k, cur_sx + dsx);
                rhs.set_interior(field::SY, i, j, k, cur_sy + dsy);
                rhs.set_interior(field::SZ, i, j, k, cur_sz + dsz);
                rhs.set_interior(field::EGAS, i, j, k, cur_e + de);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_grid(n: usize, rho: f64, v: [f64; 3]) -> SubGrid {
        let mut u = SubGrid::new(n, 2, NF);
        for i in 0..u.ext() {
            for j in 0..u.ext() {
                for k in 0..u.ext() {
                    u.set(field::RHO, i, j, k, rho);
                    u.set(field::SX, i, j, k, rho * v[0]);
                    u.set(field::SY, i, j, k, rho * v[1]);
                    u.set(field::SZ, i, j, k, rho * v[2]);
                }
            }
        }
        u
    }

    #[test]
    fn no_sources_leaves_rhs_untouched() {
        let u = state_grid(2, 1.0, [0.1, 0.2, 0.3]);
        let mut rhs = SubGrid::new(2, 2, NF);
        rhs.fill(7.0);
        apply_sources(
            &u,
            &mut rhs,
            &SourceInput {
                gravity: None,
                omega: 0.0,
                origin: [0.0; 3],
                h: 1.0,
                boundary_faces: [false; 6],
            },
        );
        assert_eq!(rhs.get_interior(field::SX, 0, 0, 0), 7.0);
    }

    #[test]
    fn coriolis_does_no_work() {
        // Pure rotation at the domain center (x=y=0): only Coriolis acts;
        // the energy source must vanish.
        let u = state_grid(2, 1.0, [0.4, -0.3, 0.0]);
        let mut rhs = SubGrid::new(2, 2, NF);
        apply_sources(
            &u,
            &mut rhs,
            &SourceInput {
                gravity: None,
                omega: 1.5,
                // Origin chosen so cell (0,0,·) sits at x=y=0.
                origin: [0.0, 0.0, 0.0],
                h: 0.0,
                boundary_faces: [false; 6],
            },
        );
        assert!(rhs.get_interior(field::EGAS, 0, 0, 0).abs() < 1e-15);
        // Coriolis components: 2Ω s_y and −2Ω s_x.
        assert!((rhs.get_interior(field::SX, 0, 0, 0) - 2.0 * 1.5 * (-0.3)).abs() < 1e-14);
        assert!((rhs.get_interior(field::SY, 0, 0, 0) + 2.0 * 1.5 * 0.4).abs() < 1e-14);
    }

    #[test]
    fn centrifugal_points_outward() {
        let u = state_grid(2, 2.0, [0.0, 0.0, 0.0]);
        let mut rhs = SubGrid::new(2, 2, NF);
        let omega = 2.0;
        apply_sources(
            &u,
            &mut rhs,
            &SourceInput {
                gravity: None,
                omega,
                origin: [1.0, -1.0, 0.0],
                h: 0.5,
                boundary_faces: [false; 6],
            },
        );
        // Cell (0,0,0) at (1.0, -1.0): F_cf = ρΩ²(x,y).
        assert!((rhs.get_interior(field::SX, 0, 0, 0) - 2.0 * 4.0 * 1.0).abs() < 1e-13);
        assert!((rhs.get_interior(field::SY, 0, 0, 0) - -(2.0 * 4.0)).abs() < 1e-13);
        assert_eq!(rhs.get_interior(field::SZ, 0, 0, 0), 0.0);
    }

    #[test]
    fn gravity_energy_source_is_s_dot_g() {
        let u = state_grid(2, 1.0, [0.5, 0.0, -0.25]);
        let n3 = 8;
        let gx = vec![0.2; n3];
        let gy = vec![0.0; n3];
        let gz = vec![0.4; n3];
        let mut rhs = SubGrid::new(2, 2, NF);
        apply_sources(
            &u,
            &mut rhs,
            &SourceInput {
                gravity: Some([&gx, &gy, &gz]),
                omega: 0.0,
                origin: [0.0; 3],
                h: 1.0,
                boundary_faces: [false; 6],
            },
        );
        let expected = 0.5 * 0.2 + (-0.25) * 0.4;
        assert!((rhs.get_interior(field::EGAS, 1, 1, 1) - expected).abs() < 1e-14);
    }
}
