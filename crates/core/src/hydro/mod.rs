//! The hydrodynamics module: semi-discrete finite-volume scheme on the
//! sub-grids, as described in paper Section IV-C.
//!
//! Pipeline per leaf and Runge-Kutta stage (ghosts already exchanged):
//!
//! 1. primitive recovery over the full ghosted block ([`kernels`]),
//! 2. piecewise-linear reconstruction with the minmod limiter ([`recon`]),
//! 3. HLL fluxes on all cell interfaces of each axis ([`flux`]),
//! 4. flux divergence + gravity and rotating-frame sources into the RHS,
//! 5. SSP-RK3 stage combination ([`rk3`]).
//!
//! All inner loops are written once over `Simd<f64, W>` and monomorphised
//! at `W = 1` (scalar build) and `W = 8` (SVE build), dispatched on
//! [`sve_simd::VectorMode`] — the Figure 7 experiment switch.

pub mod flux;
pub mod kernels;
pub mod recon;
pub mod rk3;
pub mod rotating;

use crate::state::NF;
use octree::SubGrid;
use sve_simd::VectorMode;

/// Hydro solver options.
#[derive(Debug, Clone, Copy)]
pub struct HydroOptions {
    /// SIMD width selection (paper Figure 7: scalar vs SVE).
    pub vector_mode: VectorMode,
    /// CFL number for the global fixed time step.
    pub cfl: f64,
}

impl Default for HydroOptions {
    fn default() -> Self {
        HydroOptions {
            // SVE unless overridden through OCTO_VECTOR_MODE (CI runs the
            // suite once per backend via that switch).
            vector_mode: VectorMode::env_default(),
            cfl: 0.4,
        }
    }
}

/// Per-cell acceleration field for one leaf (filled by the gravity solver;
/// zero in pure-hydro runs), plus the rotating-frame parameters.
#[derive(Debug, Clone)]
pub struct SourceInput<'a> {
    /// `g_x, g_y, g_z` per interior cell (length `n³` each, k fastest), or
    /// `None` for no gravity.
    pub gravity: Option<[&'a [f64]; 3]>,
    /// Rotating-frame angular frequency Ω (about z through the domain
    /// center); `0.0` disables frame terms.
    pub omega: f64,
    /// Physical coordinates of the leaf's first interior cell center.
    pub origin: [f64; 3],
    /// Cell width.
    pub h: f64,
    /// Which of this leaf's faces are computational-domain boundaries, in
    /// `[-x, +x, -y, +y, -z, +z]` order.  Mass flux through these faces is
    /// tracked so the conservation ledger can account for outflow, the way
    /// Octo-Tiger's diagnostics do.
    pub boundary_faces: [bool; 6],
}

/// Output of one RHS evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RhsInfo {
    /// Leaf-local maximum signal speed (for the global CFL reduction).
    pub max_signal_speed: f64,
    /// Net mass leaving the domain through this leaf's boundary faces,
    /// per unit time (flux × face area, summed).
    pub boundary_mass_outflow_rate: f64,
}

/// Compute the full right-hand side `L(u)` for one leaf into `rhs`
/// (interior cells only; `rhs` must have the same shape as `u`), using the
/// caller's pooled [`kernels::KernelScratch`].
pub fn compute_rhs(
    u: &SubGrid,
    rhs: &mut SubGrid,
    src: &SourceInput<'_>,
    opts: &HydroOptions,
    scratch: &mut kernels::KernelScratch,
) -> RhsInfo {
    match opts.vector_mode {
        VectorMode::Scalar => kernels::compute_rhs_w::<1>(u, rhs, src, scratch),
        VectorMode::Sve512 => compute_rhs_wide(u, rhs, src, scratch),
    }
}

sve_simd::wide_dispatch! {
    /// [`kernels::compute_rhs_w::<8>`] entered under the host's widest
    /// vector ISA — the "SVE build" half of the Figure 7 pair.
    fn compute_rhs_wide(
        u: &SubGrid,
        rhs: &mut SubGrid,
        src: &SourceInput<'_>,
        scratch: &mut kernels::KernelScratch
    ) -> RhsInfo = kernels::compute_rhs_w::<8>
}

/// Maximum signal speed (|v| + c_s) over the interior of a leaf, for the
/// CFL condition.  Octo-Tiger reduces this globally and keeps the step
/// fixed across the grid (no adaptive time stepping — paper Section IV-C).
pub fn max_signal_speed(u: &SubGrid, opts: &HydroOptions) -> f64 {
    match opts.vector_mode {
        VectorMode::Scalar => kernels::max_signal_speed_w::<1>(u),
        VectorMode::Sve512 => max_signal_speed_wide(u),
    }
}

sve_simd::wide_dispatch! {
    /// [`kernels::max_signal_speed_w::<8>`] under the host's widest vector
    /// ISA.
    fn max_signal_speed_wide(u: &SubGrid) -> f64 = kernels::max_signal_speed_w::<8>
}

/// Allocate an RHS buffer shaped like `u`.
pub fn rhs_like(u: &SubGrid) -> SubGrid {
    SubGrid::new(u.n(), u.ghost(), NF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{field, from_primitive, Primitive};

    fn uniform_grid(n: usize, p: Primitive) -> SubGrid {
        let mut g = SubGrid::new(n, 2, NF);
        let (u, tau) = from_primitive(&p);
        let ext = g.ext();
        for i in 0..ext {
            for j in 0..ext {
                for k in 0..ext {
                    g.set(field::RHO, i, j, k, u.rho);
                    g.set(field::SX, i, j, k, u.sx);
                    g.set(field::SY, i, j, k, u.sy);
                    g.set(field::SZ, i, j, k, u.sz);
                    g.set(field::EGAS, i, j, k, u.egas);
                    g.set(field::TAU, i, j, k, tau);
                    g.set(field::FRAC1, i, j, k, u.rho);
                    g.set(field::FRAC2, i, j, k, 0.0);
                }
            }
        }
        g
    }

    #[test]
    fn uniform_state_has_zero_rhs() {
        // A constant state is an exact steady solution: all flux
        // differences vanish.
        let p = Primitive {
            rho: 1.0,
            vx: 0.3,
            vy: -0.2,
            vz: 0.1,
            p: 0.8,
        };
        let u = uniform_grid(4, p);
        let mut rhs = rhs_like(&u);
        let src = SourceInput {
            gravity: None,
            omega: 0.0,
            origin: [0.0; 3],
            h: 0.1,
            boundary_faces: [false; 6],
        };
        let mut scratch = kernels::KernelScratch::ephemeral(4, 2);
        for mode in VectorMode::all() {
            let opts = HydroOptions {
                vector_mode: mode,
                cfl: 0.4,
            };
            let info = compute_rhs(&u, &mut rhs, &src, &opts, &mut scratch);
            assert!(info.max_signal_speed > 0.0);
            assert_eq!(info.boundary_mass_outflow_rate, 0.0);
            for f in 0..NF {
                for i in 0..4 {
                    for j in 0..4 {
                        for k in 0..4 {
                            assert!(
                                rhs.get_interior(f, i, j, k).abs() < 1e-12,
                                "mode {mode:?} field {f} rhs {} at ({i},{j},{k})",
                                rhs.get_interior(f, i, j, k)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_and_sve_modes_agree_bitwise_on_smooth_data() {
        // The paper's SIMD switch must not change the physics: both widths
        // evaluate the same arithmetic.
        let mut u = uniform_grid(
            4,
            Primitive {
                rho: 1.0,
                vx: 0.0,
                vy: 0.0,
                vz: 0.0,
                p: 0.6,
            },
        );
        // Impose a smooth density/pressure bump.
        let ext = u.ext();
        for i in 0..ext {
            for j in 0..ext {
                for k in 0..ext {
                    let r2 = (i as f64 - 3.5).powi(2)
                        + (j as f64 - 3.5).powi(2)
                        + (k as f64 - 3.5).powi(2);
                    let rho = 1.0 + 0.5 * (-r2 / 8.0).exp();
                    u.set(field::RHO, i, j, k, rho);
                    u.set(field::EGAS, i, j, k, 0.9 * rho);
                    u.set(field::TAU, i, j, k, (0.9 * rho).powf(0.6));
                    u.set(field::FRAC1, i, j, k, rho);
                }
            }
        }
        let src = SourceInput {
            gravity: None,
            omega: 0.0,
            origin: [0.0; 3],
            h: 0.1,
            boundary_faces: [false; 6],
        };
        let mut rhs_scalar = rhs_like(&u);
        let mut rhs_sve = rhs_like(&u);
        let mut scratch = kernels::KernelScratch::ephemeral(4, 2);
        compute_rhs(
            &u,
            &mut rhs_scalar,
            &src,
            &HydroOptions {
                vector_mode: VectorMode::Scalar,
                cfl: 0.4,
            },
            &mut scratch,
        );
        compute_rhs(
            &u,
            &mut rhs_sve,
            &src,
            &HydroOptions {
                vector_mode: VectorMode::Sve512,
                cfl: 0.4,
            },
            &mut scratch,
        );
        for f in 0..NF {
            for i in 0..4 {
                for j in 0..4 {
                    for k in 0..4 {
                        let a = rhs_scalar.get_interior(f, i, j, k);
                        let b = rhs_sve.get_interior(f, i, j, k);
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "width mismatch at f{f} ({i},{j},{k}): {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gravity_source_accelerates_momentum() {
        let p = Primitive {
            rho: 2.0,
            vx: 0.0,
            vy: 0.0,
            vz: 0.0,
            p: 0.5,
        };
        let u = uniform_grid(4, p);
        let n3 = 64;
        let gx = vec![0.25; n3];
        let gy = vec![0.0; n3];
        let gz = vec![-0.5; n3];
        let src = SourceInput {
            gravity: Some([&gx, &gy, &gz]),
            omega: 0.0,
            origin: [0.0; 3],
            h: 0.1,
            boundary_faces: [false; 6],
        };
        let mut rhs = rhs_like(&u);
        let mut scratch = kernels::KernelScratch::ephemeral(4, 2);
        compute_rhs(&u, &mut rhs, &src, &HydroOptions::default(), &mut scratch);
        // ds/dt = ρ g; uniform state has zero flux divergence.
        assert!((rhs.get_interior(field::SX, 1, 1, 1) - 2.0 * 0.25).abs() < 1e-12);
        assert!((rhs.get_interior(field::SZ, 2, 2, 2) + 2.0 * 0.5).abs() < 1e-12);
        // dE/dt = s·g = 0 at rest.
        assert!(rhs.get_interior(field::EGAS, 1, 2, 3).abs() < 1e-12);
    }

    #[test]
    fn signal_speed_is_at_least_sound_speed() {
        let p = Primitive {
            rho: 1.0,
            vx: 0.5,
            vy: 0.0,
            vz: 0.0,
            p: 0.6,
        };
        let u = uniform_grid(4, p);
        let opts = HydroOptions::default();
        let s = max_signal_speed(&u, &opts);
        let cs = (crate::units::GAMMA * 0.6 / 1.0).sqrt();
        assert!(s >= 0.5 + cs - 1e-12);
        // Both widths agree.
        let s2 = max_signal_speed(
            &u,
            &HydroOptions {
                vector_mode: VectorMode::Scalar,
                cfl: 0.4,
            },
        );
        assert_eq!(s.to_bits(), s2.to_bits());
    }
}
