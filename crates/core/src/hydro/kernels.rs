//! The per-leaf compute kernels, width-generic over `Simd<f64, W>`.
//!
//! These are the Rust analogues of Octo-Tiger's Kokkos hydro kernels: the
//! same kernel source is instantiated for the scalar width (`W = 1`) and
//! the A64FX SVE width (`W = 8`).  Vectorization runs along the contiguous
//! `k` index of the sub-grid; reconstruction stencils along `x`/`y` load
//! the same contiguous lanes at strided base offsets, exactly as the SVE
//! kernels do on A64FX.

use super::flux::{hll_flux, PrimLanes};
use super::recon::reconstruct_interface;
use super::rotating;
use super::SourceInput;
use crate::state::{field, DUAL_ENERGY_SWITCH, NF};
use crate::units::{GAMMA, P_FLOOR, RHO_FLOOR};
use kokkos_rs::pool::{Recycled, ScratchArena};
use octree::SubGrid;
use sve_simd::{ChunkedLanes, Mask, Simd};

/// Number of primitive-variable arrays the kernels recover.
const NPRIM: usize = 8;

/// Pooled scratch for one leaf's RHS evaluation: the primitive arrays
/// (`NPRIM` fields over the ghosted block) and the flux arrays (`3 × NF`
/// interface fields), each one flat recycled buffer instead of the nested
/// per-field `Vec`s this kernel used to allocate per call.
///
/// Owned by the leaf's workspace in the stepper; checked out of the
/// simulation's [`ScratchArena`] once and reused every stage of every step.
#[derive(Debug)]
pub struct KernelScratch {
    prim: Recycled<f64>,
    flux: Recycled<f64>,
}

impl KernelScratch {
    /// Scratch for an `n`-cell leaf with `ghost` ghost width, checked out
    /// of `pool` (returned to it on drop).
    pub fn new(n: usize, ghost: usize, pool: &ScratchArena) -> KernelScratch {
        let ext3 = (n + 2 * ghost).pow(3);
        KernelScratch {
            prim: pool.checkout(NPRIM * ext3),
            flux: pool.checkout(3 * NF * ext3),
        }
    }

    /// Unpooled scratch that frees on drop — for tests, benches, and other
    /// one-off RHS evaluations outside a stepper workspace.
    pub fn ephemeral(n: usize, ghost: usize) -> KernelScratch {
        let ext3 = (n + 2 * ghost).pow(3);
        KernelScratch {
            prim: Recycled::detached(vec![0.0; NPRIM * ext3]),
            flux: Recycled::detached(vec![0.0; 3 * NF * ext3]),
        }
    }

    /// `true` if this scratch is sized for an `n`/`ghost` leaf.
    pub fn fits(&self, n: usize, ghost: usize) -> bool {
        let ext3 = (n + 2 * ghost).pow(3);
        self.prim.len() == NPRIM * ext3 && self.flux.len() == 3 * NF * ext3
    }
}

/// Immutable per-variable slices into the flat primitive scratch.
struct PrimSlices<'a> {
    rho: &'a [f64],
    vx: &'a [f64],
    vy: &'a [f64],
    vz: &'a [f64],
    p: &'a [f64],
    tau: &'a [f64],
    f1: &'a [f64],
    f2: &'a [f64],
}

fn prim_slices(prim: &[f64], len: usize) -> PrimSlices<'_> {
    debug_assert_eq!(prim.len(), NPRIM * len);
    let mut it = prim.chunks_exact(len);
    PrimSlices {
        rho: it.next().expect("prim slice"),
        vx: it.next().expect("prim slice"),
        vy: it.next().expect("prim slice"),
        vz: it.next().expect("prim slice"),
        p: it.next().expect("prim slice"),
        tau: it.next().expect("prim slice"),
        f1: it.next().expect("prim slice"),
        f2: it.next().expect("prim slice"),
    }
}

/// Recover primitives over the whole ghosted block into the flat `prim`
/// scratch (vectorized; the dual-energy `τ^γ` branch is a per-lane `powf`).
/// Layout: `NPRIM` consecutive blocks of `ext³` in [`prim_slices`] order.
#[inline(always)]
fn primitives_w<const W: usize>(u: &SubGrid, prim: &mut [f64]) {
    let len = u.ext().pow(3);
    debug_assert_eq!(prim.len(), NPRIM * len);
    let mut it = prim.chunks_exact_mut(len);
    let out_rho = it.next().expect("prim slice");
    let out_vx = it.next().expect("prim slice");
    let out_vy = it.next().expect("prim slice");
    let out_vz = it.next().expect("prim slice");
    let out_p = it.next().expect("prim slice");
    let out_tau = it.next().expect("prim slice");
    let out_f1 = it.next().expect("prim slice");
    let out_f2 = it.next().expect("prim slice");
    let rho_c = u.field(field::RHO);
    let sx = u.field(field::SX);
    let sy = u.field(field::SY);
    let sz = u.field(field::SZ);
    let egas = u.field(field::EGAS);
    let tau_c = u.field(field::TAU);
    let f1_c = u.field(field::FRAC1);
    let f2_c = u.field(field::FRAC2);

    let gamma_m1 = Simd::<f64, W>::splat(GAMMA - 1.0);
    let half = Simd::<f64, W>::splat(0.5);
    let floor_rho = Simd::<f64, W>::splat(RHO_FLOOR);
    let floor_p = Simd::<f64, W>::splat(P_FLOOR);
    let switch = Simd::<f64, W>::splat(DUAL_ENERGY_SWITCH);

    for (off, lanes) in ChunkedLanes::<W>::new(len) {
        // Direct `load_lanes`/`store_lanes` calls, not closures: a closure
        // cannot be `inline(always)` and stays out-of-line inside the
        // `#[target_feature]` wide entry points, scalarizing the chunk.
        let rho = load_lanes::<W>(rho_c, off, lanes).simd_max(floor_rho);
        let inv_rho = Simd::splat(1.0) / rho;
        let vx = load_lanes::<W>(sx, off, lanes) * inv_rho;
        let vy = load_lanes::<W>(sy, off, lanes) * inv_rho;
        let vz = load_lanes::<W>(sz, off, lanes) * inv_rho;
        let e_tot = load_lanes::<W>(egas, off, lanes);
        let kinetic = half * rho * (vx * vx + vy * vy + vz * vz);
        let e_direct = e_tot - kinetic;
        let tau = load_lanes::<W>(tau_c, off, lanes);
        // Dual-energy switch: trust E−K unless it is a tiny fraction of E.
        let use_direct = e_direct.simd_gt(switch * e_tot.abs());
        // The entropy fallback is a per-lane libm `powf` — by far the most
        // expensive op in this kernel.  Skip it when every lane trusts E−K
        // (the common case); the select picks `e_direct` on those lanes
        // anyway, so the guard cannot change any stored bit at any width.
        let e = if use_direct.all() {
            e_direct
        } else {
            let e_entropy = tau.simd_max(Simd::splat(0.0)).map(|t| t.powf(GAMMA));
            Simd::select(use_direct, e_direct, e_entropy)
        };
        let p = (gamma_m1 * e).simd_max(floor_p);
        store_lanes::<W>(rho, out_rho, off, lanes);
        store_lanes::<W>(vx, out_vx, off, lanes);
        store_lanes::<W>(vy, out_vy, off, lanes);
        store_lanes::<W>(vz, out_vz, off, lanes);
        store_lanes::<W>(p, out_p, off, lanes);
        store_lanes::<W>(tau, out_tau, off, lanes);
        store_lanes::<W>(load_lanes::<W>(f1_c, off, lanes), out_f1, off, lanes);
        store_lanes::<W>(load_lanes::<W>(f2_c, off, lanes), out_f2, off, lanes);
    }
}

/// Load `W` lanes (contiguous along k) from `src` at flat position `base`,
/// `lanes` of them valid.  Remainder chunks load under a `whilelt`-style
/// tail mask ([`Mask::first_n`]); padded lanes read as zero and never touch
/// memory past the valid range.
#[inline(always)]
fn load_lanes<const W: usize>(src: &[f64], base: usize, lanes: usize) -> Simd<f64, W> {
    if lanes == W {
        Simd::from_slice(&src[base..])
    } else {
        Simd::load_select(&src[base..base + lanes], Mask::first_n(lanes), 0.0)
    }
}

/// Store the first `lanes` lanes of `v` at flat position `base`, the
/// masked-store counterpart of [`load_lanes`].
#[inline(always)]
fn store_lanes<const W: usize>(v: Simd<f64, W>, dst: &mut [f64], base: usize, lanes: usize) {
    if lanes == W {
        v.write_to_slice(&mut dst[base..]);
    } else {
        v.store_select(&mut dst[base..base + lanes], Mask::first_n(lanes));
    }
}

/// Reconstruct the (left, right) interface states for one field along
/// `stride` using four strided loads.
#[inline(always)]
fn recon_field<const W: usize>(
    src: &[f64],
    base: usize,
    stride: usize,
    lanes: usize,
) -> (Simd<f64, W>, Simd<f64, W>) {
    let qm2 = load_lanes::<W>(src, base - 2 * stride, lanes);
    let qm1 = load_lanes::<W>(src, base - stride, lanes);
    let q0 = load_lanes::<W>(src, base, lanes);
    let qp1 = load_lanes::<W>(src, base + stride, lanes);
    reconstruct_interface(qm2, qm1, q0, qp1)
}

/// Compute `L(u)` (flux divergence + sources) into `rhs` using the pooled
/// `scratch` buffers; returns the leaf's maximum wave speed and its
/// boundary mass-outflow rate.
#[inline(always)]
pub fn compute_rhs_w<const W: usize>(
    u: &SubGrid,
    rhs: &mut SubGrid,
    src: &SourceInput<'_>,
    scratch: &mut KernelScratch,
) -> super::RhsInfo {
    let n = u.n();
    let g = u.ghost();
    let ext = u.ext();
    assert!(g >= 2, "hydro needs ghost width >= 2 for reconstruction");
    assert_eq!(rhs.n(), n);
    assert_eq!(rhs.nfields(), NF);
    assert!(
        scratch.fits(n, g),
        "kernel scratch sized for a different leaf"
    );
    let ext2 = ext * ext;
    let ext3 = ext * ext2;
    primitives_w::<W>(u, &mut scratch.prim);
    let prim = prim_slices(&scratch.prim, ext3);
    let strides = [ext2, ext, 1usize];
    let h = src.h;

    // Flux arrays, one flat recycled buffer: block `axis*NF + field` holds
    // flux[cell m] = flux through interface m−1/2 along that axis.  Not
    // zeroed: every position the divergence and outflow loops read (axis
    // coordinate in [g, g+n], transverse coordinates interior) is written
    // by the interface sweep below, so recycled storage cannot leak a
    // previous launch's values — `reused_scratch_is_bit_identical_to_fresh`
    // locks this invariant down.
    let flux = &mut scratch.flux[..];
    // Vector max accumulator for the signal speed: `f64::max` is
    // order-insensitive (speeds are strictly positive, no ±0 ties), so the
    // per-lane maxima can stay in a register and fold once at the end
    // without breaking cross-width bit-equality of dt.
    let mut vmax = Simd::<f64, W>::splat(0.0);

    for axis in 0..3 {
        let stride = strides[axis];
        // Interface coordinate runs [g, g+n]; transverse coords [g, g+n).
        let ranges: [(usize, usize); 3] = {
            let mut r = [(g, g + n); 3];
            r[axis] = (g, g + n + 1);
            r
        };
        for i in ranges[0].0..ranges[0].1 {
            for j in ranges[1].0..ranges[1].1 {
                let (k_lo, k_hi) = ranges[2];
                for (koff, lanes) in ChunkedLanes::<W>::new(k_hi - k_lo) {
                    let k = k_lo + koff;
                    let base = (i * ext + j) * ext + k;
                    let (rho_l, rho_r) = recon_field::<W>(prim.rho, base, stride, lanes);
                    let (vx_l, vx_r) = recon_field::<W>(prim.vx, base, stride, lanes);
                    let (vy_l, vy_r) = recon_field::<W>(prim.vy, base, stride, lanes);
                    let (vz_l, vz_r) = recon_field::<W>(prim.vz, base, stride, lanes);
                    let (p_l, p_r) = recon_field::<W>(prim.p, base, stride, lanes);
                    let (tau_l, tau_r) = recon_field::<W>(prim.tau, base, stride, lanes);
                    let (f1_l, f1_r) = recon_field::<W>(prim.f1, base, stride, lanes);
                    let (f2_l, f2_r) = recon_field::<W>(prim.f2, base, stride, lanes);
                    let floor_rho = Simd::splat(RHO_FLOOR);
                    let floor_p = Simd::splat(P_FLOOR);
                    let left = PrimLanes {
                        rho: rho_l.simd_max(floor_rho),
                        vx: vx_l,
                        vy: vy_l,
                        vz: vz_l,
                        p: p_l.simd_max(floor_p),
                        tau: tau_l,
                        f1: f1_l,
                        f2: f2_l,
                    };
                    let right = PrimLanes {
                        rho: rho_r.simd_max(floor_rho),
                        vx: vx_r,
                        vy: vy_r,
                        vz: vz_r,
                        p: p_r.simd_max(floor_p),
                        tau: tau_r,
                        f1: f1_r,
                        f2: f2_r,
                    };
                    let (f, speed) = hll_flux(axis, &left, &right);
                    // Only valid lanes join the max: padded tail lanes hold
                    // floor-state speeds that W = 1 never sees, so mask
                    // them to 0.0 (below every real signal speed).
                    let sp = if lanes == W {
                        speed
                    } else {
                        Simd::select(Mask::first_n(lanes), speed, Simd::splat(0.0))
                    };
                    vmax = vmax.simd_max(sp);
                    for (fi, fv) in f.into_iter().enumerate() {
                        let dst = &mut flux[(axis * NF + fi) * ext3..];
                        store_lanes::<W>(fv, dst, base, lanes);
                    }
                }
            }
        }
    }

    // Flux divergence into the RHS interior, vectorized along k.  The ops
    // are purely elementwise in the same per-element order at every width,
    // so W = 1 and W = 8 stay bit-identical by construction.
    let vinv_h = Simd::<f64, W>::splat(1.0 / h);
    for f in 0..NF {
        let dst = rhs.field_mut(f);
        for i in g..g + n {
            for j in g..g + n {
                let row = (i * ext + j) * ext;
                for (koff, lanes) in ChunkedLanes::<W>::new(n) {
                    let c = row + g + koff;
                    let mut div = Simd::<f64, W>::splat(0.0);
                    for axis in 0..3 {
                        let fl = &flux[(axis * NF + f) * ext3..];
                        div += load_lanes::<W>(fl, c + strides[axis], lanes)
                            - load_lanes::<W>(fl, c, lanes);
                    }
                    store_lanes::<W>(-(div * vinv_h), dst, c, lanes);
                }
            }
        }
    }

    // Sources: gravity and rotating frame (cheap relative to fluxes; scalar).
    rotating::apply_sources(u, rhs, src);

    // Boundary outflow accounting: net mass leaving the domain through this
    // leaf's boundary faces (positive = outflow).
    let area = h * h;
    let mut outflow = 0.0;
    for (face, &is_boundary) in src.boundary_faces.iter().enumerate() {
        if !is_boundary {
            continue;
        }
        let axis = face / 2;
        let positive_side = face % 2 == 1;
        let m = if positive_side { g + n } else { g };
        let fl = &flux[(axis * NF + field::RHO) * ext3..];
        let mut face_flux = 0.0;
        // Sum over the transverse interior plane at interface coord `m`.
        for a in g..g + n {
            for b in g..g + n {
                let c = match axis {
                    0 => (m * ext + a) * ext + b,
                    1 => (a * ext + m) * ext + b,
                    _ => (a * ext + b) * ext + m,
                };
                face_flux += fl[c];
            }
        }
        // Flux is along +axis; on the negative face, inflow is +flux.
        outflow += if positive_side { face_flux } else { -face_flux } * area;
    }

    super::RhsInfo {
        max_signal_speed: vmax.reduce_max(),
        boundary_mass_outflow_rate: outflow,
    }
}

/// Maximum `|v| + c_s` over the interior.
#[inline(always)]
pub fn max_signal_speed_w<const W: usize>(u: &SubGrid) -> f64 {
    let n = u.n();
    let g = u.ghost();
    let ext = u.ext();
    let rho_c = u.field(field::RHO);
    let sx = u.field(field::SX);
    let sy = u.field(field::SY);
    let sz = u.field(field::SZ);
    let egas = u.field(field::EGAS);
    let mut vmax = Simd::<f64, W>::splat(0.0);
    let floor_rho = Simd::<f64, W>::splat(RHO_FLOOR);
    let half = Simd::<f64, W>::splat(0.5);
    for i in g..g + n {
        for j in g..g + n {
            let row = (i * ext + j) * ext;
            for (koff, lanes) in ChunkedLanes::<W>::new(n) {
                let base = row + g + koff;
                let rho = load_lanes::<W>(rho_c, base, lanes).simd_max(floor_rho);
                let inv = Simd::splat(1.0) / rho;
                let vx = load_lanes::<W>(sx, base, lanes) * inv;
                let vy = load_lanes::<W>(sy, base, lanes) * inv;
                let vz = load_lanes::<W>(sz, base, lanes) * inv;
                let v2 = vx * vx + vy * vy + vz * vz;
                let e = (load_lanes::<W>(egas, base, lanes) - half * rho * v2)
                    .simd_max(Simd::splat(0.0));
                let p = (Simd::splat(GAMMA - 1.0) * e).simd_max(Simd::splat(P_FLOOR));
                let cs = (Simd::splat(GAMMA) * p / rho).sqrt();
                let sig = v2.sqrt() + cs;
                // Only the valid lanes participate in the max; padded tail
                // lanes are masked to 0.0, below every real signal speed.
                let sp = if lanes == W {
                    sig
                } else {
                    Simd::select(Mask::first_n(lanes), sig, Simd::splat(0.0))
                };
                vmax = vmax.simd_max(sp);
            }
        }
    }
    vmax.reduce_max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{from_primitive, Primitive};

    /// Advection of a density bump in a uniform velocity field must move
    /// mass in the advection direction and conserve the total (periodic
    /// behaviour is emulated by only checking the interior balance against
    /// boundary fluxes).
    #[test]
    fn rhs_mass_budget_matches_boundary_fluxes() {
        let n = 4;
        let mut u = SubGrid::new(n, 2, NF);
        // Uniform v_x flow with a density gradient along x.
        for i in 0..u.ext() {
            for j in 0..u.ext() {
                for k in 0..u.ext() {
                    let rho = 1.0 + 0.1 * i as f64;
                    let p0 = Primitive {
                        rho,
                        vx: 0.5,
                        vy: 0.0,
                        vz: 0.0,
                        p: 1.0,
                    };
                    let (c, tau) = from_primitive(&p0);
                    u.set(field::RHO, i, j, k, c.rho);
                    u.set(field::SX, i, j, k, c.sx);
                    u.set(field::SY, i, j, k, c.sy);
                    u.set(field::SZ, i, j, k, c.sz);
                    u.set(field::EGAS, i, j, k, c.egas);
                    u.set(field::TAU, i, j, k, tau);
                }
            }
        }
        let mut rhs = SubGrid::new(n, 2, NF);
        let src = SourceInput {
            gravity: None,
            omega: 0.0,
            origin: [0.0; 3],
            h: 0.25,
            boundary_faces: [false; 6],
        };
        let mut scratch = KernelScratch::ephemeral(n, 2);
        let info = compute_rhs_w::<8>(&u, &mut rhs, &src, &mut scratch);
        assert!(info.max_signal_speed > 0.5);
        // d(total mass)/dt = -(flux out - flux in); with a linear density
        // gradient and constant v, the interior RHS sum must equal
        // (rho_in - rho_out) * v * area / h summed appropriately — here we
        // just check it is negative (denser gas flows out the +x side than
        // flows in the −x side... actually flows in from -x side at lower
        // density), i.e. mass decreases.
        let mut total = 0.0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    total += rhs.get_interior(field::RHO, i, j, k);
                }
            }
        }
        assert!(total < 0.0, "mass budget sign wrong: {total}");
    }

    #[test]
    #[should_panic(expected = "ghost width >= 2")]
    fn thin_ghosts_rejected() {
        let u = SubGrid::new(4, 1, NF);
        let mut rhs = SubGrid::new(4, 1, NF);
        let src = SourceInput {
            gravity: None,
            omega: 0.0,
            origin: [0.0; 3],
            h: 1.0,
            boundary_faces: [false; 6],
        };
        let mut scratch = KernelScratch::ephemeral(4, 1);
        compute_rhs_w::<1>(&u, &mut rhs, &src, &mut scratch);
    }

    /// NaN-poisoned scratch must give bit-identical results to zeroed
    /// scratch: every flux/prim position the kernel reads is written by it
    /// first (the invariant that lets `compute_rhs_w` skip zeroing the
    /// recycled flux buffer).  NaN poisons are the strongest canary — any
    /// uncovered read contaminates everything downstream.
    #[test]
    fn poisoned_scratch_is_bit_identical_to_zeroed() {
        let n = 4;
        let mut u = SubGrid::new(n, 2, NF);
        for i in 0..u.ext() {
            for j in 0..u.ext() {
                for k in 0..u.ext() {
                    let p0 = Primitive {
                        rho: 1.0 + 0.02 * ((i * 5 + j * 2 + k) % 7) as f64,
                        vx: 0.2,
                        vy: -0.1,
                        vz: 0.15,
                        p: 0.8,
                    };
                    let (c, tau) = from_primitive(&p0);
                    u.set(field::RHO, i, j, k, c.rho);
                    u.set(field::SX, i, j, k, c.sx);
                    u.set(field::SY, i, j, k, c.sy);
                    u.set(field::SZ, i, j, k, c.sz);
                    u.set(field::EGAS, i, j, k, c.egas);
                    u.set(field::TAU, i, j, k, tau);
                }
            }
        }
        let src = SourceInput {
            gravity: None,
            omega: 0.2,
            origin: [0.0; 3],
            h: 0.25,
            boundary_faces: [true; 6],
        };
        let mut rhs_zero = SubGrid::new(n, 2, NF);
        let mut zeroed = KernelScratch::ephemeral(n, 2);
        let info_zero = compute_rhs_w::<8>(&u, &mut rhs_zero, &src, &mut zeroed);

        let mut rhs_nan = SubGrid::new(n, 2, NF);
        let mut poisoned = KernelScratch::ephemeral(n, 2);
        poisoned.prim.fill(f64::NAN);
        poisoned.flux.fill(f64::NAN);
        let info_nan = compute_rhs_w::<8>(&u, &mut rhs_nan, &src, &mut poisoned);

        assert_eq!(rhs_zero, rhs_nan);
        assert_eq!(info_zero.max_signal_speed, info_nan.max_signal_speed);
        assert_eq!(
            info_zero.boundary_mass_outflow_rate,
            info_nan.boundary_mass_outflow_rate
        );
    }

    /// The same scratch reused across calls must give bit-identical results
    /// to fresh scratch: the kernel fully overwrites what it reads.
    #[test]
    fn reused_scratch_is_bit_identical_to_fresh() {
        let n = 4;
        let mut u = SubGrid::new(n, 2, NF);
        for i in 0..u.ext() {
            for j in 0..u.ext() {
                for k in 0..u.ext() {
                    let rho = 1.0 + 0.01 * ((i * 7 + j * 3 + k) % 5) as f64;
                    let p0 = Primitive {
                        rho,
                        vx: 0.1,
                        vy: -0.2,
                        vz: 0.05,
                        p: 0.7,
                    };
                    let (c, tau) = from_primitive(&p0);
                    u.set(field::RHO, i, j, k, c.rho);
                    u.set(field::SX, i, j, k, c.sx);
                    u.set(field::SY, i, j, k, c.sy);
                    u.set(field::SZ, i, j, k, c.sz);
                    u.set(field::EGAS, i, j, k, c.egas);
                    u.set(field::TAU, i, j, k, tau);
                }
            }
        }
        let src = SourceInput {
            gravity: None,
            omega: 0.1,
            origin: [0.0; 3],
            h: 0.25,
            boundary_faces: [true, false, false, true, false, false],
        };
        let mut rhs_fresh = SubGrid::new(n, 2, NF);
        let mut fresh = KernelScratch::ephemeral(n, 2);
        let info_fresh = compute_rhs_w::<8>(&u, &mut rhs_fresh, &src, &mut fresh);

        let mut reused = KernelScratch::ephemeral(n, 2);
        // Dirty the scratch with a different state first.
        let mut rhs_scratch = SubGrid::new(n, 2, NF);
        compute_rhs_w::<8>(&rhs_fresh, &mut rhs_scratch, &src, &mut reused);
        let mut rhs_reused = SubGrid::new(n, 2, NF);
        let info_reused = compute_rhs_w::<8>(&u, &mut rhs_reused, &src, &mut reused);

        assert_eq!(rhs_fresh, rhs_reused);
        assert_eq!(info_fresh.max_signal_speed, info_reused.max_signal_speed);
        assert_eq!(
            info_fresh.boundary_mass_outflow_rate,
            info_reused.boundary_mass_outflow_rate
        );
    }
}
