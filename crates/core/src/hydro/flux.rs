//! HLL Riemann fluxes on SIMD lanes of interface states.
//!
//! Octo-Tiger's hydro module uses an approximate Riemann solver on the
//! reconstructed interface states; HLL with Davis wave-speed estimates is
//! the robust classic.  The passive fields (entropy tracer τ and the two
//! binary-component tracers) are advected with the same HLL formula, their
//! "flux" being `q·v_axis`.

use crate::state::NF;
use crate::units::GAMMA;
use sve_simd::Simd;

/// Primitive interface state on `W` lanes.
#[derive(Debug, Clone, Copy)]
pub struct PrimLanes<const W: usize> {
    pub rho: Simd<f64, W>,
    pub vx: Simd<f64, W>,
    pub vy: Simd<f64, W>,
    pub vz: Simd<f64, W>,
    pub p: Simd<f64, W>,
    pub tau: Simd<f64, W>,
    pub f1: Simd<f64, W>,
    pub f2: Simd<f64, W>,
}

impl<const W: usize> PrimLanes<W> {
    /// Velocity component along `axis` (0 = x, 1 = y, 2 = z).
    #[inline(always)]
    pub fn v_axis(&self, axis: usize) -> Simd<f64, W> {
        match axis {
            0 => self.vx,
            1 => self.vy,
            2 => self.vz,
            _ => unreachable!("axis must be 0..3"),
        }
    }

    /// Conserved vector `U` of this state.
    #[inline(always)]
    pub fn conserved(&self) -> [Simd<f64, W>; NF] {
        let half = Simd::splat(0.5);
        let v2 = self.vx * self.vx + self.vy * self.vy + self.vz * self.vz;
        let e = self.p / Simd::splat(GAMMA - 1.0);
        [
            self.rho,
            self.rho * self.vx,
            self.rho * self.vy,
            self.rho * self.vz,
            e + half * self.rho * v2,
            self.tau,
            self.f1,
            self.f2,
        ]
    }

    /// Physical flux vector `F(U)` along `axis`.
    #[inline(always)]
    pub fn flux(&self, axis: usize) -> [Simd<f64, W>; NF] {
        let va = self.v_axis(axis);
        let u = self.conserved();
        let mut f = [Simd::splat(0.0); NF];
        f[0] = u[0] * va;
        f[1] = u[1] * va;
        f[2] = u[2] * va;
        f[3] = u[3] * va;
        // Pressure contribution on the axis momentum.
        f[1 + axis] += self.p;
        f[4] = (u[4] + self.p) * va;
        f[5] = u[5] * va;
        f[6] = u[6] * va;
        f[7] = u[7] * va;
        f
    }

    /// Sound speed lanes.
    #[inline(always)]
    pub fn sound_speed(&self) -> Simd<f64, W> {
        (Simd::splat(GAMMA) * self.p / self.rho).sqrt()
    }
}

/// HLL flux from left/right interface states along `axis`, plus the
/// interface's maximum wave speed (for CFL bookkeeping).
#[inline(always)]
pub fn hll_flux<const W: usize>(
    axis: usize,
    l: &PrimLanes<W>,
    r: &PrimLanes<W>,
) -> ([Simd<f64, W>; NF], Simd<f64, W>) {
    let zero = Simd::splat(0.0);
    let cl = l.sound_speed();
    let cr = r.sound_speed();
    let vl = l.v_axis(axis);
    let vr = r.v_axis(axis);
    // Davis estimates.
    let sl = (vl - cl).simd_min(vr - cr);
    let sr = (vl + cl).simd_max(vr + cr);
    let fl = l.flux(axis);
    let fr = r.flux(axis);
    let ul = l.conserved();
    let ur = r.conserved();

    let sl_nonneg = sl.simd_ge(zero);
    let sr_nonpos = sr.simd_le(zero);
    // Avoid 0/0 in the middle formula on degenerate lanes.
    let denom_raw = sr - sl;
    let tiny = Simd::splat(1e-300);
    let denom = Simd::select(denom_raw.abs().simd_gt(tiny), denom_raw, tiny);

    let mut out = [zero; NF];
    for f in 0..NF {
        let middle = (sr * fl[f] - sl * fr[f] + sl * sr * (ur[f] - ul[f])) / denom;
        let v = Simd::select(sl_nonneg, fl[f], Simd::select(sr_nonpos, fr[f], middle));
        out[f] = v;
    }
    let max_speed = sl.abs().simd_max(sr.abs());
    (out, max_speed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::field;

    fn lanes1(rho: f64, vx: f64, p: f64) -> PrimLanes<1> {
        PrimLanes {
            rho: Simd::splat(rho),
            vx: Simd::splat(vx),
            vy: Simd::splat(0.0),
            vz: Simd::splat(0.0),
            p: Simd::splat(p),
            tau: Simd::splat((p / (GAMMA - 1.0)).powf(1.0 / GAMMA)),
            f1: Simd::splat(rho),
            f2: Simd::splat(0.0),
        }
    }

    #[test]
    fn identical_states_give_physical_flux() {
        // L == R ⇒ HLL reduces to the exact flux of that state.
        let s = lanes1(1.0, 0.3, 0.7);
        let (f, _) = hll_flux(0, &s, &s);
        let exact = s.flux(0);
        for k in 0..NF {
            assert!(
                (f[k][0] - exact[k][0]).abs() < 1e-13,
                "field {k}: {} vs {}",
                f[k][0],
                exact[k][0]
            );
        }
    }

    #[test]
    fn supersonic_right_moving_flow_upwinds_left() {
        // v ≫ c_s on both sides ⇒ sl > 0 ⇒ flux = F(U_L).
        let l = lanes1(1.0, 10.0, 0.1);
        let r = lanes1(0.5, 10.0, 0.1);
        let (f, _) = hll_flux(0, &l, &r);
        let fl = l.flux(0);
        for k in 0..NF {
            assert!((f[k][0] - fl[k][0]).abs() < 1e-12);
        }
    }

    #[test]
    fn supersonic_left_moving_flow_upwinds_right() {
        let l = lanes1(1.0, -10.0, 0.1);
        let r = lanes1(0.5, -10.0, 0.1);
        let (f, _) = hll_flux(0, &l, &r);
        let fr = r.flux(0);
        for k in 0..NF {
            assert!((f[k][0] - fr[k][0]).abs() < 1e-12);
        }
    }

    #[test]
    fn sod_interface_mass_flux_is_positive() {
        // Sod shock tube initial jump: mass must flow from high to low
        // pressure side.
        let l = lanes1(1.0, 0.0, 1.0);
        let r = lanes1(0.125, 0.0, 0.1);
        let (f, speed) = hll_flux(0, &l, &r);
        assert!(f[field::RHO][0] > 0.0);
        assert!(speed[0] > 0.0);
    }

    #[test]
    fn pressure_appears_only_on_axis_momentum() {
        let s = lanes1(1.0, 0.0, 2.0);
        for axis in 0..3 {
            let f = s.flux(axis);
            for m in 0..3 {
                let expected = if m == axis { 2.0 } else { 0.0 };
                assert_eq!(f[1 + m][0], expected, "axis {axis} momentum {m}");
            }
        }
    }

    #[test]
    fn flux_is_consistent_with_conserved() {
        // F(U) with v = 0 carries no advective part.
        let s = lanes1(2.0, 0.0, 0.5);
        let f = s.flux(1);
        assert_eq!(f[field::RHO][0], 0.0);
        assert_eq!(f[field::EGAS][0], 0.0);
        assert_eq!(f[field::TAU][0], 0.0);
    }

    #[test]
    fn wide_lanes_match_scalar() {
        let l8 = PrimLanes::<8> {
            rho: Simd::splat(1.0),
            vx: Simd::splat(0.2),
            vy: Simd::splat(-0.4),
            vz: Simd::splat(0.1),
            p: Simd::splat(0.9),
            tau: Simd::splat(0.8),
            f1: Simd::splat(0.6),
            f2: Simd::splat(0.4),
        };
        let r8 = PrimLanes::<8> {
            rho: Simd::splat(0.7),
            vx: Simd::splat(-0.1),
            vy: Simd::splat(0.0),
            vz: Simd::splat(0.3),
            p: Simd::splat(0.4),
            tau: Simd::splat(0.5),
            f1: Simd::splat(0.2),
            f2: Simd::splat(0.5),
        };
        let to1 = |s: &PrimLanes<8>| PrimLanes::<1> {
            rho: Simd::splat(s.rho[0]),
            vx: Simd::splat(s.vx[0]),
            vy: Simd::splat(s.vy[0]),
            vz: Simd::splat(s.vz[0]),
            p: Simd::splat(s.p[0]),
            tau: Simd::splat(s.tau[0]),
            f1: Simd::splat(s.f1[0]),
            f2: Simd::splat(s.f2[0]),
        };
        for axis in 0..3 {
            let (f8, s8) = hll_flux(axis, &l8, &r8);
            let (f1, s1) = hll_flux(axis, &to1(&l8), &to1(&r8));
            for k in 0..NF {
                assert_eq!(f8[k][0], f1[k][0], "axis {axis} field {k}");
                assert_eq!(f8[k][7], f1[k][0]);
            }
            assert_eq!(s8[3], s1[0]);
        }
    }
}
