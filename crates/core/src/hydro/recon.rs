//! Piecewise-linear reconstruction with the minmod slope limiter.
//!
//! Octo-Tiger's finite-volume scheme reconstructs interface states from
//! cell averages; minmod is the classic total-variation-diminishing
//! limiter.  Written over `Simd<f64, W>` so the same source serves the
//! scalar and SVE builds (paper Figure 7).

use sve_simd::Simd;

/// Minmod of two slope candidates, lane-wise:
/// `0` on sign disagreement, else the smaller magnitude with common sign.
#[inline(always)]
pub fn minmod<const W: usize>(a: Simd<f64, W>, b: Simd<f64, W>) -> Simd<f64, W> {
    let zero = Simd::splat(0.0);
    let same_sign = (a * b).simd_gt(zero);
    let mag = a.abs().simd_min(b.abs());
    let signed = mag.copysign(a);
    Simd::select(same_sign, signed, zero)
}

/// Limited left/right interface states at interface `i−1/2` from the four
/// surrounding cell averages `q_{i−2}, q_{i−1}, q_i, q_{i+1}`:
///
/// * `q_L = q_{i−1} + ½ minmod(q_{i−1}−q_{i−2}, q_i−q_{i−1})`
/// * `q_R = q_i − ½ minmod(q_i−q_{i−1}, q_{i+1}−q_i)`
#[inline(always)]
pub fn reconstruct_interface<const W: usize>(
    qm2: Simd<f64, W>,
    qm1: Simd<f64, W>,
    q0: Simd<f64, W>,
    qp1: Simd<f64, W>,
) -> (Simd<f64, W>, Simd<f64, W>) {
    let half = Simd::splat(0.5);
    let dl = minmod(qm1 - qm2, q0 - qm1);
    let dr = minmod(q0 - qm1, qp1 - q0);
    (qm1 + half * dl, q0 - half * dr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm1(a: f64, b: f64) -> f64 {
        minmod::<1>(Simd::splat(a), Simd::splat(b))[0]
    }

    #[test]
    fn minmod_scalar_cases() {
        assert_eq!(mm1(1.0, 2.0), 1.0);
        assert_eq!(mm1(2.0, 1.0), 1.0);
        assert_eq!(mm1(-1.0, -3.0), -1.0);
        assert_eq!(mm1(1.0, -1.0), 0.0);
        assert_eq!(mm1(0.0, 5.0), 0.0);
        assert_eq!(mm1(0.0, 0.0), 0.0);
    }

    #[test]
    fn minmod_lanes_independent() {
        let a = Simd::<f64, 4>::from_array([1.0, -2.0, 3.0, 0.0]);
        let b = Simd::<f64, 4>::from_array([2.0, -1.0, -3.0, 4.0]);
        assert_eq!(minmod(a, b).to_array(), [1.0, -1.0, 0.0, 0.0]);
    }

    #[test]
    fn reconstruction_is_exact_for_linear_data() {
        // q(x) = 2x: slopes equal everywhere, interface states meet.
        let q: Vec<f64> = (0..4).map(|i| 2.0 * i as f64).collect();
        let (l, r) = reconstruct_interface::<1>(
            Simd::splat(q[0]),
            Simd::splat(q[1]),
            Simd::splat(q[2]),
            Simd::splat(q[3]),
        );
        // Interface between cells 1 and 2 sits at value 3.0.
        assert!((l[0] - 3.0).abs() < 1e-14);
        assert!((r[0] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn reconstruction_clips_at_extrema() {
        // A local max: slopes disagree in sign, limiter flattens.
        let (l, r) = reconstruct_interface::<1>(
            Simd::splat(0.0),
            Simd::splat(1.0),
            Simd::splat(0.5),
            Simd::splat(1.5),
        );
        // Left state limited by minmod(1, -0.5) = 0 → stays at cell value.
        assert_eq!(l[0], 1.0);
        // Right state: minmod(-0.5, 1.0) = 0 → stays at 0.5.
        assert_eq!(r[0], 0.5);
    }

    #[test]
    fn reconstruction_preserves_monotone_bounds() {
        // TVD property: interface states stay within neighbouring cell
        // averages for monotone data.
        let data = [0.0, 1.0, 4.0, 5.0];
        let (l, r) = reconstruct_interface::<1>(
            Simd::splat(data[0]),
            Simd::splat(data[1]),
            Simd::splat(data[2]),
            Simd::splat(data[3]),
        );
        assert!(l[0] >= data[1] && l[0] <= data[2]);
        assert!(r[0] >= data[1] && r[0] <= data[2]);
        assert!(l[0] <= r[0]);
    }

    #[test]
    fn wide_matches_scalar() {
        let vals = [
            [0.1, 0.9, 1.7, 2.0],
            [3.0, 1.0, 2.0, -1.0],
            [0.0, 0.0, 1.0, 2.0],
            [5.0, 4.0, 3.0, 2.0],
        ];
        for v in vals {
            let (l8, r8) = reconstruct_interface::<8>(
                Simd::splat(v[0]),
                Simd::splat(v[1]),
                Simd::splat(v[2]),
                Simd::splat(v[3]),
            );
            let (l1, r1) = reconstruct_interface::<1>(
                Simd::splat(v[0]),
                Simd::splat(v[1]),
                Simd::splat(v[2]),
                Simd::splat(v[3]),
            );
            assert_eq!(l8[0], l1[0]);
            assert_eq!(r8[3], r1[0]);
        }
    }
}
