//! SSP-RK3 stage combinations (Shu–Osher form).
//!
//! Octo-Tiger advances the semi-discrete system with a third-order
//! strong-stability-preserving Runge-Kutta scheme (paper Section IV-C):
//!
//! ```text
//! u¹     = uⁿ + Δt L(uⁿ)
//! u²     = ¾ uⁿ + ¼ (u¹ + Δt L(u¹))
//! uⁿ⁺¹   = ⅓ uⁿ + ⅔ (u² + Δt L(u²))
//! ```
//!
//! The combinations are plain axpy-style array operations over whole leaf
//! blocks; they are vectorized with `sve_simd` like every other kernel.

use octree::SubGrid;
use sve_simd::{Simd, VectorMode};

/// `u_new = u + dt * rhs` over all fields (stage 1), ghosts included
/// (ghost values are refreshed by the next exchange anyway).
pub fn stage_euler(u: &SubGrid, rhs: &SubGrid, dt: f64, out: &mut SubGrid, mode: VectorMode) {
    match mode {
        VectorMode::Scalar => stage_euler_w::<1>(u, rhs, dt, out),
        VectorMode::Sve512 => stage_euler_wide(u, rhs, dt, out),
    }
}

sve_simd::wide_dispatch! {
    /// [`stage_euler_w::<8>`] under the host's widest vector ISA.
    fn stage_euler_wide(u: &SubGrid, rhs: &SubGrid, dt: f64, out: &mut SubGrid)
        = stage_euler_w::<8>
}

#[inline(always)]
fn stage_euler_w<const W: usize>(u: &SubGrid, rhs: &SubGrid, dt: f64, out: &mut SubGrid) {
    // Explicit chunk loop rather than `zip_map_simd` + closure: the closure
    // cannot be `inline(always)` and would stay out-of-line inside the
    // `#[target_feature]` wide entry point, de-vectorizing the axpy.
    let len = u.ext().pow(3);
    let vdt = Simd::<f64, W>::splat(dt);
    for f in 0..u.nfields() {
        let uu = u.field(f);
        let rr = rhs.field(f);
        let dst = out.field_mut(f);
        for (off, lanes) in sve_simd::ChunkedLanes::<W>::new(len) {
            let v = Simd::<f64, W>::load_chunk(rr, off, lanes, 0.0)
                .mul_add(vdt, Simd::<f64, W>::load_chunk(uu, off, lanes, 0.0));
            if lanes == W {
                v.write_to_slice(&mut dst[off..]);
            } else {
                v.write_to_slice_partial(&mut dst[off..off + lanes]);
            }
        }
    }
}

/// `u2 = 3/4 u0 + 1/4 (u1 + dt rhs1)` (stage 2).
pub fn stage_two(
    u0: &SubGrid,
    u1: &SubGrid,
    rhs1: &SubGrid,
    dt: f64,
    out: &mut SubGrid,
    mode: VectorMode,
) {
    match mode {
        VectorMode::Scalar => stage_combine_w::<1>(u0, u1, rhs1, dt, out, 0.75, 0.25),
        VectorMode::Sve512 => stage_combine_wide(u0, u1, rhs1, dt, out, 0.75, 0.25),
    }
}

sve_simd::wide_dispatch! {
    /// [`stage_combine_w::<8>`] under the host's widest vector ISA.
    fn stage_combine_wide(
        u0: &SubGrid,
        us: &SubGrid,
        rhs: &SubGrid,
        dt: f64,
        out: &mut SubGrid,
        a: f64,
        b: f64
    ) = stage_combine_w::<8>
}

/// `u_new = 1/3 u0 + 2/3 (u2 + dt rhs2)` (stage 3).
pub fn stage_three(
    u0: &SubGrid,
    u2: &SubGrid,
    rhs2: &SubGrid,
    dt: f64,
    out: &mut SubGrid,
    mode: VectorMode,
) {
    match mode {
        VectorMode::Scalar => stage_combine_w::<1>(u0, u2, rhs2, dt, out, 1.0 / 3.0, 2.0 / 3.0),
        VectorMode::Sve512 => stage_combine_wide(u0, u2, rhs2, dt, out, 1.0 / 3.0, 2.0 / 3.0),
    }
}

#[inline(always)]
fn stage_combine_w<const W: usize>(
    u0: &SubGrid,
    us: &SubGrid,
    rhs: &SubGrid,
    dt: f64,
    out: &mut SubGrid,
    a: f64,
    b: f64,
) {
    let len = u0.ext().pow(3);
    for f in 0..u0.nfields() {
        let f0 = u0.field(f);
        let fs = us.field(f);
        let fr = rhs.field(f);
        let dst = out.field_mut(f);
        let va = Simd::<f64, W>::splat(a);
        let vb = Simd::<f64, W>::splat(b);
        let vdt = Simd::<f64, W>::splat(dt);
        for (off, lanes) in sve_simd::ChunkedLanes::<W>::new(len) {
            let v = va * Simd::<f64, W>::load_chunk(f0, off, lanes, 0.0)
                + vb * Simd::<f64, W>::load_chunk(fs, off, lanes, 0.0).mul_add(
                    Simd::splat(1.0),
                    vdt * Simd::<f64, W>::load_chunk(fr, off, lanes, 0.0),
                );
            if lanes == W {
                v.write_to_slice(&mut dst[off..]);
            } else {
                v.write_to_slice_partial(&mut dst[off..off + lanes]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_of(v: f64) -> SubGrid {
        let mut g = SubGrid::new(4, 2, 2);
        g.fill(v);
        g
    }

    #[test]
    fn euler_stage() {
        let u = grid_of(1.0);
        let rhs = grid_of(2.0);
        let mut out = grid_of(0.0);
        stage_euler(&u, &rhs, 0.5, &mut out, VectorMode::Sve512);
        assert_eq!(out.get(0, 0, 0, 0), 2.0);
        assert_eq!(out.get(1, 5, 5, 5), 2.0);
    }

    #[test]
    fn stages_match_shu_osher_coefficients() {
        let u0 = grid_of(1.0);
        let u1 = grid_of(3.0);
        let rhs = grid_of(4.0);
        let mut out = grid_of(0.0);
        stage_two(&u0, &u1, &rhs, 0.25, &mut out, VectorMode::Sve512);
        // 0.75*1 + 0.25*(3 + 0.25*4) = 0.75 + 1.0 = 1.75
        assert!((out.get(0, 1, 1, 1) - 1.75).abs() < 1e-14);
        stage_three(&u0, &u1, &rhs, 0.25, &mut out, VectorMode::Sve512);
        // 1/3*1 + 2/3*(3+1) = 1/3 + 8/3 = 3
        assert!((out.get(0, 2, 2, 2) - 3.0).abs() < 1e-13);
    }

    #[test]
    fn scalar_and_wide_agree() {
        let u0 = grid_of(0.7);
        let u1 = grid_of(-0.4);
        let rhs = grid_of(1.3);
        let mut a = grid_of(0.0);
        let mut b = grid_of(0.0);
        stage_two(&u0, &u1, &rhs, 0.1, &mut a, VectorMode::Scalar);
        stage_two(&u0, &u1, &rhs, 0.1, &mut b, VectorMode::Sve512);
        for f in 0..2 {
            assert_eq!(a.field(f), b.field(f));
        }
    }

    #[test]
    fn rk3_exact_for_linear_ode() {
        // du/dt = c with constant c: RK3 must integrate exactly.
        let c = 0.3;
        let dt = 0.2;
        let u0 = grid_of(1.0);
        let rhs = grid_of(c);
        let mut u1 = grid_of(0.0);
        let mut u2 = grid_of(0.0);
        let mut u3 = grid_of(0.0);
        stage_euler(&u0, &rhs, dt, &mut u1, VectorMode::Sve512);
        stage_two(&u0, &u1, &rhs, dt, &mut u2, VectorMode::Sve512);
        stage_three(&u0, &u2, &rhs, dt, &mut u3, VectorMode::Sve512);
        assert!((u3.get(0, 3, 3, 3) - (1.0 + c * dt)).abs() < 1e-14);
    }
}
