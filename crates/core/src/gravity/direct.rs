//! Direct O(N²) summation — the correctness reference for the FMM, and the
//! SIMD-vectorized P2P kernel the FMM's near field shares.
//!
//! The inner loop (one target against a stream of sources) is exactly
//! Octo-Tiger's monopole kernel: the paper's biggest GPU kernel, and on
//! A64FX the main beneficiary of SVE vectorization (Figure 7).

use crate::units::G;
use sve_simd::{ChunkedLanes, Simd, VectorMode};

/// Structure-of-arrays point masses.
#[derive(Debug, Clone, Default)]
pub struct PointMasses {
    pub xs: Vec<f64>,
    pub ys: Vec<f64>,
    pub zs: Vec<f64>,
    pub ms: Vec<f64>,
}

impl PointMasses {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.ms.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.ms.is_empty()
    }

    /// Append one point.
    pub fn push(&mut self, x: [f64; 3], m: f64) {
        self.xs.push(x[0]);
        self.ys.push(x[1]);
        self.zs.push(x[2]);
        self.ms.push(m);
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.ms.iter().sum()
    }
}

/// The fixed stripe count of every horizontal reduction in the ported
/// kernels.  Sums are accumulated into `STRIPES` partial accumulators by
/// source index modulo `STRIPES` and folded in stripe order at the end —
/// the *same* association at every vector width (stripe `s` always holds
/// sources `s, s+8, s+16, …`), which is what makes the `W = 1` and `W = 8`
/// instantiations bit-identical while still letting the wide build keep a
/// full vector of partial sums in one register.
pub const STRIPES: usize = 8;

/// Fold stripe partial sums in fixed (stripe-index) order.
#[inline(always)]
pub fn fold_stripes(acc: &[f64; STRIPES]) -> f64 {
    let mut s = 0.0;
    for &a in acc {
        s += a;
    }
    s
}

/// Accumulate potential and acceleration at `(x, y, z)` from all `src`
/// points, skipping any source closer than `eps` (used to exclude the
/// self-cell).  Width-generic: the paper's SIMD-type kernel pattern.
///
/// The horizontal reduction is stripe-blocked (see [`STRIPES`]): lane
/// contributions land in the stripe accumulator of their source index
/// modulo 8, and the stripes are folded in fixed order at the end.  Both
/// widths therefore perform the identical addition sequence per stripe —
/// masked lanes contribute an exact `±0.0` (their weight is forced to
/// zero), which never perturbs a stripe accumulator.
#[inline(always)]
pub fn p2p_at_w<const W: usize>(src: &PointMasses, x: f64, y: f64, z: f64) -> (f64, [f64; 3]) {
    let tx = Simd::<f64, W>::splat(x);
    let ty = Simd::<f64, W>::splat(y);
    let tz = Simd::<f64, W>::splat(z);
    let mut phi = [0.0; STRIPES];
    let mut gx = [0.0; STRIPES];
    let mut gy = [0.0; STRIPES];
    let mut gz = [0.0; STRIPES];
    let zero = Simd::<f64, W>::splat(0.0);
    let gconst = Simd::<f64, W>::splat(G);
    for (off, lanes) in ChunkedLanes::<W>::new(src.len()) {
        // Full chunks take the unmasked load; only the final remainder
        // chunk pays for the whilelt-style tail mask.  `load_chunk` is a
        // named always-inline method, not a closure: a closure would stay
        // out-of-line inside the `#[target_feature]` wide entry points and
        // de-vectorize the whole chunk body.
        let dx = Simd::<f64, W>::load_chunk(&src.xs, off, lanes, 0.0) - tx;
        let dy = Simd::<f64, W>::load_chunk(&src.ys, off, lanes, 0.0) - ty;
        let dz = Simd::<f64, W>::load_chunk(&src.zs, off, lanes, 0.0) - tz;
        let m = Simd::<f64, W>::load_chunk(&src.ms, off, lanes, 0.0);
        let r2 = dx * dx + dy * dy + dz * dz;
        // Mask out the self-interaction (r² == 0) and padded lanes (m == 0).
        let valid = r2.simd_gt(zero);
        let r2_safe = Simd::select(valid, r2, Simd::splat(1.0));
        let rinv = Simd::splat(1.0) / r2_safe.sqrt();
        let rinv3 = rinv * rinv * rinv;
        let w = Simd::select(valid, gconst * m, zero);
        let dphi = w * rinv;
        let dgx = w * dx * rinv3;
        let dgy = w * dy * rinv3;
        let dgz = w * dz * rinv3;
        // W divides STRIPES and chunks advance by W, so `off + l` maps lane
        // l onto stripe (off + l) % 8 — one vector add at W = 8.  The
        // full-width stripe base is written as a compile-time zero: if the
        // compiler only sees `off % STRIPES` it must assume a dynamic
        // scatter and scalarizes the accumulate (and the whole dependent
        // chain feeding it).
        let s0 = if W == STRIPES { 0 } else { off % STRIPES };
        for l in 0..lanes {
            phi[s0 + l] += dphi[l];
            gx[s0 + l] += dgx[l];
            gy[s0 + l] += dgy[l];
            gz[s0 + l] += dgz[l];
        }
    }
    (
        -fold_stripes(&phi),
        [fold_stripes(&gx), fold_stripes(&gy), fold_stripes(&gz)],
    )
}

sve_simd::wide_dispatch! {
    /// [`p2p_at_w::<8>`] entered under the host's widest vector ISA — the
    /// "SVE build" half of the Figure 7 pair (see [`sve_simd::isa`]).
    pub fn p2p_at_wide(src: &PointMasses, x: f64, y: f64, z: f64) -> (f64, [f64; 3])
        = p2p_at_w::<8>
}

/// Width-dispatched wrapper over [`p2p_at_w`].
pub fn p2p_at(src: &PointMasses, at: [f64; 3], mode: VectorMode) -> (f64, [f64; 3]) {
    match mode {
        VectorMode::Scalar => p2p_at_w::<1>(src, at[0], at[1], at[2]),
        VectorMode::Sve512 => p2p_at_wide(src, at[0], at[1], at[2]),
    }
}

/// Direct-sum field of `src` at every target point: the O(N²) reference
/// solver the FMM is validated against.
pub fn direct_field(
    src: &PointMasses,
    targets: &PointMasses,
    mode: VectorMode,
) -> (Vec<f64>, Vec<[f64; 3]>) {
    let mut phis = Vec::with_capacity(targets.len());
    let mut gs = Vec::with_capacity(targets.len());
    for t in 0..targets.len() {
        let (phi, g) = p2p_at(src, [targets.xs[t], targets.ys[t], targets.zs[t]], mode);
        phis.push(phi);
        gs.push(g);
    }
    (phis, gs)
}

/// Total gravitational potential energy `½ Σ m φ` of a self-interacting
/// system (used by the conservation ledger).
pub fn potential_energy(points: &PointMasses, mode: VectorMode) -> f64 {
    let mut e = 0.0;
    for t in 0..points.len() {
        let (phi, _) = p2p_at(points, [points.xs[t], points.ys[t], points.zs[t]], mode);
        e += 0.5 * points.ms[t] * phi;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_body_force_is_newtonian() {
        let mut pts = PointMasses::default();
        pts.push([0.0, 0.0, 0.0], 3.0);
        let (phi, g) = p2p_at(&pts, [2.0, 0.0, 0.0], VectorMode::Sve512);
        assert!((phi + G * 3.0 / 2.0).abs() < 1e-14);
        assert!((g[0] + G * 3.0 / 4.0).abs() < 1e-14);
        assert_eq!(g[1], 0.0);
    }

    #[test]
    fn self_interaction_is_excluded() {
        let mut pts = PointMasses::default();
        pts.push([1.0, 1.0, 1.0], 2.0);
        let (phi, g) = p2p_at(&pts, [1.0, 1.0, 1.0], VectorMode::Sve512);
        assert_eq!(phi, 0.0);
        assert_eq!(g, [0.0; 3]);
    }

    #[test]
    fn scalar_and_sve_agree() {
        let mut pts = PointMasses::default();
        for i in 0..37 {
            // 37: not a multiple of 8, exercises the tail mask.
            let f = i as f64;
            pts.push(
                [f * 0.1, (f * 0.07).sin(), (f * 0.13).cos()],
                0.1 + 0.01 * f,
            );
        }
        let at = [5.0, -2.0, 1.0];
        let (p1, g1) = p2p_at(&pts, at, VectorMode::Scalar);
        let (p8, g8) = p2p_at(&pts, at, VectorMode::Sve512);
        // Fixed-order lane reductions make the widths bit-identical, not
        // just close (the Figure 7 switch must be physics-neutral).
        assert_eq!(p1.to_bits(), p8.to_bits());
        for a in 0..3 {
            assert_eq!(g1[a].to_bits(), g8[a].to_bits());
        }
    }

    #[test]
    fn forces_are_antisymmetric() {
        let mut a = PointMasses::default();
        a.push([0.0, 0.0, 0.0], 2.0);
        let mut b = PointMasses::default();
        b.push([1.0, 1.0, 0.0], 5.0);
        let (_, g_ab) = p2p_at(&b, [0.0, 0.0, 0.0], VectorMode::Sve512);
        let (_, g_ba) = p2p_at(&a, [1.0, 1.0, 0.0], VectorMode::Sve512);
        // m_a * g(a←b) = −m_b * g(b←a).
        for k in 0..3 {
            assert!((2.0 * g_ab[k] + 5.0 * g_ba[k]).abs() < 1e-13);
        }
    }

    #[test]
    fn potential_energy_of_pair() {
        let mut pts = PointMasses::default();
        pts.push([0.0, 0.0, 0.0], 1.0);
        pts.push([2.0, 0.0, 0.0], 4.0);
        let e = potential_energy(&pts, VectorMode::Sve512);
        assert!((e + G * 4.0 / 2.0).abs() < 1e-13);
    }

    #[test]
    fn direct_field_shapes() {
        let mut src = PointMasses::default();
        src.push([0.0; 3], 1.0);
        let mut tgt = PointMasses::default();
        tgt.push([1.0, 0.0, 0.0], 0.0);
        tgt.push([2.0, 0.0, 0.0], 0.0);
        let (phis, gs) = direct_field(&src, &tgt, VectorMode::Scalar);
        assert_eq!(phis.len(), 2);
        assert!(phis[0] < phis[1]); // closer ⇒ deeper potential
        assert!(gs[0][0] < 0.0);
    }
}
