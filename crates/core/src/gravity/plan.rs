//! The cached FMM interaction plan: a precomputed, SFC-ordered, flat
//! (CSR-style) encoding of the dual-tree traversal.
//!
//! The real Octo-Tiger computes its interaction lists once per *regrid*,
//! not once per step; our solver used to redo the full dual-tree traversal
//! and rebuild every `HashMap<NodeId, …>` on **every** solve.  A
//! [`GravityPlan`] freezes everything that depends only on the tree
//! topology and the acceptance parameter θ:
//!
//! * a **slot table** of all tree nodes, deepest level first and SFC-sorted
//!   within each level, so every level is one contiguous slot range — the
//!   layout that lets the upward (M2M) and downward (L2L) passes hand each
//!   per-level kernel disjoint `&mut` chunk slices via `split_at_mut`
//!   (deeper levels sit strictly *before* the level being written, so the
//!   read half and the write half of the slot buffer never alias);
//! * the **M2L interaction lists** in CSR form (`m2l_offsets` +
//!   `m2l_sources` over slot indices) plus the dense list of non-empty
//!   targets the multipole kernel launches over;
//! * the **P2P leaf-pair lists** in CSR form over leaf indices;
//! * per-slot **geometry** (centers) and **parent links** for the
//!   gather-form downward pass.
//!
//! The plan is keyed on [`octree::Tree::topology_version`] (and θ and the
//! node count, guarding against distinct trees with coincidentally equal
//! versions): a solve with an unchanged tree performs *zero* traversal
//! work and runs straight kernels over dense index arrays.

use super::solver::SolveStats;
use crate::units::BOX_SIZE;
use octree::{NodeId, RegridDelta, Tree};
use std::collections::{HashMap, HashSet};

/// Physical center and half-diagonal of a node's cube.
pub(crate) fn node_geometry(id: NodeId) -> ([f64; 3], f64) {
    let (corner, size) = id.cube();
    let s_phys = size * BOX_SIZE;
    let center = [
        (corner[0] + 0.5 * size - 0.5) * BOX_SIZE,
        (corner[1] + 0.5 * size - 0.5) * BOX_SIZE,
        (corner[2] + 0.5 * size - 0.5) * BOX_SIZE,
    ];
    (center, 0.5 * s_phys * 3f64.sqrt())
}

/// What a slot of the plan's node table is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// A leaf; payload is the index into [`GravityPlan::leaves`].
    Leaf(usize),
    /// An interior node; payload is its eight child slots (octant order).
    /// All children live at the next-deeper level, i.e. at strictly
    /// *smaller* slot indices.
    Interior([usize; 8]),
}

/// The frozen traversal: everything a gravity solve needs that depends
/// only on tree topology and θ.  Built by [`GravityPlan::build`], cached
/// by the solver, shared immutably (`Arc`) between solver clones.
#[derive(Debug, Clone, PartialEq)]
pub struct GravityPlan {
    /// [`Tree::topology_version`] of the tree this plan encodes.
    pub topology_version: u64,
    /// Acceptance parameter the traversal used.
    pub theta: f64,
    /// Node count of the encoded tree (second staleness guard).
    pub num_nodes: usize,
    /// All tree nodes: deepest level first, SFC-sorted within a level.
    pub nodes: Vec<NodeId>,
    /// Per-slot cube centers (physical coordinates).
    pub centers: Vec<[f64; 3]>,
    /// Per-slot kind (leaf index or child slots).
    pub kinds: Vec<SlotKind>,
    /// Per-slot parent slot (`usize::MAX` for the root).  Parents live at
    /// strictly *larger* slot indices.
    pub parent_slot: Vec<usize>,
    /// `level_ranges[level]` = the contiguous `(begin, end)` slot range of
    /// that level.  Deeper level ⇒ earlier range.
    pub level_ranges: Vec<(usize, usize)>,
    /// SFC-sorted leaves (the solver's input/output key order).
    pub leaves: Vec<NodeId>,
    /// Slot of each leaf, aligned with [`GravityPlan::leaves`].
    pub leaf_slots: Vec<usize>,
    /// M2L CSR over slots: slot `s`'s far-field sources are
    /// `m2l_sources[m2l_offsets[s]..m2l_offsets[s + 1]]` (slot indices,
    /// ascending — a *canonical* order, so per-target summation order is
    /// deterministic, independent of kernel task splitting, and exactly
    /// reproducible by the incremental [`GravityPlan::patch`]).
    pub m2l_offsets: Vec<usize>,
    pub m2l_sources: Vec<usize>,
    /// Slots with a non-empty M2L list — the multipole kernel's launch
    /// index set.
    pub m2l_targets: Vec<usize>,
    /// P2P CSR over *leaf indices*: leaf `l`'s near-field source leaves are
    /// `p2p_sources[p2p_offsets[l]..p2p_offsets[l + 1]]` (including the
    /// self pair, ascending — canonical, like the M2L lists).
    pub p2p_offsets: Vec<usize>,
    pub p2p_sources: Vec<usize>,
    /// Interaction statistics — a pure function of the plan, precomputed
    /// so cached solves return them for free.
    pub stats: SolveStats,
}

impl GravityPlan {
    /// Run the dual-tree traversal once and freeze it.
    pub fn build(tree: &Tree, theta: f64) -> GravityPlan {
        // ---- Slot table: deepest level first, SFC within a level. -------
        let max_level = tree.max_level();
        let mut nodes: Vec<NodeId> = Vec::with_capacity(tree.len());
        let mut level_ranges = vec![(0usize, 0usize); max_level as usize + 1];
        for level in (0..=max_level).rev() {
            let begin = nodes.len();
            nodes.extend(tree.nodes_at_level(level));
            level_ranges[level as usize] = (begin, nodes.len());
        }
        debug_assert_eq!(nodes.len(), tree.len());
        let slot_of: HashMap<NodeId, usize> =
            nodes.iter().enumerate().map(|(s, &id)| (id, s)).collect();

        let leaves = tree.leaves();
        let leaf_index: HashMap<NodeId, usize> =
            leaves.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let leaf_slots: Vec<usize> = leaves.iter().map(|id| slot_of[id]).collect();

        let centers: Vec<[f64; 3]> = nodes.iter().map(|&id| node_geometry(id).0).collect();
        let radii: Vec<f64> = nodes.iter().map(|&id| node_geometry(id).1).collect();
        let kinds: Vec<SlotKind> = nodes
            .iter()
            .map(|&id| {
                if tree.is_leaf(id) {
                    SlotKind::Leaf(leaf_index[&id])
                } else {
                    let mut child_slots = [0usize; 8];
                    for (c, o) in octree::Octant::all().enumerate() {
                        child_slots[c] = slot_of[&id.child(o)];
                    }
                    SlotKind::Interior(child_slots)
                }
            })
            .collect();
        let parent_slot: Vec<usize> = nodes
            .iter()
            .map(|&id| id.parent().map_or(usize::MAX, |p| slot_of[&p]))
            .collect();

        // ---- The dual-tree traversal (run once, then never again until
        // the topology or θ changes). ------------------------------------
        let mut m2l: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut p2p: Vec<Vec<usize>> = vec![Vec::new(); leaves.len()];
        let root = slot_of[&NodeId::ROOT];
        let mut stack: Vec<(usize, usize)> = vec![(root, root)];
        while let Some((a, b)) = stack.pop() {
            if a == b {
                match kinds[a] {
                    SlotKind::Leaf(la) => p2p[la].push(la),
                    SlotKind::Interior(kids) => {
                        for (i, &ci) in kids.iter().enumerate() {
                            for &cj in &kids[i..] {
                                stack.push((ci, cj));
                            }
                        }
                    }
                }
                continue;
            }
            let (ca, cb) = (centers[a], centers[b]);
            let d = ((ca[0] - cb[0]).powi(2) + (ca[1] - cb[1]).powi(2) + (ca[2] - cb[2]).powi(2))
                .sqrt();
            if d > 0.0 && (radii[a] + radii[b]) / d < theta {
                m2l[a].push(b);
                m2l[b].push(a);
                continue;
            }
            match (kinds[a], kinds[b]) {
                (SlotKind::Leaf(la), SlotKind::Leaf(lb)) => {
                    p2p[la].push(lb);
                    p2p[lb].push(la);
                }
                (a_kind, b_kind) => {
                    // Split the larger node (higher up the tree); if tied,
                    // split whichever is interior.
                    let split_a = match (a_kind, b_kind) {
                        (SlotKind::Leaf(_), _) => false,
                        (_, SlotKind::Leaf(_)) => true,
                        _ => nodes[a].level() <= nodes[b].level(),
                    };
                    let (split, keep) = if split_a { (a, b) } else { (b, a) };
                    let SlotKind::Interior(kids) = kinds[split] else {
                        unreachable!("split node is interior by construction");
                    };
                    for c in kids {
                        stack.push((c, keep));
                    }
                }
            }
        }

        // ---- Canonicalize: each unordered pair is visited exactly once,
        // so the lists are duplicate-free and sorting them ascending is a
        // pure reordering of the same set.  The canonical order is what
        // lets `patch` splice a subtree-local delta into an *identical*
        // plan without replaying the global DFS push order. ---------------
        for list in &mut m2l {
            list.sort_unstable();
        }
        for list in &mut p2p {
            list.sort_unstable();
        }

        // ---- CSR compaction. -------------------------------------------
        let mut m2l_offsets = Vec::with_capacity(nodes.len() + 1);
        let mut m2l_sources = Vec::new();
        let mut m2l_targets = Vec::new();
        m2l_offsets.push(0);
        for (s, list) in m2l.iter().enumerate() {
            if !list.is_empty() {
                m2l_targets.push(s);
            }
            m2l_sources.extend_from_slice(list);
            m2l_offsets.push(m2l_sources.len());
        }
        let mut p2p_offsets = Vec::with_capacity(leaves.len() + 1);
        let mut p2p_sources = Vec::new();
        p2p_offsets.push(0);
        for list in &p2p {
            p2p_sources.extend_from_slice(list);
            p2p_offsets.push(p2p_sources.len());
        }

        let stats = SolveStats {
            m2l_interactions: m2l_sources.len(),
            p2p_pairs: p2p_sources.len(),
            multipole_kernel_launches: m2l_targets.len(),
        };

        GravityPlan {
            topology_version: tree.topology_version(),
            theta,
            num_nodes: nodes.len(),
            nodes,
            centers,
            kinds,
            parent_slot,
            level_ranges,
            leaves,
            leaf_slots,
            m2l_offsets,
            m2l_sources,
            m2l_targets,
            p2p_offsets,
            p2p_sources,
            stats,
        }
    }

    /// The plan's invalidation rule: valid iff the tree's topology version
    /// *and* node count still match (the count guards against a different
    /// tree whose version coincides) and θ is unchanged.
    pub fn is_valid_for(&self, tree: &Tree, theta: f64) -> bool {
        self.topology_version == tree.topology_version()
            && self.num_nodes == tree.len()
            && self.theta == theta
    }

    /// M2L source slots of `slot`.
    #[inline]
    pub fn m2l_sources_of(&self, slot: usize) -> &[usize] {
        &self.m2l_sources[self.m2l_offsets[slot]..self.m2l_offsets[slot + 1]]
    }

    /// P2P source leaf indices of leaf `li`.
    #[inline]
    pub fn p2p_sources_of(&self, li: usize) -> &[usize] {
        &self.p2p_sources[self.p2p_offsets[li]..self.p2p_offsets[li + 1]]
    }

    /// Deepest level of the encoded tree.
    pub fn max_level(&self) -> u8 {
        (self.level_ranges.len() - 1) as u8
    }

    /// Compress a monotone old→new index map into runs of constant
    /// offset: `(first_old_index, new − old)` per run, skipping removed
    /// (`usize::MAX`) entries.  A patch episode inserts/removes O(delta)
    /// index positions, so the table has O(delta) runs regardless of the
    /// map's length.
    fn offset_runs(map: &[usize]) -> Vec<(usize, isize)> {
        let mut runs: Vec<(usize, isize)> = Vec::new();
        for (i, &m) in map.iter().enumerate() {
            if m == usize::MAX {
                continue;
            }
            let off = m as isize - i as isize;
            if runs.last().is_none_or(|&(_, o)| o != off) {
                runs.push((i, off));
            }
        }
        runs
    }

    /// Append `list` renumbered through a monotone old→new index map,
    /// given as its piecewise-constant-offset run table `bp` (see
    /// [`offset_runs`]).  Clean interaction lists are sorted, so each
    /// list decomposes into a handful of contiguous spans per run and the
    /// renumber becomes a constant-add over a slice — the compiler
    /// vectorizes it — instead of a per-entry gather through the map.
    fn extend_renumbered(out: &mut Vec<usize>, list: &[usize], bp: &[(usize, isize)]) {
        let mut rest = list;
        while !rest.is_empty() {
            let k = bp.partition_point(|&(start, _)| start <= rest[0]) - 1;
            let off = bp[k].1;
            let end = match bp.get(k + 1) {
                Some(&(next, _)) => rest.partition_point(|&x| x < next),
                None => rest.len(),
            };
            out.extend(rest[..end].iter().map(|&x| (x as isize + off) as usize));
            rest = &rest[end..];
        }
    }

    /// Merge two sorted lists into `out`.  A dirty survivor's patched
    /// list is its filtered old list (still sorted: the renumbering is
    /// monotone and filtering preserves order) merged with the pre-sorted
    /// additions from the pruned traversal — an O(n) merge replaces the
    /// per-slot `sort_unstable` of the concatenation.
    fn merge_sorted_into(out: &mut Vec<usize>, a: &[usize], b: &[usize]) {
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
    }

    /// Patch `old` with a [`RegridDelta`] instead of re-running the global
    /// dual-tree traversal: splice the slot table per level, renumber the
    /// untouched (canonical, sorted) interaction lists through the
    /// monotone old→new slot map, and re-derive lists only for *dirty*
    /// slots — nodes whose leaf/interior kind changed, nodes created or
    /// removed by the regrid, and their interaction partners — via a
    /// traversal pruned to pairs touching a dirty subtree.
    ///
    /// Correctness rests on two facts.  (1) Refinement never moves or
    /// resizes existing nodes, so the multipole-acceptance outcome of any
    /// surviving pair is unchanged and the pair-tree above dirty subtrees
    /// is isomorphic before and after — only pairs with a dirty side can
    /// gain or lose entries.  (2) The per-slot lists are canonically
    /// sorted and the slot map is monotone, so "renumber" preserves the
    /// canonical order and a patched list equals the rebuilt one
    /// element-for-element, not just as a set.  The solver additionally
    /// re-runs the static plan verifier on every patched plan and, in
    /// debug builds, asserts equality with a from-scratch rebuild.
    ///
    /// Returns `None` when the delta does not span
    /// `old.topology_version → tree.topology_version()` (or θ changed):
    /// the caller falls back to a full rebuild.
    pub fn patch(
        old: &GravityPlan,
        tree: &Tree,
        delta: &RegridDelta,
        theta: f64,
    ) -> Option<(GravityPlan, PatchReport)> {
        if theta != old.theta || !delta.spans(old.topology_version, tree.topology_version()) {
            return None;
        }

        // ---- Normalize the op log into net created/removed/flipped sets
        // (a refine later undone by a derefine nets out to nothing). ------
        let old_slot_of: HashMap<NodeId, usize> = old
            .nodes
            .iter()
            .enumerate()
            .map(|(s, &id)| (id, s))
            .collect();
        let mut candidates: Vec<NodeId> = Vec::new();
        for &id in delta.refined.iter().chain(delta.derefined.iter()) {
            candidates.push(id);
            for oct in octree::Octant::all() {
                candidates.push(id.child(oct));
            }
        }
        candidates.sort_unstable_by_key(|id| (id.level(), id.sfc_key()));
        candidates.dedup();
        let mut created: Vec<NodeId> = Vec::new();
        let mut removed: Vec<NodeId> = Vec::new();
        let mut flipped: Vec<NodeId> = Vec::new();
        for &id in &candidates {
            match (old_slot_of.get(&id), tree.contains(id)) {
                (None, true) => created.push(id),
                (Some(_), false) => removed.push(id),
                (Some(&s), true) => {
                    if matches!(old.kinds[s], SlotKind::Leaf(_)) != tree.is_leaf(id) {
                        flipped.push(id);
                    }
                }
                (None, false) => {}
            }
        }
        if created.is_empty() && removed.is_empty() && flipped.is_empty() {
            // Net no-op regrid: same topology under a new version.
            let mut plan = old.clone();
            plan.topology_version = tree.topology_version();
            let report = PatchReport {
                old_version: old.topology_version,
                new_version: plan.topology_version,
                slot_map: (0..old.num_nodes).collect(),
                leaf_map: (0..old.leaves.len()).collect(),
                dirty_slots: Vec::new(),
                retired_slots: Vec::new(),
                dirty_leaves: Vec::new(),
                retired_leaves: Vec::new(),
            };
            return Some((plan, report));
        }

        let trace = std::env::var("OCTO_PATCH_TRACE").is_ok();
        let t0 = std::time::Instant::now();
        // ---- Splice the slot table per level. ---------------------------
        let old_nlev = old.level_ranges.len();
        let nlev_bound = old_nlev.max(
            created
                .iter()
                .map(|id| id.level() as usize + 1)
                .max()
                .unwrap_or(0),
        );
        let mut ins: Vec<Vec<NodeId>> = vec![Vec::new(); nlev_bound];
        for &id in &created {
            ins[id.level() as usize].push(id); // candidates were SFC-sorted
        }
        let mut removed_mark = vec![false; old.num_nodes];
        let mut removed_per_level = vec![0usize; old_nlev];
        for &id in &removed {
            let s = old_slot_of[&id];
            removed_mark[s] = true;
            removed_per_level[id.level() as usize] += 1;
        }
        let mut new_nlev = 0usize;
        for level in 0..nlev_bound {
            let old_len = if level < old_nlev {
                old.level_ranges[level].1 - old.level_ranges[level].0
            } else {
                0
            };
            if old_len + ins[level].len() - removed_per_level.get(level).copied().unwrap_or(0) > 0 {
                new_nlev = level + 1;
            }
        }

        let new_total = old.num_nodes + created.len() - removed.len();
        let mut nodes: Vec<NodeId> = Vec::with_capacity(new_total);
        let mut level_ranges = vec![(0usize, 0usize); new_nlev];
        let mut slot_map = vec![usize::MAX; old.num_nodes];
        let mut touched_slot: HashMap<NodeId, usize> = HashMap::new();
        for level in (0..new_nlev).rev() {
            let begin = nodes.len();
            let olds: &[NodeId] = if level < old_nlev {
                let (b, e) = old.level_ranges[level];
                &old.nodes[b..e]
            } else {
                &[]
            };
            let base = if level < old_nlev {
                old.level_ranges[level].0
            } else {
                0
            };
            let mut it = ins[level].iter().peekable();
            for (k, &id) in olds.iter().enumerate() {
                if removed_mark[base + k] {
                    continue;
                }
                while let Some(&&c) = it.peek() {
                    if c.sfc_key() < id.sfc_key() {
                        touched_slot.insert(c, nodes.len());
                        nodes.push(c);
                        it.next();
                    } else {
                        break;
                    }
                }
                slot_map[base + k] = nodes.len();
                nodes.push(id);
            }
            for &c in it {
                touched_slot.insert(c, nodes.len());
                nodes.push(c);
            }
            level_ranges[level] = (begin, nodes.len());
        }
        debug_assert_eq!(nodes.len(), new_total);
        debug_assert_eq!(nodes.len(), tree.len());
        // Rebuild the inverse map in one clean pass (survivors only).
        let mut old_of_new = vec![usize::MAX; new_total];
        for (os, &ns) in slot_map.iter().enumerate() {
            if ns != usize::MAX {
                old_of_new[ns] = os;
            }
        }

        let flipped_set: HashSet<NodeId> = flipped.iter().copied().collect();
        let new_slot = |id: NodeId| -> usize {
            touched_slot
                .get(&id)
                .copied()
                .unwrap_or_else(|| slot_map[old_slot_of[&id]])
        };

        // ---- Splice the leaf table (global SFC order). ------------------
        let mut drop_leaf = vec![false; old.leaves.len()];
        for id in removed.iter().chain(flipped.iter()) {
            if let Some(&s) = old_slot_of.get(id) {
                if let SlotKind::Leaf(li) = old.kinds[s] {
                    if !tree.is_leaf(*id) || !tree.contains(*id) {
                        drop_leaf[li] = true;
                    }
                }
            }
        }
        let mut new_leaf_ids: Vec<NodeId> = created
            .iter()
            .copied()
            .filter(|&id| tree.is_leaf(id))
            .chain(flipped.iter().copied().filter(|&id| tree.is_leaf(id)))
            .collect();
        new_leaf_ids.sort_unstable_by_key(|id| id.sfc_key());
        let mut leaves: Vec<NodeId> = Vec::with_capacity(old.leaves.len() + new_leaf_ids.len());
        let mut leaf_slots: Vec<usize> = Vec::with_capacity(leaves.capacity());
        let mut leaf_map = vec![usize::MAX; old.leaves.len()];
        let mut old_of_new_leaf: Vec<usize> = Vec::with_capacity(leaves.capacity());
        let mut inserted_leaf_idx: HashSet<usize> = HashSet::new();
        {
            let mut it = new_leaf_ids.iter().peekable();
            for (li, &id) in old.leaves.iter().enumerate() {
                if drop_leaf[li] {
                    continue;
                }
                while let Some(&&c) = it.peek() {
                    if c.sfc_key() < id.sfc_key() {
                        inserted_leaf_idx.insert(leaves.len());
                        old_of_new_leaf.push(usize::MAX);
                        leaf_slots.push(new_slot(c));
                        leaves.push(c);
                        it.next();
                    } else {
                        break;
                    }
                }
                leaf_map[li] = leaves.len();
                old_of_new_leaf.push(li);
                leaf_slots.push(slot_map[old.leaf_slots[li]]);
                leaves.push(id);
            }
            for &c in it {
                inserted_leaf_idx.insert(leaves.len());
                old_of_new_leaf.push(usize::MAX);
                leaf_slots.push(new_slot(c));
                leaves.push(c);
            }
        }

        if trace {
            eprintln!("plan-patch: splices {:?}", t0.elapsed());
        }
        let t1 = std::time::Instant::now();
        // ---- Geometry, kinds, parents: copy survivors, derive the rest. -
        let mut centers: Vec<[f64; 3]> = Vec::with_capacity(new_total);
        let mut kinds: Vec<SlotKind> = Vec::with_capacity(new_total);
        let mut parent_slot: Vec<usize> = Vec::with_capacity(new_total);
        for s in 0..new_total {
            let id = nodes[s];
            let os = old_of_new[s];
            if os != usize::MAX {
                centers.push(old.centers[os]);
            } else {
                centers.push(node_geometry(id).0);
            }
            let kind = if os != usize::MAX && !flipped_set.contains(&id) {
                match old.kinds[os] {
                    SlotKind::Leaf(li) => SlotKind::Leaf(leaf_map[li]),
                    SlotKind::Interior(kids) => {
                        SlotKind::Interior(std::array::from_fn(|c| slot_map[kids[c]]))
                    }
                }
            } else if tree.is_leaf(id) {
                // Position in the spliced leaf table: binary search is
                // exact because `leaves` is SFC-sorted and duplicate-free.
                let li = leaves
                    .binary_search_by_key(&id.sfc_key(), |l| l.sfc_key())
                    .expect("flipped/created leaf present in leaf table");
                SlotKind::Leaf(li)
            } else {
                let mut child_slots = [0usize; 8];
                for (c, o) in octree::Octant::all().enumerate() {
                    child_slots[c] = new_slot(id.child(o));
                }
                SlotKind::Interior(child_slots)
            };
            kinds.push(kind);
            if os != usize::MAX {
                let op = old.parent_slot[os];
                parent_slot.push(if op == usize::MAX {
                    usize::MAX
                } else {
                    slot_map[op]
                });
            } else {
                parent_slot.push(id.parent().map_or(usize::MAX, new_slot));
            }
        }

        if trace {
            eprintln!("plan-patch: geometry/kinds {:?}", t1.elapsed());
        }
        let t2 = std::time::Instant::now();
        // ---- Dirty sets for the pruned traversal. -----------------------
        let mut hot_new_slots: HashSet<usize> = HashSet::new();
        for id in flipped.iter().chain(created.iter()) {
            hot_new_slots.insert(new_slot(*id));
        }
        let mut hot_old_slots: HashSet<usize> = HashSet::new();
        for id in flipped.iter().chain(removed.iter()) {
            hot_old_slots.insert(old_slot_of[id]);
        }
        let mut anc_slots: HashSet<usize> = HashSet::new();
        for id in flipped.iter().chain(created.iter()) {
            let mut cur = *id;
            while let Some(p) = cur.parent() {
                let ps = new_slot(p);
                if hot_new_slots.contains(&ps) || !anc_slots.insert(ps) {
                    break;
                }
                cur = p;
            }
        }

        // Per-level half-diagonals (a pure function of the level).
        let radius_by_level: Vec<f64> = (0..new_nlev)
            .map(|l| node_geometry(nodes[level_ranges[l].0]).1)
            .collect();

        // ---- Pruned dual-tree traversal: only pairs whose subtrees touch
        // a dirty node are visited; entries are emitted only for pairs
        // with a dirty side (clean-pair outcomes are provably unchanged). -
        let mut add_m2l: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut add_p2p: HashMap<usize, Vec<usize>> = HashMap::new();
        let relevant = |s: usize| hot_new_slots.contains(&s) || anc_slots.contains(&s);
        let root = new_total - 1;
        let mut stack: Vec<(usize, usize)> = vec![(root, root)];
        while let Some((a, b)) = stack.pop() {
            if !(relevant(a) || relevant(b)) {
                continue;
            }
            let hot_pair = hot_new_slots.contains(&a) || hot_new_slots.contains(&b);
            if a == b {
                match kinds[a] {
                    SlotKind::Leaf(la) => {
                        if hot_pair {
                            add_p2p.entry(la).or_default().push(la);
                        }
                    }
                    SlotKind::Interior(kids) => {
                        for (i, &ci) in kids.iter().enumerate() {
                            for &cj in &kids[i..] {
                                stack.push((ci, cj));
                            }
                        }
                    }
                }
                continue;
            }
            let (ca, cb) = (centers[a], centers[b]);
            let d = ((ca[0] - cb[0]).powi(2) + (ca[1] - cb[1]).powi(2) + (ca[2] - cb[2]).powi(2))
                .sqrt();
            let (ra, rb) = (
                radius_by_level[nodes[a].level() as usize],
                radius_by_level[nodes[b].level() as usize],
            );
            if d > 0.0 && (ra + rb) / d < theta {
                if hot_pair {
                    add_m2l.entry(a).or_default().push(b);
                    add_m2l.entry(b).or_default().push(a);
                }
                continue;
            }
            match (kinds[a], kinds[b]) {
                (SlotKind::Leaf(la), SlotKind::Leaf(lb)) => {
                    if hot_pair {
                        add_p2p.entry(la).or_default().push(lb);
                        add_p2p.entry(lb).or_default().push(la);
                    }
                }
                (a_kind, b_kind) => {
                    let split_a = match (a_kind, b_kind) {
                        (SlotKind::Leaf(_), _) => false,
                        (_, SlotKind::Leaf(_)) => true,
                        _ => nodes[a].level() <= nodes[b].level(),
                    };
                    let (split, keep) = if split_a { (a, b) } else { (b, a) };
                    let SlotKind::Interior(kids) = kinds[split] else {
                        unreachable!("split node is interior by construction");
                    };
                    for c in kids {
                        stack.push((c, keep));
                    }
                }
            }
        }

        if trace {
            eprintln!("plan-patch: pruned traversal {:?}", t2.elapsed());
        }
        let t3 = std::time::Instant::now();
        // ---- Retraction scan: lists are symmetric, so the clean slots
        // whose lists reference a dirty node are exactly the partners
        // named by the dirty nodes' *old* lists.  Dense bool marks, not
        // hash sets: the CSR assembly below probes them once per slot and
        // once per filtered entry, and those probes are the patch's hot
        // loop — the whole point of patching is that this loop runs at
        // copy bandwidth, not hash speed. --------------------------------
        let mut hot_old_mark = vec![false; old.num_nodes];
        for &h in &hot_old_slots {
            hot_old_mark[h] = true;
        }
        let mut filter_old_mark = vec![false; old.num_nodes];
        for &h in &hot_old_slots {
            for &p in old.m2l_sources_of(h) {
                if !hot_old_mark[p] {
                    filter_old_mark[p] = true;
                }
            }
        }
        let mut filter_leaf_mark = vec![false; old.leaves.len()];
        for (li, &dropped) in drop_leaf.iter().enumerate() {
            if dropped {
                for &p in old.p2p_sources_of(li) {
                    if !drop_leaf[p] {
                        filter_leaf_mark[p] = true;
                    }
                }
            }
        }

        // ---- Assemble the M2L CSR. --------------------------------------
        let dirty_slots: Vec<usize> = {
            let mut v: Vec<usize> = hot_new_slots
                .iter()
                .copied()
                .chain(add_m2l.keys().copied())
                .chain(
                    filter_old_mark
                        .iter()
                        .enumerate()
                        .filter(|&(_, &f)| f)
                        .map(|(os, _)| slot_map[os]),
                )
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut hot_new_mark = vec![false; new_total];
        for &s in &hot_new_slots {
            hot_new_mark[s] = true;
        }
        let slot_runs = Self::offset_runs(&slot_map);
        for v in add_m2l.values_mut() {
            v.sort_unstable();
        }
        let mut m2l_offsets = Vec::with_capacity(new_total + 1);
        let mut m2l_sources: Vec<usize> = Vec::with_capacity(old.m2l_sources.len());
        let mut m2l_targets = Vec::new();
        m2l_offsets.push(0usize);
        let mut scratch: Vec<usize> = Vec::new();
        for s in 0..new_total {
            let begin = m2l_sources.len();
            let os = old_of_new[s];
            if hot_new_mark[s] || os == usize::MAX {
                if let Some(v) = add_m2l.get(&s) {
                    m2l_sources.extend_from_slice(v);
                }
            } else if filter_old_mark[os] || add_m2l.contains_key(&s) {
                scratch.clear();
                scratch.extend(
                    old.m2l_sources_of(os)
                        .iter()
                        .filter(|&&x| !hot_old_mark[x])
                        .map(|&x| slot_map[x]),
                );
                match add_m2l.get(&s) {
                    Some(v) => Self::merge_sorted_into(&mut m2l_sources, &scratch, v),
                    None => m2l_sources.extend_from_slice(&scratch),
                }
            } else {
                // Clean slot: a pure renumbering of a sorted list through
                // a monotone map, streamed straight into the CSR.
                Self::extend_renumbered(&mut m2l_sources, old.m2l_sources_of(os), &slot_runs);
            }
            if m2l_sources.len() > begin {
                m2l_targets.push(s);
            }
            m2l_offsets.push(m2l_sources.len());
        }

        if trace {
            eprintln!(
                "plan-patch: m2l CSR {:?} ({} entries)",
                t3.elapsed(),
                m2l_sources.len()
            );
        }
        let t4 = std::time::Instant::now();
        // ---- Assemble the P2P CSR. --------------------------------------
        let dirty_leaves: Vec<usize> = {
            let mut v: Vec<usize> = inserted_leaf_idx
                .iter()
                .copied()
                .chain(add_p2p.keys().copied())
                .chain(
                    filter_leaf_mark
                        .iter()
                        .enumerate()
                        .filter(|&(_, &f)| f)
                        .map(|(ol, _)| leaf_map[ol]),
                )
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut inserted_leaf_mark = vec![false; leaves.len()];
        for &li in &inserted_leaf_idx {
            inserted_leaf_mark[li] = true;
        }
        let leaf_runs = Self::offset_runs(&leaf_map);
        for v in add_p2p.values_mut() {
            v.sort_unstable();
        }
        let mut p2p_offsets = Vec::with_capacity(leaves.len() + 1);
        let mut p2p_sources: Vec<usize> = Vec::with_capacity(old.p2p_sources.len());
        p2p_offsets.push(0usize);
        for li in 0..leaves.len() {
            let ol = old_of_new_leaf[li];
            if inserted_leaf_mark[li] || ol == usize::MAX {
                if let Some(v) = add_p2p.get(&li) {
                    p2p_sources.extend_from_slice(v);
                }
            } else if filter_leaf_mark[ol] || add_p2p.contains_key(&li) {
                scratch.clear();
                scratch.extend(
                    old.p2p_sources_of(ol)
                        .iter()
                        .filter(|&&x| !drop_leaf[x])
                        .map(|&x| leaf_map[x]),
                );
                match add_p2p.get(&li) {
                    Some(v) => Self::merge_sorted_into(&mut p2p_sources, &scratch, v),
                    None => p2p_sources.extend_from_slice(&scratch),
                }
            } else {
                Self::extend_renumbered(&mut p2p_sources, old.p2p_sources_of(ol), &leaf_runs);
            }
            p2p_offsets.push(p2p_sources.len());
        }
        if trace {
            eprintln!(
                "plan-patch: p2p CSR {:?} ({} entries)",
                t4.elapsed(),
                p2p_sources.len()
            );
        }

        let stats = SolveStats {
            m2l_interactions: m2l_sources.len(),
            p2p_pairs: p2p_sources.len(),
            multipole_kernel_launches: m2l_targets.len(),
        };
        let retired_slots: Vec<usize> = {
            let mut v: Vec<usize> = hot_old_slots.iter().copied().collect();
            v.sort_unstable();
            v
        };
        let retired_leaves: Vec<usize> = drop_leaf
            .iter()
            .enumerate()
            .filter_map(|(li, &d)| d.then_some(li))
            .collect();

        let plan = GravityPlan {
            topology_version: tree.topology_version(),
            theta,
            num_nodes: new_total,
            nodes,
            centers,
            kinds,
            parent_slot,
            level_ranges,
            leaves,
            leaf_slots,
            m2l_offsets,
            m2l_sources,
            m2l_targets,
            p2p_offsets,
            p2p_sources,
            stats,
        };
        let report = PatchReport {
            old_version: old.topology_version,
            new_version: plan.topology_version,
            slot_map,
            leaf_map,
            dirty_slots,
            retired_slots,
            dirty_leaves,
            retired_leaves,
        };
        Some((plan, report))
    }
}

/// What [`GravityPlan::patch`] changed — the downstream caches
/// ([`super::dist::DistPlan`], ghost payload demand, workspaces) consume
/// this to patch *themselves* subtree-locally instead of re-deriving the
/// dirty set from the delta again.
#[derive(Debug, Clone, Default)]
pub struct PatchReport {
    /// `topology_version` of the plan that was patched.
    pub old_version: u64,
    /// `topology_version` of the patched plan.
    pub new_version: u64,
    /// Old slot → new slot (monotone; `usize::MAX` for removed slots).
    pub slot_map: Vec<usize>,
    /// Old leaf index → new leaf index (`usize::MAX` when retired).
    pub leaf_map: Vec<usize>,
    /// New slots whose M2L list differs from a pure renumbering of the
    /// old one (sorted ascending).
    pub dirty_slots: Vec<usize>,
    /// Old slots that no longer exist or flipped kind (sorted ascending).
    pub retired_slots: Vec<usize>,
    /// New leaf indices whose P2P list changed (sorted ascending).
    pub dirty_leaves: Vec<usize>,
    /// Old leaf indices that are no longer leaves (sorted ascending).
    pub retired_leaves: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_table_is_deepest_first_and_contiguous() {
        let mut tree = Tree::new_uniform(1);
        tree.refine_balanced(NodeId::from_coords(1, [0, 0, 0]));
        let plan = GravityPlan::build(&tree, 0.5);
        assert_eq!(plan.num_nodes, tree.len());
        // Levels appear deepest first, each as one contiguous range.
        let mut cursor = 0usize;
        for level in (0..=tree.max_level()).rev() {
            let (b, e) = plan.level_ranges[level as usize];
            assert_eq!(b, cursor, "level {level} range not contiguous");
            for s in b..e {
                assert_eq!(plan.nodes[s].level(), level);
            }
            cursor = e;
        }
        assert_eq!(cursor, plan.num_nodes);
        // Children sit at strictly smaller slots, parents strictly larger.
        for (s, kind) in plan.kinds.iter().enumerate() {
            if let SlotKind::Interior(kids) = kind {
                assert!(kids.iter().all(|&c| c < s));
            }
            let p = plan.parent_slot[s];
            if p != usize::MAX {
                assert!(p > s);
            }
        }
        // The root is the very last slot.
        assert_eq!(plan.nodes[plan.num_nodes - 1], NodeId::ROOT);
        assert_eq!(plan.parent_slot[plan.num_nodes - 1], usize::MAX);
    }

    #[test]
    fn csr_lists_match_stats() {
        let tree = Tree::new_uniform(2);
        let plan = GravityPlan::build(&tree, 0.5);
        assert_eq!(plan.stats.m2l_interactions, plan.m2l_sources.len());
        assert_eq!(plan.stats.p2p_pairs, plan.p2p_sources.len());
        assert_eq!(plan.stats.multipole_kernel_launches, plan.m2l_targets.len());
        assert!(plan.stats.m2l_interactions > 0);
        assert!(plan.stats.p2p_pairs > 0);
        // M2L symmetry: the interaction a→b implies b→a.
        for &t in &plan.m2l_targets {
            for &s in plan.m2l_sources_of(t) {
                assert!(
                    plan.m2l_sources_of(s).contains(&t),
                    "asymmetric M2L pair ({t}, {s})"
                );
            }
        }
        // Every leaf P2P list contains the self pair.
        for li in 0..plan.leaves.len() {
            assert!(plan.p2p_sources_of(li).contains(&li));
        }
    }

    #[test]
    fn rebuilding_on_an_unchanged_tree_is_deterministic() {
        let tree = Tree::new_uniform(2);
        let a = GravityPlan::build(&tree, 0.5);
        let b = GravityPlan::build(&tree, 0.5);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.m2l_offsets, b.m2l_offsets);
        assert_eq!(a.m2l_sources, b.m2l_sources);
        assert_eq!(a.p2p_offsets, b.p2p_offsets);
        assert_eq!(a.p2p_sources, b.p2p_sources);
        assert!(a.is_valid_for(&tree, 0.5));
        assert!(!a.is_valid_for(&tree, 0.4), "θ change must invalidate");
    }

    fn assert_plans_identical(a: &GravityPlan, b: &GravityPlan) {
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.kinds, b.kinds);
        assert_eq!(a.parent_slot, b.parent_slot);
        assert_eq!(a.level_ranges, b.level_ranges);
        assert_eq!(a.leaves, b.leaves);
        assert_eq!(a.leaf_slots, b.leaf_slots);
        assert_eq!(a.m2l_offsets, b.m2l_offsets);
        assert_eq!(a.m2l_sources, b.m2l_sources);
        assert_eq!(a.m2l_targets, b.m2l_targets);
        assert_eq!(a.p2p_offsets, b.p2p_offsets);
        assert_eq!(a.p2p_sources, b.p2p_sources);
        assert_eq!(a, b, "patched plan differs from a from-scratch rebuild");
    }

    #[test]
    fn patched_plan_matches_rebuild_after_refine() {
        let mut tree = Tree::new_uniform(2);
        let _ = tree.take_regrid_delta();
        let old = GravityPlan::build(&tree, 0.5);
        tree.refine_balanced(tree.leaves()[13]);
        let delta = tree.take_regrid_delta();
        let (patched, report) =
            GravityPlan::patch(&old, &tree, &delta, 0.5).expect("delta spans the plan");
        assert_plans_identical(&patched, &GravityPlan::build(&tree, 0.5));
        assert!(!report.dirty_slots.is_empty());
        assert!(
            report.dirty_slots.len() < patched.num_nodes,
            "subtree-local"
        );
    }

    #[test]
    fn patched_plan_matches_rebuild_after_derefine_and_mixed_ops() {
        let mut tree = Tree::new_uniform(2);
        tree.refine_balanced(NodeId::from_coords(2, [1, 1, 1]));
        let _ = tree.take_regrid_delta();
        let old = GravityPlan::build(&tree, 0.5);
        // Mixed episode: coarsen the deep corner, refine elsewhere.
        let deep = NodeId::from_coords(2, [1, 1, 1]);
        assert!(!tree.derefine_balanced(deep).is_empty());
        tree.refine_balanced(NodeId::from_coords(2, [3, 3, 3]));
        let delta = tree.take_regrid_delta();
        let (patched, _) =
            GravityPlan::patch(&old, &tree, &delta, 0.5).expect("delta spans the plan");
        assert_plans_identical(&patched, &GravityPlan::build(&tree, 0.5));
    }

    #[test]
    fn patch_refuses_non_spanning_deltas() {
        let mut tree = Tree::new_uniform(1);
        let _ = tree.take_regrid_delta();
        let old = GravityPlan::build(&tree, 0.5);
        tree.refine_balanced(tree.leaves()[0]);
        let delta = tree.take_regrid_delta();
        tree.refine_balanced(tree.leaves()[0]); // moves past the delta span
        assert!(GravityPlan::patch(&old, &tree, &delta, 0.5).is_none());
        assert!(
            GravityPlan::patch(&old, &tree, &delta, 0.4).is_none(),
            "θ change must force a rebuild"
        );
    }

    #[test]
    fn refinement_invalidates_the_plan() {
        let mut tree = Tree::new_uniform(1);
        let plan = GravityPlan::build(&tree, 0.5);
        assert!(plan.is_valid_for(&tree, 0.5));
        tree.refine_balanced(tree.leaves()[0]);
        assert!(!plan.is_valid_for(&tree, 0.5));
    }
}
