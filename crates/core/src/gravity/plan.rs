//! The cached FMM interaction plan: a precomputed, SFC-ordered, flat
//! (CSR-style) encoding of the dual-tree traversal.
//!
//! The real Octo-Tiger computes its interaction lists once per *regrid*,
//! not once per step; our solver used to redo the full dual-tree traversal
//! and rebuild every `HashMap<NodeId, …>` on **every** solve.  A
//! [`GravityPlan`] freezes everything that depends only on the tree
//! topology and the acceptance parameter θ:
//!
//! * a **slot table** of all tree nodes, deepest level first and SFC-sorted
//!   within each level, so every level is one contiguous slot range — the
//!   layout that lets the upward (M2M) and downward (L2L) passes hand each
//!   per-level kernel disjoint `&mut` chunk slices via `split_at_mut`
//!   (deeper levels sit strictly *before* the level being written, so the
//!   read half and the write half of the slot buffer never alias);
//! * the **M2L interaction lists** in CSR form (`m2l_offsets` +
//!   `m2l_sources` over slot indices) plus the dense list of non-empty
//!   targets the multipole kernel launches over;
//! * the **P2P leaf-pair lists** in CSR form over leaf indices;
//! * per-slot **geometry** (centers) and **parent links** for the
//!   gather-form downward pass.
//!
//! The plan is keyed on [`octree::Tree::topology_version`] (and θ and the
//! node count, guarding against distinct trees with coincidentally equal
//! versions): a solve with an unchanged tree performs *zero* traversal
//! work and runs straight kernels over dense index arrays.

use super::solver::SolveStats;
use crate::units::BOX_SIZE;
use octree::{NodeId, Tree};
use std::collections::HashMap;

/// Physical center and half-diagonal of a node's cube.
pub(crate) fn node_geometry(id: NodeId) -> ([f64; 3], f64) {
    let (corner, size) = id.cube();
    let s_phys = size * BOX_SIZE;
    let center = [
        (corner[0] + 0.5 * size - 0.5) * BOX_SIZE,
        (corner[1] + 0.5 * size - 0.5) * BOX_SIZE,
        (corner[2] + 0.5 * size - 0.5) * BOX_SIZE,
    ];
    (center, 0.5 * s_phys * 3f64.sqrt())
}

/// What a slot of the plan's node table is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// A leaf; payload is the index into [`GravityPlan::leaves`].
    Leaf(usize),
    /// An interior node; payload is its eight child slots (octant order).
    /// All children live at the next-deeper level, i.e. at strictly
    /// *smaller* slot indices.
    Interior([usize; 8]),
}

/// The frozen traversal: everything a gravity solve needs that depends
/// only on tree topology and θ.  Built by [`GravityPlan::build`], cached
/// by the solver, shared immutably (`Arc`) between solver clones.
#[derive(Debug, Clone)]
pub struct GravityPlan {
    /// [`Tree::topology_version`] of the tree this plan encodes.
    pub topology_version: u64,
    /// Acceptance parameter the traversal used.
    pub theta: f64,
    /// Node count of the encoded tree (second staleness guard).
    pub num_nodes: usize,
    /// All tree nodes: deepest level first, SFC-sorted within a level.
    pub nodes: Vec<NodeId>,
    /// Per-slot cube centers (physical coordinates).
    pub centers: Vec<[f64; 3]>,
    /// Per-slot kind (leaf index or child slots).
    pub kinds: Vec<SlotKind>,
    /// Per-slot parent slot (`usize::MAX` for the root).  Parents live at
    /// strictly *larger* slot indices.
    pub parent_slot: Vec<usize>,
    /// `level_ranges[level]` = the contiguous `(begin, end)` slot range of
    /// that level.  Deeper level ⇒ earlier range.
    pub level_ranges: Vec<(usize, usize)>,
    /// SFC-sorted leaves (the solver's input/output key order).
    pub leaves: Vec<NodeId>,
    /// Slot of each leaf, aligned with [`GravityPlan::leaves`].
    pub leaf_slots: Vec<usize>,
    /// M2L CSR over slots: slot `s`'s far-field sources are
    /// `m2l_sources[m2l_offsets[s]..m2l_offsets[s + 1]]` (slot indices, in
    /// traversal order — fixed, so per-target summation order is
    /// deterministic and independent of kernel task splitting).
    pub m2l_offsets: Vec<usize>,
    pub m2l_sources: Vec<usize>,
    /// Slots with a non-empty M2L list — the multipole kernel's launch
    /// index set.
    pub m2l_targets: Vec<usize>,
    /// P2P CSR over *leaf indices*: leaf `l`'s near-field source leaves are
    /// `p2p_sources[p2p_offsets[l]..p2p_offsets[l + 1]]` (including the
    /// self pair, in traversal order).
    pub p2p_offsets: Vec<usize>,
    pub p2p_sources: Vec<usize>,
    /// Interaction statistics — a pure function of the plan, precomputed
    /// so cached solves return them for free.
    pub stats: SolveStats,
}

impl GravityPlan {
    /// Run the dual-tree traversal once and freeze it.
    pub fn build(tree: &Tree, theta: f64) -> GravityPlan {
        // ---- Slot table: deepest level first, SFC within a level. -------
        let max_level = tree.max_level();
        let mut nodes: Vec<NodeId> = Vec::with_capacity(tree.len());
        let mut level_ranges = vec![(0usize, 0usize); max_level as usize + 1];
        for level in (0..=max_level).rev() {
            let begin = nodes.len();
            nodes.extend(tree.nodes_at_level(level));
            level_ranges[level as usize] = (begin, nodes.len());
        }
        debug_assert_eq!(nodes.len(), tree.len());
        let slot_of: HashMap<NodeId, usize> =
            nodes.iter().enumerate().map(|(s, &id)| (id, s)).collect();

        let leaves = tree.leaves();
        let leaf_index: HashMap<NodeId, usize> =
            leaves.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let leaf_slots: Vec<usize> = leaves.iter().map(|id| slot_of[id]).collect();

        let centers: Vec<[f64; 3]> = nodes.iter().map(|&id| node_geometry(id).0).collect();
        let radii: Vec<f64> = nodes.iter().map(|&id| node_geometry(id).1).collect();
        let kinds: Vec<SlotKind> = nodes
            .iter()
            .map(|&id| {
                if tree.is_leaf(id) {
                    SlotKind::Leaf(leaf_index[&id])
                } else {
                    let mut child_slots = [0usize; 8];
                    for (c, o) in octree::Octant::all().enumerate() {
                        child_slots[c] = slot_of[&id.child(o)];
                    }
                    SlotKind::Interior(child_slots)
                }
            })
            .collect();
        let parent_slot: Vec<usize> = nodes
            .iter()
            .map(|&id| id.parent().map_or(usize::MAX, |p| slot_of[&p]))
            .collect();

        // ---- The dual-tree traversal (run once, then never again until
        // the topology or θ changes). ------------------------------------
        let mut m2l: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut p2p: Vec<Vec<usize>> = vec![Vec::new(); leaves.len()];
        let root = slot_of[&NodeId::ROOT];
        let mut stack: Vec<(usize, usize)> = vec![(root, root)];
        while let Some((a, b)) = stack.pop() {
            if a == b {
                match kinds[a] {
                    SlotKind::Leaf(la) => p2p[la].push(la),
                    SlotKind::Interior(kids) => {
                        for (i, &ci) in kids.iter().enumerate() {
                            for &cj in &kids[i..] {
                                stack.push((ci, cj));
                            }
                        }
                    }
                }
                continue;
            }
            let (ca, cb) = (centers[a], centers[b]);
            let d = ((ca[0] - cb[0]).powi(2) + (ca[1] - cb[1]).powi(2) + (ca[2] - cb[2]).powi(2))
                .sqrt();
            if d > 0.0 && (radii[a] + radii[b]) / d < theta {
                m2l[a].push(b);
                m2l[b].push(a);
                continue;
            }
            match (kinds[a], kinds[b]) {
                (SlotKind::Leaf(la), SlotKind::Leaf(lb)) => {
                    p2p[la].push(lb);
                    p2p[lb].push(la);
                }
                (a_kind, b_kind) => {
                    // Split the larger node (higher up the tree); if tied,
                    // split whichever is interior.
                    let split_a = match (a_kind, b_kind) {
                        (SlotKind::Leaf(_), _) => false,
                        (_, SlotKind::Leaf(_)) => true,
                        _ => nodes[a].level() <= nodes[b].level(),
                    };
                    let (split, keep) = if split_a { (a, b) } else { (b, a) };
                    let SlotKind::Interior(kids) = kinds[split] else {
                        unreachable!("split node is interior by construction");
                    };
                    for c in kids {
                        stack.push((c, keep));
                    }
                }
            }
        }

        // ---- CSR compaction. -------------------------------------------
        let mut m2l_offsets = Vec::with_capacity(nodes.len() + 1);
        let mut m2l_sources = Vec::new();
        let mut m2l_targets = Vec::new();
        m2l_offsets.push(0);
        for (s, list) in m2l.iter().enumerate() {
            if !list.is_empty() {
                m2l_targets.push(s);
            }
            m2l_sources.extend_from_slice(list);
            m2l_offsets.push(m2l_sources.len());
        }
        let mut p2p_offsets = Vec::with_capacity(leaves.len() + 1);
        let mut p2p_sources = Vec::new();
        p2p_offsets.push(0);
        for list in &p2p {
            p2p_sources.extend_from_slice(list);
            p2p_offsets.push(p2p_sources.len());
        }

        let stats = SolveStats {
            m2l_interactions: m2l_sources.len(),
            p2p_pairs: p2p_sources.len(),
            multipole_kernel_launches: m2l_targets.len(),
        };

        GravityPlan {
            topology_version: tree.topology_version(),
            theta,
            num_nodes: nodes.len(),
            nodes,
            centers,
            kinds,
            parent_slot,
            level_ranges,
            leaves,
            leaf_slots,
            m2l_offsets,
            m2l_sources,
            m2l_targets,
            p2p_offsets,
            p2p_sources,
            stats,
        }
    }

    /// The plan's invalidation rule: valid iff the tree's topology version
    /// *and* node count still match (the count guards against a different
    /// tree whose version coincides) and θ is unchanged.
    pub fn is_valid_for(&self, tree: &Tree, theta: f64) -> bool {
        self.topology_version == tree.topology_version()
            && self.num_nodes == tree.len()
            && self.theta == theta
    }

    /// M2L source slots of `slot`.
    #[inline]
    pub fn m2l_sources_of(&self, slot: usize) -> &[usize] {
        &self.m2l_sources[self.m2l_offsets[slot]..self.m2l_offsets[slot + 1]]
    }

    /// P2P source leaf indices of leaf `li`.
    #[inline]
    pub fn p2p_sources_of(&self, li: usize) -> &[usize] {
        &self.p2p_sources[self.p2p_offsets[li]..self.p2p_offsets[li + 1]]
    }

    /// Deepest level of the encoded tree.
    pub fn max_level(&self) -> u8 {
        (self.level_ranges.len() - 1) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_table_is_deepest_first_and_contiguous() {
        let mut tree = Tree::new_uniform(1);
        tree.refine_balanced(NodeId::from_coords(1, [0, 0, 0]));
        let plan = GravityPlan::build(&tree, 0.5);
        assert_eq!(plan.num_nodes, tree.len());
        // Levels appear deepest first, each as one contiguous range.
        let mut cursor = 0usize;
        for level in (0..=tree.max_level()).rev() {
            let (b, e) = plan.level_ranges[level as usize];
            assert_eq!(b, cursor, "level {level} range not contiguous");
            for s in b..e {
                assert_eq!(plan.nodes[s].level(), level);
            }
            cursor = e;
        }
        assert_eq!(cursor, plan.num_nodes);
        // Children sit at strictly smaller slots, parents strictly larger.
        for (s, kind) in plan.kinds.iter().enumerate() {
            if let SlotKind::Interior(kids) = kind {
                assert!(kids.iter().all(|&c| c < s));
            }
            let p = plan.parent_slot[s];
            if p != usize::MAX {
                assert!(p > s);
            }
        }
        // The root is the very last slot.
        assert_eq!(plan.nodes[plan.num_nodes - 1], NodeId::ROOT);
        assert_eq!(plan.parent_slot[plan.num_nodes - 1], usize::MAX);
    }

    #[test]
    fn csr_lists_match_stats() {
        let tree = Tree::new_uniform(2);
        let plan = GravityPlan::build(&tree, 0.5);
        assert_eq!(plan.stats.m2l_interactions, plan.m2l_sources.len());
        assert_eq!(plan.stats.p2p_pairs, plan.p2p_sources.len());
        assert_eq!(plan.stats.multipole_kernel_launches, plan.m2l_targets.len());
        assert!(plan.stats.m2l_interactions > 0);
        assert!(plan.stats.p2p_pairs > 0);
        // M2L symmetry: the interaction a→b implies b→a.
        for &t in &plan.m2l_targets {
            for &s in plan.m2l_sources_of(t) {
                assert!(
                    plan.m2l_sources_of(s).contains(&t),
                    "asymmetric M2L pair ({t}, {s})"
                );
            }
        }
        // Every leaf P2P list contains the self pair.
        for li in 0..plan.leaves.len() {
            assert!(plan.p2p_sources_of(li).contains(&li));
        }
    }

    #[test]
    fn rebuilding_on_an_unchanged_tree_is_deterministic() {
        let tree = Tree::new_uniform(2);
        let a = GravityPlan::build(&tree, 0.5);
        let b = GravityPlan::build(&tree, 0.5);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.m2l_offsets, b.m2l_offsets);
        assert_eq!(a.m2l_sources, b.m2l_sources);
        assert_eq!(a.p2p_offsets, b.p2p_offsets);
        assert_eq!(a.p2p_sources, b.p2p_sources);
        assert!(a.is_valid_for(&tree, 0.5));
        assert!(!a.is_valid_for(&tree, 0.4), "θ change must invalidate");
    }

    #[test]
    fn refinement_invalidates_the_plan() {
        let mut tree = Tree::new_uniform(1);
        let plan = GravityPlan::build(&tree, 0.5);
        assert!(plan.is_valid_for(&tree, 0.5));
        tree.refine_balanced(tree.leaves()[0]);
        assert!(!plan.is_valid_for(&tree, 0.5));
    }
}
