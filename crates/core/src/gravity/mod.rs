//! The gravity module: a fast multipole method on the AMR octree.
//!
//! Paper Section IV-C: *"The FMM part of the code piggybacks on the AMR
//! structure of the hydrodynamics module"*; leaf cells are monopoles,
//! interior nodes carry monopole and quadrupole moments about their
//! centers of mass, and the angular-momentum-conserving modification
//! "requires Octo-Tiger to also compute the octupole moment with the lower
//! moments".  The solve runs in the paper's three phases (Section VII-C):
//!
//! 1. **bottom-up** — P2M at the leaves, M2M up the tree;
//! 2. **same-level cell-to-cell interactions** — the multipole (M2L)
//!    kernel, whose launch is splittable into `tasks_per_kernel` HPX tasks
//!    (the Figure 9 knob);
//! 3. **top-down** — L2L local-expansion propagation and per-cell
//!    evaluation, plus direct P2P near-field sums.
//!
//! The near/far decision uses a dual-tree traversal with a geometric
//! multipole acceptance criterion, which handles the adaptive tree without
//! interaction-list gaps by construction.  The traversal's outcome is
//! frozen into a CSR-encoded [`plan::GravityPlan`] keyed on the tree's
//! topology version, so solves on an unchanged tree skip it entirely.

pub mod direct;
pub mod dist;
pub mod m2l_simd;
pub mod multipole;
pub mod plan;
pub mod solver;
pub mod verify;

pub use dist::{DistLedger, DistPlan, Exchange, Phase};
pub use m2l_simd::MultipoleSoA;
pub use multipole::{LocalExpansion, Multipole};
pub use plan::{GravityPlan, PatchReport};
pub use solver::{GravityOptions, GravitySolver, LeafField, LeafSources, M2lBench};
pub use verify::{verify_dist_plan, verify_gravity_plan, PlanViolation, ProtocolViolation};
